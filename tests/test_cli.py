"""Tests for the ``repro-map`` command-line tool."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.runtime import LBDatabase
from repro.taskgraph import mesh2d_pattern, save_taskgraph


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "app.json"
    save_taskgraph(mesh2d_pattern(4, 4, message_bytes=256), path)
    return path


class TestReproMap:
    def test_basic_report(self, graph_file, capsys):
        assert main(["--taskgraph", str(graph_file), "--topology", "torus:4x4"]) == 0
        out = capsys.readouterr().out
        assert "hops_per_byte" in out
        assert "TopoLB" in out

    def test_placement_output(self, graph_file, tmp_path, capsys):
        out_file = tmp_path / "placement.json"
        rc = main([
            "--taskgraph", str(graph_file), "--topology", "torus:4x4",
            "--strategy", "TopoCentLB", "--output", str(out_file),
        ])
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert payload["format"] == "repro-placement-v1"
        assert sorted(payload["placement"]) == list(range(16))

    def test_lb_dump_input(self, tmp_path, capsys):
        dump = tmp_path / "dump.json"
        LBDatabase.from_taskgraph(mesh2d_pattern(3, 3)).dump(dump)
        rc = main(["--taskgraph", str(dump), "--lb-dump",
                   "--topology", "mesh:3x3", "--strategy", "RandomLB"])
        assert rc == 0

    def test_list_strategies(self, capsys):
        assert main(["--list-strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("TopoLB", "TopoCentLB", "GreedyLB", "HybridTopoLB"):
            assert name in out

    def test_missing_args_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_topology_spec(self, graph_file, capsys):
        rc = main(["--taskgraph", str(graph_file), "--topology", "blob:9"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_strategy(self, graph_file, capsys):
        rc = main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
                   "--strategy", "NopeLB"])
        assert rc == 1

    def test_missing_file(self, tmp_path, capsys):
        rc = main(["--taskgraph", str(tmp_path / "absent.json"),
                   "--topology", "torus:4x4"])
        assert rc == 1

    def test_deterministic_with_seed(self, graph_file, tmp_path):
        outs = []
        for i in range(2):
            f = tmp_path / f"p{i}.json"
            main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
                  "--strategy", "RandomLB", "--seed", "42", "--output", str(f)])
            outs.append(json.loads(f.read_text())["placement"])
        assert outs[0] == outs[1]


class TestProfileAndStats:
    def test_profile_writes_valid_artifact(self, graph_file, tmp_path, capsys):
        from repro import obs

        prof_file = tmp_path / "prof.json"
        rc = main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
                   "--strategy", "RefineTopoLB", "--profile", str(prof_file)])
        assert rc == 0
        assert "profile_written" in capsys.readouterr().out

        doc = obs.load_profile(prof_file)  # validates against the schema
        assert doc["format"] == "repro-profile-v1"
        for timer in ("cli.load", "cli.map", "cli.simulate", "topolb.map"):
            assert timer in doc["timers"], timer
        assert doc["counters"]["topolb.cycles"] == 16
        assert doc["context"]["strategy"] == "RefineTopoLB"
        assert doc["context"]["num_objects"] == 16
        # --profile defaults to one simulated iteration -> netsim section.
        assert doc["netsim"]["links_used"] > 0
        assert doc["netsim"]["top_links"]

    def test_profile_without_simulation(self, graph_file, tmp_path, capsys):
        prof_file = tmp_path / "prof.json"
        rc = main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
                   "--profile", str(prof_file), "--simulate-iters", "0"])
        assert rc == 0
        doc = json.loads(prof_file.read_text())
        assert "netsim" not in doc
        assert "sim_time_us" not in capsys.readouterr().out

    def test_simulate_iters_without_profile(self, graph_file, capsys):
        rc = main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
                   "--simulate-iters", "2"])
        assert rc == 0
        assert "sim_time_us" in capsys.readouterr().out

    def test_negative_simulate_iters_rejected(self, graph_file):
        with pytest.raises(SystemExit):
            main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
                  "--simulate-iters", "-1"])

    def test_profiling_disabled_after_run(self, graph_file, tmp_path):
        from repro import obs

        main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
              "--profile", str(tmp_path / "prof.json")])
        assert obs.active() is None

    def test_stats_renders_profile(self, graph_file, tmp_path, capsys):
        prof_file = tmp_path / "prof.json"
        main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
              "--profile", str(prof_file)])
        capsys.readouterr()
        assert main(["--stats", str(prof_file)]) == 0
        out = capsys.readouterr().out
        assert "phase wall times" in out
        assert "topolb.cycles" in out
        assert "hottest links" in out

    def test_flow_mode_profile_and_stats(self, graph_file, tmp_path, capsys):
        from repro import obs

        prof_file = tmp_path / "prof.json"
        rc = main(["--taskgraph", str(graph_file), "--topology", "torus:4x4",
                   "--strategy", "RefineTopoLB", "--netsim-mode", "flow",
                   "--simulate-iters", "4", "--profile", str(prof_file)])
        assert rc == 0
        capsys.readouterr()

        doc = obs.load_profile(prof_file)  # validates against the schema
        assert doc["netsim"]["mode"] == "flow"
        assert doc["netsim"]["makespan_lower_bound_us"] > 0
        assert all("messages" in e for e in doc["netsim"]["top_links"])

        assert main(["--stats", str(prof_file)]) == 0
        out = capsys.readouterr().out
        assert "makespan >=" in out
        assert "hottest links (bytes / messages):" in out

    def test_stats_missing_file(self, tmp_path, capsys):
        rc = main(["--stats", str(tmp_path / "absent.json")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_stats_rejects_invalid_profile(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something-else"}))
        rc = main(["--stats", str(bad)])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
