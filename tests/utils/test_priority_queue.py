"""Unit + property tests for the addressable heaps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.priority_queue import AddressableMaxHeap, AddressableMinHeap


class TestMinHeapBasics:
    def test_empty_heap(self):
        heap = AddressableMinHeap()
        assert len(heap) == 0
        with pytest.raises(IndexError):
            heap.pop()
        with pytest.raises(IndexError):
            heap.peek()

    def test_push_pop_single(self):
        heap = AddressableMinHeap()
        heap.push("a", 3.0)
        assert heap.peek() == ("a", 3.0)
        assert heap.pop() == ("a", 3.0)
        assert len(heap) == 0

    def test_pop_order_is_ascending(self):
        heap = AddressableMinHeap()
        for item, key in [("a", 5), ("b", 1), ("c", 3), ("d", 2), ("e", 4)]:
            heap.push(item, key)
        popped = [heap.pop()[1] for _ in range(len(heap))]
        assert popped == sorted(popped)

    def test_constructor_heapifies(self):
        heap = AddressableMinHeap([(i, -i) for i in range(20)])
        assert heap.pop() == (19, -19)

    def test_duplicate_push_rejected(self):
        heap = AddressableMinHeap([("x", 1.0)])
        with pytest.raises(ValueError):
            heap.push("x", 2.0)

    def test_contains_and_key(self):
        heap = AddressableMinHeap([("x", 1.0)])
        assert "x" in heap
        assert "y" not in heap
        assert heap.key("x") == 1.0

    def test_update_decrease(self):
        heap = AddressableMinHeap([("a", 5.0), ("b", 1.0)])
        heap.update("a", 0.5)
        assert heap.pop()[0] == "a"

    def test_update_increase(self):
        heap = AddressableMinHeap([("a", 1.0), ("b", 5.0)])
        heap.update("a", 10.0)
        assert heap.pop()[0] == "b"

    def test_remove_middle(self):
        heap = AddressableMinHeap([(i, i) for i in range(10)])
        assert heap.remove(4) == 4
        popped = [heap.pop()[0] for _ in range(len(heap))]
        assert popped == [0, 1, 2, 3, 5, 6, 7, 8, 9]

    def test_remove_last(self):
        heap = AddressableMinHeap([(0, 0.0), (1, 1.0)])
        heap.remove(1)
        assert heap.pop() == (0, 0.0)

    def test_tie_break_smallest_item_first(self):
        heap = AddressableMinHeap([(i, 7.0) for i in (5, 2, 9, 0)])
        assert [heap.pop()[0] for _ in range(4)] == [0, 2, 5, 9]


class _Opaque:
    """An item with identity but no ordering (like a mapper work token)."""

    def __init__(self, tag):
        self.tag = tag

    def __repr__(self):
        return f"_Opaque({self.tag})"


class TestNonComparableTieBreak:
    def test_insertion_order_breaks_key_ties(self):
        items = [_Opaque(i) for i in range(6)]
        heap = AddressableMinHeap()
        for item in items:
            heap.push(item, 1.0)
        # Equal keys, items with no __lt__: first-in pops first, always.
        assert [heap.pop()[0].tag for _ in range(6)] == [0, 1, 2, 3, 4, 5]

    def test_order_survives_update_churn(self):
        items = [_Opaque(i) for i in range(5)]
        heap = AddressableMinHeap()
        for item in items:
            heap.push(item, float(item.tag))
        # Collapse every key onto the same value in scrambled order; the
        # *insertion* counter (not the churn order) must decide ties.
        for item in (items[3], items[0], items[4], items[2], items[1]):
            heap.update(item, 7.0)
        assert [heap.pop()[0].tag for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_mixed_comparable_and_not(self):
        # int < _Opaque raises TypeError; the heap must not blow up and
        # must still order the tie deterministically by insertion.
        heap = AddressableMinHeap()
        heap.push(_Opaque("a"), 2.0)
        heap.push(5, 2.0)
        heap.push(_Opaque("b"), 1.0)
        first = heap.pop()
        assert first[0].tag == "b"
        assert heap.pop()[0].tag == "a"  # pushed before the int
        assert heap.pop()[0] == 5

    def test_comparable_items_still_win_over_insertion_order(self):
        heap = AddressableMinHeap()
        heap.push(9, 1.0)
        heap.push(2, 1.0)  # later insertion, smaller item: item order wins
        assert heap.pop()[0] == 2

    def test_max_heap_insertion_order_on_ties(self):
        heap = AddressableMaxHeap()
        tokens = [_Opaque(i) for i in range(4)]
        for token in tokens:
            heap.push(token, 3.0)
        assert [heap.pop()[0].tag for _ in range(4)] == [0, 1, 2, 3]

    def test_counter_slot_freed_on_pop_and_remove(self):
        heap = AddressableMinHeap()
        a, b = _Opaque("a"), _Opaque("b")
        heap.push(a, 1.0)
        heap.push(b, 1.0)
        heap.remove(a)
        assert heap.pop()[0] is b
        # Re-pushing a removed item must not resurrect its stale counter.
        heap.push(b, 1.0)
        heap.push(a, 1.0)
        assert [heap.pop()[0] for _ in range(2)] == [b, a]


class TestMaxHeap:
    def test_pop_order_is_descending(self):
        heap = AddressableMaxHeap([(i, k) for i, k in enumerate([3, 9, 1, 7])])
        popped = [heap.pop()[1] for _ in range(len(heap))]
        assert popped == sorted(popped, reverse=True)

    def test_tie_break_smallest_item_first(self):
        heap = AddressableMaxHeap([(i, 1.0) for i in (3, 1, 2)])
        assert [heap.pop()[0] for _ in range(3)] == [1, 2, 3]

    def test_update_to_max(self):
        heap = AddressableMaxHeap([("a", 1.0), ("b", 2.0)])
        heap.update("a", 99.0)
        assert heap.pop()[0] == "a"


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=200))
@settings(max_examples=60)
def test_property_min_heap_sorts(keys):
    heap = AddressableMinHeap(list(enumerate(keys)))
    popped = [heap.pop()[1] for _ in range(len(keys))]
    assert popped == sorted(keys)


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.floats(0, 100, allow_nan=False)),
        max_size=120,
    )
)
@settings(max_examples=60)
def test_property_mixed_operations_match_reference(ops):
    """Random push/update/pop sequence agrees with a dict + sort reference."""
    heap = AddressableMinHeap()
    ref: dict[int, float] = {}
    for item, key in ops:
        if item in ref:
            heap.update(item, key)
            ref[item] = key
        else:
            heap.push(item, key)
            ref[item] = key
    out = []
    while len(heap):
        item, key = heap.pop()
        assert ref.pop(item) == key
        out.append(key)
    assert out == sorted(out)
    assert not ref


@given(st.permutations(list(range(25))))
@settings(max_examples=40)
def test_property_remove_keeps_invariant(perm):
    heap = AddressableMinHeap([(i, float(k)) for i, k in enumerate(perm)])
    removed = perm[:10]
    for item, _ in enumerate(removed):
        heap.remove(item)
    popped = [heap.pop()[1] for _ in range(len(heap))]
    assert popped == sorted(popped)
