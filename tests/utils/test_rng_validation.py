"""Tests for RNG coercion and validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ReproError, TopologyError
from repro.utils.rng import as_rng
from repro.utils.validation import (
    check_nonnegative,
    check_permutation,
    check_positive,
    check_shape_volume,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert as_rng(42).integers(0, 1 << 30) == as_rng(42).integers(0, 1 << 30)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert as_rng(gen) is gen


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1e-9)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ReproError, match="x must be positive"):
            check_positive("x", bad)

    def test_custom_error_class(self):
        with pytest.raises(TopologyError):
            check_positive("x", 0, TopologyError)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        check_nonnegative("y", 0)

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            check_nonnegative("y", -1)


class TestCheckPermutation:
    def test_accepts_identity(self):
        check_permutation(np.arange(5), 5)

    def test_accepts_shuffle(self):
        check_permutation(np.array([2, 0, 1, 4, 3]), 5)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ReproError, match="length-4"):
            check_permutation(np.arange(5), 4)

    def test_rejects_duplicate(self):
        with pytest.raises(ReproError, match="not a permutation"):
            check_permutation(np.array([0, 0, 2]), 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ReproError, match="out of range"):
            check_permutation(np.array([0, 1, 5]), 3)


class TestCheckShapeVolume:
    def test_volume(self):
        assert check_shape_volume((2, 3, 4)) == 24

    def test_single_dim(self):
        assert check_shape_volume((7,)) == 7

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            check_shape_volume(())

    @pytest.mark.parametrize("bad", [(0,), (2, -1), (2, 1.5)])
    def test_rejects_nonpositive_or_fractional(self, bad):
        with pytest.raises(ReproError):
            check_shape_volume(bad)
