"""Tests for the disjoint-set forest."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.union_find import UnionFind


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert len(uf) == 5
        assert uf.num_components == 5
        for i in range(5):
            assert uf.find(i) == i
            assert uf.component_size(i) == 1

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.num_components == 3
        assert uf.component_size(1) == 2

    def test_union_idempotent(self):
        uf = UnionFind(3)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_components == 2

    def test_chain_collapses(self):
        uf = UnionFind(10)
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.num_components == 1
        assert uf.component_size(5) == 10
        assert uf.connected(0, 9)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_zero_elements(self):
        uf = UnionFind(0)
        assert len(uf) == 0
        assert uf.num_components == 0


@given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
@settings(max_examples=50)
def test_property_matches_naive_partition(pairs):
    """UnionFind agrees with a naive set-merging reference."""
    uf = UnionFind(20)
    ref = [{i} for i in range(20)]
    lookup = list(range(20))

    for a, b in pairs:
        uf.union(a, b)
        ra, rb = lookup[a], lookup[b]
        if ra != rb:
            ref[ra] |= ref[rb]
            for x in ref[rb]:
                lookup[x] = ra
            ref[rb] = set()

    for a in range(20):
        for b in range(20):
            assert uf.connected(a, b) == (lookup[a] == lookup[b])
    assert uf.num_components == sum(1 for s in ref if s)
