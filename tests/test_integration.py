"""End-to-end integration tests across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EstimatorOrder,
    IdentityMapper,
    MultilevelPartitioner,
    RandomMapper,
    RefineTopoLB,
    TopoCentLB,
    TopoLB,
    Torus,
    TwoPhaseMapper,
    coalesce,
    expected_random_hops_per_byte,
    hop_bytes,
    leanmd_taskgraph,
    mesh2d_pattern,
    per_link_loads,
    topology_from_spec,
)
from repro.netsim import IterativeApplication, NetworkSimulator
from repro.runtime import ChareArray, LBDatabase, simulate_strategy


class TestFullPipeline:
    def test_measure_balance_simulate(self, tmp_path):
        """The complete Charm++-style workflow: instrument a program, dump
        its load database, replay strategies offline, migrate, and verify
        the execution improves in the network simulator."""
        topo = topology_from_spec("torus:4x4")
        p = topo.num_nodes

        # 1. run an instrumented "program": 64 chares in a 2D-jacobi pattern
        arr = ChareArray(64, p)
        pattern = mesh2d_pattern(8, 8, message_bytes=512)

        def body(c):
            arr.work(c, 1.0)
            for nbr in pattern.neighbors(c):
                arr.send(c, nbr, 512.0)

        arr.run_iteration(body)

        # 2. dump and replay under strategies (Section 5.1 mechanism)
        dump = tmp_path / "step0.json"
        arr.database.dump(dump)
        random_report = simulate_strategy(dump, topo, "RandomLB", seed=0)
        topolb_report = simulate_strategy(dump, topo, "TopoLB", seed=0)
        assert topolb_report["hop_bytes"] < random_report["hop_bytes"]

        # 3. migrate to the TopoLB placement
        from repro.runtime.strategies import run_strategy

        placement = run_strategy("TopoLB", LBDatabase.load(dump), topo, seed=0)
        arr.migrate(placement)
        assert len(np.unique(arr.placement)) == p

        # 4. both placements replayed through the DES: TopoLB finishes faster
        graph = arr.database.to_taskgraph()
        times = {}
        for name, assign in (("random", np.random.default_rng(0).permutation(
                np.repeat(np.arange(p), 4))), ("topolb", placement)):
            from repro.mapping import Mapping

            sim = NetworkSimulator(topo, bandwidth=50.0, alpha=0.1)
            app = IterativeApplication(
                Mapping(graph, topo, assign), sim, iterations=5,
                message_bytes=512.0, compute_time=1.0,
            )
            times[name] = app.run().total_time
        assert times["topolb"] < times["random"]

    def test_two_phase_end_to_end_leanmd(self):
        """LeanMD through partition+map+refine; every stage's invariants."""
        p = 16
        topo = Torus((4, 4))
        graph = leanmd_taskgraph(p, cells_shape=(4, 4, 4))

        tp = TwoPhaseMapper(
            partitioner=MultilevelPartitioner(seed=0),
            mapper=TopoLB(order=EstimatorOrder.SECOND),
            refiner=RefineTopoLB(seed=0),
        )
        mapping = tp.map(graph, topo)

        # expansion consistency
        assert (mapping.assignment == tp.last_group_mapping.assignment[tp.last_groups]).all()
        # group-level hop-bytes equals original-graph hop-bytes (intra-group
        # edges map to distance 0 either way)
        quotient = coalesce(graph, tp.last_groups, p)
        assert hop_bytes(
            quotient, topo, tp.last_group_mapping.assignment
        ) == pytest.approx(mapping.hop_bytes)
        # beats a random group placement
        rand = RandomMapper(seed=1).map(quotient, topo)
        assert tp.last_group_mapping.hop_bytes < rand.hop_bytes

    def test_link_load_reduction_is_the_mechanism(self):
        """The paper's causal chain: lower hop-bytes => lower per-link load
        => lower contention. Check the middle link of the chain."""
        topo = Torus((4, 4, 4))
        g = mesh2d_pattern(8, 8, message_bytes=1000)
        random_loads = per_link_loads(g, topo, RandomMapper(seed=0).map(g, topo).assignment)
        topolb_loads = per_link_loads(g, topo, TopoLB().map(g, topo).assignment)
        assert max(topolb_loads.values()) < max(random_loads.values())
        assert sum(topolb_loads.values()) < sum(random_loads.values())

    def test_hops_per_byte_to_latency_correlation(self):
        """Across mappers, DES latency rank-orders with static hops/byte."""
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4, message_bytes=2000)
        results = []
        for mapper in (RandomMapper(seed=2), TopoCentLB(), IdentityMapper()):
            mapping = mapper.map(g, topo)
            sim = NetworkSimulator(topo, bandwidth=50.0, alpha=0.1)
            app = IterativeApplication(mapping, sim, iterations=5,
                                       message_bytes=1000.0, compute_time=1.0)
            results.append((mapping.hops_per_byte, app.run().mean_message_latency))
        results.sort()
        latencies = [lat for _, lat in results]
        assert latencies == sorted(latencies)

    def test_spec_strings_cover_experiments(self):
        for spec, p in (("torus:8x8", 64), ("mesh:8x8x8", 512), ("hypercube:6", 64)):
            assert topology_from_spec(spec).num_nodes == p

    def test_expected_random_formula_vs_simulation(self):
        """Cross-check the analytic E[hops/byte] against the DES-observed
        hops/byte of a random mapping (they must agree exactly: same routes)."""
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4)
        mapping = RandomMapper(seed=5).map(g, topo)
        sim = NetworkSimulator(topo, bandwidth=100.0)
        app = IterativeApplication(mapping, sim, iterations=1,
                                   message_bytes=100.0, compute_time=0.0)
        res = app.run()
        assert res.hops_per_byte == pytest.approx(mapping.hops_per_byte)
        # and the analytic expectation is in the right ballpark
        assert mapping.hops_per_byte == pytest.approx(
            expected_random_hops_per_byte(topo), rel=0.5
        )
