"""Golden-regression corpus: every pinned triple replays bit-identically
under both kernels, and tampered documents are rejected."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import ValidationError
from repro.validate import check_golden, iter_golden_paths, load_golden

CORPUS = Path(__file__).resolve().parents[1] / "golden"

GOLDEN_PATHS = iter_golden_paths(CORPUS)


def test_corpus_is_not_empty():
    assert len(GOLDEN_PATHS) >= 8


def test_corpus_covers_flow_mode():
    """At least two triples pin the flow estimator's metrics, so drift in
    route accounting or the makespan bound trips the corpus even when every
    assignment is unchanged."""
    flow_docs = [load_golden(p) for p in GOLDEN_PATHS
                 if load_golden(p).get("flow_metrics")]
    assert len(flow_docs) >= 2
    for doc in flow_docs:
        assert {"flow_max_link_bytes", "flow_total_bytes", "flow_links_used",
                "flow_makespan_lower_bound_us"} <= doc["metrics"].keys()


def test_flow_metric_drift_detected(tmp_path):
    flow_path = next(p for p in GOLDEN_PATHS
                     if load_golden(p).get("flow_metrics"))
    doc = load_golden(flow_path)
    doc["metrics"]["flow_max_link_bytes"] += 1.0
    path = tmp_path / "tampered_flow.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValidationError) as err:
        check_golden(path, level="cheap")
    assert err.value.details["metric"] == "flow_max_link_bytes"


@pytest.mark.parametrize("path", GOLDEN_PATHS, ids=lambda p: p.stem)
@pytest.mark.parametrize("kernel", ["vectorized", "reference"])
def test_golden_replays_exactly(path, kernel):
    metrics = check_golden(path, level="full", kernel=kernel)
    assert metrics == load_golden(path)["metrics"]


def _tampered(tmp_path, mutate):
    doc = load_golden(GOLDEN_PATHS[0])
    mutate(doc)
    out = tmp_path / "tampered.json"
    out.write_text(json.dumps(doc))
    return out


def test_assignment_drift_detected(tmp_path):
    def mutate(doc):
        doc["assignment"][0], doc["assignment"][1] = (
            doc["assignment"][1], doc["assignment"][0])

    path = _tampered(tmp_path, mutate)
    with pytest.raises(ValidationError) as err:
        check_golden(path, level="cheap")
    assert err.value.invariant == "golden-drift"
    assert "--regenerate" in str(err.value)


def test_metric_drift_detected(tmp_path):
    def mutate(doc):
        doc["metrics"]["hop_bytes"] += 1.0

    path = _tampered(tmp_path, mutate)
    with pytest.raises(ValidationError) as err:
        check_golden(path, level="cheap")
    assert err.value.invariant == "golden-drift"
    assert err.value.details["metric"] == "hop_bytes"


def test_wrong_format_rejected(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": "not-golden"}))
    with pytest.raises(ValidationError) as err:
        load_golden(path)
    assert err.value.invariant == "golden-format"


def test_missing_keys_rejected(tmp_path):
    doc = load_golden(GOLDEN_PATHS[0])
    del doc["metrics"]
    path = tmp_path / "partial.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValidationError) as err:
        load_golden(path)
    assert "metrics" in str(err.value)


def test_unreadable_file_rejected(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(ValidationError) as err:
        load_golden(path)
    assert err.value.invariant == "golden-format"
