"""Metamorphic properties: transformed inputs with predictable metric moves."""

from __future__ import annotations

import pytest

from repro import Mesh, Torus, mesh2d_pattern, random_taskgraph
from repro.engine import mapper_from_spec
from repro.validate import validate_mapping


def _status(report, invariant):
    return {c.invariant: c for c in report.checks}[invariant]


@pytest.mark.parametrize("mapper_spec", ["topolb", "topocentlb", "identity"])
def test_properties_hold_on_torus(mapper_spec):
    graph = mesh2d_pattern(4, 4, message_bytes=512)
    topo = Torus((4, 4))
    assignment = mapper_from_spec(mapper_spec, 0).map(graph, topo).assignment
    report = validate_mapping(
        graph, topo, assignment, level="full",
        mapper_spec=mapper_spec, seed=0,
    )
    assert _status(report, "relabel-invariance").status == "ok"
    assert _status(report, "scale-invariance").status == "ok"
    assert _status(report, "torus-rotation").status == "ok"


def test_properties_hold_on_irregular_graph():
    graph = random_taskgraph(32, edge_prob=0.2, seed=7)
    topo = Torus((8, 4))
    assignment = mapper_from_spec("topolb", 3).map(graph, topo).assignment
    report = validate_mapping(graph, topo, assignment, level="full", seed=3)
    assert _status(report, "relabel-invariance").status == "ok"
    assert _status(report, "scale-invariance").status == "ok"


def test_torus_rotation_skipped_off_torus():
    graph = mesh2d_pattern(4, 4, message_bytes=8.0)
    topo = Mesh((4, 4))  # open boundaries: the rotation is not an automorphism
    assignment = mapper_from_spec("topolb", 0).map(graph, topo).assignment
    report = validate_mapping(graph, topo, assignment, level="full")
    assert _status(report, "torus-rotation").status == "skipped"
    assert _status(report, "relabel-invariance").status == "ok"
    assert _status(report, "scale-invariance").status == "ok"
