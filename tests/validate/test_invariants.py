"""Invariant checkers: each fires on a crafted violation, passes on a valid
mapping, and records skips with reasons."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TopoLB, Torus, ValidationError, mesh2d_pattern
from repro.topology import topology_from_spec
from repro.validate import validate_mapping


@pytest.fixture(scope="module")
def valid():
    graph = mesh2d_pattern(4, 4, message_bytes=512)
    topo = Torus((4, 4))
    return graph, topo, TopoLB().map(graph, topo).assignment


def _statuses(report):
    return {c.invariant: c.status for c in report.checks}


class TestCheapTier:
    def test_valid_mapping_passes(self, valid):
        graph, topo, assignment = valid
        report = validate_mapping(graph, topo, assignment, level="cheap")
        assert report.ok
        statuses = _statuses(report)
        assert statuses["assignment-bounds"] == "ok"
        assert statuses["injectivity"] == "ok"
        assert statuses["hop-bytes-additivity"] == "ok"
        assert statuses["hop-bytes-lower-bound"] == "ok"
        assert statuses["metrics-block-consistency"] == "ok"
        assert statuses["allowed-mask"] == "skipped"  # pristine machine
        # Full-tier oracles do not run at cheap.
        assert "kernel-differential" not in statuses

    def test_bounds_violation_shape(self, valid):
        graph, topo, assignment = valid
        with pytest.raises(ValidationError) as err:
            validate_mapping(graph, topo, assignment[:-1], level="cheap")
        assert err.value.invariant == "assignment-bounds"

    def test_bounds_violation_range(self, valid):
        graph, topo, assignment = valid
        bad = np.array(assignment)
        bad[5] = topo.num_nodes  # one past the last processor
        with pytest.raises(ValidationError) as err:
            validate_mapping(graph, topo, bad, level="cheap")
        assert err.value.invariant == "assignment-bounds"

    def test_bounds_violation_dtype(self, valid):
        graph, topo, assignment = valid
        with pytest.raises(ValidationError) as err:
            validate_mapping(graph, topo, assignment.astype(np.float64),
                             level="cheap")
        assert err.value.invariant == "assignment-bounds"

    def test_injectivity_violation(self, valid):
        graph, topo, assignment = valid
        bad = np.array(assignment)
        bad[3] = bad[0]
        with pytest.raises(ValidationError) as err:
            validate_mapping(graph, topo, bad, level="cheap")
        assert err.value.invariant == "injectivity"
        assert str(bad[0]) in str(err.value)

    def test_many_to_one_is_not_an_injectivity_violation(self):
        # 8 tasks on 4 processors is necessarily many-to-one: skipped.
        graph = mesh2d_pattern(2, 4, message_bytes=1.0)
        topo = Torus((2, 2))
        report = validate_mapping(
            graph, topo, np.arange(8) % 4, level="cheap"
        )
        assert _statuses(report)["injectivity"] == "skipped"
        assert report.ok

    def test_allowed_mask_violation_on_degraded(self):
        topo = topology_from_spec("degraded:torus:4x4;seed=3;nodes=0.1")
        graph = mesh2d_pattern(2, 7, message_bytes=8.0)  # 14 == num_healthy
        assert graph.num_tasks == topo.num_healthy
        dead = int(np.flatnonzero(~topo.allowed_mask())[0])
        bad = np.array(topo.healthy_nodes())
        bad[0] = dead
        with pytest.raises(ValidationError) as err:
            validate_mapping(graph, topo, bad, level="cheap")
        assert err.value.invariant == "allowed-mask"
        assert str(dead) in str(err.value)

    def test_explicit_allowed_mask_enforced(self, valid):
        graph, topo, assignment = valid
        mask = np.ones(topo.num_nodes, dtype=bool)
        mask[int(assignment[0])] = False
        with pytest.raises(ValidationError) as err:
            validate_mapping(graph, topo, assignment, level="cheap",
                             allowed=mask)
        assert err.value.invariant == "allowed-mask"

    def test_lower_bound_skipped_for_non_bijection(self):
        graph = mesh2d_pattern(2, 2, message_bytes=1.0)
        topo = Torus((4, 2))
        report = validate_mapping(graph, topo, [0, 1, 2, 3], level="cheap")
        assert _statuses(report)["hop-bytes-lower-bound"] == "skipped"


class TestReportShape:
    def test_off_level_runs_nothing(self, valid):
        graph, topo, assignment = valid
        report = validate_mapping(graph, topo, assignment, level="off")
        assert report.checks == [] and report.ok

    def test_unknown_level_rejected(self, valid):
        from repro.exceptions import SpecError

        graph, topo, assignment = valid
        with pytest.raises(SpecError):
            validate_mapping(graph, topo, assignment, level="paranoid")

    def test_raise_on_violation_false_collects(self, valid):
        graph, topo, assignment = valid
        bad = np.array(assignment)
        bad[3] = bad[0]
        report = validate_mapping(graph, topo, bad, level="cheap",
                                  raise_on_violation=False)
        assert not report.ok
        assert [v.invariant for v in report.violations()] == ["injectivity"]
        doc = report.to_dict()
        assert doc["level"] == "cheap"
        assert any(c["status"] == "violated" for c in doc["checks"])

    def test_error_carries_structure_and_replay(self, valid):
        graph, topo, assignment = valid
        bad = np.array(assignment)
        bad[3] = bad[0]
        with pytest.raises(ValidationError) as err:
            validate_mapping(
                graph, topo, bad, level="cheap",
                graph_spec="mesh2d:4x4;bytes=512", topology_spec="torus:4x4",
                mapper_spec="TopoLB", seed=0, kernel="vectorized",
            )
        exc = err.value
        assert exc.invariant == "injectivity"
        assert exc.spec["mapper"] == "TopoLB"
        assert exc.replay == (
            "repro-validate --graph 'mesh2d:4x4;bytes=512' "
            "--topology 'torus:4x4' --mapper 'TopoLB' --seed 0 "
            "--kernel vectorized --validate cheap"
        )
        assert exc.details["violations"][0]["invariant"] == "injectivity"

    def test_no_replay_without_specs(self, valid):
        graph, topo, assignment = valid
        report = validate_mapping(graph, topo, assignment, level="cheap")
        assert report.replay is None
