"""``repro-validate`` CLI: exit codes, report artifact, regeneration."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.validate import iter_golden_paths
from repro.validate.cli import REPORT_FORMAT, main

CORPUS = Path(__file__).resolve().parents[1] / "golden"


@pytest.fixture()
def small_corpus(tmp_path):
    """A one-file copy of the real corpus (keeps CLI tests fast)."""
    root = tmp_path / "golden"
    root.mkdir()
    shutil.copy(iter_golden_paths(CORPUS)[0], root / "pinned.json")
    return root


def test_corpus_mode_ok_with_report(small_corpus, tmp_path, capsys):
    report = tmp_path / "report.json"
    assert main(["--golden", str(small_corpus), "--validate", "cheap",
                 "--kernel", "both", "--report", str(report)]) == 0
    out = capsys.readouterr().out
    assert "2/2 validation passes ok" in out

    doc = json.loads(report.read_text())
    assert doc["format"] == REPORT_FORMAT
    assert doc["violations"] == 0
    kernels = {r["kernel"] for r in doc["records"]}
    assert kernels == {"vectorized", "reference"}


def test_corrupt_golden_exits_1_and_reports(small_corpus, tmp_path, capsys):
    target = small_corpus / "pinned.json"
    doc = json.loads(target.read_text())
    doc["metrics"]["hop_bytes"] += 1.0
    target.write_text(json.dumps(doc))

    report = tmp_path / "report.json"
    assert main(["--golden", str(small_corpus), "--validate", "cheap",
                 "--report", str(report)]) == 1
    assert "golden-drift" in capsys.readouterr().err

    record = json.loads(report.read_text())["records"][0]
    assert record["status"] == "violated"
    assert record["invariant"] == "golden-drift"
    assert record["replay"].startswith("repro-validate --graph")


def test_single_run_mode(capsys):
    assert main(["--graph", "mesh2d:4x4;bytes=64", "--topology", "torus:4x4",
                 "--mapper", "TopoLB", "--seed", "0",
                 "--validate", "full"]) == 0
    assert "hop_bytes=" in capsys.readouterr().out


def test_single_run_bad_spec_exits_2(capsys):
    assert main(["--graph", "nosuchpattern:4x4", "--topology", "torus:4x4",
                 "--validate", "cheap"]) == 2
    assert "error:" in capsys.readouterr().err


def test_empty_corpus_exits_2(tmp_path, capsys):
    (tmp_path / "empty").mkdir()
    assert main(["--golden", str(tmp_path / "empty")]) == 2
    assert "no golden files" in capsys.readouterr().err


def test_graph_and_golden_are_exclusive(small_corpus):
    with pytest.raises(SystemExit):
        main(["--graph", "mesh2d:4x4", "--golden", str(small_corpus)])


def test_graph_requires_topology():
    with pytest.raises(SystemExit):
        main(["--graph", "mesh2d:4x4"])


def test_regenerate_is_idempotent(small_corpus, capsys):
    target = small_corpus / "pinned.json"
    before = target.read_text()
    assert main(["--regenerate", "--golden", str(small_corpus)]) == 0
    assert "regenerated" in capsys.readouterr().out
    # Deterministic pipeline: regeneration without a code change is a no-op.
    assert target.read_text() == before
