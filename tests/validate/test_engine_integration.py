"""MappingRequest.validate plumbed through MappingEngine.run / run_many."""

from __future__ import annotations

import pytest

from repro import ValidationError
from repro.engine import MappingEngine, MappingRequest
from repro.exceptions import SpecError


def _request(**kw):
    base = dict(graph="mesh2d:4x4;bytes=512", topology="torus:4x4",
                mapper="TopoLB", seed=0)
    base.update(kw)
    return MappingRequest(**base)


def test_default_is_off():
    assert MappingRequest(graph="g", topology="t", mapper="m").validate == "off"


def test_invalid_level_rejected_before_mapping():
    with pytest.raises(SpecError):
        MappingEngine().run(_request(validate="everything"))


@pytest.mark.parametrize("level", ["cheap", "full"])
def test_engine_runs_green_at_each_level(level):
    result = MappingEngine().run(_request(validate=level))
    assert result.metrics["hop_bytes"] > 0


def test_validate_full_with_reference_kernel():
    result = MappingEngine().run(_request(validate="full", kernel="reference"))
    baseline = MappingEngine().run(_request(validate="off"))
    assert (result.assignment == baseline.assignment).all()


def test_validate_full_on_degraded_machine():
    # Engine derives the allowed mask; validation must see the same mask.
    result = MappingEngine().run(_request(
        graph="ring:14;bytes=64",
        topology="degraded:torus:4x4;seed=3;nodes=0.1",
        validate="full",
    ))
    assert result.metrics["hop_bytes"] > 0


def test_run_many_carries_per_request_levels():
    engine = MappingEngine()
    results = engine.run_many([
        _request(validate="cheap"),
        _request(mapper="TopoCentLB", validate="full"),
        _request(mapper="identity", validate="off"),
    ])
    assert len(results) == 3
    for result in results:
        assert result.metrics["hop_bytes"] > 0


def test_validation_error_reaches_caller(monkeypatch):
    # Corrupt the metrics block the engine hands to validation (the engine
    # imports it from repro.mapping.metrics at call time).
    from repro.mapping import metrics as metrics_mod

    real = metrics_mod.metrics_block

    def corrupt(graph, topology, assignment, **kw):
        block = dict(real(graph, topology, assignment, **kw))
        block["hop_bytes"] = block["hop_bytes"] + 1.0
        return block

    monkeypatch.setattr(metrics_mod, "metrics_block", corrupt)
    with pytest.raises(ValidationError) as err:
        MappingEngine().run(_request(validate="cheap"))
    assert err.value.invariant == "metrics-block-consistency"
    assert err.value.replay is not None
