"""Acceptance check: a deliberately corrupted assignment is caught with a
structured, replayable error (ISSUE acceptance criterion)."""

from __future__ import annotations

import shlex

import numpy as np
import pytest

from repro import ValidationError
from repro.engine import MappingEngine, MappingRequest
from repro.validate import validate_mapping
from repro.validate.cli import main as validate_cli

GRAPH = "mesh2d:4x4;bytes=512"
TOPOLOGY = "torus:4x4"
MAPPER = "TopoLB"
SEED = 0


def _engine_assignment():
    result = MappingEngine().run(MappingRequest(
        graph=GRAPH, topology=TOPOLOGY, mapper=MAPPER, seed=SEED,
    ))
    return result


def test_corrupted_assignment_caught_with_replay():
    from repro.engine import graph_from_spec
    from repro.topology import topology_from_spec

    result = _engine_assignment()
    corrupted = np.array(result.assignment)
    corrupted[0], corrupted[1] = corrupted[1], corrupted[0]  # swap two tasks

    graph = graph_from_spec(GRAPH)
    topo = topology_from_spec(TOPOLOGY)
    with pytest.raises(ValidationError) as err:
        validate_mapping(
            graph, topo, corrupted, level="full",
            mapper_spec=MAPPER, graph_spec=GRAPH, topology_spec=TOPOLOGY,
            seed=SEED, kernel="vectorized",
        )
    exc = err.value

    # Structured: the error names the violated invariant and the spec triple.
    assert exc.invariant in ("kernel-differential", "spec-rebuild-differential")
    assert exc.spec["graph"] == GRAPH
    assert exc.spec["topology"] == TOPOLOGY
    assert exc.spec["mapper"] == MAPPER
    assert exc.details["violations"]

    # Replayable: the embedded command is a runnable repro-validate line.
    assert exc.replay is not None
    argv = shlex.split(exc.replay)
    assert argv[0] == "repro-validate"
    # The replay re-runs the *mapper*, whose real output is valid — it
    # demonstrates the corruption was in the checked assignment, not the code.
    assert validate_cli(argv[1:]) == 0


def test_error_message_names_invariant_and_replay():
    result = _engine_assignment()
    from repro.engine import graph_from_spec
    from repro.topology import topology_from_spec

    bad = np.array(result.assignment)
    bad[2] = bad[3]  # duplicate a processor: injectivity breaks
    with pytest.raises(ValidationError) as err:
        validate_mapping(
            graph_from_spec(GRAPH), topology_from_spec(TOPOLOGY), bad,
            level="cheap", mapper_spec=MAPPER, graph_spec=GRAPH,
            topology_spec=TOPOLOGY, seed=SEED,
        )
    text = str(err.value)
    assert "injectivity" in text
    assert "replay: repro-validate" in text
    assert GRAPH in text
