"""Differential oracles: two independent code paths must agree exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SubTopology, Torus, ValidationError, mesh2d_pattern, ring_pattern
from repro.engine import mapper_from_spec
from repro.validate import validate_mapping


@pytest.fixture(scope="module")
def spec_run():
    """A fully spec-described TopoLB run (so full-tier oracles all fire)."""
    graph = mesh2d_pattern(4, 4, message_bytes=512)
    topo = Torus((4, 4))
    assignment = mapper_from_spec("topolb", 0).map(graph, topo).assignment
    return graph, topo, assignment


def _status(report, invariant):
    return {c.invariant: c for c in report.checks}[invariant]


class TestMetricsConsistency:
    def test_agrees_with_standalone_functions(self, spec_run):
        graph, topo, assignment = spec_run
        report = validate_mapping(graph, topo, assignment, level="cheap")
        assert _status(report, "metrics-block-consistency").status == "ok"

    def test_corrupted_metrics_block_detected(self, spec_run):
        from repro.mapping.metrics import metrics_block

        graph, topo, assignment = spec_run
        block = dict(metrics_block(graph, topo, assignment))
        block["hop_bytes"] = block["hop_bytes"] + 1.0
        with pytest.raises(ValidationError) as err:
            validate_mapping(graph, topo, assignment, level="cheap",
                             metrics=block)
        assert err.value.invariant == "metrics-block-consistency"
        assert "hop_bytes" in str(err.value)


class TestRemappingOracles:
    def test_kernel_and_spec_rebuild_agree(self, spec_run):
        graph, topo, assignment = spec_run
        report = validate_mapping(
            graph, topo, assignment, level="full",
            mapper_spec="topolb", seed=0,
        )
        assert _status(report, "kernel-differential").status == "ok"
        assert _status(report, "spec-rebuild-differential").status == "ok"
        assert _status(report, "link-load-conservation").status == "ok"

    def test_assignment_not_from_spec_detected(self, spec_run):
        # Hand the validator a *reversed* assignment but claim it came
        # from TopoLB: both remapping oracles must contradict it.
        graph, topo, assignment = spec_run
        fake = np.ascontiguousarray(assignment[::-1])
        assert not np.array_equal(fake, assignment)
        report = validate_mapping(
            graph, topo, fake, level="full",
            mapper_spec="topolb", seed=0, raise_on_violation=False,
        )
        violated = {v.invariant for v in report.violations()}
        assert "kernel-differential" in violated
        assert "spec-rebuild-differential" in violated

    def test_skipped_without_mapper_spec(self, spec_run):
        graph, topo, assignment = spec_run
        report = validate_mapping(graph, topo, assignment, level="full")
        assert _status(report, "kernel-differential").status == "skipped"
        assert _status(report, "spec-rebuild-differential").status == "skipped"

    def test_alias_specs_resolve_to_same_mapping(self, spec_run):
        # Strategy alias and canonical spelling build the same mapper, so
        # the spec-rebuild oracle holds for either spelling.
        graph, topo, assignment = spec_run
        for spelling in ("topolb", "TopoLB"):
            report = validate_mapping(
                graph, topo, assignment, level="full",
                mapper_spec=spelling, seed=0,
            )
            assert _status(report, "spec-rebuild-differential").status == "ok"


class TestSubTopologyOracle:
    def test_distances_match_parent_metric(self):
        parent = Torus((4, 4))
        sub = SubTopology(parent, [0, 1, 2, 5, 6, 7, 10, 11])
        graph = ring_pattern(8, message_bytes=64)
        assignment = mapper_from_spec("topolb", 0).map(graph, sub).assignment
        report = validate_mapping(
            graph, sub, assignment, level="full", mapper_spec="topolb", seed=0,
        )
        assert _status(report, "subtopology-distances").status == "ok"
        # Metric-only machine: routes leave the subset, conservation skips.
        assert _status(report, "link-load-conservation").status == "skipped"

    def test_skipped_on_plain_topology(self, spec_run):
        graph, topo, assignment = spec_run
        report = validate_mapping(graph, topo, assignment, level="full")
        assert _status(report, "subtopology-distances").status == "skipped"
