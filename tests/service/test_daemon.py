"""MappingService core: submit/coalesce/backpressure/error-replay/metrics.

All tests run the service with ``jobs=0`` (thread executor in-process) so
no pool spins up; each wraps its scenario in ``asyncio.run`` since the
suite has no async test plugin.
"""

import asyncio

import pytest

from repro import obs
from repro.service import BackpressureError, MappingService, ServiceConfig
from repro.service.daemon import ServiceRequestError, parse_request_body

BODY = {"graph": "mesh2d:6x6;bytes=1024", "topology": "torus:6x6",
        "mapper": "topolb", "seed": 0}


def _config(**overrides):
    base = dict(jobs=0, batch_size=4, timeout=10.0)
    base.update(overrides)
    return ServiceConfig(**base)


async def _with_service(config, scenario):
    service = MappingService(config)
    await service.start()
    try:
        return await scenario(service)
    finally:
        await service.stop()


def run(scenario, **config_overrides):
    return asyncio.run(_with_service(_config(**config_overrides), scenario))


# ------------------------------------------------------------- body parsing
@pytest.mark.parametrize("body,match", [
    ([1, 2], "JSON object"),
    ({**BODY, "mystery": 1}, "unknown request field"),
    ({"topology": "torus:4x4"}, "'graph' must be a spec string"),
    ({"graph": "mesh2d:4x4"}, "'topology' must be a spec string"),
    ({**BODY, "seed": "zero"}, "seed must be an integer"),
    ({**BODY, "seed": True}, "seed must be an integer"),
    ({**BODY, "kernel": 3}, "kernel must be a string"),
    ({**BODY, "netsim": "fast"}, "netsim must be an object"),
    ({**BODY, "validate": "always"}, "validate must be one of"),
])
def test_parse_request_body_rejects(body, match):
    with pytest.raises(ServiceRequestError, match=match):
        parse_request_body(body)


def test_parse_request_body_defaults():
    request, wait = parse_request_body(
        {"graph": "mesh2d:4x4", "topology": "torus:4x4"}
    )
    assert wait is True
    assert request.mapper == "TopoLB"
    assert request.seed == 0
    assert request.validate == "off"


# ------------------------------------------------------------ miss/hit path
def test_miss_then_hit_serves_identical_result():
    async def scenario(service):
        first = await service.submit(dict(BODY))
        second = await service.submit(dict(BODY))
        return first, second, service.cache.stats()

    first, second, stats = run(scenario)
    assert first["status"] == second["status"] == "done"
    assert first["cached"] is False and second["cached"] is True
    assert first["id"] == second["id"]
    assert first["result"]["assignment"] == second["result"]["assignment"]
    assert first["result"]["metrics"] == second["result"]["metrics"]
    assert stats["hits"] == 1 and stats["misses"] >= 1


def test_wait_false_returns_pending_then_result_polls_done():
    async def scenario(service):
        reply = await service.submit({**BODY, "wait": False})
        assert reply["status"] == "pending"
        key = reply["id"]
        for _ in range(200):
            polled = await service.result(key)
            if polled["status"] == "done":
                return reply, polled
            await asyncio.sleep(0.05)
        raise AssertionError("request never completed")

    reply, polled = run(scenario)
    assert polled["id"] == reply["id"]
    assert polled["result"]["metrics"]["hop_bytes"] > 0


def test_unknown_key_polls_to_none():
    async def scenario(service):
        return await service.result("0" * 64)

    assert run(scenario) is None


def test_duplicate_inflight_submissions_coalesce():
    async def scenario(service):
        a = await service.submit({**BODY, "wait": False})
        b = await service.submit({**BODY, "wait": False})
        assert a["id"] == b["id"]
        counters = service.profiler.snapshot()["counters"]
        # One enqueue, one coalesce — not two computations.
        assert counters["service.coalesced"] == 1
        while (await service.result(a["id"]))["status"] != "done":
            await asyncio.sleep(0.05)
        return service.profiler.snapshot()["counters"]

    counters = run(scenario)
    assert counters["service.misses"] == 1


# ------------------------------------------------------------- backpressure
def test_full_queue_rejects_with_retry_after():
    async def scenario(service):
        # Park the batcher so enqueued misses cannot drain: the queue depth
        # is then fully controlled by submissions.
        service._batcher.cancel()
        try:
            await service._batcher
        except asyncio.CancelledError:
            pass
        service._batcher = None
        for seed in range(2):
            reply = await service.submit(
                {**BODY, "seed": seed, "wait": False}
            )
            assert reply["status"] == "pending"
        with pytest.raises(BackpressureError) as err:
            await service.submit({**BODY, "seed": 99, "wait": False})
        assert err.value.retry_after == pytest.approx(2.5)
        counters = service.profiler.snapshot()["counters"]
        assert counters["service.rejected"] == 1

        # Duplicates of an already-inflight key coalesce instead of being
        # rejected — backpressure only applies to *new* work.
        reply = await service.submit({**BODY, "seed": 0, "wait": False})
        assert reply["status"] == "pending"

    run(scenario, queue_limit=2, retry_after=2.5)


# -------------------------------------------------------------- error paths
def test_bad_request_raises_service_request_error():
    async def scenario(service):
        with pytest.raises(ServiceRequestError):
            await service.submit({**BODY, "mapper": "NoSuchMapperLB"})
        return service.profiler.snapshot()["counters"]

    counters = run(scenario)
    assert counters["service.bad_requests"] == 1


def test_deterministic_failure_is_replayed_not_recomputed():
    bad = {**BODY, "kernel": "no-such-kernel"}

    async def scenario(service):
        first = await service.submit(dict(bad))
        assert first["status"] == "error"
        assert "no-such-kernel" in first["error"]
        second = await service.submit(dict(bad))
        polled = await service.result(first["id"])
        return first, second, polled, service.profiler.snapshot()["counters"]

    first, second, polled, counters = run(scenario)
    assert second["status"] == polled["status"] == "error"
    assert second["error"] == first["error"]
    assert counters["service.errors"] == 1       # computed exactly once
    assert counters["service.error_hits"] == 1   # then answered from record


def test_poisoned_request_does_not_take_down_batchmates():
    async def scenario(service):
        good = service.submit(dict(BODY))
        bad = service.submit({**BODY, "kernel": "no-such-kernel"})
        return await asyncio.gather(good, bad)

    good, bad = run(scenario)
    assert good["status"] == "done"
    assert bad["status"] == "error"


# ------------------------------------------------------------------ metrics
def test_metrics_profile_is_valid_and_complete():
    async def scenario(service):
        await service.submit(dict(BODY))
        await service.submit(dict(BODY))
        return service.metrics_profile(), service.healthz()

    profile, health = run(scenario)
    obs.validate_profile(profile)
    counters = profile["counters"]
    assert counters["service.requests"] == 2
    assert counters["service.hits"] == 1
    assert counters["service.misses"] == 1
    assert counters["service.cache.entries"] == 1
    assert counters["service.latency_hit_samples"] == 1
    assert counters["service.latency_miss_samples"] == 1
    assert counters["service.latency_hit_p50_us"] > 0
    assert counters["service.latency_miss_p50_us"] > 0
    assert health["status"] == "ok"
    assert health["requests"] == 2
    assert health["queue_depth"] == 0


def test_stop_resolves_inflight_futures():
    async def scenario(service):
        service._batcher.cancel()
        try:
            await service._batcher
        except asyncio.CancelledError:
            pass
        service._batcher = None
        reply = await service.submit({**BODY, "wait": False})
        future = service._inflight[reply["id"]]
        await service.stop()
        assert future.done()
        assert future.result()["kind"] == "shutdown"

    asyncio.run(_with_service(_config(), scenario))
