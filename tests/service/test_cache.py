"""Content-addressed cache keys and the ResultCache tiers."""

import json

import pytest

from repro.engine import MappingEngine, MappingRequest
from repro.exceptions import SpecError
from repro.service import ResultCache, request_cache_key, result_to_payload
from repro.taskgraph import mesh2d_pattern, save_taskgraph


def _req(**overrides):
    base = dict(graph="mesh2d:4x4;bytes=1024", topology="torus:4x4",
                mapper="topolb", seed=0)
    base.update(overrides)
    return MappingRequest(**base)


# ------------------------------------------------------------------ key laws
def test_key_is_stable_and_spelling_independent(tmp_path):
    assert request_cache_key(_req()) == request_cache_key(_req())

    # Different mapper spellings with the same canonical form share a key...
    assert (request_cache_key(_req(mapper="TOPOLB"))
            == request_cache_key(_req(mapper="topolb")))
    assert (request_cache_key(_req(mapper="refine:passes=2;base=topolb"))
            == request_cache_key(_req(mapper="refine:base=topolb;passes=2")))

    # ...and so do different spellings of the same graph content: the spec
    # string, the generated TaskGraph, and a file: round-trip of it.
    graph = mesh2d_pattern(4, 4, message_bytes=1024)
    path = tmp_path / "g.json"
    save_taskgraph(graph, path)
    spec_key = request_cache_key(_req())
    assert request_cache_key(_req(graph=graph)) == spec_key
    assert request_cache_key(_req(graph=f"file:{path}")) == spec_key


@pytest.mark.parametrize("overrides", [
    {"graph": "mesh2d:4x4;bytes=2048"},
    {"graph": "mesh2d:4x5;bytes=1024"},
    {"topology": "torus:8x8"},
    {"topology": "mesh:4x4"},
    {"mapper": "topocentlb"},
    {"mapper": "refine:base=topolb"},
    {"seed": 7},
    {"kernel": "reference"},
    {"flow_metrics": True},
    {"validate": "full"},
    {"netsim": {"buffer_packets": 4}},
    {"allowed": [True] * 15 + [False]},
])
def test_key_changes_with_every_identity_field(overrides):
    assert request_cache_key(_req(**overrides)) != request_cache_key(_req())


def test_key_rejects_non_addressable_requests():
    class LiveMapper:
        def map(self, graph, topology, allowed=None):  # pragma: no cover
            raise AssertionError

    with pytest.raises(SpecError, match="live object"):
        request_cache_key(_req(mapper=LiveMapper()))


def test_equal_keys_mean_equal_payloads():
    """The promise the serving fast path rests on."""
    engine = MappingEngine()
    a = result_to_payload(engine.run(_req()))
    b = result_to_payload(engine.run(_req()))
    assert a["assignment"] == b["assignment"]
    assert a["metrics"] == b["metrics"]
    json.dumps(a)  # payload must be JSON-able as produced


# --------------------------------------------------------------- ResultCache
def test_lru_evicts_least_recently_used():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") == {"v": 1}  # refresh "a": "b" is now the LRU
    cache.put("c", {"v": 3})
    assert cache.get("b") is None
    assert cache.get("a") == {"v": 1}
    assert cache.get("c") == {"v": 3}
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["entries"] == 2
    assert stats["misses"] == 1


def test_disk_tier_round_trip_and_promotion(tmp_path):
    warm = ResultCache(max_entries=8, disk_dir=tmp_path)
    warm.put("k1", {"assignment": [0, 1], "metrics": {"hop_bytes": 3.0}})
    assert len(list(tmp_path.glob("*.json"))) == 1

    # A fresh instance over the same directory starts warm from disk.
    cold = ResultCache(max_entries=8, disk_dir=tmp_path)
    assert cold.get("k1") == {"assignment": [0, 1],
                              "metrics": {"hop_bytes": 3.0}}
    assert cold.stats()["disk_hits"] == 1
    # The read promoted into memory: the next hit is served without disk.
    assert cold.get("k1") is not None
    assert cold.stats()["disk_hits"] == 1
    assert cold.stats()["hits"] == 2


def test_disk_tier_ignores_torn_entries(tmp_path):
    cache = ResultCache(max_entries=4, disk_dir=tmp_path)
    (tmp_path / "bad.json").write_text("{truncated")
    assert cache.get("bad") is None
    assert cache.stats()["misses"] == 1


def test_memory_only_cache_never_touches_disk(tmp_path):
    cache = ResultCache(max_entries=4)
    cache.put("k", {"v": 1})
    assert list(tmp_path.iterdir()) == []
    assert cache.get("k") == {"v": 1}


def test_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)
