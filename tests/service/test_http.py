"""HTTP transport: routes, status codes, and the ThreadedServer harness."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.service import ServiceConfig, ThreadedServer

BODY = {"graph": "mesh2d:6x6;bytes=1024", "topology": "torus:6x6",
        "mapper": "topolb", "seed": 0}


@pytest.fixture(scope="module")
def server():
    with ThreadedServer(ServiceConfig(jobs=0, batch_size=4,
                                      timeout=10.0)) as url:
        yield url


def _call(url, method="GET", body=None):
    """(status, headers, parsed JSON) without raising on 4xx."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, dict(reply.headers), json.load(reply)
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.load(err)


def test_map_miss_then_hit(server):
    status, _, first = _call(f"{server}/map", "POST", dict(BODY))
    assert status == 200
    assert first["status"] == "done" and first["cached"] is False
    assert first["result"]["metrics"]["hop_bytes"] > 0

    status, _, second = _call(f"{server}/map", "POST", dict(BODY))
    assert status == 200
    assert second["cached"] is True
    assert second["id"] == first["id"]
    assert second["result"] == first["result"]


def test_map_wait_false_then_poll(server):
    body = {**BODY, "seed": 41, "wait": False}
    status, _, reply = _call(f"{server}/map", "POST", body)
    assert status == 202
    assert reply["status"] == "pending"
    for _ in range(200):
        status, _, polled = _call(f"{server}/result/{reply['id']}")
        if status == 200:
            assert polled["status"] == "done"
            assert polled["result"]["metrics"]["hop_bytes"] > 0
            return
        assert status == 202
    raise AssertionError("poll never reached done")


def test_result_unknown_is_404(server):
    status, _, reply = _call(f"{server}/result/{'0' * 64}")
    assert status == 404
    assert "unknown" in reply["error"]


@pytest.mark.parametrize("raw", [b"{not json", b""])
def test_map_malformed_json_is_400(server, raw):
    request = urllib.request.Request(
        f"{server}/map", data=raw, method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=30)
    assert err.value.code == 400


def test_map_unknown_field_is_400(server):
    status, _, reply = _call(f"{server}/map", "POST",
                             {**BODY, "mystery": 1})
    assert status == 400
    assert "unknown request field" in reply["error"]


def test_map_unknown_mapper_is_400(server):
    status, _, reply = _call(f"{server}/map", "POST",
                             {**BODY, "mapper": "NoSuchMapperLB"})
    assert status == 400


def test_map_deterministic_failure_is_422(server):
    body = {**BODY, "kernel": "no-such-kernel"}
    status, _, reply = _call(f"{server}/map", "POST", body)
    assert status == 422
    assert reply["status"] == "error"
    assert "no-such-kernel" in reply["error"]
    # The error record also answers polls.
    status, _, polled = _call(f"{server}/result/{reply['id']}")
    assert status == 422


def test_method_mismatches_are_405(server):
    assert _call(f"{server}/map")[0] == 405
    assert _call(f"{server}/healthz", "POST", {})[0] == 405
    assert _call(f"{server}/metrics", "POST", {})[0] == 405


def test_unknown_route_is_404(server):
    assert _call(f"{server}/nope")[0] == 404


def test_healthz_reports_cache_and_queue(server):
    status, _, health = _call(f"{server}/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert set(health["cache"]) == {"hits", "misses", "disk_hits",
                                    "evictions", "entries"}
    assert health["jobs"] == 0


def test_metrics_is_valid_profile(server):
    status, _, profile = _call(f"{server}/metrics")
    assert status == 200
    obs.validate_profile(profile)
    assert profile["counters"]["service.requests"] >= 2


def test_shutdown_route_stops_the_server():
    with ThreadedServer(ServiceConfig(jobs=0)) as url:
        server_obj_status, _, reply = _call(f"{url}/shutdown", "POST", {})
        assert server_obj_status == 200
        assert reply["status"] == "shutting-down"
        # The serving loop exits on its own; subsequent connects fail once
        # the socket closes.
        for _ in range(100):
            try:
                _call(f"{url}/healthz")
            except (urllib.error.URLError, ConnectionError, OSError):
                break
            import time
            time.sleep(0.05)
        else:
            raise AssertionError("server kept accepting after /shutdown")
