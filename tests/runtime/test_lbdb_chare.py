"""Tests for the LB database and the chare-array instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TaskGraphError
from repro.runtime import ChareArray, LBDatabase
from repro.taskgraph import random_taskgraph


class TestLBDatabase:
    def test_record_and_snapshot(self):
        db = LBDatabase(3)
        db.record_load(0, 5.0)
        db.record_load(0, 2.0)
        db.record_comm(0, 1, 100.0)
        db.record_comm(1, 0, 50.0)  # merges into the same undirected pair
        db.end_step()
        g = db.to_taskgraph()
        assert g.vertex_weights.tolist() == [7.0, 0.0, 0.0]
        assert list(g.edges()) == [(0, 1, 150.0)]
        assert db.num_steps == 1

    def test_self_comm_ignored(self):
        db = LBDatabase(2)
        db.record_comm(1, 1, 1000.0)
        assert db.to_taskgraph().num_edges == 0

    def test_validation(self):
        db = LBDatabase(2)
        with pytest.raises(TaskGraphError):
            db.record_load(5, 1.0)
        with pytest.raises(TaskGraphError):
            db.record_load(0, -1.0)
        with pytest.raises(TaskGraphError):
            db.record_comm(0, 1, -1.0)
        with pytest.raises(TaskGraphError):
            LBDatabase(0)

    def test_from_taskgraph_roundtrip(self):
        g = random_taskgraph(10, edge_prob=0.3, seed=0)
        db = LBDatabase.from_taskgraph(g)
        g2 = db.to_taskgraph()
        assert list(g2.edges()) == list(g.edges())
        assert g2.vertex_weights.tolist() == g.vertex_weights.tolist()

    def test_dump_load_roundtrip(self, tmp_path):
        g = random_taskgraph(8, edge_prob=0.4, seed=2)
        db = LBDatabase.from_taskgraph(g, placement=np.arange(8) % 4)
        path = tmp_path / "dump.json"
        db.dump(path)
        db2 = LBDatabase.load(path)
        assert list(db2.to_taskgraph().edges()) == list(g.edges())
        assert db2.placement.tolist() == (np.arange(8) % 4).tolist()
        assert db2.num_steps == db.num_steps

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(TaskGraphError):
            LBDatabase.load(path)
        path.write_text('{"format": "other"}')
        with pytest.raises(TaskGraphError):
            LBDatabase.load(path)

    def test_placement_shape_checked(self):
        db = LBDatabase(3)
        with pytest.raises(TaskGraphError):
            db.set_placement([0, 1])


class TestChareArray:
    def test_round_robin_initial_placement(self):
        arr = ChareArray(10, 4)
        assert arr.placement.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_instrumented_iteration(self):
        arr = ChareArray(4, 2)

        def body(c):
            arr.work(c, 1.0 + c)
            arr.send(c, (c + 1) % 4, 64.0)

        arr.run_iteration(body)
        arr.run_iteration(body)
        g = arr.database.to_taskgraph()
        assert arr.database.num_steps == 2
        assert g.vertex_weights.tolist() == [2.0, 4.0, 6.0, 8.0]
        assert g.num_edges == 4
        assert g.total_bytes == 2 * 4 * 64.0

    def test_migration(self):
        arr = ChareArray(4, 4)
        arr.migrate([3, 2, 1, 0])
        assert arr.placement.tolist() == [3, 2, 1, 0]
        assert arr.database.placement.tolist() == [3, 2, 1, 0]

    def test_migration_validation(self):
        arr = ChareArray(3, 2)
        with pytest.raises(TaskGraphError):
            arr.migrate([0, 1])
        with pytest.raises(TaskGraphError):
            arr.migrate([0, 1, 5])

    def test_bad_sizes(self):
        with pytest.raises(TaskGraphError):
            ChareArray(0, 2)
        with pytest.raises(TaskGraphError):
            ChareArray(2, 0)
