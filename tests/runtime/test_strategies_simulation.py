"""Tests for the strategy registry and the +LBSim-style replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.runtime import (
    LBDatabase,
    STRATEGIES,
    compare_strategies,
    get_strategy,
    simulate_strategy,
)
from repro.runtime.strategies import run_strategy
from repro.taskgraph import leanmd_taskgraph, mesh2d_pattern, random_taskgraph
from repro.topology import Torus


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in STRATEGIES:
            assert get_strategy(name, seed=0) is not None

    def test_unknown_name(self):
        with pytest.raises(MappingError, match="unknown strategy"):
            get_strategy("MagicLB")

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_strategies_produce_valid_placement(self, name):
        g = random_taskgraph(20, edge_prob=0.2, seed=1)
        db = LBDatabase.from_taskgraph(g)
        topo = Torus((2, 4))
        placement = run_strategy(name, db, topo, seed=0)
        assert placement.shape == (20,)
        assert placement.min() >= 0 and placement.max() < 8
        # every processor used
        assert len(np.unique(placement)) == 8

    def test_equal_sizes_direct_mapping(self):
        g = mesh2d_pattern(4, 4)
        db = LBDatabase.from_taskgraph(g)
        placement = run_strategy("TopoLB", db, Torus((4, 4)), seed=0)
        assert sorted(placement.tolist()) == list(range(16))


class TestSimulateStrategy:
    def test_report_fields(self):
        g = mesh2d_pattern(4, 4)
        db = LBDatabase.from_taskgraph(g)
        report = simulate_strategy(db, Torus((4, 4)), "TopoLB")
        assert report["hops_per_byte"] == pytest.approx(1.0)
        assert report["num_objects"] == 16
        assert report["load_imbalance"] == pytest.approx(1.0)
        assert report["max_dilation"] == 1.0
        assert "group_hops_per_byte" in report

    def test_replay_from_dump_file(self, tmp_path):
        g = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        LBDatabase.from_taskgraph(g).dump(tmp_path / "d.json")
        report = simulate_strategy(tmp_path / "d.json", Torus((2, 4)), "TopoCentLB")
        assert report["hop_bytes"] > 0

    def test_same_dump_same_result(self, tmp_path):
        """Section 5.1's point: replay is deterministic on a fixed scenario."""
        g = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        db = LBDatabase.from_taskgraph(g)
        r1 = simulate_strategy(db, Torus((2, 4)), "TopoLB", seed=0)
        r2 = simulate_strategy(db, Torus((2, 4)), "TopoLB", seed=0)
        assert r1 == r2

    def test_compare_strategies_ordering(self):
        """On the LeanMD scenario the topology-aware strategies must beat
        random placement on (group) hops-per-byte — the Figure 5 ordering."""
        g = leanmd_taskgraph(16, cells_shape=(4, 4, 4))
        db = LBDatabase.from_taskgraph(g)
        topo = Torus((4, 4))
        reports = {
            r["strategy"]: r
            for r in compare_strategies(
                db, topo, ["RandomLB", "TopoCentLB", "TopoLB", "RefineTopoLB"], seed=0
            )
        }
        rand = reports["RandomLB"]["group_hops_per_byte"]
        assert reports["TopoLB"]["group_hops_per_byte"] < rand
        assert reports["TopoCentLB"]["group_hops_per_byte"] < rand
        assert (
            reports["RefineTopoLB"]["group_hops_per_byte"]
            <= reports["TopoLB"]["group_hops_per_byte"] + 1e-9
        )

    def test_greedylb_balances_but_ignores_topology(self):
        g = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        db = LBDatabase.from_taskgraph(g)
        topo = Torus((2, 4))
        greedy = simulate_strategy(db, topo, "GreedyLB", seed=0)
        topolb = simulate_strategy(db, topo, "TopoLB", seed=0)
        assert greedy["load_imbalance"] < 1.2
        assert topolb["hop_bytes"] < greedy["hop_bytes"]
