"""Tests for incremental rebalancing and the dynamic LB loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MappingError, TaskGraphError
from repro.mapping import IncrementalRefineLB, Mapping, hop_bytes
from repro.runtime import DriftingWorkload, run_dynamic_lb
from repro.taskgraph import TaskGraph, leanmd_taskgraph, mesh2d_pattern, random_taskgraph
from repro.topology import Mesh, Torus


class TestIncrementalRefineLB:
    def test_restores_balance(self):
        g = TaskGraph(8, [], vertex_weights=np.ones(8))
        topo = Mesh((4,))
        skewed = Mapping(g, topo, [0] * 8)  # everything on one processor
        balanced, moved = IncrementalRefineLB(imbalance_tol=1.10).rebalance(skewed)
        from repro.mapping.metrics import load_imbalance

        assert load_imbalance(g, topo, balanced.assignment) <= 1.10 + 1e-9
        assert moved.sum() >= 6  # had to move most tasks off proc 0

    def test_balanced_input_untouched(self):
        g = mesh2d_pattern(4, 4)
        topo = Torus((4, 4))
        mapping = Mapping(g, topo, np.arange(16))
        out, moved = IncrementalRefineLB().rebalance(mapping)
        assert moved.sum() == 0
        assert (out.assignment == mapping.assignment).all()

    def test_prefers_low_hop_byte_destinations(self):
        """The moved task should land near its communication partners."""
        # Tasks 0..3 overloaded on proc 0; task 3 talks heavily to task 4 on
        # proc 5. Moving 3 should target a processor near proc 5.
        g = TaskGraph(5, [(3, 4, 1e6)], vertex_weights=[1, 1, 1, 1, 1])
        topo = Torus((8,))
        mapping = Mapping(g, topo, [0, 0, 0, 0, 5])
        out, moved = IncrementalRefineLB(imbalance_tol=1.3).rebalance(mapping)
        assert moved.any()
        if moved[3]:
            assert topo.distance(out.processor_of(3), 5) <= 2

    def test_never_moves_more_than_needed(self):
        g = TaskGraph(10, [], vertex_weights=np.ones(10))
        topo = Mesh((5,))
        # 3-3-2-1-1: only slightly off; a couple of moves suffice.
        mapping = Mapping(g, topo, [0, 0, 0, 1, 1, 1, 2, 2, 3, 4])
        _, moved = IncrementalRefineLB(imbalance_tol=1.25).rebalance(mapping)
        assert moved.sum() <= 2

    def test_giant_task_left_alone(self):
        g = TaskGraph(3, [], vertex_weights=[100.0, 1.0, 1.0])
        topo = Mesh((3,))
        mapping = Mapping(g, topo, [0, 1, 2])
        out, moved = IncrementalRefineLB().rebalance(mapping)
        assert moved.sum() == 0

    def test_bad_tol(self):
        with pytest.raises(MappingError):
            IncrementalRefineLB(imbalance_tol=0.5)


class TestDriftingWorkload:
    def test_structure_stable_loads_drift(self):
        base = random_taskgraph(20, edge_prob=0.2, seed=0)
        wl = DriftingWorkload(base, drift_sigma=0.2, seed=1)
        g1, g2 = wl.advance(), wl.advance()
        assert list(g1.edges()) == list(base.edges())
        assert not np.allclose(g1.vertex_weights, g2.vertex_weights)

    def test_band_clipping(self):
        base = TaskGraph(4, [], vertex_weights=np.ones(4))
        wl = DriftingWorkload(base, drift_sigma=2.0, band=2.0, seed=0)
        for _ in range(30):
            g = wl.advance()
            assert (g.vertex_weights <= 2.0 + 1e-9).all()
            assert (g.vertex_weights >= 0.5 - 1e-9).all()

    def test_zero_sigma_is_static(self):
        base = random_taskgraph(10, seed=2)
        wl = DriftingWorkload(base, drift_sigma=0.0, seed=0)
        g = wl.advance()
        assert np.allclose(g.vertex_weights, base.vertex_weights)

    def test_validation(self):
        base = random_taskgraph(5, seed=0)
        with pytest.raises(TaskGraphError):
            DriftingWorkload(base, drift_sigma=-1)
        with pytest.raises(TaskGraphError):
            DriftingWorkload(base, band=0.5)


class TestRunDynamicLB:
    def test_trajectory_shape(self):
        base = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        wl = DriftingWorkload(base, seed=0)
        reports = run_dynamic_lb(wl, Torus((2, 4)), "incremental",
                                 steps=6, lb_period=3)
        assert len(reports) == 6
        assert [r.balanced for r in reports] == [True, False, False, True, False, False]

    def test_balancing_reduces_imbalance(self):
        base = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        wl = DriftingWorkload(base, drift_sigma=0.3, seed=1)
        reports = run_dynamic_lb(wl, Torus((2, 4)), "incremental",
                                 steps=12, lb_period=4, imbalance_tol=1.15)
        balanced_imb = np.mean([r.imbalance for r in reports if r.balanced])
        # Imbalance right after balancing is kept near the tolerance.
        assert balanced_imb <= 1.4

    def test_incremental_migrates_less_than_full(self):
        base = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        topo = Torus((2, 4))
        out = {}
        for balancer in ("incremental", "full:TopoLB"):
            wl = DriftingWorkload(base, drift_sigma=0.15, seed=0)
            reports = run_dynamic_lb(wl, topo, balancer, steps=9, lb_period=3)
            out[balancer] = sum(r.migration_bytes for r in reports)
        assert out["incremental"] < 0.25 * out["full:TopoLB"]

    def test_full_topolb_wins_on_hop_bytes(self):
        base = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        topo = Torus((2, 4))
        out = {}
        for balancer in ("incremental", "full:TopoLB"):
            wl = DriftingWorkload(base, drift_sigma=0.15, seed=0)
            reports = run_dynamic_lb(wl, topo, balancer, steps=9, lb_period=3)
            out[balancer] = np.mean([r.hop_bytes for r in reports])
        assert out["full:TopoLB"] < out["incremental"]

    def test_bad_balancer_name(self):
        base = random_taskgraph(8, seed=0)
        wl = DriftingWorkload(base, seed=0)
        with pytest.raises(MappingError, match="balancer"):
            run_dynamic_lb(wl, Torus((4,)), "magic", steps=2)

    def test_per_task_state_bytes(self):
        base = TaskGraph(8, [], vertex_weights=np.ones(8))
        wl = DriftingWorkload(base, drift_sigma=0.0, seed=0)
        state = np.arange(8, dtype=np.float64) * 100
        reports = run_dynamic_lb(wl, Mesh((2,)), "full:RandomLB", steps=2,
                                 lb_period=1, state_bytes_per_task=state)
        for r in reports:
            assert r.migration_bytes <= state.sum()


class TestNodeFailures:
    def _workload(self, seed=0):
        return DriftingWorkload(random_taskgraph(32, seed=5), seed=seed)

    def test_tasks_evacuated_off_failed_nodes(self):
        topo = Torus((4, 4))
        reports = run_dynamic_lb(self._workload(), topo, "incremental",
                                 steps=8, lb_period=3,
                                 node_failures={2: 5, 5: [7, 9]})
        failed_steps = {r.step: r for r in reports if r.failed_nodes}
        assert set(failed_steps) == {2, 5}
        assert failed_steps[2].failed_nodes == (5,)
        assert failed_steps[5].failed_nodes == (7, 9)
        # evacuations are migrations and the degradation is reported
        assert failed_steps[2].migrated_tasks >= 1
        assert failed_steps[2].migration_bytes > 0

    @pytest.mark.parametrize("balancer", ["incremental", "full:TopoLB"])
    def test_no_task_ever_on_dead_processor(self, balancer):
        topo = Torus((4, 4))
        dead = {5, 7}
        prev_placed = []

        # hop_bytes/imbalance read the final placement; re-derive per-step
        # placements by rerunning with the same seeds and checking reports.
        reports = run_dynamic_lb(self._workload(), topo, balancer,
                                 steps=9, lb_period=2,
                                 node_failures={1: 5, 4: 7})
        for r in reports:
            assert r.imbalance >= 1.0
        # After the failures fire the trajectory keeps making progress
        # without errors — the invariant is enforced inside run_dynamic_lb
        # (evacuation + masked rebalancing); reaching here means no task
        # was mapped to a dead processor (masked mappers raise otherwise).
        assert len(reports) == 9

    def test_failure_trajectory_deterministic(self):
        topo = Torus((4, 4))

        def go():
            reports = run_dynamic_lb(self._workload(), topo, "incremental",
                                     steps=8, node_failures={2: 5})
            return [(r.imbalance, r.hop_bytes, r.migrated_tasks,
                     r.failed_nodes, r.hop_bytes_delta) for r in reports]

        assert go() == go()

    def test_all_processors_failing_raises(self):
        with pytest.raises(MappingError, match="every processor has failed"):
            run_dynamic_lb(
                DriftingWorkload(random_taskgraph(4, seed=0), seed=0),
                Mesh((2,)), "incremental", steps=3,
                node_failures={0: [0, 1]},
            )

    def test_out_of_range_failures_rejected(self):
        wl = self._workload()
        with pytest.raises(MappingError, match="outside"):
            run_dynamic_lb(wl, Torus((4, 4)), "incremental", steps=3,
                           node_failures={9: 0})
        with pytest.raises(MappingError, match="out of range"):
            run_dynamic_lb(wl, Torus((4, 4)), "incremental", steps=3,
                           node_failures={0: 99})

    def test_failure_counters_and_events_recorded(self):
        from repro import obs

        prof = obs.enable()
        try:
            run_dynamic_lb(self._workload(), Torus((4, 4)), "incremental",
                           steps=6, node_failures={1: [3, 4]})
            snap = prof.snapshot()
        finally:
            obs.disable()
        assert snap["counters"]["faults.injected"] == 2
        assert snap["counters"]["runtime.evacuated_tasks"] >= 1
        names = [e["name"] for e in snap["events"]]
        assert "runtime.node_failed" in names
