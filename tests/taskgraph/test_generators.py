"""Tests for random and LeanMD task-graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TaskGraphError
from repro.taskgraph import (
    geometric_taskgraph,
    leanmd_taskgraph,
    random_taskgraph,
    scale_free_taskgraph,
)
from repro.taskgraph.leanmd import LEANMD_BASE_CHARES
from repro.utils.union_find import UnionFind


def _is_connected(graph) -> bool:
    uf = UnionFind(graph.num_tasks)
    for a, b, _ in graph.edges():
        uf.union(a, b)
    return uf.num_components == 1


class TestRandomTaskgraph:
    def test_reproducible(self):
        g1 = random_taskgraph(30, seed=7)
        g2 = random_taskgraph(30, seed=7)
        assert list(g1.edges()) == list(g2.edges())

    def test_different_seeds_differ(self):
        g1 = random_taskgraph(30, seed=1)
        g2 = random_taskgraph(30, seed=2)
        assert list(g1.edges()) != list(g2.edges())

    def test_connected_by_default(self):
        for seed in range(5):
            assert _is_connected(random_taskgraph(25, edge_prob=0.01, seed=seed))

    def test_edge_probability_scales_density(self):
        sparse = random_taskgraph(40, edge_prob=0.02, seed=0, connected=False)
        dense = random_taskgraph(40, edge_prob=0.5, seed=0, connected=False)
        assert dense.num_edges > sparse.num_edges

    def test_bad_params(self):
        with pytest.raises(TaskGraphError):
            random_taskgraph(1)
        with pytest.raises(TaskGraphError):
            random_taskgraph(10, edge_prob=1.5)


class TestGeometricTaskgraph:
    def test_connected(self):
        assert _is_connected(geometric_taskgraph(40, seed=3))

    def test_positive_weights(self):
        g = geometric_taskgraph(30, seed=1)
        assert (g.edge_arrays()[2] > 0).all()

    def test_bad_radius(self):
        with pytest.raises(TaskGraphError):
            geometric_taskgraph(10, radius=0)


class TestScaleFree:
    def test_hub_exists(self):
        g = scale_free_taskgraph(100, attach=2, seed=0)
        assert g.degrees().max() >= 10  # preferential attachment grows hubs

    def test_connected(self):
        assert _is_connected(scale_free_taskgraph(50, seed=5))


class TestLeanMD:
    def test_paper_chare_count(self):
        # 3240 + p, the paper's exact count.
        for p in (18, 512):
            g = leanmd_taskgraph(p)
            assert g.num_tasks == LEANMD_BASE_CHARES + p

    def test_structure_components(self):
        g = leanmd_taskgraph(16, cells_shape=(4, 4, 4))
        # 64 cells + 64 self + 13*64 pair + 16 managers
        assert g.num_tasks == 64 + 64 + 13 * 64 + 16

    def test_cells_are_hubs(self):
        g = leanmd_taskgraph(8, cells_shape=(4, 4, 4))
        degs = g.degrees()
        # Each cell talks to its self-compute + 26 pair-computes (+ managers).
        assert degs[:64].min() >= 27
        # Pair computes talk to exactly two cells.
        assert (degs[128 : 128 + 13 * 64] == 2).all()

    def test_connected(self):
        assert _is_connected(leanmd_taskgraph(12, cells_shape=(3, 3, 3)))

    def test_loads_positive_and_heterogeneous(self):
        g = leanmd_taskgraph(32)
        assert (g.vertex_weights > 0).all()
        assert np.unique(g.vertex_weights).size > 10

    def test_reproducible(self):
        g1 = leanmd_taskgraph(10, seed=4)
        g2 = leanmd_taskgraph(10, seed=4)
        assert list(g1.edges()) == list(g2.edges())

    def test_bad_params(self):
        with pytest.raises(TaskGraphError):
            leanmd_taskgraph(0)
        with pytest.raises(TaskGraphError):
            leanmd_taskgraph(4, cells_shape=(2, 3, 3))
