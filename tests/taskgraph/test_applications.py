"""Tests for the application-class pattern generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TaskGraphError
from repro.mapping import RandomMapper, TopoLB
from repro.taskgraph import (
    amr_pattern,
    fft_pencil_pattern,
    unstructured_halo_pattern,
    wavefront_pattern,
)
from repro.topology import Torus
from repro.utils.union_find import UnionFind


def _connected(graph) -> bool:
    uf = UnionFind(graph.num_tasks)
    for a, b, _ in graph.edges():
        uf.union(a, b)
    return uf.num_components == 1


class TestFFTPencil:
    def test_structure(self):
        g = fft_pencil_pattern(4, 6)
        assert g.num_tasks == 24
        # per task: (cols-1) row peers + (rows-1) column peers
        assert (g.degrees() == (6 - 1) + (4 - 1)).all()

    def test_edge_count(self):
        g = fft_pencil_pattern(4, 4)
        # rows * C(cols,2) + cols * C(rows,2)
        assert g.num_edges == 4 * 6 + 4 * 6

    def test_row_locality_exploitable(self):
        """TopoLB should keep process-grid rows together on a torus."""
        topo = Torus((4, 4))
        g = fft_pencil_pattern(4, 4)
        tlb = TopoLB().map(g, topo).hops_per_byte
        rand = np.mean([RandomMapper(seed=s).map(g, topo).hops_per_byte
                        for s in range(3)])
        assert tlb < rand

    def test_validation(self):
        with pytest.raises(TaskGraphError):
            fft_pencil_pattern(1, 4)
        with pytest.raises(TaskGraphError):
            fft_pencil_pattern(4, 4, bytes_per_peer=0)


class TestWavefront:
    def test_structure(self):
        g = wavefront_pattern(4, 5)
        assert g.num_tasks == 20
        assert g.num_edges == 4 * 4 + 5 * 3  # same grid edges as Jacobi

    def test_half_jacobi_volume(self):
        from repro.taskgraph import mesh2d_pattern

        wf = wavefront_pattern(4, 4, message_bytes=100.0)
        jac = mesh2d_pattern(4, 4, message_bytes=100.0)
        assert wf.total_bytes == pytest.approx(jac.total_bytes / 2)

    def test_connected(self):
        assert _connected(wavefront_pattern(5, 5))


class TestAMR:
    def test_structure(self):
        g = amr_pattern(8, refine_frac=0.25, seed=0)
        # 64 coarse + (2*2)^2 fine cells
        assert g.num_tasks == 64 + 16

    def test_fine_cells_have_parent_links(self):
        g = amr_pattern(8, refine_frac=0.25, seed=0)
        fine_start = 64
        for t in range(fine_start, g.num_tasks):
            # at least one neighbor is a coarse cell (the parent)
            assert any(j < fine_start for j in g.neighbors(t))

    def test_degree_nonuniform(self):
        g = amr_pattern(8, refine_frac=0.5, seed=1)
        degs = g.degrees()
        assert degs.max() >= degs.min() + 3

    def test_connected(self):
        assert _connected(amr_pattern(6, seed=2))

    def test_reproducible(self):
        a = amr_pattern(8, seed=5)
        b = amr_pattern(8, seed=5)
        assert list(a.edges()) == list(b.edges())

    def test_validation(self):
        with pytest.raises(TaskGraphError):
            amr_pattern(3)
        with pytest.raises(TaskGraphError):
            amr_pattern(8, refine_frac=0.0)


class TestUnstructuredHalo:
    def test_planar_degrees(self):
        g = unstructured_halo_pattern(100, seed=0)
        # Delaunay planarity: average degree < 6.
        assert g.degrees().mean() < 6.0

    def test_connected(self):
        assert _connected(unstructured_halo_pattern(60, seed=1))

    def test_closer_pairs_heavier(self):
        g = unstructured_halo_pattern(50, seed=2)
        w = g.edge_arrays()[2]
        assert w.max() > 2 * w.min()  # inverse-distance spread

    def test_mapping_gains(self):
        topo = Torus((8, 8))
        g = unstructured_halo_pattern(64, seed=3)
        tlb = TopoLB().map(g, topo).hops_per_byte
        rand = RandomMapper(seed=0).map(g, topo).hops_per_byte
        assert tlb < 0.6 * rand

    def test_too_small(self):
        with pytest.raises(TaskGraphError):
            unstructured_halo_pattern(3)
