"""Tests for structured pattern generators."""

from __future__ import annotations

import pytest

from repro.exceptions import TaskGraphError
from repro.taskgraph import all_to_all_pattern, mesh2d_pattern, mesh3d_pattern, ring_pattern
from repro.taskgraph.patterns import mesh_pattern


class TestMeshPattern:
    def test_2d_sizes(self):
        g = mesh2d_pattern(4, 5)
        assert g.num_tasks == 20
        # r(c-1) + c(r-1) undirected edges
        assert g.num_edges == 4 * 4 + 5 * 3

    def test_3d_sizes(self):
        g = mesh3d_pattern(3, 3, 3)
        assert g.num_tasks == 27
        assert g.num_edges == 3 * (2 * 3 * 3)

    def test_degree_structure_2d(self):
        g = mesh2d_pattern(4, 4)
        degs = sorted(g.degrees().tolist())
        # 4 corners with 2, 8 boundary with 3, 4 interior with 4
        assert degs == [2] * 4 + [3] * 8 + [4] * 4

    def test_interior_degree_3d(self):
        g = mesh3d_pattern(4, 4, 4)
        assert g.degrees().max() == 6

    def test_edge_weight_is_bidirectional_traffic(self):
        g = mesh2d_pattern(2, 2, message_bytes=100.0)
        for _, _, w in g.edges():
            assert w == 200.0

    def test_periodic_adds_wraparound(self):
        g = mesh_pattern((4, 4), periodic=True)
        assert g.num_edges == 2 * 16  # torus pattern: p edges per axis
        assert (g.degrees() == 4).all()

    def test_periodic_skips_short_axes(self):
        g = mesh_pattern((2, 4), periodic=True)
        # 2-extent axis gains no wrap edge (it would duplicate the mesh edge)
        assert g.num_edges == 4 * 1 + 2 * 4

    def test_compute_load(self):
        g = mesh2d_pattern(3, 3, compute_load=2.5)
        assert (g.vertex_weights == 2.5).all()

    def test_bad_params(self):
        with pytest.raises(TaskGraphError):
            mesh2d_pattern(0, 3)
        with pytest.raises(TaskGraphError):
            mesh2d_pattern(3, 3, message_bytes=0.0)

    def test_matches_grid_adjacency(self):
        g = mesh2d_pattern(3, 4)
        # Task ids are C-order: task (r, c) = 4r + c.
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 4)
        assert not g.has_edge(0, 5)
        assert not g.has_edge(3, 4)  # row wrap must not exist


class TestRingPattern:
    def test_structure(self):
        g = ring_pattern(5)
        assert g.num_edges == 5
        assert (g.degrees() == 2).all()

    def test_too_small(self):
        with pytest.raises(TaskGraphError):
            ring_pattern(2)


class TestAllToAll:
    def test_structure(self):
        g = all_to_all_pattern(6)
        assert g.num_edges == 15
        assert (g.degrees() == 5).all()

    def test_total_bytes(self):
        g = all_to_all_pattern(4, message_bytes=10.0)
        assert g.total_bytes == 6 * 20.0

    def test_too_small(self):
        with pytest.raises(TaskGraphError):
            all_to_all_pattern(1)
