"""TaskGraph.content_digest: stability, sensitivity, cross-process equality.

The digest is the graph half of the service's content-addressed cache key,
so its contract is load-bearing: equal structure must hash equally no
matter how the graph was built, any structural mutation must change the
hash, and the value must be identical across processes.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taskgraph import TaskGraph, mesh2d_pattern


@st.composite
def task_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    max_edges = n * (n - 1) // 2
    k = draw(st.integers(min_value=0, max_value=min(max_edges, 20)))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda ab: ab[0] != ab[1]
            ),
            min_size=k, max_size=k,
        )
    )
    weights = draw(st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=k, max_size=k,
    ))
    vw = draw(st.one_of(
        st.none(),
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                 min_size=n, max_size=n),
    ))
    edges = [(a, b, w) for (a, b), w in zip(pairs, weights)]
    return TaskGraph(n, edges, vw), edges, vw


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_digest_is_deterministic_and_build_path_independent(data):
    graph, edges, vw = data
    assert graph.content_digest() == graph.content_digest()

    # Same structure through the vectorized constructor, edges reversed and
    # flipped: the canonical edge arrays are identical, so the digest is.
    if edges:
        u, v, w = zip(*[(b, a, w) for a, b, w in reversed(edges)])
    else:
        u, v, w = (), (), ()
    clone = TaskGraph.from_arrays(
        graph.num_tasks,
        np.asarray(u, dtype=np.int64),
        np.asarray(v, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
        vw,
    )
    assert clone.content_digest() == graph.content_digest()


@given(task_graphs(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_digest_invariant_under_relabel_round_trip(data, rnd):
    graph, _, _ = data
    perm = list(range(graph.num_tasks))
    rnd.shuffle(perm)
    inverse = np.argsort(np.asarray(perm)).tolist()
    round_tripped = graph.relabel(perm).relabel(inverse)
    assert round_tripped.content_digest() == graph.content_digest()


@given(task_graphs())
@settings(max_examples=60, deadline=None)
def test_digest_changes_on_any_mutation(data):
    graph, edges, vw = data
    digest = graph.content_digest()
    n = graph.num_tasks

    # Add a task.
    assert TaskGraph(n + 1, edges, None if vw is None else vw + [1.0]
                     ).content_digest() != digest

    # Perturb a vertex weight.
    heavier = (np.ones(n) if vw is None else np.asarray(vw)).copy()
    heavier[0] += 1.0
    assert TaskGraph(n, edges, heavier).content_digest() != digest

    if graph.num_edges:
        u, v, w = graph.edge_arrays()
        # Perturb one merged edge weight.
        w2 = w.copy()
        w2[0] += 1.0
        assert TaskGraph.from_arrays(n, u, v, w2).content_digest() != digest
        # Drop one edge.
        assert TaskGraph.from_arrays(
            n, u[1:], v[1:], w[1:]
        ).content_digest() != digest


def test_digest_changes_when_edge_moves_endpoint():
    base = TaskGraph(4, [(0, 1, 5.0), (1, 2, 7.0)])
    moved = TaskGraph(4, [(0, 1, 5.0), (1, 3, 7.0)])
    assert base.content_digest() != moved.content_digest()


def test_digest_sees_coords():
    plain = mesh2d_pattern(3, 3, message_bytes=64)
    digest = plain.content_digest()
    recoord = TaskGraph.from_arrays(
        plain.num_tasks, *plain.edge_arrays(), plain.vertex_weights
    )
    # Patterns attach coords; the raw rebuild has none.
    assert plain.coords is not None and recoord.coords is None
    assert recoord.content_digest() != digest
    recoord.attach_coords(plain.coords)
    assert recoord.content_digest() == digest
    shifted = TaskGraph.from_arrays(
        plain.num_tasks, *plain.edge_arrays(), plain.vertex_weights
    ).attach_coords(np.asarray(plain.coords) + 1.0)
    assert shifted.content_digest() != digest


def test_digest_distinguishes_weights_dropped_vs_zero():
    with_zero = TaskGraph(3, [(0, 1, 0.0), (1, 2, 4.0)])
    without = TaskGraph(3, [(1, 2, 4.0)])
    assert with_zero.content_digest() != without.content_digest()


def test_digest_equal_across_processes():
    """The same spec hashes to the same value in a fresh interpreter."""
    code = (
        "from repro.engine import graph_from_spec;"
        "print(graph_from_spec('mesh2d:6x7;bytes=512').content_digest())"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
    )
    from repro.engine import graph_from_spec

    local = graph_from_spec("mesh2d:6x7;bytes=512").content_digest()
    assert out.stdout.strip() == local
    assert len(local) == 64 and int(local, 16) >= 0


@pytest.mark.parametrize("spec_a,spec_b", [
    ("mesh2d:4x4;bytes=64", "mesh2d:4x4;bytes=128"),
    ("mesh2d:4x4", "mesh2d:4x5"),
    ("ring:6", "alltoall:6"),
])
def test_digest_separates_spec_families(spec_a, spec_b):
    from repro.engine import graph_from_spec

    assert (graph_from_spec(spec_a).content_digest()
            != graph_from_spec(spec_b).content_digest())
