"""Tests for the TaskGraph data structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TaskGraphError
from repro.taskgraph import TaskGraph


class TestConstruction:
    def test_sizes(self, tiny_graph):
        assert tiny_graph.num_tasks == 4
        assert len(tiny_graph) == 4
        assert tiny_graph.num_edges == 4

    def test_default_vertex_weights(self):
        g = TaskGraph(3, [(0, 1, 5.0)])
        assert (g.vertex_weights == 1.0).all()
        assert g.total_vertex_weight == 3.0

    def test_duplicate_edges_merge(self):
        g = TaskGraph(3, [(0, 1, 5.0), (1, 0, 7.0), (0, 1, 1.0)])
        assert g.num_edges == 1
        assert g.total_bytes == 13.0

    def test_edgeless_graph(self):
        g = TaskGraph(4)
        assert g.num_edges == 0
        assert g.total_bytes == 0.0
        assert g.neighbors(0) == []
        assert g.degree(0) == 0

    def test_self_edge_rejected(self):
        with pytest.raises(TaskGraphError, match="self-edge"):
            TaskGraph(2, [(1, 1, 1.0)])

    def test_unknown_task_rejected(self):
        with pytest.raises(TaskGraphError):
            TaskGraph(2, [(0, 5, 1.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(TaskGraphError):
            TaskGraph(2, [(0, 1, -1.0)])

    def test_negative_vertex_weight_rejected(self):
        with pytest.raises(TaskGraphError):
            TaskGraph(2, [], vertex_weights=[1.0, -1.0])

    def test_bad_vertex_weight_shape(self):
        with pytest.raises(TaskGraphError):
            TaskGraph(2, [], vertex_weights=[1.0])

    def test_zero_tasks_rejected(self):
        with pytest.raises(TaskGraphError):
            TaskGraph(0)

    def test_arrays_are_readonly(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.vertex_weights[0] = 99.0
        u, v, w = tiny_graph.edge_arrays()
        with pytest.raises(ValueError):
            w[0] = 99.0


class TestAccessors:
    def test_edges_canonical_order(self, tiny_graph):
        edges = list(tiny_graph.edges())
        assert edges == sorted(edges)
        assert all(a < b for a, b, _ in edges)

    def test_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.neighbors(0)) == [1, 3]
        assert sorted(tiny_graph.neighbors(1)) == [0, 2]

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 3)
        assert not tiny_graph.has_edge(1, 3)

    def test_comm_volume(self, tiny_graph):
        assert tiny_graph.comm_volume(0) == 110.0
        assert tiny_graph.comm_volume(2) == 50.0

    def test_comm_volumes_vectorized(self, tiny_graph):
        vols = tiny_graph.comm_volumes()
        expected = [tiny_graph.comm_volume(t) for t in range(4)]
        assert vols.tolist() == expected

    def test_comm_volumes_with_isolated_tasks(self):
        g = TaskGraph(5, [(1, 3, 7.0)])
        assert g.comm_volumes().tolist() == [0.0, 7.0, 0.0, 7.0, 0.0]

    def test_degrees(self, tiny_graph):
        assert tiny_graph.degrees().tolist() == [2, 2, 2, 2]

    def test_neighbor_slice_alignment(self, tiny_graph):
        nbrs, wts = tiny_graph.neighbor_slice(0)
        pairs = dict(zip(nbrs.tolist(), wts.tolist()))
        assert pairs == {1: 10.0, 3: 100.0}

    def test_out_of_range_task(self, tiny_graph):
        with pytest.raises(TaskGraphError):
            tiny_graph.neighbors(4)

    def test_adjacency_csr_symmetric(self, tiny_graph):
        csr = tiny_graph.adjacency_csr()
        assert (csr != csr.T).nnz == 0
        assert csr.sum() == pytest.approx(2 * tiny_graph.total_bytes)


class TestConversion:
    def test_networkx_roundtrip(self, tiny_graph):
        g2 = TaskGraph.from_networkx(tiny_graph.to_networkx())
        assert list(g2.edges()) == list(tiny_graph.edges())
        assert g2.vertex_weights.tolist() == tiny_graph.vertex_weights.tolist()

    def test_from_networkx_defaults(self):
        import networkx as nx

        g = TaskGraph.from_networkx(nx.path_graph(4))
        assert g.total_bytes == 3.0
        assert (g.vertex_weights == 1.0).all()

    def test_from_networkx_bad_labels(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(1, 2)  # missing node 0
        with pytest.raises(TaskGraphError):
            TaskGraph.from_networkx(g)

    def test_relabel_preserves_structure(self, tiny_graph):
        perm = [3, 1, 0, 2]
        g2 = tiny_graph.relabel(perm)
        assert g2.total_bytes == tiny_graph.total_bytes
        assert g2.vertex_weights[perm[0]] == tiny_graph.vertex_weights[0]
        # edge (0,1,10) becomes (3,1,10)
        assert g2.has_edge(3, 1)

    def test_relabel_requires_permutation(self, tiny_graph):
        with pytest.raises(TaskGraphError):
            tiny_graph.relabel([0, 0, 1, 2])

    def test_induced_subgraph(self, tiny_graph):
        # tasks {0, 1, 3}: edges (0,1,10) and (0,3,100) survive; (1,2), (2,3) drop
        sub = tiny_graph.induced([0, 1, 3])
        assert sub.num_tasks == 3
        assert sub.total_bytes == 110.0
        assert sub.vertex_weights.tolist() == [1.0, 2.0, 4.0]
        assert sub.has_edge(0, 2)  # local ids: 0->0, 1->1, 3->2

    def test_induced_order_respected(self, tiny_graph):
        sub = tiny_graph.induced([3, 0])
        assert sub.vertex_weights.tolist() == [4.0, 1.0]
        assert sub.has_edge(0, 1)

    def test_induced_rejects_duplicates(self, tiny_graph):
        with pytest.raises(TaskGraphError, match="distinct"):
            tiny_graph.induced([0, 0, 1])

    def test_induced_rejects_unknown(self, tiny_graph):
        with pytest.raises(TaskGraphError):
            tiny_graph.induced([0, 9])


@given(
    n=st.integers(2, 20),
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19), st.floats(0, 1e6)),
        max_size=60,
    ),
)
@settings(max_examples=60)
def test_property_total_bytes_equals_half_volume_sum(n, edges):
    """Sum of per-task volumes double-counts each edge exactly once."""
    edges = [(a % n, b % n, w) for a, b, w in edges if a % n != b % n]
    g = TaskGraph(n, edges)
    assert g.comm_volumes().sum() == pytest.approx(2 * g.total_bytes)


@given(
    n=st.integers(2, 15),
    edges=st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14), st.floats(0.1, 100)),
        max_size=40,
    ),
)
@settings(max_examples=50)
def test_property_csr_matches_edge_list(n, edges):
    edges = [(a % n, b % n, w) for a, b, w in edges if a % n != b % n]
    g = TaskGraph(n, edges)
    # Rebuild pairwise volumes from CSR and compare with edges().
    from_csr = {}
    for t in range(n):
        nbrs, wts = g.neighbor_slice(t)
        for j, w in zip(nbrs.tolist(), wts.tolist()):
            if t < j:
                from_csr[(t, j)] = w
    from_edges = {(a, b): w for a, b, w in g.edges()}
    assert set(from_csr) == set(from_edges)
    for k in from_csr:
        assert from_csr[k] == pytest.approx(from_edges[k])
