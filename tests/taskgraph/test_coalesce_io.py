"""Tests for graph coalescing and JSON serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TaskGraphError
from repro.taskgraph import (
    TaskGraph,
    coalesce,
    load_taskgraph,
    random_taskgraph,
    save_taskgraph,
    taskgraph_from_json,
    taskgraph_to_json,
)


class TestCoalesce:
    def test_simple_contraction(self, tiny_graph):
        # groups: {0,1} -> 0, {2,3} -> 1
        q = coalesce(tiny_graph, [0, 0, 1, 1])
        assert q.num_tasks == 2
        # cross edges: (1,2,20) and (0,3,100) -> 120 between the groups
        assert q.total_bytes == 120.0
        assert q.vertex_weights.tolist() == [3.0, 7.0]

    def test_identity_grouping(self, tiny_graph):
        q = coalesce(tiny_graph, [0, 1, 2, 3])
        assert list(q.edges()) == list(tiny_graph.edges())

    def test_intra_group_bytes_vanish(self):
        g = TaskGraph(3, [(0, 1, 50.0), (1, 2, 5.0)])
        q = coalesce(g, [0, 0, 1])
        assert q.total_bytes == 5.0

    def test_empty_group_rejected(self, tiny_graph):
        with pytest.raises(TaskGraphError, match="empty"):
            coalesce(tiny_graph, [0, 0, 1, 1], num_groups=3)

    def test_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(TaskGraphError):
            coalesce(tiny_graph, [0, 0, 1, 5], num_groups=2)

    def test_wrong_shape_rejected(self, tiny_graph):
        with pytest.raises(TaskGraphError):
            coalesce(tiny_graph, [0, 1])

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_weight_and_cut_conservation(self, seed):
        rng = np.random.default_rng(seed)
        g = random_taskgraph(25, edge_prob=0.15, seed=int(seed))
        k = int(rng.integers(2, 6))
        groups = rng.integers(0, k, size=25)
        for gid in range(k):  # force non-empty
            groups[gid] = gid
        q = coalesce(g, groups, k)
        # Total load is conserved.
        assert q.total_vertex_weight == pytest.approx(g.total_vertex_weight)
        # Quotient bytes equal the inter-group cut of the original.
        u, v, w = g.edge_arrays()
        cut = w[groups[u] != groups[v]].sum()
        assert q.total_bytes == pytest.approx(cut)


class TestIO:
    def test_roundtrip_json(self, tiny_graph):
        g2 = taskgraph_from_json(taskgraph_to_json(tiny_graph))
        assert list(g2.edges()) == list(tiny_graph.edges())
        assert g2.vertex_weights.tolist() == tiny_graph.vertex_weights.tolist()

    def test_roundtrip_file(self, tiny_graph, tmp_path):
        path = tmp_path / "g.json"
        save_taskgraph(tiny_graph, path)
        g2 = load_taskgraph(path)
        assert list(g2.edges()) == list(tiny_graph.edges())

    def test_roundtrip_preserves_coords(self):
        from repro.taskgraph.patterns import mesh_pattern

        g = mesh_pattern((3, 4))
        g2 = taskgraph_from_json(taskgraph_to_json(g))
        assert g2.coords is not None
        assert (g2.coords == g.coords).all()

    def test_coordless_graph_stays_coordless(self, tiny_graph):
        g2 = taskgraph_from_json(taskgraph_to_json(tiny_graph))
        assert g2.coords is None

    def test_rejects_garbage(self):
        with pytest.raises(TaskGraphError):
            taskgraph_from_json("not json at all {")

    def test_rejects_wrong_format(self):
        with pytest.raises(TaskGraphError):
            taskgraph_from_json('{"format": "something-else"}')

    def test_rejects_malformed_payload(self):
        with pytest.raises(TaskGraphError):
            taskgraph_from_json(
                '{"format": "repro-taskgraph-v1", "num_tasks": 2}'
            )
