"""Pin the worked examples in the documentation to the implementation."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import Mesh, TaskGraph, TopoLB, Torus, mesh2d_pattern, RandomMapper, expected_random_hops_per_byte

ROOT = Path(__file__).resolve().parent.parent


class TestAlgorithmsDoc:
    def test_worked_micro_example(self):
        """docs/ALGORITHMS.md: A-10-B-1-C on a 3-processor line -> HB = 11,
        with B at the center."""
        g = TaskGraph(3, [(0, 1, 10.0), (1, 2, 1.0)])
        topo = Mesh((3,))
        mapping = TopoLB().map(g, topo)
        assert mapping.processor_of(1) == 1
        assert mapping.hop_bytes == pytest.approx(11.0)


class TestReadmeQuickstart:
    def test_quickstart_numbers(self):
        """README quickstart: TopoLB -> 1.0, random ~7.9, E[random] = 8.0."""
        machine = Torus((16, 16))
        app = mesh2d_pattern(16, 16, message_bytes=4096)
        assert TopoLB().map(app, machine).hops_per_byte == pytest.approx(1.0)
        rand = RandomMapper(seed=0).map(app, machine).hops_per_byte
        assert rand == pytest.approx(8.0, rel=0.1)
        assert expected_random_hops_per_byte(machine) == pytest.approx(8.0)


class TestMultilevelDoc:
    def test_partial_contraction_lands_on_capacity(self):
        """docs/ALGORITHMS.md: 64 tasks onto 61 healthy processors merges
        exactly 3 pairs, not a full halving."""
        from repro.partition.coarsening import coarsen_toward

        coarse, fine2coarse = coarsen_toward(mesh2d_pattern(8, 8), 61, seed=0)
        assert coarse.num_tasks == 61
        assert (fine2coarse.max() + 1) == 61

    def test_bench_artifact_backs_doc_claims(self):
        """docs/ALGORITHMS.md cites the recorded multilevel bench artifact:
        >= 10^5 tasks, 4096 processors, >= 2x better than random, < 60 s."""
        import json

        doc = json.loads(
            (ROOT / "benchmarks" / "BENCH_multilevel_torus16x16x16.json")
            .read_text()
        )
        assert doc["num_tasks"] >= 100_000
        assert doc["num_processors"] == 4096
        assert doc["random_ratio"] >= 2.0
        assert doc["elapsed_seconds"] < doc["time_budget_seconds"]


class TestDocsPresence:
    @pytest.mark.parametrize(
        "path", ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/ALGORITHMS.md", "docs/ROBUSTNESS.md",
                 "docs/PERFORMANCE.md", "docs/OBSERVABILITY.md"]
    )
    def test_docs_exist_and_substantial(self, path):
        text = (ROOT / path).read_text()
        assert len(text) > 2000

    def test_design_lists_every_experiment(self):
        text = (ROOT / "DESIGN.md").read_text()
        for exp in ("table1", "fig1_2", "fig3_4", "fig5", "fig7_8", "fig9", "fig10_11"):
            assert exp in text

    def test_experiments_records_paper_numbers(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "2.67" in text  # Table 1's headline ratio
        assert "hops" in text


class TestRobustnessDoc:
    def test_worked_degraded_example(self):
        """docs/ROBUSTNESS.md: seed=3, 5% nodes on an 8x8 torus -> 61 of 64
        healthy, and the spec string builds the identical machine."""
        from repro.faults import DegradedTopology, FaultSet
        from repro.topology import topology_from_spec

        base = Torus((8, 8))
        faults = FaultSet.generate(base, seed=3, node_rate=0.05, link_rate=0.02)
        machine = DegradedTopology(base, faults)
        assert machine.num_healthy == 61
        spec = topology_from_spec("degraded:torus:8x8;seed=3;nodes=0.05;links=0.02")
        assert spec.faults == faults

    def test_doc_names_real_counters(self):
        text = (ROOT / "docs/ROBUSTNESS.md").read_text()
        for name in ("faults.injected", "netsim.reroutes", "netsim.retries",
                     "netsim.dropped", "runtime.evacuated_tasks",
                     "REPRO_EXPERIMENTS_FAIL"):
            assert name in text
