"""Tests for experiment plumbing (result container, formatting, factors)."""

from __future__ import annotations

import json

from repro.experiments.common import ExperimentResult, format_table, near_square_factors


class TestNearSquareFactors:
    def test_perfect_square(self):
        assert near_square_factors(64) == (8, 8)

    def test_rectangles(self):
        assert near_square_factors(216) == (12, 18)
        assert near_square_factors(512) == (16, 32)
        assert near_square_factors(1000) == (25, 40)

    def test_prime(self):
        assert near_square_factors(13) == (1, 13)

    def test_ordering(self):
        for p in (6, 12, 30, 100):
            a, b = near_square_factors(p)
            assert a <= b and a * b == p


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_headers(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 100, "b": 0.5}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "2.346" in text  # 4 significant figures
        assert "100" in text

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert "b" not in text.splitlines()[0]


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            "t", "title", [{"x": 1, "y": 2.0}, {"x": 3, "y": 4.0}], notes="n"
        )

    def test_to_text(self):
        text = self.make().to_text()
        assert "== t: title ==" in text
        assert text.endswith("n")

    def test_to_json_roundtrip(self):
        data = json.loads(self.make().to_json())
        assert data["experiment_id"] == "t"
        assert data["rows"][1]["x"] == 3

    def test_column(self):
        assert self.make().column("y") == [2.0, 4.0]
