"""Crash resilience of the experiment runner: keep-going, retries, resume.

Failures are injected through the ``REPRO_EXPERIMENTS_FAIL`` environment
hook (a comma list of experiment ids that raise inside the worker body) —
the same hook the CI fault-injection job uses.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments import runner


@pytest.fixture(autouse=True)
def _quick_registry(monkeypatch):
    # Two cheap experiments stand in for the full registry (fork start
    # method: workers inherit the monkeypatched attributes).
    from repro.experiments import fig01_02, fig05_06

    monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
    monkeypatch.setattr(fig05_06, "QUICK_P_2D", (9,))
    monkeypatch.setattr(
        runner, "PAPER_EXPERIMENTS",
        {k: runner.EXPERIMENTS[k] for k in ("fig1_2", "fig5")},
    )


def _status(path):
    return {
        k: v["status"]
        for k, v in obs.load_profile(path)["context"]["experiment_status"].items()
    }


class TestFailureCapture:
    def test_serial_failure_reports_id_and_exits_nonzero(self, monkeypatch, capsys):
        monkeypatch.setenv(runner.FAIL_ENV, "fig1_2")
        assert runner.main(["fig1_2"]) == 1
        err = capsys.readouterr().err
        assert "fig1_2" in err and "FAILED" in err
        assert "injected failure" in err  # traceback included

    def test_without_keep_going_rest_is_skipped(self, monkeypatch, capsys):
        monkeypatch.setenv(runner.FAIL_ENV, "fig1_2")
        assert runner.main(["all"]) == 1
        err = capsys.readouterr().err
        assert "SKIPPED" in err and "fig5" in err

    @pytest.mark.parametrize("jobs", ["1", "2"])
    def test_keep_going_completes_the_sweep(self, monkeypatch, capsys,
                                            tmp_path, jobs):
        monkeypatch.setenv(runner.FAIL_ENV, "fig1_2")
        out = tmp_path / "out.json"
        code = runner.main(
            ["all", "--jobs", jobs, "--keep-going", "--profile", str(out)]
        )
        assert code == 1  # exit reflects the failure
        captured = capsys.readouterr()
        assert "fig5" in captured.out  # the healthy experiment still ran
        assert "failed experiments: fig1_2" in captured.err
        st = _status(out)
        assert st == {"fig1_2": "failed", "fig5": "ok"}
        doc = obs.load_profile(out)
        record = doc["context"]["experiment_status"]["fig1_2"]
        assert "injected failure" in record["error"]
        assert record["attempts"] == 1
        assert "traceback" in record or jobs == "2"

    def test_parallel_failure_carries_experiment_id(self, monkeypatch, capsys):
        monkeypatch.setenv(runner.FAIL_ENV, "fig5")
        assert runner.main(["all", "--jobs", "2", "--keep-going"]) == 1
        err = capsys.readouterr().err
        # satellite: the per-future guard attaches the experiment id
        assert "fig5" in err and "RuntimeError" in err

    def test_profile_written_even_when_everything_fails(self, monkeypatch,
                                                        tmp_path, capsys):
        monkeypatch.setenv(runner.FAIL_ENV, "fig1_2,fig5")
        out = tmp_path / "out.json"
        assert runner.main(["all", "--keep-going", "--profile", str(out)]) == 1
        assert _status(out) == {"fig1_2": "failed", "fig5": "failed"}


class TestRetries:
    def test_retries_are_counted(self, monkeypatch, tmp_path):
        monkeypatch.setenv(runner.FAIL_ENV, "fig1_2")
        out = tmp_path / "out.json"
        code = runner.main(
            ["fig1_2", "--retries", "2", "--retry-delay", "0.01",
             "--profile", str(out)]
        )
        assert code == 1
        doc = obs.load_profile(out)
        assert doc["context"]["experiment_status"]["fig1_2"]["attempts"] == 3

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig1_2", "--retries", "-1"])

    def test_bad_timeout_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig1_2", "--timeout", "0"])


class TestTimeout:
    def test_serial_timeout_records_status(self, monkeypatch, tmp_path, capsys):
        def hang(quick=True, seed=0):
            import time

            time.sleep(30.0)

        monkeypatch.setitem(runner.EXPERIMENTS, "fig1_2", hang)
        out = tmp_path / "out.json"
        code = runner.main(
            ["fig1_2", "--timeout", "0.2", "--profile", str(out)]
        )
        assert code == 1
        assert _status(out) == {"fig1_2": "timeout"}
        assert "TIMEOUT" in capsys.readouterr().err


class TestResume:
    def test_resume_reruns_only_failures(self, monkeypatch, tmp_path, capsys):
        first = tmp_path / "first.json"
        monkeypatch.setenv(runner.FAIL_ENV, "fig1_2")
        assert runner.main(
            ["all", "--keep-going", "--profile", str(first)]
        ) == 1
        assert _status(first) == {"fig1_2": "failed", "fig5": "ok"}
        capsys.readouterr()  # drain the first run's output

        monkeypatch.delenv(runner.FAIL_ENV)
        second = tmp_path / "second.json"
        code = runner.main(
            ["all", "--resume", str(first), "--profile", str(second)]
        )
        assert code == 0
        captured = capsys.readouterr()
        # fig5 was skipped (note on stderr), fig1_2 actually ran
        assert "fig5: skipped" in captured.err
        assert "fig1_2" in captured.out
        assert "fig5" not in captured.out
        st = obs.load_profile(second)["context"]["experiment_status"]
        assert st["fig1_2"]["status"] == "ok" and "resumed_from" not in st["fig1_2"]
        assert st["fig5"]["status"] == "ok"
        assert st["fig5"]["resumed_from"] == str(first)

    def test_resume_with_nothing_to_do(self, tmp_path, capsys):
        first = tmp_path / "first.json"
        assert runner.main(["all", "--profile", str(first)]) == 0
        capsys.readouterr()
        assert runner.main(["all", "--resume", str(first)]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == ""
        assert captured.err.count("skipped") == 2

    def test_resume_from_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            runner.main(["all", "--resume", str(tmp_path / "nope.json")])
