"""Tests for the experiments CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner


class TestRunnerCli:
    def test_lists_all_experiments(self):
        assert set(runner.PAPER_EXPERIMENTS) == {
            "table1", "fig1_2", "fig3_4", "fig5", "fig6",
            "fig7_8", "fig9", "fig10_11",
        }
        assert set(runner.EXPERIMENTS) == set(runner.PAPER_EXPERIMENTS) | {
            "zoo", "bounds", "objectives", "scaling",
        }

    def test_runs_one_experiment(self, capsys, monkeypatch):
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        assert runner.main(["fig1_2"]) == 0
        out = capsys.readouterr().out
        assert "fig1_2" in out
        assert "topolb" in out

    def test_json_output(self, capsys, monkeypatch):
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        runner.main(["fig1_2", "--json"])
        out = capsys.readouterr().out.strip()
        data = json.loads(out)
        assert data["experiment_id"] == "fig1_2"

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig99"])

    def test_seed_flag(self, capsys, monkeypatch):
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        assert runner.main(["fig1_2", "--seed", "7"]) == 0

    def test_profile_flag_writes_artifact(self, tmp_path, capsys, monkeypatch):
        from repro import obs
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        prof_file = tmp_path / "prof.json"
        assert runner.main(["fig1_2", "--profile", str(prof_file)]) == 0
        assert "profile written" in capsys.readouterr().err

        doc = obs.load_profile(prof_file)  # schema-validated
        assert "experiment.fig1_2" in doc["timers"]
        assert "topolb.map" in doc["timers"]
        assert doc["counters"]["topolb.cycles"] > 0
        assert doc["context"]["experiments"] == ["fig1_2"]
        assert obs.active() is None  # runner restored the disabled state
