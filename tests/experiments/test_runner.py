"""Tests for the experiments CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import runner


class TestRunnerCli:
    def test_lists_all_experiments(self):
        assert set(runner.PAPER_EXPERIMENTS) == {
            "table1", "fig1_2", "fig3_4", "fig5", "fig6",
            "fig7_8", "fig9", "fig10_11",
        }
        assert set(runner.EXPERIMENTS) == set(runner.PAPER_EXPERIMENTS) | {
            "zoo", "bounds", "objectives", "scaling", "flowcheck",
            "tailcheck",
        }

    def test_runs_one_experiment(self, capsys, monkeypatch):
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        assert runner.main(["fig1_2"]) == 0
        out = capsys.readouterr().out
        assert "fig1_2" in out
        assert "topolb" in out

    def test_json_output(self, capsys, monkeypatch):
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        runner.main(["fig1_2", "--json"])
        out = capsys.readouterr().out.strip()
        data = json.loads(out)
        assert data["experiment_id"] == "fig1_2"

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig99"])

    def test_seed_flag(self, capsys, monkeypatch):
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        assert runner.main(["fig1_2", "--seed", "7"]) == 0

    def test_profile_flag_writes_artifact(self, tmp_path, capsys, monkeypatch):
        from repro import obs
        from repro.experiments import fig01_02

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        prof_file = tmp_path / "prof.json"
        assert runner.main(["fig1_2", "--profile", str(prof_file)]) == 0
        assert "profile written" in capsys.readouterr().err

        doc = obs.load_profile(prof_file)  # schema-validated
        assert "experiment.fig1_2" in doc["timers"]
        assert "topolb.map" in doc["timers"]
        assert doc["counters"]["topolb.cycles"] > 0
        assert doc["context"]["experiments"] == ["fig1_2"]
        assert obs.active() is None  # runner restored the disabled state

    def test_netsim_mode_flag_exports_env(self, capsys, monkeypatch):
        # --netsim-mode travels via the environment so --jobs workers
        # inherit it; monkeypatch.setenv restores the pre-test state.
        from repro.experiments import fig01_02
        from repro.experiments.common import NETSIM_MODE_ENV

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        monkeypatch.setenv(NETSIM_MODE_ENV, "des")
        assert runner.main(["fig1_2", "--netsim-mode", "flow"]) == 0
        assert os.environ[NETSIM_MODE_ENV] == "flow"
        assert "fig1_2" in capsys.readouterr().out

    def test_rejects_jobs_below_one(self):
        with pytest.raises(SystemExit):
            runner.main(["all", "--jobs", "0"])


class TestParallelRunner:
    """``--jobs N``: a parallel "all" run must produce the same merged
    telemetry as a serial one (wall times aside)."""

    @pytest.fixture(autouse=True)
    def _quick_registry(self, monkeypatch):
        # Two cheap experiments stand in for the full registry. Linux uses
        # the fork start method, so worker processes inherit every
        # monkeypatched attribute below.
        from repro.experiments import fig01_02, fig05_06

        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (4,))
        monkeypatch.setattr(fig05_06, "QUICK_P_2D", (9,))
        monkeypatch.setattr(
            runner, "PAPER_EXPERIMENTS",
            {k: runner.EXPERIMENTS[k] for k in ("fig1_2", "fig5")},
        )

    def test_jobs_two_matches_serial_profile(self, tmp_path, capsys):
        from repro import obs

        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert runner.main(["all", "--profile", str(serial_path)]) == 0
        serial_out = capsys.readouterr().out
        assert runner.main(
            ["all", "--jobs", "2", "--profile", str(parallel_path)]) == 0
        parallel_out = capsys.readouterr().out

        # Reports are printed in submission order, so the text matches too.
        assert parallel_out == serial_out

        serial = obs.load_profile(serial_path)
        parallel = obs.load_profile(parallel_path)
        assert parallel["context"]["jobs"] == 2
        assert serial["context"]["jobs"] == 1
        assert parallel["context"]["experiments"] == ["fig1_2", "fig5"]
        # Deterministic work → identical merged counters; timers cover the
        # same phases (their durations differ, so compare keys only). The
        # topology.cache hit/miss split depends on process layout (forked
        # workers inherit the parent's warm cache), so it is excluded.
        def algo_counters(doc):
            return {k: v for k, v in doc["counters"].items()
                    if not k.startswith("topology.cache.")}

        assert algo_counters(parallel) == algo_counters(serial)
        assert set(parallel["timers"]) == set(serial["timers"])
        for exp_id in ("fig1_2", "fig5"):
            assert f"experiment.{exp_id}" in parallel["timers"]

    def test_jobs_flag_with_single_experiment_stays_serial(self, capsys):
        # One experiment never spins up a pool; the flag is simply recorded.
        assert runner.main(["fig1_2", "--jobs", "4"]) == 0
        assert "fig1_2" in capsys.readouterr().out
