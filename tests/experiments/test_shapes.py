"""Shape tests: every experiment must reproduce its paper's qualitative claims.

These run shrunken quick configurations (patched sweeps) so the whole file
stays in tens of seconds; the benchmark suite runs the full quick configs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig01_02, fig03_04, fig05_06, fig07_08, fig09, fig10_11, table1


class TestTable1Shape:
    def test_ratio_grows_and_exceeds_two(self):
        result = table1.run(quick=True, side=4, iterations=10)
        ratios = result.column("ratio")
        # monotone non-decreasing (tiny tolerance for extrapolation noise)
        assert all(b >= a - 0.05 for a, b in zip(ratios, ratios[1:]))
        assert ratios[0] < 2.0          # 1KB: modest gap
        assert all(r > 2.0 for r in ratios[2:])  # >= 100KB: contention-bound
        # optimal is always faster
        assert all(
            r["optimal_ms"] < r["random_ms"] for r in result.rows
        )


class TestFig12Shape:
    def test_random_tracks_analytic_and_topolb_optimal(self, monkeypatch):
        monkeypatch.setattr(fig01_02, "QUICK_SIDES", (8, 16))
        result = fig01_02.run(quick=True)
        for row in result.rows:
            assert row["random"] == pytest.approx(row["E_random"], rel=0.15)
            assert row["topolb"] == pytest.approx(1.0, abs=0.05)
            assert row["topolb"] <= row["topocentlb"]
            assert row["topocentlb"] < row["random"] / 2


class TestFig34Shape:
    def test_embeddable_case_and_ordering(self, monkeypatch):
        monkeypatch.setattr(fig03_04, "QUICK_SIDES", (4, 6))
        result = fig03_04.run(quick=True)
        rows = {r["processors"]: r for r in result.rows}
        # (8,8) mesh embeds into (4,4,4): TopoLB finds the optimum.
        assert rows[64]["topolb"] == pytest.approx(1.0, abs=0.05)
        for row in result.rows:
            assert row["random"] == pytest.approx(row["E_random"], rel=0.15)
            assert row["topolb"] <= row["topocentlb"]
            assert row["topocentlb"] < row["random"]


class TestFig56Shape:
    @pytest.mark.parametrize("ndim", [2, 3])
    def test_ordering_and_refine_gain(self, monkeypatch, ndim):
        monkeypatch.setattr(fig05_06, "QUICK_P_2D", (18, 64))
        monkeypatch.setattr(fig05_06, "QUICK_P_3D", (27, 64))
        result = fig05_06.run(quick=True, ndim=ndim)
        for row in result.rows:
            assert row["topolb"] < row["random"]
            assert row["topocentlb"] < row["random"]
            assert row["refine_topolb"] <= row["topolb"] + 1e-9
        # Larger machines leave more room for the mapper (sparser quotient).
        gains = result.column("topolb_vs_random_pct")
        assert gains[-1] > gains[0]

    def test_dense_small_case_hard_for_everyone(self, monkeypatch):
        monkeypatch.setattr(fig05_06, "QUICK_P_2D", (18,))
        result = fig05_06.run(quick=True, ndim=2)
        row = result.rows[0]
        assert row["virt_ratio"] > 150  # the paper's 180 regime
        # No strategy gets more than ~half off in the dense regime.
        assert row["topolb_vs_random_pct"] < 50


class TestFig789Shape:
    def test_latency_ordering_and_blowup(self, monkeypatch):
        monkeypatch.setattr(fig07_08, "QUICK_BANDWIDTHS", (100.0, 1000.0))
        result = fig07_08.run(quick=True)
        for row in result.rows:
            assert row["TopoLB_latency_us"] < row["TopoCentLB_latency_us"]
            assert row["TopoCentLB_latency_us"] < row["GreedyLB_latency_us"]
        # Random blows up the most as bandwidth shrinks.
        low, high = result.rows[0], result.rows[-1]
        random_growth = low["GreedyLB_latency_us"] / high["GreedyLB_latency_us"]
        topolb_growth = low["TopoLB_latency_us"] / high["TopoLB_latency_us"]
        assert random_growth > 1.0
        assert low["GreedyLB_latency_us"] - high["GreedyLB_latency_us"] > (
            low["TopoLB_latency_us"] - high["TopoLB_latency_us"]
        )

    def test_completion_time_ordering(self, monkeypatch):
        monkeypatch.setattr(fig09, "QUICK_BANDWIDTHS", (50.0, 200.0))
        result = fig09.run(quick=True)
        for row in result.rows:
            assert row["random_over_topolb"] > 2.0  # paper: more than double
            assert row["cent_over_topolb"] > 1.0    # TopoLB beats TopoCentLB


class TestFig1011Shape:
    def test_torus_beats_mesh_random_hurt_most(self, monkeypatch):
        monkeypatch.setattr(fig10_11, "QUICK_SHAPES", ((4, 4, 4),))
        result = fig10_11.run(quick=True)
        row = result.rows[0]
        # Topology-aware beats random on both networks.
        assert row["torus_TopoLB_s"] < row["torus_GreedyLB_s"]
        assert row["mesh_TopoLB_s"] < row["mesh_GreedyLB_s"]
        # Mesh (no wraparound) is slower, and random suffers the most.
        assert row["mesh_GreedyLB_s"] > row["torus_GreedyLB_s"]
        random_penalty = row["mesh_GreedyLB_s"] / row["torus_GreedyLB_s"]
        topolb_penalty = row["mesh_TopoLB_s"] / row["torus_TopoLB_s"]
        assert random_penalty > 1.0


class TestDeterminism:
    def test_same_seed_same_rows(self):
        a = table1.run(quick=True, side=3, iterations=5)
        b = table1.run(quick=True, side=3, iterations=5)
        assert a.rows == b.rows
