"""Tests for the supplementary experiments (zoo, bounds)."""

from __future__ import annotations

import pytest

from repro.experiments import supplementary


class TestZoo:
    @pytest.fixture(scope="class")
    def result(self):
        return supplementary.run_zoo(quick=True, seed=0)

    def test_all_machines_present(self, result):
        machines = result.column("machine")
        assert len(machines) == 5

    def test_topolb_never_loses_to_random(self, result):
        for row in result.rows:
            assert row["topolb"] < row["random"]

    def test_refine_never_hurts(self, result):
        for row in result.rows:
            assert row["topolb+ref"] <= row["topolb"] + 1e-9

    def test_fattree_compresses_gains(self, result):
        rows = {r["machine"]: r for r in result.rows}
        torus_gain = rows["torus 8x8"]["random"] / rows["torus 8x8"]["topolb"]
        ft_gain = rows["fattree 4x3"]["random"] / rows["fattree 4x3"]["topolb"]
        assert torus_gain > 2 * ft_gain

    def test_annealing_beats_heuristics_on_mesh(self, result):
        """The related-work claim: physical optimization out-polishes greedy
        heuristics on instances without a perfect embedding."""
        row = next(r for r in result.rows if r["machine"] == "mesh 8x8")
        assert row["anneal"] < row["topolb"]


class TestObjectives:
    @pytest.fixture(scope="class")
    def result(self):
        return supplementary.run_objectives(quick=True, seed=0)

    def test_each_optimizer_wins_its_metric(self, result):
        for row in result.rows:
            assert row["bokhari_card"] >= row["random_card"]
            assert row["topolb_hpb"] <= row["random_hpb"]

    def test_hop_bytes_wins_on_skewed(self, result):
        row = next(r for r in result.rows if "skewed" in r["instance"])
        assert row["topolb_hpb"] < row["bokhari_hpb"]


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return supplementary.run_scaling(quick=True, seed=0)

    def test_rows_and_quality(self, result):
        assert [r["processors"] for r in result.rows] == [64, 256, 576]
        for row in result.rows:
            assert row["topolb_o2_hpb"] == pytest.approx(1.0)
            assert row["refine_hpb"] <= row["topolb_o2_hpb"] + 1e-9

    def test_times_grow_with_p(self, result):
        times = result.column("topolb_o2_s")
        assert times[-1] > times[0]


class TestBounds:
    @pytest.fixture(scope="class")
    def result(self):
        return supplementary.run_bounds(quick=True, seed=0)

    def test_torus_stencils_certified_optimal(self, result):
        for row in result.rows:
            if "torus" in row["instance"] and "jacobi" in row["instance"]:
                assert row["topolb_gap"] == pytest.approx(1.0)

    def test_gaps_at_least_one(self, result):
        for row in result.rows:
            for key, value in row.items():
                if key.endswith("_gap"):
                    assert value >= 1.0 - 1e-9

    def test_ordering(self, result):
        for row in result.rows:
            assert row["topolb_gap"] <= row["random_gap"]
            assert row["topolb+ref_gap"] <= row["topolb_gap"] + 1e-9
