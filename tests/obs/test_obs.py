"""Tests for the repro.obs core: counters, timers, events, series, profiles."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.exceptions import ProfileError


class TestProfiler:
    def test_counters_accumulate(self):
        prof = obs.Profiler()
        prof.count("x")
        prof.count("x", 4)
        prof.count("y", 2.5)
        assert prof.counters == {"x": 5, "y": 2.5}

    def test_count_max_keeps_high_water_mark(self):
        prof = obs.Profiler()
        prof.count_max("depth", 3)
        prof.count_max("depth", 7)
        prof.count_max("depth", 5)
        assert prof.counters["depth"] == 7

    def test_timer_accumulates_total_and_count(self):
        prof = obs.Profiler()
        with prof.timer("phase"):
            pass
        with prof.timer("phase"):
            pass
        total, count = prof.timers["phase"]
        assert count == 2
        assert total >= 0.0

    def test_events_are_bounded(self):
        prof = obs.Profiler(max_events=3)
        for i in range(5):
            prof.event("evt", index=i)
        assert len(prof.events) == 3
        assert prof.dropped_events == 2

    def test_series_decimates_past_cap(self):
        prof = obs.Profiler(max_series_samples=8)
        for i in range(100):
            prof.sample("s", float(i), float(i))
        series = prof.series["s"]
        assert len(series.samples) <= 8
        assert series.stride > 1
        # Samples stay in time order and span the recorded range.
        times = [t for t, _ in series.samples]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_snapshot_is_json_able(self):
        prof = obs.Profiler()
        prof.count("c", 2)
        with prof.timer("t"):
            pass
        prof.event("e", detail="x")
        prof.sample("s", 0.0, 1.0)
        snap = json.loads(json.dumps(prof.snapshot()))
        assert snap["counters"] == {"c": 2}
        assert snap["timers"]["t"]["count"] == 1
        assert snap["events"][0]["name"] == "e"
        assert snap["series"]["s"]["samples"] == [[0.0, 1.0]]

    def test_reset_clears_everything(self):
        prof = obs.Profiler()
        prof.count("c")
        prof.event("e")
        prof.sample("s", 0.0, 1.0)
        prof.reset()
        assert prof.snapshot() == {"counters": {}, "timers": {}}


class TestActivation:
    def test_disabled_by_default(self):
        assert obs.active() is None

    def test_module_helpers_are_noops_while_disabled(self):
        obs.count("nope", 5)
        obs.event("nope")
        with obs.timer("nope"):
            pass
        assert obs.active() is None

    def test_enable_disable_roundtrip(self):
        prof = obs.enable()
        try:
            assert obs.active() is prof
            obs.count("c")
            assert prof.counters["c"] == 1
        finally:
            returned = obs.disable()
        assert returned is prof
        assert obs.active() is None

    def test_profiled_restores_previous_state(self):
        outer = obs.enable()
        try:
            with obs.profiled() as inner:
                assert obs.active() is inner
                assert inner is not outer
            assert obs.active() is outer
        finally:
            obs.disable()

    def test_profiled_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.profiled():
                raise RuntimeError("boom")
        assert obs.active() is None


class TestProfileArtifact:
    def _profile(self):
        prof = obs.Profiler()
        prof.count("topolb.cycles", 16)
        with prof.timer("topolb.map"):
            pass
        prof.event("netsim.link_saturated", time_us=1.0, link="0->1", depth=8)
        prof.sample("link_bytes:0->1", 0.5, 100.0)
        return obs.build_profile(
            prof,
            command="unit-test",
            context={"seed": 0},
            netsim={
                "links_used": 1,
                "total_bytes": 100.0,
                "max_link_bytes": 100.0,
                "mean_utilization": 0.5,
                "max_utilization": 0.5,
                "max_queue_depth": 8,
                "sim_time_us": 2.0,
                "top_links": [
                    {"link": "0->1", "bytes": 100.0, "busy_us": 1.0,
                     "max_queue_depth": 8},
                ],
            },
        )

    def test_round_trip_through_disk(self, tmp_path):
        profile = self._profile()
        path = tmp_path / "profile.json"
        obs.save_profile(profile, path)
        loaded = obs.load_profile(path)
        assert loaded == json.loads(json.dumps(profile))

    def test_schema_agrees_with_jsonschema_package(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(self._profile(), obs.PROFILE_SCHEMA)

    def test_validation_rejects_missing_format(self):
        bad = self._profile()
        del bad["format"]
        with pytest.raises(ProfileError):
            obs.validate_profile(bad)

    def test_validation_rejects_wrong_counter_type(self):
        bad = self._profile()
        bad["counters"]["topolb.cycles"] = "sixteen"
        with pytest.raises(ProfileError):
            obs.validate_profile(bad)

    def test_validation_rejects_unknown_top_level_key(self):
        bad = self._profile()
        bad["bogus"] = 1
        with pytest.raises(ProfileError):
            obs.validate_profile(bad)

    def test_flow_summary_shape_accepted(self):
        # The flow estimator embeds a different netsim block: "mode",
        # a makespan lower bound, and per-link message counts in place
        # of measured busy times (see repro.netsim.flow.flow_summary).
        prof = obs.Profiler()
        doc = obs.build_profile(
            prof,
            command="unit-test",
            netsim={
                "mode": "flow",
                "links_used": 1,
                "total_bytes": 100.0,
                "max_link_bytes": 100.0,
                "mean_utilization": 0.5,
                "max_utilization": 1.0,
                "makespan_lower_bound_us": 2.0,
                "top_links": [{"link": "0->1", "bytes": 100.0, "messages": 4}],
            },
        )
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(doc, obs.PROFILE_SCHEMA)
        report = obs.summarize_profile(doc)
        assert "makespan >= 2 us" in report
        assert "bytes / messages" in report

    def test_validation_rejects_malformed_netsim(self):
        bad = self._profile()
        del bad["netsim"]["top_links"]
        with pytest.raises(ProfileError):
            obs.validate_profile(bad)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ProfileError):
            obs.load_profile(path)

    def test_summarize_mentions_all_sections(self):
        text = obs.summarize_profile(self._profile())
        assert "unit-test" in text
        assert "topolb.cycles" in text
        assert "topolb.map" in text
        assert "0->1" in text
        assert "netsim.link_saturated" in text
        assert "link_bytes:0->1" in text

    def test_summarize_minimal_profile(self):
        minimal = {
            "format": obs.PROFILE_FORMAT,
            "command": "bare",
            "counters": {},
            "timers": {},
        }
        text = obs.summarize_profile(minimal)
        assert "bare" in text
