"""Instrumentation contract tests: exact counters and the free disabled path.

The counter values asserted here are hand-checked against the algorithms:

* TopoLB places exactly one task per cycle, so ``topolb.cycles == n``; each
  task-graph edge triggers exactly one fest update when its first endpoint
  is placed, so ``topolb.neighbor_updates == num_edges``.
* TopoCentLB likewise runs one cycle per task, and pushes each edge onto the
  frontier heap exactly once (when the already-placed endpoint's partner is
  not yet placed), so ``topocentlb.heap_updates == num_edges``.
* A 2-node path with 20 simultaneous messages on a slow link backs up a
  19-deep FIFO: one saturation crossing, 19 enqueues, 20 transmissions.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro import (
    Mesh,
    RefineTopoLB,
    TopoCentLB,
    TopoLB,
    Torus,
    obs,
    mesh2d_pattern,
)
from repro.netsim import NetworkSimulator


@pytest.fixture
def prof():
    with obs.profiled() as p:
        yield p


class TestTopoLBCounters:
    def test_hand_checked_mesh4x4(self, prof):
        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4))
        TopoLB().map(graph, topo)
        c = prof.counters
        assert c["topolb.cycles"] == 16  # one placement per cycle
        assert c["topolb.neighbor_updates"] == graph.num_edges == 24
        # Repair work is bounded by what went stale.
        assert c["topolb.reserve_hits"] >= 0
        assert c["topolb.reserve_exhaustions"] >= 0
        assert c["topolb.rows_rebuilt"] <= 16 * 16
        total, count = prof.timers["topolb.map"]
        assert count == 1
        assert total > 0

    def test_counters_accumulate_across_runs(self, prof):
        graph, topo = mesh2d_pattern(3, 3), Mesh((3, 3))
        mapper = TopoLB()
        mapper.map(graph, topo)
        mapper.map(graph, topo)
        assert prof.counters["topolb.cycles"] == 18
        assert prof.timers["topolb.map"][1] == 2


class TestTopoCentLBCounters:
    def test_hand_checked_mesh4x4(self, prof):
        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4))
        TopoCentLB().map(graph, topo)
        c = prof.counters
        assert c["topocentlb.cycles"] == 16
        assert c["topocentlb.heap_updates"] == graph.num_edges == 24
        # The connected stencil needs exactly one seed.
        assert c["topocentlb.seed_placements"] == 1


class TestRefineCounters:
    def test_sweeps_and_swap_accounting(self, prof):
        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4))
        RefineTopoLB(base=TopoLB()).map(graph, topo)
        c = prof.counters
        assert c["refine.sweeps"] >= 1
        assert c["refine.swaps_accepted"] >= 0
        assert c["refine.swaps_rejected"] >= 0
        # Every evaluated candidate is either accepted or rejected.
        assert (c["refine.swaps_accepted"] + c["refine.swaps_rejected"]) > 0
        assert "refine.refine" in prof.timers


class TestRefineSweepEvents:
    """Per-sweep ``refine.sweep`` events: totals-consistent and kernel-free.

    Every kernel visits the same permutation and accepts the same swaps
    (bit-identity is enforced by the equivalence suite), so the event stream
    — one event per sweep with the sweep's accepted-swap and evaluated-pair
    counts — must be byte-for-byte identical no matter which kernel produced
    it, native incremental and its numpy fallback included.
    """

    def _instance(self):
        from repro.mapping import RandomMapper

        graph = mesh2d_pattern(6, 6, message_bytes=256)
        topo = Torus((6, 6))
        # A random start leaves many improving swaps, so several sweeps run
        # and the accepted counts are nontrivial.
        return RandomMapper(seed=3).map(graph, topo)

    def _sweep_events(self, kernel, start):
        with obs.profiled() as prof:
            RefineTopoLB(kernel=kernel, seed=1).refine(start)
        events = [e for e in prof.events if e["name"] == "refine.sweep"]
        return events, dict(prof.counters)

    @pytest.mark.parametrize("kernel",
                             ("reference", "vectorized", "incremental"))
    def test_events_sum_to_totals(self, kernel):
        start = self._instance()
        n = start.graph.num_tasks
        events, counters = self._sweep_events(kernel, start)

        assert len(events) == counters["refine.sweeps"] >= 2
        assert [e["sweep"] for e in events] == list(range(1, len(events) + 1))
        assert sum(e["accepted"] for e in events) == \
            counters["refine.swaps_accepted"]
        assert sum(e["evaluated_pairs"] for e in events) == \
            counters["refine.pairs_evaluated"]
        # Each visit weighs one task against its n - 1 candidate partners.
        assert all(e["evaluated_pairs"] % (n - 1) == 0 for e in events)
        # Convergence (not the sweep cap) ended the run: a final quiet sweep.
        if len(events) < 10:
            assert events[-1]["accepted"] == 0

    def test_event_stream_is_kernel_independent(self, monkeypatch):
        start = self._instance()
        streams = {
            kernel: self._sweep_events(kernel, start)[0]
            for kernel in ("reference", "vectorized", "incremental")
        }
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        streams["incremental-fallback"] = \
            self._sweep_events("incremental", start)[0]
        reference = streams.pop("reference")
        assert reference[0]["accepted"] > 0
        for kernel, events in streams.items():
            assert events == reference, f"{kernel} diverged from reference"


class TestDisabledPath:
    def test_disabled_path_allocates_nothing_in_obs(self):
        """With profiling off, ``Mapper.map`` touches no obs-layer code that
        allocates: a traced run shows zero allocations from repro/obs files."""
        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4))
        mapper = TopoLB()
        mapper.map(graph, topo)  # warm caches outside the trace
        assert obs.active() is None

        tracemalloc.start(10)
        try:
            before = tracemalloc.take_snapshot()
            mapper.map(graph, topo)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        obs_filter = tracemalloc.Filter(True, "*repro/obs/*")
        stats = after.filter_traces([obs_filter]).compare_to(
            before.filter_traces([obs_filter]), "lineno"
        )
        leaked = [s for s in stats if s.size_diff > 0 or s.count_diff > 0]
        assert leaked == []

    def test_disabled_mapper_records_nothing_later(self):
        """A mapper run before ``enable()`` must not write into a profiler
        installed afterwards."""
        graph, topo = mesh2d_pattern(3, 3), Mesh((3, 3))
        TopoLB().map(graph, topo)
        with obs.profiled() as prof:
            pass
        assert prof.counters == {}


class TestNetsimInstrumentation:
    def _saturate(self):
        """20 simultaneous 100-byte messages across one slow link."""
        sim = NetworkSimulator(Mesh((2,)), bandwidth=1.0)
        for _ in range(20):
            sim.send(0, 1, 100.0)
        sim.run()
        return sim

    def test_saturation_and_queue_counters(self, prof):
        sim = self._saturate()
        c = prof.counters
        assert c["netsim.messages"] == 20
        assert c["netsim.transmissions"] == 20
        assert c["netsim.delivered"] == 20
        assert c["netsim.enqueues"] == 19  # first message transmits directly
        assert c["netsim.max_queue_depth"] == 19
        assert c["netsim.saturation_events"] == 1  # one crossing, FIFO never drains
        assert sim.link_queue_peaks()[(0, 1)] == 19

    def test_saturation_event_payload(self, prof):
        self._saturate()
        sat = [e for e in prof.events if e["name"] == "netsim.link_saturated"]
        assert len(sat) == 1
        assert sat[0]["link"] == "0->1"
        assert sat[0]["depth"] == 8  # fires at the configured threshold

    def test_run_complete_summary_event(self, prof):
        self._saturate()
        done = [e for e in prof.events if e["name"] == "netsim.run_complete"]
        assert len(done) == 1
        assert done[0]["links_used"] == 1
        assert done[0]["total_bytes"] == 2000.0
        assert done[0]["max_queue_depth"] == 19

    def test_link_bytes_series_recorded(self, prof):
        self._saturate()
        series = prof.series["link_bytes:0->1"]
        values = [v for _, v in series.samples]
        assert values[0] == 100.0
        assert values == sorted(values)  # cumulative bytes only grow

    def test_local_messages_counted_separately(self, prof):
        sim = NetworkSimulator(Mesh((2,)))
        sim.send(0, 0, 50.0)
        sim.run()
        assert prof.counters["netsim.messages"] == 1
        assert prof.counters["netsim.local_messages"] == 1
        assert "netsim.transmissions" not in prof.counters

    def test_profiler_snapshot_is_construction_time(self):
        """Enabling profiling after the simulator exists records nothing —
        the documented snapshot-at-construction contract."""
        sim = NetworkSimulator(Mesh((2,)))
        with obs.profiled() as prof:
            sim.send(0, 1, 100.0)
            sim.run()
        assert prof.counters == {}


class TestPipelineTimers:
    def test_two_phase_records_phase_timers(self, prof):
        from repro.mapping.pipeline import TwoPhaseMapper

        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((2, 2))
        TwoPhaseMapper(mapper=TopoLB()).map(graph, topo)
        for name in ("pipeline.partition", "pipeline.coalesce", "pipeline.map"):
            assert name in prof.timers, name
