"""Tests for coarsening, refinement and partition metrics internals."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.partition.coarsening import contract, heavy_edge_matching
from repro.partition.metrics import edge_cut_bytes, partition_imbalance, partition_sizes
from repro.partition.refinement import rebalance_kway, refine_kway
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph


class TestHeavyEdgeMatching:
    def test_is_a_matching(self):
        g = random_taskgraph(30, edge_prob=0.2, seed=0)
        match = heavy_edge_matching(g, seed=0)
        for v in range(30):
            partner = match[v]
            assert match[partner] == v  # involution

    def test_matches_heavy_edge_when_free(self):
        # Star with one heavy spoke: the center must match its heavy partner
        # if the center is visited first... at minimum, the heavy pair must
        # both be matched (to each other or via earlier claims).
        g = TaskGraph(4, [(0, 1, 100.0), (0, 2, 1.0), (0, 3, 1.0)])
        match = heavy_edge_matching(g, seed=1)
        # vertex 0 is matched to someone (never left single when it has
        # unmatched neighbors at visit time)
        assert match[0] != 0 or all(match[j] != j for j in (1, 2, 3))

    def test_isolated_vertex_self_matched(self):
        g = TaskGraph(3, [(0, 1, 1.0)])
        match = heavy_edge_matching(g, seed=0)
        assert match[2] == 2


class TestContract:
    def test_pair_contraction(self):
        g = TaskGraph(4, [(0, 1, 5.0), (1, 2, 7.0), (2, 3, 9.0)],
                      vertex_weights=[1, 2, 3, 4])
        match = np.array([1, 0, 3, 2])  # pairs (0,1) and (2,3)
        coarse, fine2coarse = contract(g, match)
        assert coarse.num_tasks == 2
        assert coarse.vertex_weights.tolist() == [3.0, 7.0]
        # only the 1-2 edge crosses the pairs
        assert coarse.total_bytes == 7.0
        assert fine2coarse.tolist() == [0, 0, 1, 1]

    def test_parallel_edges_merge(self):
        g = TaskGraph(4, [(0, 2, 1.0), (0, 3, 2.0), (1, 2, 4.0)])
        match = np.array([1, 0, 3, 2])
        coarse, _ = contract(g, match)
        assert coarse.num_tasks == 2
        assert coarse.total_bytes == 7.0
        assert coarse.num_edges == 1

    def test_weight_conservation(self):
        g = random_taskgraph(20, edge_prob=0.3, seed=4)
        match = heavy_edge_matching(g, seed=4)
        coarse, _ = contract(g, match)
        assert coarse.total_vertex_weight == pytest.approx(g.total_vertex_weight)

    @given(st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_property_cut_preserved_under_projection(self, seed):
        """Cut of a coarse partition equals cut of its projection."""
        g = random_taskgraph(24, edge_prob=0.2, seed=seed)
        match = heavy_edge_matching(g, seed=seed)
        coarse, fine2coarse = contract(g, match)
        rng = np.random.default_rng(seed)
        coarse_groups = rng.integers(0, 3, size=coarse.num_tasks)
        fine_groups = coarse_groups[fine2coarse]
        assert edge_cut_bytes(coarse, coarse_groups) == pytest.approx(
            edge_cut_bytes(g, fine_groups)
        )


class TestRefineKway:
    def test_never_increases_cut(self):
        g = mesh2d_pattern(8, 8)
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 4, size=64)
        for gid in range(4):
            groups[gid] = gid
        before = edge_cut_bytes(g, groups)
        refined = refine_kway(g, groups.copy(), 4, max_load=np.inf, passes=3, seed=0)
        assert edge_cut_bytes(g, refined) <= before

    def test_respects_load_ceiling(self):
        g = mesh2d_pattern(6, 6)
        rng = np.random.default_rng(1)
        groups = rng.integers(0, 3, size=36)
        for gid in range(3):
            groups[gid] = gid
        ceiling = 1.2 * 36 / 3
        refined = refine_kway(g, groups.copy(), 3, max_load=ceiling, passes=3, seed=1)
        sizes = partition_sizes(g, refined, 3)
        before_sizes = partition_sizes(g, groups, 3)
        # Groups already over the ceiling cannot gain more load.
        for gid in range(3):
            if before_sizes[gid] >= ceiling:
                assert sizes[gid] <= before_sizes[gid]
            else:
                assert sizes[gid] <= ceiling + 1e-9

    def test_no_group_emptied(self):
        g = TaskGraph(4, [(0, 1, 100.0), (2, 3, 100.0), (1, 2, 1.0)])
        groups = np.array([0, 1, 1, 1])
        refined = refine_kway(g, groups, 2, max_load=np.inf, passes=5, seed=0)
        assert len(np.unique(refined)) == 2


class TestRebalanceKway:
    def test_brings_under_ceiling(self):
        g = TaskGraph(8, [], vertex_weights=np.ones(8))
        groups = np.zeros(8, dtype=np.int64)
        groups[7] = 1  # group 0 has 7 units, ceiling 4.4
        out = rebalance_kway(g, groups, 2, max_load=4.4)
        sizes = partition_sizes(g, out, 2)
        assert sizes.max() <= 4.4

    def test_prefers_cheap_moves(self):
        # Clique A={0,1,2} plus loosely attached outlier 6 overload group 0;
        # an underloaded group 2 exists. Rebalancing must shed the outlier
        # (cut cost 1) rather than a clique member (cut cost 20).
        edges = [(0, 1, 10.0), (0, 2, 10.0), (1, 2, 10.0),
                 (3, 4, 10.0), (3, 5, 10.0), (4, 5, 10.0), (6, 3, 1.0)]
        g = TaskGraph(8, edges, vertex_weights=np.ones(8))
        groups = np.array([0, 0, 0, 1, 1, 1, 0, 2])
        out = rebalance_kway(g, groups, 3, max_load=3.5)
        assert out[6] == 2
        assert (out[:3] == 0).all()

    def test_no_gainful_move_terminates_unchanged(self):
        # Infeasible ceiling with 2 groups of unit loads (4 vs 3): moving
        # anything only shifts the overload, so rebalance must do nothing.
        g = TaskGraph(7, [(6, 3, 1.0)], vertex_weights=np.ones(7))
        groups = np.array([0, 0, 0, 1, 1, 1, 0])
        out = rebalance_kway(g, groups.copy(), 2, max_load=3.2)
        assert (out == groups).all()

    def test_unmovable_heavy_vertex_terminates(self):
        g = TaskGraph(3, [], vertex_weights=[100.0, 1.0, 1.0])
        groups = np.array([0, 1, 2])
        out = rebalance_kway(g, groups, 3, max_load=10.0)
        assert len(out) == 3  # just terminates; 100-unit vertex can't shrink


class TestPartitionMetrics:
    def test_edge_cut(self, tiny_graph):
        assert edge_cut_bytes(tiny_graph, [0, 0, 1, 1]) == 120.0
        assert edge_cut_bytes(tiny_graph, [0, 0, 0, 0]) == 0.0

    def test_sizes_and_imbalance(self, tiny_graph):
        sizes = partition_sizes(tiny_graph, [0, 0, 1, 1], 2)
        assert sizes.tolist() == [3.0, 7.0]
        assert partition_imbalance(tiny_graph, [0, 0, 1, 1], 2) == pytest.approx(1.4)

    def test_shape_check(self, tiny_graph):
        with pytest.raises(PartitionError):
            edge_cut_bytes(tiny_graph, [0, 1])

    def test_negative_groups_rejected(self, tiny_graph):
        with pytest.raises(PartitionError):
            edge_cut_bytes(tiny_graph, [0, -1, 0, 0])
