"""Tests for the spectral partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.partition import (
    SpectralPartitioner,
    edge_cut_bytes,
    partition_imbalance,
)
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph


class TestSpectralPartitioner:
    def test_valid_output(self):
        g = random_taskgraph(40, edge_prob=0.15, seed=0)
        groups = SpectralPartitioner(seed=0).partition(g, 5)
        counts = np.bincount(groups, minlength=5)
        assert counts.sum() == 40
        assert (counts > 0).all()

    def test_two_cliques_split_cleanly(self):
        edges = [(i, j, 10.0) for i in range(6) for j in range(i + 1, 6)]
        edges += [(6 + i, 6 + j, 10.0) for i in range(6) for j in range(i + 1, 6)]
        edges += [(0, 6, 0.01)]
        g = TaskGraph(12, edges)
        groups = SpectralPartitioner(seed=0).partition(g, 2)
        # The Fiedler split must separate the cliques (cut = the weak edge).
        assert edge_cut_bytes(g, groups) == pytest.approx(0.01)

    def test_mesh_cut_quality(self):
        g = mesh2d_pattern(12, 12)
        groups = SpectralPartitioner(seed=0).partition(g, 4)
        # Ideal 4-block cut: 2 * 12 edges of weight 2 = 48; allow 2x slack.
        assert edge_cut_bytes(g, groups) <= 2 * 48
        assert partition_imbalance(g, groups, 4) <= 1.25

    def test_large_graph_uses_sparse_path(self):
        g = mesh2d_pattern(16, 16)  # 256 > dense cutoff
        groups = SpectralPartitioner(seed=0).partition(g, 2)
        counts = np.bincount(groups, minlength=2)
        assert abs(counts[0] - counts[1]) <= 16

    def test_disconnected_falls_back(self):
        edges = [(i, i + 1, 1.0) for i in range(0, 8, 2)]  # 4 disjoint pairs
        g = TaskGraph(8, edges)
        groups = SpectralPartitioner(seed=0).partition(g, 4)
        assert len(np.unique(groups)) == 4

    def test_k_one_and_k_n(self):
        g = random_taskgraph(10, seed=1)
        assert (SpectralPartitioner(seed=0).partition(g, 1) == 0).all()
        assert sorted(SpectralPartitioner(seed=0).partition(g, 10).tolist()) == list(range(10))

    def test_reproducible(self):
        g = random_taskgraph(30, edge_prob=0.2, seed=2)
        a = SpectralPartitioner(seed=5).partition(g, 3)
        b = SpectralPartitioner(seed=5).partition(g, 3)
        assert (a == b).all()

    def test_bad_k(self):
        g = random_taskgraph(5, seed=0)
        with pytest.raises(PartitionError):
            SpectralPartitioner().partition(g, 0)
