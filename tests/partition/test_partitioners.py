"""Tests for the greedy, recursive-bisection and multilevel partitioners."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PartitionError
from repro.partition import (
    GreedyPartitioner,
    MultilevelPartitioner,
    RecursiveBisectionPartitioner,
    edge_cut_bytes,
    partition_imbalance,
    partition_sizes,
)
from repro.taskgraph import (
    TaskGraph,
    leanmd_taskgraph,
    mesh2d_pattern,
    random_taskgraph,
)

ALL_PARTITIONERS = [
    GreedyPartitioner(),
    RecursiveBisectionPartitioner(seed=0),
    MultilevelPartitioner(seed=0),
]


def _check_valid(groups: np.ndarray, n: int, k: int) -> None:
    assert groups.shape == (n,)
    counts = np.bincount(groups, minlength=k)
    assert len(counts) == k
    assert (counts > 0).all()


class TestValidityInvariant:
    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    @pytest.mark.parametrize("k", [1, 2, 3, 7, 16])
    def test_every_vertex_assigned_every_group_nonempty(self, part, k):
        g = random_taskgraph(48, edge_prob=0.1, seed=1)
        groups = part.partition(g, k)
        _check_valid(groups, 48, k)

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_k_equals_n(self, part):
        g = random_taskgraph(12, edge_prob=0.3, seed=2)
        groups = part.partition(g, 12)
        _check_valid(groups, 12, 12)
        assert sorted(groups.tolist()) == list(range(12))

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_k_one(self, part):
        g = random_taskgraph(10, seed=3)
        groups = part.partition(g, 1)
        assert (groups == 0).all()

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_k_too_large_rejected(self, part):
        g = random_taskgraph(5, seed=0)
        with pytest.raises(PartitionError):
            part.partition(g, 6)

    @pytest.mark.parametrize("part", ALL_PARTITIONERS, ids=lambda p: repr(p))
    def test_k_zero_rejected(self, part):
        g = random_taskgraph(5, seed=0)
        with pytest.raises(PartitionError):
            part.partition(g, 0)


class TestGreedyPartitioner:
    def test_perfect_balance_uniform_loads(self):
        g = TaskGraph(12, [], vertex_weights=np.ones(12))
        groups = GreedyPartitioner().partition(g, 4)
        assert partition_imbalance(g, groups, 4) == 1.0

    def test_lpt_quality(self):
        """LPT guarantees makespan <= 4/3 OPT; check a classic instance."""
        weights = [7, 6, 5, 5, 4, 4, 3, 2]
        g = TaskGraph(8, [], vertex_weights=weights)
        groups = GreedyPartitioner().partition(g, 3)
        sizes = partition_sizes(g, groups, 3)
        assert sizes.max() <= (sum(weights) / 3) * 4 / 3 + 1e-9

    def test_zero_weight_tasks_spread(self):
        g = TaskGraph(6, [], vertex_weights=np.zeros(6))
        groups = GreedyPartitioner().partition(g, 6)
        assert sorted(groups.tolist()) == list(range(6))


class TestRecursiveBisection:
    def test_balanced_on_mesh(self):
        g = mesh2d_pattern(8, 8)
        groups = RecursiveBisectionPartitioner(seed=0).partition(g, 4)
        assert partition_imbalance(g, groups, 4) <= 1.15

    def test_cut_better_than_random_grouping(self, rng):
        g = mesh2d_pattern(10, 10)
        groups = RecursiveBisectionPartitioner(seed=0).partition(g, 4)
        random_groups = rng.permutation(np.repeat(np.arange(4), 25))
        assert edge_cut_bytes(g, groups) < 0.6 * edge_cut_bytes(g, random_groups)

    def test_odd_k(self):
        g = mesh2d_pattern(6, 7)
        groups = RecursiveBisectionPartitioner(seed=0).partition(g, 5)
        _check_valid(groups, 42, 5)
        assert partition_imbalance(g, groups, 5) <= 1.35

    def test_reproducible(self):
        g = random_taskgraph(30, edge_prob=0.2, seed=5)
        a = RecursiveBisectionPartitioner(seed=9).partition(g, 4)
        b = RecursiveBisectionPartitioner(seed=9).partition(g, 4)
        assert (a == b).all()

    def test_disconnected_graph_handled(self):
        # Two separate cliques; growth must restart on the second component.
        edges = [(i, j, 1.0) for i in range(5) for j in range(i + 1, 5)]
        edges += [(i, j, 1.0) for i in range(5, 10) for j in range(i + 1, 10)]
        g = TaskGraph(10, edges)
        groups = RecursiveBisectionPartitioner(seed=0).partition(g, 2)
        _check_valid(groups, 10, 2)


class TestMultilevelPartitioner:
    def test_balance_within_tolerance(self):
        g = leanmd_taskgraph(16)
        groups = MultilevelPartitioner(imbalance_tol=1.10, seed=0).partition(g, 16)
        assert partition_imbalance(g, groups, 16) <= 1.10 + 1e-6

    def test_cut_quality_vs_greedy(self):
        """Comm-aware partitioning must cut far fewer bytes than load-only."""
        g = leanmd_taskgraph(16, cells_shape=(4, 4, 4))
        ml = MultilevelPartitioner(seed=0).partition(g, 16)
        greedy = GreedyPartitioner().partition(g, 16)
        assert edge_cut_bytes(g, ml) < 0.7 * edge_cut_bytes(g, greedy)

    def test_mesh_partition_quality(self):
        """On a 2D mesh a k-way cut should be near the strip/block bound."""
        g = mesh2d_pattern(16, 16)
        groups = MultilevelPartitioner(seed=0).partition(g, 4)
        # Perfect 4-block partition cuts 2*16 edges of weight 2 = 64 bytes;
        # allow 2.5x slack for the heuristic.
        assert edge_cut_bytes(g, groups) <= 2.5 * 64

    def test_small_graph_skips_coarsening(self):
        g = random_taskgraph(20, edge_prob=0.3, seed=1)
        groups = MultilevelPartitioner(seed=0).partition(g, 4)
        _check_valid(groups, 20, 4)

    def test_reproducible(self):
        g = leanmd_taskgraph(8)
        a = MultilevelPartitioner(seed=3).partition(g, 8)
        b = MultilevelPartitioner(seed=3).partition(g, 8)
        assert (a == b).all()

    def test_bad_params(self):
        with pytest.raises(PartitionError):
            MultilevelPartitioner(imbalance_tol=0.9)
        with pytest.raises(PartitionError):
            MultilevelPartitioner(coarsen_factor=1)


@given(
    seed=st.integers(0, 10_000),
    k=st.integers(2, 8),
    n=st.integers(16, 60),
)
@settings(max_examples=25, deadline=None)
def test_property_multilevel_valid_on_random_graphs(seed, k, n):
    g = random_taskgraph(n, edge_prob=0.15, seed=seed)
    groups = MultilevelPartitioner(seed=seed).partition(g, k)
    _check_valid(np.asarray(groups), n, k)
    # Loads conserved: group sizes sum to total weight.
    assert partition_sizes(g, groups, k).sum() == pytest.approx(g.total_vertex_weight)
