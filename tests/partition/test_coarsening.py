"""Coarsening unit tests: conservation, composition, termination, and the
vectorized fast paths behind the multilevel mapper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.coarsening import (
    coarsen_levels,
    coarsen_step,
    coarsen_toward,
    contract,
    heavy_edge_matching,
    limit_pairs,
    pair_unmatched,
)
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph


def _star(n: int) -> TaskGraph:
    return TaskGraph(n, [(0, i, float(i)) for i in range(1, n)])


class TestMatchingAndContraction:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_matching_is_a_symmetric_involution(self, seed):
        graph = random_taskgraph(int(3 + seed % 20), edge_prob=0.3, seed=seed)
        match = heavy_edge_matching(graph, seed=seed)
        ids = np.arange(graph.num_tasks)
        assert np.array_equal(match[match], ids)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_contract_conserves_edge_weight(self, seed):
        """Coarse total bytes + bytes hidden inside merged pairs == fine total."""
        graph = random_taskgraph(int(4 + seed % 20), edge_prob=0.4, seed=seed)
        match = pair_unmatched(heavy_edge_matching(graph, seed=seed))
        coarse, fine2coarse = contract(graph, match)
        u, v, w = graph.edge_arrays()
        hidden = float(w[fine2coarse[u] == fine2coarse[v]].sum())
        assert coarse.total_bytes + hidden == pytest.approx(graph.total_bytes)
        # Loads are conserved exactly (sums of unit weights here).
        assert coarse.vertex_weights.sum() == pytest.approx(
            graph.vertex_weights.sum()
        )

    def test_contract_matches_sequential_numbering(self):
        """The vectorized symmetric path numbers coarse vertices exactly like
        the sequential first-visit scan."""
        graph = random_taskgraph(17, edge_prob=0.3, seed=7)
        match = pair_unmatched(heavy_edge_matching(graph, seed=7))
        _, fast = contract(graph, match)
        slow = np.full(graph.num_tasks, -1, dtype=np.int64)
        next_id = 0
        for vtx in range(graph.num_tasks):
            if slow[vtx] < 0:
                slow[vtx] = slow[int(match[vtx])] = next_id
                next_id += 1
        assert np.array_equal(fast, slow)

    def test_forced_step_halves_exactly(self):
        graph = _star(11)
        coarse, _ = coarsen_step(graph, seed=0, force=True)
        assert coarse.num_tasks == 6  # ceil(11 / 2)


class TestLimitPairs:
    def test_partial_contraction_hits_exact_target(self):
        graph = mesh2d_pattern(6, 6)
        for target in (36, 35, 30, 20, 18):
            coarse, _ = coarsen_toward(graph, target, seed=0)
            assert coarse.num_tasks == max(target, 18)  # never below ceil(n/2)

    def test_heaviest_pairs_survive(self):
        # a-b carries 100 bytes, c-d carries 1; only one merge allowed.
        graph = TaskGraph(4, [(0, 1, 100.0), (2, 3, 1.0)])
        match = pair_unmatched(heavy_edge_matching(graph, seed=0))
        limited = limit_pairs(graph, match, 1)
        assert limited[0] == 1 and limited[1] == 0  # heavy pair kept
        assert limited[2] == 2 and limited[3] == 3  # light pair released

    def test_zero_budget_unmatches_everything(self):
        graph = mesh2d_pattern(3, 3)
        match = pair_unmatched(heavy_edge_matching(graph, seed=0))
        limited = limit_pairs(graph, match, 0)
        assert np.array_equal(limited, np.arange(9))


class TestCoarsenLevels:
    @pytest.mark.parametrize(
        "graph",
        [
            _star(15),  # matching starves after the first pair
            TaskGraph(12),  # singleton cloud: no edges at all
            TaskGraph(10, [(i, i + 1, 0.0) for i in range(9)]),  # zero weights
        ],
        ids=["star", "singletons", "zero-weight"],
    )
    def test_terminates_on_pathological_graphs(self, graph):
        coarsest, maps = coarsen_levels(graph, target=2, seed=0)
        assert coarsest.num_tasks <= 2
        assert len(maps) <= int(np.ceil(np.log2(graph.num_tasks))) + 1

    def test_noop_when_already_small_enough(self):
        graph = mesh2d_pattern(2, 2)
        coarsest, maps = coarsen_levels(graph, target=8, seed=0)
        assert coarsest is graph
        assert maps == []

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_vertex_maps_compose_and_conserve_loads(self, seed):
        graph = random_taskgraph(int(10 + seed % 40), edge_prob=0.2, seed=seed)
        coarsest, maps = coarsen_levels(graph, target=4, seed=seed)
        comp = np.arange(graph.num_tasks, dtype=np.int64)
        for fine2coarse in maps:
            comp = fine2coarse[comp]
        assert comp.min() >= 0 and comp.max() < coarsest.num_tasks
        assert len(np.unique(comp)) == coarsest.num_tasks
        composed_loads = np.bincount(
            comp, weights=graph.vertex_weights, minlength=coarsest.num_tasks
        )
        assert np.allclose(composed_loads, coarsest.vertex_weights)


class TestFromArrays:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_to_dict_accumulation(self, seed):
        """from_arrays must reproduce the dict-accumulation constructor
        exactly — including duplicate merging in either orientation."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        m = int(rng.integers(0, 30))
        u = rng.integers(0, n, size=m)
        v = rng.integers(0, n, size=m)
        keep = u != v
        u, v = u[keep], v[keep]
        w = rng.integers(1, 100, size=len(u)).astype(np.float64)
        loads = rng.integers(1, 5, size=n).astype(np.float64)

        fast = TaskGraph.from_arrays(n, u, v, w, loads)
        slow = TaskGraph(n, zip(u.tolist(), v.tolist(), w.tolist()), loads)
        for a, b in zip(fast.edge_arrays(), slow.edge_arrays()):
            assert np.array_equal(a, b)
        for a, b in zip(fast.csr_arrays(), slow.csr_arrays()):
            assert np.array_equal(a, b)
        assert fast.total_bytes == slow.total_bytes

    def test_rejects_bad_edges(self):
        from repro.exceptions import TaskGraphError

        with pytest.raises(TaskGraphError):
            TaskGraph.from_arrays(3, [0], [0], [1.0])  # self-edge
        with pytest.raises(TaskGraphError):
            TaskGraph.from_arrays(3, [0], [5], [1.0])  # out of bounds
        with pytest.raises(TaskGraphError):
            TaskGraph.from_arrays(3, [0], [1], [-1.0])  # negative weight
