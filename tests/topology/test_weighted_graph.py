"""Tests for weighted (heterogeneous) arbitrary topologies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.mapping import TopoLB, RandomMapper
from repro.taskgraph import TaskGraph
from repro.topology import ArbitraryTopology


class TestWeightedTopology:
    def test_unweighted_still_ints(self):
        topo = ArbitraryTopology(3, [(0, 1), (1, 2)])
        assert not topo.is_weighted
        assert topo.distance(0, 2) == 2
        assert topo.distance_matrix().dtype == np.int32

    def test_weighted_distances(self):
        # Expensive direct link vs cheap detour.
        topo = ArbitraryTopology(3, [(0, 1, 10.0), (1, 2, 1.0), (0, 2, 1.0)])
        assert topo.is_weighted
        assert topo.distance(0, 1) == pytest.approx(2.0)  # via node 2
        assert topo.distance_matrix().dtype == np.float64

    def test_weighted_route_takes_detour(self):
        topo = ArbitraryTopology(3, [(0, 1, 10.0), (1, 2, 1.0), (0, 2, 1.0)])
        assert topo.route(0, 1) == [0, 2, 1]

    def test_mixed_edge_forms(self):
        topo = ArbitraryTopology(3, [(0, 1), (1, 2, 2.5)])
        assert topo.is_weighted
        assert topo.distance(0, 2) == pytest.approx(3.5)

    def test_duplicate_keeps_cheapest(self):
        topo = ArbitraryTopology(2, [(0, 1, 5.0), (0, 1, 2.0)])
        assert topo.distance(0, 1) == pytest.approx(2.0)

    def test_link_cost(self):
        topo = ArbitraryTopology(3, [(0, 1, 2.0), (1, 2)])
        assert topo.link_cost(0, 1) == 2.0
        assert topo.link_cost(2, 1) == 1.0
        with pytest.raises(TopologyError, match="no direct link"):
            topo.link_cost(0, 2)

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(TopologyError, match="positive cost"):
            ArbitraryTopology(2, [(0, 1, 0.0)])

    def test_diameter_fractional(self):
        topo = ArbitraryTopology(3, [(0, 1, 0.5), (1, 2, 0.25)])
        assert topo.diameter() == pytest.approx(0.75)

    def test_axioms_hold_weighted(self):
        rng = np.random.default_rng(0)
        edges = [(i, (i + 1) % 10, float(rng.uniform(0.5, 3.0))) for i in range(10)]
        edges += [(0, 5, 1.0), (2, 7, 2.0)]
        topo = ArbitraryTopology(10, edges)
        topo.validate_distance_axioms(sample=64)

    def test_mapper_avoids_expensive_links(self):
        """Heterogeneous mapping (Taura & Chien's setting): two heavily
        communicating tasks must land on the cheap side of the machine."""
        # Two islands joined by an expensive link; cheap links inside.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0), (2, 3, 20.0)]
        topo = ArbitraryTopology(6, edges)
        # Tasks 0-1 exchange a lot; the rest barely talk.
        g = TaskGraph(6, [(0, 1, 1000.0), (2, 3, 1.0), (4, 5, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        mapping = TopoLB().map(g, topo)
        pa, pb = mapping.processor_of(0), mapping.processor_of(1)
        # Their processors must be direct cheap neighbors (cost 1), never
        # straddling the expensive bridge.
        assert topo.distance(pa, pb) == pytest.approx(1.0)

    def test_weighted_random_vs_topolb(self):
        rng = np.random.default_rng(1)
        edges = [(i, (i + 1) % 12, float(rng.uniform(0.5, 4.0))) for i in range(12)]
        edges += [(i, (i + 3) % 12, float(rng.uniform(0.5, 4.0))) for i in range(0, 12, 2)]
        topo = ArbitraryTopology(12, edges)
        from repro.taskgraph import random_taskgraph

        g = random_taskgraph(12, edge_prob=0.3, seed=2)
        tlb = TopoLB().map(g, topo).hop_bytes
        rand = np.mean([RandomMapper(seed=s).map(g, topo).hop_bytes for s in range(5)])
        assert tlb < rand
