"""Tests for grid topologies (mesh and torus)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import Mesh, Torus


class TestMeshBasics:
    def test_sizes(self):
        mesh = Mesh((3, 4))
        assert mesh.num_nodes == 12
        assert len(mesh) == 12
        assert mesh.ndim == 2
        assert mesh.shape == (3, 4)

    def test_name(self):
        assert Mesh((2, 3)).name == "mesh(2x3)"
        assert Torus((4, 4, 4)).name == "torus(4x4x4)"

    def test_coords_roundtrip(self):
        mesh = Mesh((3, 4, 5))
        for node in range(mesh.num_nodes):
            assert mesh.index(mesh.coords(node)) == node

    def test_coords_c_order(self):
        mesh = Mesh((2, 3))
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(1) == (0, 1)
        assert mesh.coords(3) == (1, 0)

    def test_bad_shape_rejected(self):
        with pytest.raises(TopologyError):
            Mesh((0, 3))
        with pytest.raises(TopologyError):
            Mesh(())

    def test_bad_node_rejected(self):
        mesh = Mesh((2, 2))
        with pytest.raises(TopologyError):
            mesh.coords(4)
        with pytest.raises(TopologyError):
            mesh.distance(0, -1)

    def test_bad_coords_rejected(self):
        mesh = Mesh((2, 2))
        with pytest.raises(TopologyError):
            mesh.index((2, 0))
        with pytest.raises(TopologyError):
            mesh.index((0,))


class TestMeshDistances:
    def test_manhattan(self):
        mesh = Mesh((4, 4))
        assert mesh.distance(mesh.index((0, 0)), mesh.index((3, 3))) == 6
        assert mesh.distance(mesh.index((1, 2)), mesh.index((1, 2))) == 0

    def test_distance_row_matches_scalar(self):
        mesh = Mesh((3, 5))
        row = mesh.distance_row(7)
        for other in range(mesh.num_nodes):
            assert row[other] == mesh.distance(7, other)

    def test_diameter(self):
        assert Mesh((4, 4)).diameter() == 6
        assert Mesh((8, 8, 8)).diameter() == 21

    def test_expected_random_distance_matches_bruteforce(self):
        mesh = Mesh((3, 4))
        mat = mesh.distance_matrix()
        assert mesh.expected_random_distance() == pytest.approx(mat.mean())

    def test_average_distance_matches_matrix(self):
        mesh = Mesh((3, 3))
        assert mesh.average_distance() == pytest.approx(mesh.distance_matrix().mean())


class TestTorusDistances:
    def test_wraparound(self):
        torus = Torus((8, 8))
        assert torus.distance(torus.index((0, 0)), torus.index((7, 7))) == 2
        assert torus.distance(torus.index((0, 0)), torus.index((4, 4))) == 8

    def test_diameter(self):
        assert Torus((8, 8)).diameter() == 8
        assert Torus((16, 16, 16)).diameter() == 24  # the paper's 4k example

    def test_paper_average_distance_4k(self):
        # "a (16,16,16) 3D-torus on 4k processors has ... average internode
        # distance of 12 hops"
        assert Torus((16, 16, 16)).expected_random_distance() == pytest.approx(12.0)

    def test_expected_random_distance_even(self):
        assert Torus((8, 8)).expected_random_distance() == pytest.approx(4.0)

    def test_expected_random_distance_odd_matches_bruteforce(self):
        torus = Torus((5, 3))
        assert torus.expected_random_distance() == pytest.approx(
            torus.distance_matrix().mean()
        )

    def test_torus_never_exceeds_mesh_distance(self):
        mesh, torus = Mesh((5, 7)), Torus((5, 7))
        mesh_mat = mesh.distance_matrix()
        torus_mat = torus.distance_matrix()
        assert (torus_mat <= mesh_mat).all()


class TestGridNeighbors:
    def test_mesh_corner_degree(self):
        mesh = Mesh((4, 4))
        assert mesh.degree(mesh.index((0, 0))) == 2
        assert mesh.degree(mesh.index((0, 1))) == 3
        assert mesh.degree(mesh.index((1, 1))) == 4

    def test_torus_uniform_degree(self):
        torus = Torus((4, 4, 4))
        for node in range(0, torus.num_nodes, 7):
            assert torus.degree(node) == 6

    def test_degenerate_axis_no_duplicate_links(self):
        # Extent-2 torus axis: +1 and -1 reach the same node; extent-1 has none.
        torus = Torus((2, 3))
        degs = {torus.degree(v) for v in range(6)}
        assert degs == {3}  # one neighbor on the 2-axis, two on the 3-ring
        line = Torus((1, 4))
        assert all(line.degree(v) == 2 for v in range(4))

    def test_neighbors_are_distance_one(self):
        for topo in (Mesh((3, 4)), Torus((4, 5))):
            for node in range(topo.num_nodes):
                for nbr in topo.neighbors(node):
                    assert topo.distance(node, nbr) == 1

    def test_links_count_mesh(self):
        # (r, c) mesh has r(c-1) + c(r-1) undirected links.
        mesh = Mesh((3, 4))
        assert mesh.num_links() == 3 * 3 + 4 * 2

    def test_links_count_torus(self):
        # Full torus (extents >= 3): every axis contributes p links.
        torus = Torus((4, 4))
        assert torus.num_links() == 2 * 16


class TestGridRouting:
    @pytest.mark.parametrize("topo", [Mesh((4, 4)), Torus((4, 4)), Torus((3, 4, 5))])
    def test_route_is_valid_path(self, topo):
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = rng.integers(0, topo.num_nodes, size=2)
            path = topo.route(int(a), int(b))
            assert path[0] == a and path[-1] == b
            for u, v in zip(path, path[1:]):
                assert topo.distance(u, v) == 1

    @pytest.mark.parametrize("topo", [Mesh((5, 5)), Torus((6, 6))])
    def test_route_is_minimal(self, topo):
        rng = np.random.default_rng(1)
        for _ in range(30):
            a, b = rng.integers(0, topo.num_nodes, size=2)
            assert len(topo.route(int(a), int(b))) - 1 == topo.distance(int(a), int(b))

    def test_route_self_is_trivial(self):
        torus = Torus((4, 4))
        assert torus.route(5, 5) == [5]

    def test_torus_route_uses_wraparound(self):
        torus = Torus((8,))
        path = torus.route(0, 7)
        assert path == [0, 7]

    def test_dimension_order(self):
        mesh = Mesh((4, 4))
        path = mesh.route(mesh.index((0, 0)), mesh.index((2, 2)))
        coords = [mesh.coords(v) for v in path]
        # Axis 0 is corrected before axis 1.
        assert coords == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]


class TestDistanceAxioms:
    @pytest.mark.parametrize(
        "topo", [Mesh((4, 5)), Torus((4, 4)), Torus((3, 5, 2)), Mesh((7,))]
    )
    def test_axioms_hold(self, topo):
        topo.validate_distance_axioms(sample=64)

    def test_distance_matrix_symmetric(self):
        torus = Torus((4, 5))
        mat = torus.distance_matrix()
        assert (mat == mat.T).all()
        assert (np.diag(mat) == 0).all()
