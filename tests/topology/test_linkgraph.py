"""Link-graph contract tests: routes, distances, and switch wiring agree.

The refactored routing contract promises that ``Topology.route`` is a path
over ``Topology.link_graph()`` and that the distance metric equals the
link-graph shortest-path hop count — on direct machines trivially (the link
graph *is* the processor graph), on indirect machines (fat-tree, dragonfly)
by construction of the switch wiring. Hypothesis drives the indirect
property across machine shapes and processor pairs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    DirectLinkGraph,
    Dragonfly,
    FatTree,
    Hypercube,
    Mesh,
    StaticLinkGraph,
    Torus,
)

fattrees = st.builds(
    FatTree,
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=3),
)

dragonflies = st.integers(min_value=1, max_value=5).flatmap(
    lambda g: st.builds(
        Dragonfly,
        st.just(g),
        st.integers(min_value=max(1, g - 1), max_value=5),
        st.integers(min_value=1, max_value=3),
    )
)


@given(topo=st.one_of(fattrees, dragonflies), data=st.data())
@settings(max_examples=60, deadline=None)
def test_distance_equals_link_graph_shortest_path(topo, data):
    """d(x, y) == BFS hop count over the switch wiring, for random pairs."""
    lg = topo.link_graph()
    x = data.draw(st.integers(0, topo.num_nodes - 1), label="x")
    y = data.draw(st.integers(0, topo.num_nodes - 1), label="y")
    assert topo.distance(x, y) == lg.shortest_hops(x, y)


@given(topo=st.one_of(fattrees, dragonflies), data=st.data())
@settings(max_examples=60, deadline=None)
def test_route_is_shortest_valid_link_graph_path(topo, data):
    lg = topo.link_graph()
    x = data.draw(st.integers(0, topo.num_nodes - 1), label="x")
    y = data.draw(st.integers(0, topo.num_nodes - 1), label="y")
    path = topo.route(x, y)
    assert path[0] == x and path[-1] == y
    assert len(set(path)) == len(path)
    for a, b in zip(path, path[1:]):
        assert lg.has_link(a, b)
    assert len(path) - 1 == topo.distance(x, y)
    # Interior nodes are switches: processors never forward through-traffic.
    assert all(lg.is_switch(node) for node in path[1:-1])


class TestDirectLinkGraph:
    @pytest.mark.parametrize(
        "topo", [Mesh((4, 4)), Torus((3, 5)), Hypercube(4)],
        ids=["mesh4x4", "torus3x5", "hypercube4"],
    )
    def test_is_the_processor_graph(self, topo):
        lg = topo.link_graph()
        assert isinstance(lg, DirectLinkGraph)
        assert lg.num_switches == 0
        assert lg.num_nodes == lg.num_processors == topo.num_nodes
        assert sorted(lg.links()) == sorted(topo.links())
        for v in range(topo.num_nodes):
            assert lg.neighbors(v) == topo.neighbors(v)
            assert not lg.is_switch(v)

    def test_has_link_matches_neighbors(self):
        topo = Torus((4, 4))
        lg = topo.link_graph()
        for a in range(topo.num_nodes):
            nbrs = set(topo.neighbors(a))
            for b in range(topo.num_nodes):
                assert lg.has_link(a, b) == (b in nbrs)

    def test_cached_per_topology(self):
        topo = Mesh((3, 3))
        assert topo.link_graph() is topo.link_graph()


class TestStaticLinkGraph:
    def test_rejects_bad_wiring(self):
        from repro.exceptions import TopologyError

        with pytest.raises(TopologyError):
            StaticLinkGraph(2, 3, [(0, 0)])  # self-link
        with pytest.raises(TopologyError):
            StaticLinkGraph(2, 3, [(0, 5)])  # out of range
        with pytest.raises(TopologyError):
            StaticLinkGraph(4, 2, [])  # fewer nodes than processors

    def test_switch_partition(self):
        lg = StaticLinkGraph(2, 4, [(0, 2), (1, 3), (2, 3)])
        assert not lg.is_switch(0) and not lg.is_switch(1)
        assert lg.is_switch(2) and lg.is_switch(3)
        assert lg.num_links() == 3
        assert lg.shortest_hops(0, 1) == 3

    def test_duplicate_links_merge(self):
        lg = StaticLinkGraph(2, 3, [(0, 2), (2, 0), (1, 2)])
        assert lg.num_links() == 2
        assert lg.neighbors(2) == [0, 1]

    def test_disconnected_pair_raises(self):
        from repro.exceptions import TopologyError

        lg = StaticLinkGraph(3, 4, [(0, 3), (1, 3)])
        with pytest.raises(TopologyError, match="no path"):
            lg.shortest_hops(0, 2)


def test_link_graph_cache_key_participation():
    """Equal-shape indirect machines share one link enumeration through the
    shared topology cache, keyed by cache_key()."""
    from repro.topology.cache import clear_topology_cache, topology_cache_info

    clear_topology_cache()
    FatTree(2, 3).link_graph()
    Dragonfly(3, 2, 2).link_graph()
    keys = topology_cache_info()["keys"]
    assert (("FatTree", 2, 3), "link_graph_links") in keys
    assert (("Dragonfly", 3, 2, 2), "link_graph_links") in keys
    # A second instance with the same shape hits the cached enumeration.
    before = len(topology_cache_info()["keys"])
    lg = FatTree(2, 3).link_graph()
    assert len(topology_cache_info()["keys"]) == before
    assert lg.num_links() == 24
    clear_topology_cache()
