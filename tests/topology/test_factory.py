"""Tests for the topology spec parser."""

from __future__ import annotations

import pytest

from repro.exceptions import SpecError
from repro.topology import FatTree, Hypercube, Mesh, Torus, topology_from_spec


class TestFactory:
    def test_mesh(self):
        topo = topology_from_spec("mesh:8x8")
        assert isinstance(topo, Mesh)
        assert topo.shape == (8, 8)

    def test_torus_3d(self):
        topo = topology_from_spec("torus:4x4x4")
        assert isinstance(topo, Torus)
        assert topo.shape == (4, 4, 4)

    def test_hypercube(self):
        topo = topology_from_spec("hypercube:6")
        assert isinstance(topo, Hypercube)
        assert topo.num_nodes == 64

    def test_fattree(self):
        topo = topology_from_spec("fattree:4x2")
        assert isinstance(topo, FatTree)
        assert topo.num_nodes == 16

    def test_case_and_whitespace(self):
        assert isinstance(topology_from_spec("Torus: 4x4 "), Torus)

    @pytest.mark.parametrize(
        "bad",
        ["torus", "mesh:", "mesh:axb", "hypercube:x", "fattree:4", "ring:5"],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(SpecError):
            topology_from_spec(bad)

    def test_invalid_shape_surfaces_topology_error(self):
        # Parseable spec, invalid machine: the domain error propagates
        # (still a ReproError subclass for blanket handling).
        from repro.exceptions import ReproError, TopologyError

        with pytest.raises(TopologyError):
            topology_from_spec("torus:4x0")
        with pytest.raises(ReproError):
            topology_from_spec("torus:4x0")


class TestDegradedSpec:
    def test_builds_degraded_wrapper(self):
        from repro.faults import DegradedTopology, FaultSet

        topo = topology_from_spec("degraded:torus:8x8;seed=3;nodes=0.05;links=0.02")
        assert isinstance(topo, DegradedTopology)
        assert isinstance(topo.base, Torus)
        assert topo.num_nodes == 64
        assert topo.faults == FaultSet.generate(
            topo.base, seed=3, node_rate=0.05, link_rate=0.02
        )

    def test_defaults_to_no_faults(self):
        topo = topology_from_spec("degraded:mesh:4x4")
        assert topo.faults.is_empty
        assert topo.num_healthy == 16

    def test_slow_links_option(self):
        topo = topology_from_spec(
            "degraded:torus:4x4;seed=1;slow=0.1;slow_factor=0.5"
        )
        assert all(f == 0.5 for _, f in topo.faults.slow_links)

    @pytest.mark.parametrize(
        "bad",
        [
            "degraded:",                       # no base topology
            "degraded:ring:5",                 # unknown base kind
            "degraded:torus:8x8;bogus=1",      # unknown option key
            "degraded:torus:8x8;nodes",        # missing =value
            "degraded:torus:8x8;nodes=abc",    # unparseable value
            "degraded:torus:8x8;nodes=2.0",    # rate out of [0, 1]
            "degraded:torus:8x8;nodes=1.0",    # would kill every processor
        ],
    )
    def test_rejects_bad_degraded_specs(self, bad):
        with pytest.raises(SpecError):
            topology_from_spec(bad)
