"""Shared topology-table cache: keys, sharing, immutability, LRU, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.mapping.estimation import (
    average_distance_vector,
    centered_distance_matrix,
)
from repro.topology import FatTree, Hypercube, MatrixTopology, Mesh, Torus
from repro.topology.cache import (
    MAX_ENTRIES,
    clear_topology_cache,
    shared_get,
    shared_put,
    topology_cache_info,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


class TestCacheKeys:
    def test_shape_defined_topologies_have_keys(self):
        assert Torus((4, 4)).cache_key() == ("Torus", (4, 4))
        assert Mesh((2, 3)).cache_key() == ("Mesh", (2, 3))
        assert Hypercube(3).cache_key() == ("Hypercube", 3)
        assert FatTree(2, 3).cache_key() == ("FatTree", 2, 3)

    def test_mesh_and_torus_keys_differ(self):
        # Same shape, different metric — must never share tables.
        assert Mesh((4, 4)).cache_key() != Torus((4, 4)).cache_key()

    def test_content_defined_topology_has_no_key(self):
        dist = Mesh((2, 2)).distance_matrix(np.int32)
        assert MatrixTopology(np.array(dist)).cache_key() is None


class TestSharing:
    def test_distance_matrix_shared_across_instances(self):
        a = Torus((4, 4)).distance_matrix(np.float64)
        b = Torus((4, 4)).distance_matrix(np.float64)
        assert a is b

    def test_distance_matrix_cached_per_dtype(self):
        topo = Torus((3, 3))
        m64 = topo.distance_matrix(np.float64)
        m32 = topo.distance_matrix(np.float32)
        assert m64 is not m32
        assert m64.dtype == np.float64 and m32.dtype == np.float32
        np.testing.assert_array_equal(m64, m32.astype(np.float64))
        # Repeat calls return the same objects, no recompute.
        assert topo.distance_matrix(np.float64) is m64
        assert topo.distance_matrix(np.float32) is m32

    def test_average_distance_vector_instance_cached_and_shared(self):
        t1, t2 = Torus((4, 4)), Torus((4, 4))
        v1 = average_distance_vector(t1)
        assert average_distance_vector(t1) is v1  # instance cache
        assert average_distance_vector(t2) is v1  # shared cache
        np.testing.assert_allclose(
            v1, t1.distance_matrix(np.float64).mean(axis=0))

    def test_centered_distance_matrix_shared_and_exact(self):
        t1, t2 = Mesh((3, 4)), Mesh((3, 4))
        c1 = centered_distance_matrix(t1)
        assert centered_distance_matrix(t2) is c1
        dist = t1.distance_matrix(np.float64)
        np.testing.assert_array_equal(c1, dist - average_distance_vector(t1))

    def test_matrix_topology_never_enters_shared_cache(self):
        dist = Mesh((2, 3)).distance_matrix(np.int32)
        topo = MatrixTopology(np.array(dist))
        before = topology_cache_info()["entries"]
        topo.distance_matrix(np.float64)
        average_distance_vector(topo)
        assert topology_cache_info()["entries"] == before
        # The per-instance caches still work.
        assert topo.distance_matrix(np.float64) is topo.distance_matrix(np.float64)


class TestImmutability:
    def test_cached_arrays_are_read_only(self):
        topo = Torus((3, 3))
        for arr in (
            topo.distance_matrix(np.float64),
            average_distance_vector(topo),
            centered_distance_matrix(topo),
        ):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 0


class TestCounters:
    def test_hit_miss_counters(self):
        prof = obs.enable()
        try:
            Torus((5, 5)).distance_matrix(np.float64)
            misses = prof.counters.get("topology.cache.misses", 0)
            assert misses >= 1
            assert prof.counters.get("topology.cache.hits", 0) == 0
            Torus((5, 5)).distance_matrix(np.float64)
            assert prof.counters["topology.cache.hits"] >= 1
            assert prof.counters["topology.cache.misses"] == misses
        finally:
            obs.disable()


class TestEviction:
    def test_lru_bounds_entries(self):
        for n in range(2, 2 + MAX_ENTRIES + 8):
            Mesh((n,)).distance_matrix(np.float64)
        info = topology_cache_info()
        assert info["entries"] <= MAX_ENTRIES
        # The newest shape survived; the oldest was evicted.
        keys = info["keys"]
        assert (("Mesh", (2 + MAX_ENTRIES + 7,)), "distance_matrix",
                np.dtype(np.float64).str) in keys

    def test_clear_returns_count(self):
        Torus((3, 3)).distance_matrix(np.float64)
        Mesh((2, 2)).distance_matrix(np.float64)
        assert clear_topology_cache() >= 2
        assert topology_cache_info() == {"entries": 0, "bytes": 0, "keys": []}

    def test_shared_put_get_roundtrip(self):
        arr = np.arange(4.0)
        stored = shared_put(("test-key",), arr)
        assert stored is arr and not arr.flags.writeable
        assert shared_get(("test-key",)) is arr
        assert shared_get(("absent",)) is None


class TestEvictionPressure:
    """Eviction must never change *values* — only who pays the recompute."""

    @staticmethod
    def _flood(count=MAX_ENTRIES + 4, start=50):
        # Distinct 1-D mesh shapes, one shared-cache entry each.
        for n in range(start, start + count):
            Mesh((n,)).distance_matrix(np.float64)

    def test_refetched_table_is_bit_identical(self):
        key = (Torus((4, 4)).cache_key(), "distance_matrix",
               np.dtype(np.float64).str)
        before = np.array(Torus((4, 4)).distance_matrix(np.float64))
        self._flood()
        assert key not in topology_cache_info()["keys"]  # evicted
        refetched = Torus((4, 4)).distance_matrix(np.float64)
        assert np.array_equal(refetched, before)
        assert refetched.dtype == before.dtype

    def test_refetched_table_is_still_read_only(self):
        Torus((4, 4)).distance_matrix(np.float64)
        self._flood()
        refetched = Torus((4, 4)).distance_matrix(np.float64)
        assert not refetched.flags.writeable
        with pytest.raises(ValueError):
            refetched[0] = 0

    def test_derived_vectors_survive_eviction_cycle(self):
        v_before = np.array(average_distance_vector(Torus((4, 4))))
        c_before = np.array(centered_distance_matrix(Torus((4, 4))))
        self._flood()
        np.testing.assert_array_equal(
            average_distance_vector(Torus((4, 4))), v_before)
        np.testing.assert_array_equal(
            centered_distance_matrix(Torus((4, 4))), c_before)

    def test_lru_refresh_protects_hot_entry(self):
        hot = (Torus((4, 4)).cache_key(), "distance_matrix",
               np.dtype(np.float64).str)
        Torus((4, 4)).distance_matrix(np.float64)
        # Touch the hot entry between batches of cold fills: a get must
        # refresh recency, so the hot entry outlives both batches.
        self._flood(count=MAX_ENTRIES - 2, start=50)
        Torus((4, 4)).distance_matrix(np.float64)
        self._flood(count=MAX_ENTRIES - 2, start=200)
        assert hot in topology_cache_info()["keys"]

    def test_counters_stay_consistent_under_eviction(self):
        prof = obs.enable()
        try:
            lookups = 0
            # Fresh instance per call so every lookup goes to the shared
            # cache (the per-instance cache would otherwise absorb repeats).
            Torus((4, 4)).distance_matrix(np.float64); lookups += 1  # miss
            Torus((4, 4)).distance_matrix(np.float64); lookups += 1  # hit
            flood = MAX_ENTRIES + 4
            self._flood(count=flood); lookups += flood               # misses
            Torus((4, 4)).distance_matrix(np.float64); lookups += 1  # miss again
            hits = prof.counters.get("topology.cache.hits", 0)
            misses = prof.counters.get("topology.cache.misses", 0)
            assert hits + misses == lookups
            assert hits == 1
            assert misses == lookups - 1
            assert topology_cache_info()["entries"] <= MAX_ENTRIES
        finally:
            obs.disable()
