"""Tests that the distance-axiom checker actually catches violations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import Torus
from repro.topology.base import Topology


class _BrokenTopology(Topology):
    """Configurable-violation metric for exercising the checker."""

    def __init__(self, mode: str):
        super().__init__(4)
        self._mode = mode

    @property
    def name(self) -> str:
        return f"broken({self._mode})"

    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        if self._mode == "asymmetric":
            # d(a, b) = b - a (mod hack): not symmetric
            return np.array([abs(node - j) + (1 if j > node else 0) for j in range(4)])
        if self._mode == "nonzero_self":
            row = np.ones(4, dtype=np.int32)
            return row
        if self._mode == "triangle":
            # d(0,3)=10 but d(0,1)+d(1,3)=2: violates the triangle inequality
            base = np.array([[0, 1, 1, 10],
                             [1, 0, 1, 1],
                             [1, 1, 0, 1],
                             [10, 1, 1, 0]])
            return base[node]
        raise AssertionError(self._mode)

    def neighbors(self, node: int) -> list[int]:
        return [j for j in range(4) if j != node]

    def route(self, src: int, dst: int) -> list[int]:
        return [src, dst] if src != dst else [src]


class TestAxiomChecker:
    def test_accepts_valid_metric(self):
        Torus((4, 4)).validate_distance_axioms(sample=32)

    @pytest.mark.parametrize("mode,match", [
        ("asymmetric", "asymmetric"),
        ("nonzero_self", "!= 0"),
        ("triangle", "triangle"),
    ])
    def test_detects_violation(self, mode, match):
        topo = _BrokenTopology(mode)
        with pytest.raises(TopologyError, match=match):
            topo.validate_distance_axioms(sample=256, seed=1)


class TestAxisOrderRouting:
    def test_all_orders_minimal(self):
        topo = Torus((3, 4, 5))
        from itertools import permutations

        rng = np.random.default_rng(0)
        for _ in range(10):
            a, b = (int(x) for x in rng.integers(0, topo.num_nodes, size=2))
            want = topo.distance(a, b)
            for order in permutations(range(3)):
                path = topo.route_axis_order(a, b, order)
                assert path[0] == a and path[-1] == b
                assert len(path) - 1 == want
                for u, v in zip(path, path[1:]):
                    assert topo.distance(u, v) == 1

    def test_orders_differ_when_multiple_axes_move(self):
        topo = Torus((4, 4))
        a, b = topo.index((0, 0)), topo.index((2, 2))
        p01 = topo.route_axis_order(a, b, (0, 1))
        p10 = topo.route_axis_order(a, b, (1, 0))
        assert p01 != p10
        assert len(p01) == len(p10)
