"""Property-based tests over randomly shaped grid topologies."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Mesh, Torus

shapes = st.lists(st.integers(1, 6), min_size=1, max_size=3).map(tuple).filter(
    lambda s: 2 <= int(np.prod(s)) <= 80
)


@given(shapes, st.booleans(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_metric_axioms(shape, wrap, seed):
    topo = (Torus if wrap else Mesh)(shape)
    rng = np.random.default_rng(seed)
    a, b, c = (int(x) for x in rng.integers(0, topo.num_nodes, size=3))
    assert topo.distance(a, a) == 0
    assert topo.distance(a, b) == topo.distance(b, a)
    assert topo.distance(a, b) <= topo.distance(a, c) + topo.distance(c, b)


@given(shapes, st.booleans(), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_route_length_equals_distance(shape, wrap, seed):
    topo = (Torus if wrap else Mesh)(shape)
    rng = np.random.default_rng(seed)
    a, b = (int(x) for x in rng.integers(0, topo.num_nodes, size=2))
    path = topo.route(a, b)
    assert path[0] == a and path[-1] == b
    assert len(path) - 1 == topo.distance(a, b)
    # Consecutive path nodes must be directly linked.
    for u, v in zip(path, path[1:]):
        assert v in topo.neighbors(u)


@given(shapes, st.booleans())
@settings(max_examples=40, deadline=None)
def test_distance_row_consistent_with_matrix(shape, wrap):
    topo = (Torus if wrap else Mesh)(shape)
    mat = topo.distance_matrix()
    for node in range(0, topo.num_nodes, max(1, topo.num_nodes // 5)):
        assert (mat[node] == topo.distance_row(node)).all()


@given(shapes)
@settings(max_examples=40, deadline=None)
def test_torus_dominates_mesh(shape):
    mesh, torus = Mesh(shape), Torus(shape)
    assert (torus.distance_matrix() <= mesh.distance_matrix()).all()
    assert torus.diameter() <= mesh.diameter()


@given(shapes, st.booleans())
@settings(max_examples=30, deadline=None)
def test_neighbor_symmetry(shape, wrap):
    topo = (Torus if wrap else Mesh)(shape)
    for node in range(topo.num_nodes):
        for nbr in topo.neighbors(node):
            assert node in topo.neighbors(nbr)
