"""Fault sets and degraded topologies: determinism, metric soundness, caching."""

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.faults import DegradedTopology, FaultSet
from repro.topology.cache import clear_topology_cache
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


# --------------------------------------------------------------- FaultSet
class TestFaultSet:
    def test_generate_is_bit_deterministic_per_seed(self):
        topo = Torus((8, 8))
        kwargs = dict(seed=7, node_rate=0.1, link_rate=0.05, slow_rate=0.05)
        a = FaultSet.generate(topo, **kwargs)
        b = FaultSet.generate(topo, **kwargs)
        assert a == b
        assert a.signature() == b.signature()
        assert hash(a) == hash(b)

    def test_different_seeds_differ(self):
        topo = Torus((8, 8))
        a = FaultSet.generate(topo, seed=1, node_rate=0.1, link_rate=0.05)
        b = FaultSet.generate(topo, seed=2, node_rate=0.1, link_rate=0.05)
        assert a != b

    def test_rates_produce_expected_counts(self):
        topo = Torus((8, 8))
        fs = FaultSet.generate(topo, seed=3, node_rate=0.05, link_rate=0.02)
        assert len(fs.dead_nodes) == round(0.05 * 64)
        assert len(fs.dead_links) >= 1
        assert not fs.is_empty

    def test_links_normalized_and_sorted(self):
        fs = FaultSet(dead_links=[(5, 2), (1, 0)])
        assert fs.dead_links == ((0, 1), (2, 5))

    def test_slow_links_validated(self):
        with pytest.raises(TopologyError):
            FaultSet(slow_links=[(0, 1, 0.0)])
        with pytest.raises(TopologyError):
            FaultSet(slow_links=[(0, 1, 1.5)])
        with pytest.raises(TopologyError):
            FaultSet(dead_links=[(0, 1)], slow_links=[(1, 0, 0.5)])

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            FaultSet(dead_links=[(3, 3)])

    def test_bad_rates_rejected(self):
        topo = Torus((4, 4))
        with pytest.raises(TopologyError):
            FaultSet.generate(topo, node_rate=1.5)
        with pytest.raises(TopologyError):
            FaultSet.generate(topo, node_rate=1.0)  # would kill everything

    def test_validate_against_topology(self):
        topo = Mesh((4, 4))
        with pytest.raises(TopologyError):
            FaultSet(dead_nodes=[99]).validate(topo)
        with pytest.raises(TopologyError):
            FaultSet(dead_links=[(0, 5)]).validate(topo)  # not a mesh link
        FaultSet(dead_nodes=[3], dead_links=[(0, 1)]).validate(topo)

    def test_bandwidth_overrides(self):
        fs = FaultSet(slow_links=[(0, 1, 0.25)])
        assert fs.bandwidth_overrides(100.0) == {(0, 1): 25.0}


# ------------------------------------------------------- DegradedTopology
class TestDegradedTopology:
    def _degraded(self):
        base = Torus((8, 8))
        faults = FaultSet.generate(base, seed=3, node_rate=0.05, link_rate=0.02)
        return base, faults, DegradedTopology(base, faults)

    def test_preserves_node_ids_and_count(self):
        base, faults, deg = self._degraded()
        assert deg.num_nodes == base.num_nodes
        assert deg.num_healthy == base.num_nodes - len(faults.dead_nodes)
        assert np.array_equal(
            deg.healthy_nodes(), np.flatnonzero(deg.allowed_mask())
        )

    def test_dead_node_has_no_links(self):
        _, faults, deg = self._degraded()
        for v in faults.dead_nodes:
            assert deg.neighbors(v) == []

    def test_dead_link_removed_both_ways(self):
        _, faults, deg = self._degraded()
        for a, b in faults.dead_links:
            assert b not in deg.neighbors(a)
            assert a not in deg.neighbors(b)

    def test_distances_detour_around_faults(self):
        base, faults, deg = self._degraded()
        d_base = base.distance_matrix()
        d_deg = deg.distance_matrix()
        healthy = deg.allowed_mask()
        hh = np.ix_(healthy, healthy)
        reachable = d_deg[hh] < deg.unreachable_distance
        # Removing links can only lengthen (never shorten) healthy paths.
        assert (d_deg[hh][reachable] >= d_base[hh][reachable]).all()

    def test_sentinel_for_dead_pairs(self):
        _, faults, deg = self._degraded()
        d = deg.distance_matrix()
        for v in faults.dead_nodes:
            assert d[v, v] == 0
            others = np.arange(deg.num_nodes) != v
            assert (d[v, others] == deg.unreachable_distance).all()
            assert (d[others, v] == deg.unreachable_distance).all()

    def test_metric_axioms_hold_with_sentinel(self):
        _, _, deg = self._degraded()
        d = deg.distance_matrix().astype(np.int64)
        assert (d == d.T).all()
        assert (np.diag(d) == 0).all()
        p = deg.num_nodes
        # triangle inequality, sentinel included
        assert (d[:, None, :] <= d[:, :, None] + d[None, :, :]).all()

    def test_route_is_valid_and_deterministic(self):
        _, _, deg = self._degraded()
        d = deg.distance_matrix()
        healthy = deg.healthy_nodes()
        src, dst = int(healthy[0]), int(healthy[-1])
        route = deg.route(src, dst)
        assert route == deg.route(src, dst)
        assert route[0] == src and route[-1] == dst
        assert len(route) - 1 == d[src, dst]
        for a, b in zip(route, route[1:]):
            assert b in deg.neighbors(a)

    def test_route_to_dead_endpoint_raises(self):
        _, faults, deg = self._degraded()
        dead = faults.dead_nodes[0]
        alive = int(deg.healthy_nodes()[0])
        with pytest.raises(TopologyError):
            deg.route(alive, dead)
        with pytest.raises(TopologyError):
            deg.route(dead, alive)

    def test_nesting_rejected(self):
        base, faults, deg = self._degraded()
        with pytest.raises(TopologyError):
            DegradedTopology(deg, FaultSet())

    def test_all_dead_rejected(self):
        base = Mesh((2, 1))
        with pytest.raises(TopologyError):
            DegradedTopology(base, FaultSet(dead_nodes=[0, 1]))

    def test_invalid_faults_rejected_at_construction(self):
        base = Mesh((4, 4))
        with pytest.raises(TopologyError):
            DegradedTopology(base, FaultSet(dead_nodes=[64]))


# ------------------------------------------------------------ cache keys
class TestDegradedCaching:
    def test_pristine_and_degraded_tables_are_distinct(self):
        """Same machine shape, different fault state -> different tables.

        A degraded machine must never alias the pristine machine's cached
        distance matrix (or another fault pattern's)."""
        base = Torus((8, 8))
        faults = FaultSet(dead_links=[(0, 1)])
        deg = DegradedTopology(base, faults)
        d_base = base.distance_matrix()
        d_deg = deg.distance_matrix()
        assert d_base.shape == d_deg.shape
        assert d_base is not d_deg
        assert not np.array_equal(d_base, d_deg)  # the hole lengthens paths
        # Fresh instances hit the right (separate) shared entries.
        assert np.array_equal(
            DegradedTopology(Torus((8, 8)), faults).distance_matrix(), d_deg
        )
        assert np.array_equal(Torus((8, 8)).distance_matrix(), d_base)

    def test_cache_key_folds_fault_signature(self):
        base = Torus((8, 8))
        fa = FaultSet(dead_nodes=[3])
        fb = FaultSet(dead_nodes=[4])
        ka = DegradedTopology(base, fa).cache_key()
        kb = DegradedTopology(base, fb).cache_key()
        assert ka is not None and kb is not None
        assert ka != kb
        assert ka != base.cache_key()
        assert ka == DegradedTopology(Torus((8, 8)), fa).cache_key()

    def test_uncacheable_base_stays_uncacheable(self):
        class NoKey(Mesh):
            def cache_key(self):
                return None

        deg = DegradedTopology(NoKey((3, 3)), FaultSet(dead_nodes=[0]))
        assert deg.cache_key() is None
