"""Tests for the SubTopology (machine allocation) view."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.mapping import TopoLB
from repro.taskgraph import mesh2d_pattern
from repro.topology import Mesh, SubTopology, Torus


class TestSubTopology:
    def test_distances_come_from_parent(self):
        parent = Mesh((4, 4))
        # Take a sparse diagonal: distances must be parent distances.
        nodes = [parent.index((i, i)) for i in range(4)]
        sub = SubTopology(parent, nodes)
        assert sub.num_nodes == 4
        assert sub.distance(0, 3) == parent.distance(nodes[0], nodes[3]) == 6
        assert sub.distance(1, 2) == 2

    def test_distance_row_matches_scalar(self):
        parent = Torus((4, 4))
        sub = SubTopology(parent, [0, 5, 10, 15, 3])
        for a in range(5):
            row = sub.distance_row(a)
            for b in range(5):
                assert row[b] == sub.distance(a, b)

    def test_id_translation(self):
        parent = Mesh((3, 3))
        sub = SubTopology(parent, [4, 7, 2])
        assert sub.to_parent(0) == 4
        assert sub.from_parent(7) == 1
        # Misses raise TopologyError like every other accessor — never a
        # bare KeyError from the internal lookup table.
        with pytest.raises(TopologyError, match="not part of"):
            sub.from_parent(0)

    def test_from_parent_distinguishes_out_of_range(self):
        parent = Mesh((3, 3))
        sub = SubTopology(parent, [4, 7, 2])
        with pytest.raises(TopologyError, match="out of range"):
            sub.from_parent(9)
        with pytest.raises(TopologyError, match="out of range"):
            sub.from_parent(-1)

    def test_neighbors_restricted(self):
        parent = Mesh((3, 3))
        # Block: the left 3x2 sub-rectangle.
        nodes = [parent.index((r, c)) for r in range(3) for c in range(2)]
        sub = SubTopology(parent, nodes)
        # local 0 = (0,0): parent nbrs (0,1) and (1,0) are both in subset
        assert sorted(sub.to_parent(v) for v in sub.neighbors(0)) == sorted(
            [parent.index((0, 1)), parent.index((1, 0))]
        )

    def test_sparse_subset_may_have_no_neighbors(self):
        parent = Mesh((4, 4))
        sub = SubTopology(parent, [0, 15])
        assert sub.neighbors(0) == []
        assert sub.distance(0, 1) == 6

    def test_route_raises(self):
        sub = SubTopology(Mesh((2, 2)), [0, 3])
        with pytest.raises(TopologyError, match="metric-only"):
            sub.route(0, 1)

    def test_validation(self):
        parent = Mesh((2, 2))
        with pytest.raises(TopologyError):
            SubTopology(parent, [])
        with pytest.raises(TopologyError):
            SubTopology(parent, [0, 0])
        with pytest.raises(TopologyError):
            SubTopology(parent, [0, 9])

    def test_mapping_onto_allocation(self):
        """The use case: map a job onto a compact corner of a big machine."""
        machine = Torus((8, 8))
        corner = [machine.index((r, c)) for r in range(4) for c in range(4)]
        allocation = SubTopology(machine, corner)
        job = mesh2d_pattern(4, 4)
        mapping = TopoLB().map(job, allocation)
        assert mapping.hops_per_byte == pytest.approx(1.0)

    def test_axioms(self):
        parent = Torus((4, 4))
        sub = SubTopology(parent, list(range(0, 16, 2)))
        sub.validate_distance_axioms()
