"""Tests for hypercube, fat-tree and arbitrary-graph topologies."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import ArbitraryTopology, FatTree, Hypercube


class TestHypercube:
    def test_sizes(self):
        assert Hypercube(0).num_nodes == 1
        assert Hypercube(5).num_nodes == 32

    def test_distance_is_hamming(self):
        cube = Hypercube(4)
        assert cube.distance(0b0000, 0b1111) == 4
        assert cube.distance(0b1010, 0b1001) == 2
        assert cube.distance(3, 3) == 0

    def test_distance_row_matches_scalar(self):
        cube = Hypercube(5)
        row = cube.distance_row(13)
        for other in range(32):
            assert row[other] == bin(13 ^ other).count("1")

    def test_neighbors(self):
        cube = Hypercube(3)
        assert sorted(cube.neighbors(0)) == [1, 2, 4]
        assert all(cube.degree(v) == 3 for v in range(8))

    def test_route_is_minimal_valid(self):
        cube = Hypercube(6)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = (int(x) for x in rng.integers(0, 64, size=2))
            path = cube.route(a, b)
            assert path[0] == a and path[-1] == b
            assert len(path) - 1 == cube.distance(a, b)
            for u, v in zip(path, path[1:]):
                assert bin(u ^ v).count("1") == 1

    def test_diameter_and_expectation(self):
        cube = Hypercube(7)
        assert cube.diameter() == 7
        assert cube.expected_random_distance() == pytest.approx(3.5)

    def test_axioms(self):
        Hypercube(5).validate_distance_axioms()

    def test_bad_dim(self):
        with pytest.raises(TopologyError):
            Hypercube(-1)
        with pytest.raises(TopologyError):
            Hypercube(25)


class TestFatTree:
    def test_sizes(self):
        assert FatTree(4, 3).num_nodes == 64
        assert FatTree(2, 1).num_nodes == 2

    def test_distance_structure(self):
        ft = FatTree(2, 3)  # 8 processors
        assert ft.distance(0, 1) == 2  # same leaf switch
        assert ft.distance(0, 2) == 4  # one level up
        assert ft.distance(0, 4) == 6  # via the root
        assert ft.distance(5, 5) == 0

    def test_distance_row_symmetry(self):
        ft = FatTree(3, 2)
        mat = ft.distance_matrix()
        assert (mat == mat.T).all()

    def test_neighbors_share_leaf_switch(self):
        ft = FatTree(4, 2)
        assert sorted(ft.neighbors(5)) == [4, 6, 7]

    def test_route_raises(self):
        with pytest.raises(TopologyError, match="indirect"):
            FatTree(2, 2).route(0, 3)
        with pytest.raises(TopologyError):
            FatTree(2, 2).links()

    def test_diameter(self):
        assert FatTree(2, 3).diameter() == 6

    def test_expected_distance_matches_bruteforce(self):
        ft = FatTree(3, 2)
        assert ft.expected_random_distance() == pytest.approx(ft.distance_matrix().mean())

    def test_nearly_uniform_distance(self):
        # The paper's point: fat-tree distances barely vary, so mapping
        # matters far less than on a torus.
        ft = FatTree(4, 3)
        mat = ft.distance_matrix().astype(float)
        off_diag = mat[~np.eye(len(mat), dtype=bool)]
        assert off_diag.std() / off_diag.mean() < 0.35

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            FatTree(1, 2)
        with pytest.raises(TopologyError):
            FatTree(2, 0)


class TestArbitraryTopology:
    def test_path_graph(self):
        topo = ArbitraryTopology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.distance(0, 3) == 3
        assert topo.route(0, 3) == [0, 1, 2, 3]
        assert topo.num_links() == 3

    def test_duplicate_and_reversed_edges_merge(self):
        topo = ArbitraryTopology(3, [(0, 1), (1, 0), (1, 2), (1, 2)])
        assert topo.num_links() == 2

    def test_disconnected_rejected(self):
        with pytest.raises(TopologyError, match="disconnected"):
            ArbitraryTopology(4, [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            ArbitraryTopology(2, [(0, 0)])

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            ArbitraryTopology(2, [(0, 5)])

    def test_from_networkx(self):
        g = nx.cycle_graph(6)
        topo = ArbitraryTopology.from_networkx(g)
        assert topo.distance(0, 3) == 3
        assert topo.distance(0, 5) == 1

    def test_from_networkx_bad_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(TopologyError):
            ArbitraryTopology.from_networkx(g)

    def test_matches_networkx_shortest_paths(self):
        g = nx.random_regular_graph(3, 16, seed=4)
        topo = ArbitraryTopology.from_networkx(g)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for a in range(16):
            row = topo.distance_row(a)
            for b in range(16):
                assert row[b] == lengths[a][b]

    def test_route_valid_and_minimal(self):
        g = nx.petersen_graph()
        topo = ArbitraryTopology.from_networkx(g)
        for a in range(10):
            for b in range(10):
                path = topo.route(a, b)
                assert path[0] == a and path[-1] == b
                assert len(path) - 1 == topo.distance(a, b)
                for u, v in zip(path, path[1:]):
                    assert g.has_edge(u, v)

    def test_axioms(self):
        topo = ArbitraryTopology.from_networkx(nx.petersen_graph())
        topo.validate_distance_axioms()

    def test_single_node(self):
        topo = ArbitraryTopology(1, [])
        assert topo.distance(0, 0) == 0
        assert topo.route(0, 0) == [0]
