"""Tests for hypercube, fat-tree, dragonfly and arbitrary-graph topologies."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.topology import ArbitraryTopology, Dragonfly, FatTree, Hypercube


class TestHypercube:
    def test_sizes(self):
        assert Hypercube(0).num_nodes == 1
        assert Hypercube(5).num_nodes == 32

    def test_distance_is_hamming(self):
        cube = Hypercube(4)
        assert cube.distance(0b0000, 0b1111) == 4
        assert cube.distance(0b1010, 0b1001) == 2
        assert cube.distance(3, 3) == 0

    def test_distance_row_matches_scalar(self):
        cube = Hypercube(5)
        row = cube.distance_row(13)
        for other in range(32):
            assert row[other] == bin(13 ^ other).count("1")

    def test_neighbors(self):
        cube = Hypercube(3)
        assert sorted(cube.neighbors(0)) == [1, 2, 4]
        assert all(cube.degree(v) == 3 for v in range(8))

    def test_route_is_minimal_valid(self):
        cube = Hypercube(6)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = (int(x) for x in rng.integers(0, 64, size=2))
            path = cube.route(a, b)
            assert path[0] == a and path[-1] == b
            assert len(path) - 1 == cube.distance(a, b)
            for u, v in zip(path, path[1:]):
                assert bin(u ^ v).count("1") == 1

    def test_diameter_and_expectation(self):
        cube = Hypercube(7)
        assert cube.diameter() == 7
        assert cube.expected_random_distance() == pytest.approx(3.5)

    def test_axioms(self):
        Hypercube(5).validate_distance_axioms()

    def test_bad_dim(self):
        with pytest.raises(TopologyError):
            Hypercube(-1)
        with pytest.raises(TopologyError):
            Hypercube(25)


class TestFatTree:
    def test_sizes(self):
        assert FatTree(4, 3).num_nodes == 64
        assert FatTree(2, 1).num_nodes == 2

    def test_distance_structure(self):
        ft = FatTree(2, 3)  # 8 processors
        assert ft.distance(0, 1) == 2  # same leaf switch
        assert ft.distance(0, 2) == 4  # one level up
        assert ft.distance(0, 4) == 6  # via the root
        assert ft.distance(5, 5) == 0

    def test_distance_row_symmetry(self):
        ft = FatTree(3, 2)
        mat = ft.distance_matrix()
        assert (mat == mat.T).all()

    def test_neighbors_share_leaf_switch(self):
        ft = FatTree(4, 2)
        assert sorted(ft.neighbors(5)) == [4, 6, 7]

    def test_route_over_switch_fabric(self):
        ft = FatTree(2, 2)
        lg = ft.link_graph()
        path = ft.route(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) - 1 == ft.distance(0, 3) == 4
        # Interior hops are switches, packed after the processor ids.
        assert all(node >= ft.num_nodes for node in path[1:-1])
        for a, b in zip(path, path[1:]):
            assert lg.has_link(a, b)

    def test_route_length_equals_distance(self):
        ft = FatTree(3, 3)
        mat = ft.distance_matrix()
        rng = np.random.default_rng(1)
        for _ in range(60):
            a, b = (int(x) for x in rng.integers(0, ft.num_nodes, size=2))
            path = ft.route(a, b)
            assert path[0] == a and path[-1] == b
            assert len(path) - 1 == mat[a, b]
            assert len(set(path)) == len(path)

    def test_route_deterministic_up_link(self):
        ft = FatTree(4, 3)
        assert ft.route(5, 37) == ft.route(5, 37)

    def test_link_graph_shape(self):
        # k-ary n-tree wiring: L * a**L undirected links, L * a**(L-1) switches.
        ft = FatTree(2, 3)
        lg = ft.link_graph()
        assert lg.num_processors == 8
        assert lg.num_switches == 12
        assert lg.num_links() == 3 * 2**3
        assert sum(1 for _ in ft.links()) == lg.num_links()
        # Every processor has degree 1 (one cable to its leaf switch).
        assert all(lg.degree(x) == 1 for x in range(8))

    def test_diameter(self):
        assert FatTree(2, 3).diameter() == 6

    def test_expected_distance_matches_bruteforce(self):
        ft = FatTree(3, 2)
        assert ft.expected_random_distance() == pytest.approx(ft.distance_matrix().mean())

    def test_nearly_uniform_distance(self):
        # The paper's point: fat-tree distances barely vary, so mapping
        # matters far less than on a torus.
        ft = FatTree(4, 3)
        mat = ft.distance_matrix().astype(float)
        off_diag = mat[~np.eye(len(mat), dtype=bool)]
        assert off_diag.std() / off_diag.mean() < 0.35

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            FatTree(1, 2)
        with pytest.raises(TopologyError):
            FatTree(2, 0)


class TestDragonfly:
    def test_sizes(self):
        assert Dragonfly(4, 4, 2).num_nodes == 32
        assert Dragonfly(1, 1, 1).num_nodes == 1

    def test_hierarchical_distances(self):
        df = Dragonfly(4, 4, 2)
        assert df.distance(0, 0) == 0
        assert df.distance(0, 1) == 2   # same router
        assert df.distance(0, 2) == 3   # same group, other router
        # Inter-group: 3 plus one hop per needed group-local detour.
        inter = df.distance_matrix()[:8, 8:]
        assert inter.min() == 3 and inter.max() == 5

    def test_route_over_routers(self):
        df = Dragonfly(4, 4, 2)
        lg = df.link_graph()
        mat = df.distance_matrix()
        for x in range(df.num_nodes):
            for y in range(df.num_nodes):
                path = df.route(x, y)
                assert path[0] == x and path[-1] == y
                assert len(path) - 1 == mat[x, y]
                assert all(node >= df.num_nodes for node in path[1:-1])
                for a, b in zip(path, path[1:]):
                    assert lg.has_link(a, b)

    def test_one_global_link_per_group_pair(self):
        df = Dragonfly(5, 4, 1)
        lg = df.link_graph()
        p, r = df.num_nodes, df.routers
        globals_seen = set()
        for a, b in lg.links():
            if a >= p and b >= p:
                ga, gb = (a - p) // r, (b - p) // r
                if ga != gb:
                    globals_seen.add((ga, gb))
        assert len(globals_seen) == 5 * 4 // 2

    def test_each_router_hosts_at_most_one_global_port(self):
        # The structural property that keeps minimal routes shortest.
        df = Dragonfly(6, 5, 1)
        lg = df.link_graph()
        p, r = df.num_nodes, df.routers
        ports = {}
        for a, b in lg.links():
            if a >= p and b >= p and (a - p) // r != (b - p) // r:
                for node in (a, b):
                    ports[node] = ports.get(node, 0) + 1
        assert max(ports.values()) == 1

    def test_axioms(self):
        Dragonfly(4, 4, 2).validate_distance_axioms()
        Dragonfly(2, 3, 2).validate_distance_axioms()

    def test_diameter(self):
        assert Dragonfly(4, 4, 2).diameter() == 5
        assert Dragonfly(1, 3, 2).diameter() == 3
        assert Dragonfly(1, 1, 4).diameter() == 2

    def test_bad_params(self):
        with pytest.raises(TopologyError):
            Dragonfly(0, 1, 1)
        # >= 3 groups need routers >= groups - 1 (one global port per router).
        with pytest.raises(TopologyError, match="global port"):
            Dragonfly(5, 2, 1)


class TestArbitraryTopology:
    def test_path_graph(self):
        topo = ArbitraryTopology(4, [(0, 1), (1, 2), (2, 3)])
        assert topo.distance(0, 3) == 3
        assert topo.route(0, 3) == [0, 1, 2, 3]
        assert topo.num_links() == 3

    def test_duplicate_and_reversed_edges_merge(self):
        topo = ArbitraryTopology(3, [(0, 1), (1, 0), (1, 2), (1, 2)])
        assert topo.num_links() == 2

    def test_disconnected_rejected(self):
        with pytest.raises(TopologyError, match="disconnected"):
            ArbitraryTopology(4, [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            ArbitraryTopology(2, [(0, 0)])

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            ArbitraryTopology(2, [(0, 5)])

    def test_from_networkx(self):
        g = nx.cycle_graph(6)
        topo = ArbitraryTopology.from_networkx(g)
        assert topo.distance(0, 3) == 3
        assert topo.distance(0, 5) == 1

    def test_from_networkx_bad_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(TopologyError):
            ArbitraryTopology.from_networkx(g)

    def test_matches_networkx_shortest_paths(self):
        g = nx.random_regular_graph(3, 16, seed=4)
        topo = ArbitraryTopology.from_networkx(g)
        lengths = dict(nx.all_pairs_shortest_path_length(g))
        for a in range(16):
            row = topo.distance_row(a)
            for b in range(16):
                assert row[b] == lengths[a][b]

    def test_route_valid_and_minimal(self):
        g = nx.petersen_graph()
        topo = ArbitraryTopology.from_networkx(g)
        for a in range(10):
            for b in range(10):
                path = topo.route(a, b)
                assert path[0] == a and path[-1] == b
                assert len(path) - 1 == topo.distance(a, b)
                for u, v in zip(path, path[1:]):
                    assert g.has_edge(u, v)

    def test_axioms(self):
        topo = ArbitraryTopology.from_networkx(nx.petersen_graph())
        topo.validate_distance_axioms()

    def test_single_node(self):
        topo = ArbitraryTopology(1, [])
        assert topo.distance(0, 0) == 0
        assert topo.route(0, 0) == [0]
