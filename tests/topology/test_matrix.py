"""Tests for MatrixTopology (explicit-distance machines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.mapping import TopoLB
from repro.taskgraph import mesh2d_pattern
from repro.topology import MatrixTopology, Torus


class TestMatrixTopology:
    def test_wraps_matrix(self):
        mat = np.array([[0.0, 1.5, 2.0], [1.5, 0.0, 1.0], [2.0, 1.0, 0.0]])
        topo = MatrixTopology(mat)
        assert topo.num_nodes == 3
        assert topo.distance(0, 1) == 1.5
        assert (topo.distance_row(2) == [2.0, 1.0, 0.0]).all()

    def test_distance_matrix_preserves_floats(self):
        mat = np.array([[0.0, 0.5], [0.5, 0.0]])
        topo = MatrixTopology(mat)
        assert topo.distance_matrix()[0, 1] == 0.5

    def test_neighbors_are_closest(self):
        mat = np.array([[0.0, 1.0, 3.0], [1.0, 0.0, 1.0], [3.0, 1.0, 0.0]])
        topo = MatrixTopology(mat)
        assert topo.neighbors(0) == [1]
        assert sorted(topo.neighbors(1)) == [0, 2]

    def test_route_raises(self):
        topo = MatrixTopology(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(TopologyError, match="metric-only"):
            topo.route(0, 1)

    def test_validation(self):
        with pytest.raises(TopologyError, match="square"):
            MatrixTopology(np.zeros((2, 3)))
        with pytest.raises(TopologyError, match="symmetric"):
            MatrixTopology(np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(TopologyError, match="diagonal"):
            MatrixTopology(np.array([[1.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(TopologyError, match="non-negative"):
            MatrixTopology(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(TopologyError, match="positive distance"):
            MatrixTopology(np.array([[0.0, 0.0], [0.0, 0.0]]))

    def test_readonly(self):
        topo = MatrixTopology(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            topo.distance_matrix()[0, 1] = 9.0

    def test_mapping_on_matrix_machine(self):
        """A matrix copy of a torus behaves identically for the mapper."""
        torus = Torus((4, 4))
        twin = MatrixTopology(torus.distance_matrix().astype(float))
        g = mesh2d_pattern(4, 4)
        hpb_real = TopoLB().map(g, torus).hops_per_byte
        hpb_twin = TopoLB().map(g, twin).hops_per_byte
        assert hpb_twin == pytest.approx(hpb_real)

    def test_single_node(self):
        topo = MatrixTopology(np.zeros((1, 1)))
        assert topo.neighbors(0) == []
