"""Tests for the extended mapper family (annealing, ARM, linear, hybrid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.mapping import (
    HybridTopoLB,
    LinearOrderingMapper,
    RandomMapper,
    RecursiveEmbeddingMapper,
    SimulatedAnnealingMapper,
    TopoLB,
    expected_random_hops_per_byte,
    grow_processor_blocks,
    snake_order,
)
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph
from repro.topology import Hypercube, Mesh, Torus
from repro.utils.validation import check_permutation

EXTENDED = [
    SimulatedAnnealingMapper(steps=2000, seed=0),
    RecursiveEmbeddingMapper(seed=0),
    LinearOrderingMapper(),
    HybridTopoLB(num_blocks=4, seed=0),
]


class TestCommonInvariants:
    @pytest.mark.parametrize("mapper", EXTENDED, ids=lambda m: type(m).__name__)
    @pytest.mark.parametrize(
        "topo_factory",
        [lambda: Torus((4, 4)), lambda: Mesh((2, 8)), lambda: Hypercube(4)],
        ids=["torus", "mesh", "hypercube"],
    )
    def test_bijection(self, mapper, topo_factory):
        topo = topo_factory()
        g = random_taskgraph(16, edge_prob=0.25, seed=3)
        mapping = mapper.map(g, topo)
        check_permutation(mapping.assignment, 16, MappingError)

    @pytest.mark.parametrize("mapper", EXTENDED, ids=lambda m: type(m).__name__)
    def test_beats_expected_random(self, mapper):
        """Every structured mapper must beat the random expectation on a
        stencil pattern — the minimum bar for 'topology-aware'."""
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        hpb = mapper.map(g, topo).hops_per_byte
        assert hpb < expected_random_hops_per_byte(topo)

    @pytest.mark.parametrize("mapper", EXTENDED, ids=lambda m: type(m).__name__)
    def test_deterministic(self, mapper):
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.3, seed=5)
        assert (mapper.map(g, topo).assignment == mapper.map(g, topo).assignment).all()


class TestSimulatedAnnealing:
    def test_more_steps_no_worse(self):
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.4, seed=1)
        short = SimulatedAnnealingMapper(steps=200, seed=0).map(g, topo)
        long = SimulatedAnnealingMapper(steps=20_000, seed=0).map(g, topo)
        assert long.hop_bytes <= short.hop_bytes * 1.05

    def test_improves_on_its_random_start(self):
        topo = Torus((5, 5))
        g = mesh2d_pattern(5, 5)
        start = RandomMapper(seed=7).map(g, topo)
        annealed = SimulatedAnnealingMapper(
            base=RandomMapper(seed=7), steps=20_000, seed=7
        ).map(g, topo)
        assert annealed.hop_bytes < 0.6 * start.hop_bytes

    def test_quality_competitive_with_topolb_on_irregular(self):
        """The paper's related-work claim: physical optimization reaches
        (at least) heuristic quality, given the steps."""
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.5, seed=2)
        sa = SimulatedAnnealingMapper(steps=60_000, seed=0).map(g, topo)
        tlb = TopoLB().map(g, topo)
        assert sa.hop_bytes <= tlb.hop_bytes * 1.10

    def test_tracked_hop_bytes_consistent(self):
        """Internal incremental hop-byte tracking matches the metric."""
        from repro.mapping.metrics import hop_bytes

        topo = Mesh((3, 4))
        g = random_taskgraph(12, edge_prob=0.4, seed=4)
        mapping = SimulatedAnnealingMapper(steps=3000, seed=1).map(g, topo)
        assert mapping.hop_bytes == pytest.approx(
            hop_bytes(g, topo, mapping.assignment)
        )

    def test_bad_params(self):
        with pytest.raises(MappingError):
            SimulatedAnnealingMapper(steps=0)
        with pytest.raises(MappingError):
            SimulatedAnnealingMapper(cooling=1.0)
        with pytest.raises(MappingError):
            SimulatedAnnealingMapper(t0_factor=0.0)


class TestRecursiveEmbedding:
    def test_good_on_stencil(self):
        topo = Torus((8, 8))
        g = mesh2d_pattern(8, 8)
        hpb = RecursiveEmbeddingMapper(seed=0).map(g, topo).hops_per_byte
        assert hpb < 3.5  # well under random's 4.1; divisive methods are coarse

    def test_clustered_graph_stays_clustered(self):
        """Two cliques must land in disjoint compact halves."""
        edges = [(i, j, 10.0) for i in range(8) for j in range(i + 1, 8)]
        edges += [(8 + i, 8 + j, 10.0) for i in range(8) for j in range(i + 1, 8)]
        edges += [(0, 8, 0.1)]
        g = TaskGraph(16, edges)
        topo = Mesh((4, 4))
        m = RecursiveEmbeddingMapper(seed=0).map(g, topo)
        # intra-clique average distance well below the inter-clique distance
        d = topo.distance_matrix()
        intra = np.mean([d[m.processor_of(i), m.processor_of(j)]
                         for i in range(8) for j in range(i + 1, 8)])
        cross = np.mean([d[m.processor_of(i), m.processor_of(8 + j)]
                         for i in range(8) for j in range(8)])
        assert intra < cross


class TestLinearOrdering:
    def test_snake_order_consecutive_adjacent(self):
        for topo in (Mesh((4, 5)), Torus((3, 3)), Mesh((2, 3, 4))):
            order = snake_order(topo)
            assert sorted(order.tolist()) == list(range(topo.num_nodes))
            for a, b in zip(order, order[1:]):
                assert topo.distance(int(a), int(b)) == 1

    def test_ring_on_ring_near_optimal(self):
        from repro.taskgraph import ring_pattern

        topo = Torus((16,))
        m = LinearOrderingMapper().map(ring_pattern(16), topo)
        # snake order around a ring leaves only the closing edge long
        assert m.hops_per_byte <= 2.0

    def test_non_grid_machines_use_bfs(self):
        topo = Hypercube(4)
        g = mesh2d_pattern(4, 4)
        m = LinearOrderingMapper().map(g, topo)
        assert m.is_bijection()


class TestHybridTopoLB:
    def test_block_growth_partitions_machine(self):
        topo = Torus((6, 6))
        owner = grow_processor_blocks(topo, 4, seed=0)
        counts = np.bincount(owner, minlength=4)
        assert counts.sum() == 36
        assert counts.max() <= -(-36 // 4)  # ceil cap respected

    def test_blocks_are_compact(self):
        """Average intra-block distance far below machine average."""
        topo = Torus((8, 8))
        owner = grow_processor_blocks(topo, 4, seed=0)
        d = topo.distance_matrix()
        intra = []
        for b in range(4):
            members = np.flatnonzero(owner == b)
            sub = d[np.ix_(members, members)]
            intra.append(sub.mean())
        # An ideal 4x4 block in an 8x8 torus has mean intra-distance 2.5
        # (machine mean 4.0); allow a small slack over that ideal.
        assert np.mean(intra) < 0.7 * d.mean()

    def test_bad_block_count(self):
        with pytest.raises(MappingError):
            HybridTopoLB(num_blocks=0)
        with pytest.raises(MappingError):
            grow_processor_blocks(Torus((2, 2)), 9)

    def test_single_block_degenerates_to_topolb(self):
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4)
        hy = HybridTopoLB(num_blocks=1, seed=0).map(g, topo)
        assert hy.assignment.tolist() == TopoLB().map(g, topo).assignment.tolist()

    def test_quality_between_random_and_topolb(self):
        topo = Torus((8, 8))
        g = mesh2d_pattern(8, 8)
        hy = HybridTopoLB(num_blocks=4, seed=0).map(g, topo).hops_per_byte
        assert TopoLB().map(g, topo).hops_per_byte <= hy
        # Block boundaries cost something, but the hybrid stays well below
        # random (4.0 here).
        assert hy < 0.6 * expected_random_hops_per_byte(topo)

    def test_more_blocks_than_tasks_clamped(self):
        topo = Mesh((2, 2))
        g = mesh2d_pattern(2, 2)
        m = HybridTopoLB(num_blocks=64, seed=0).map(g, topo)
        assert m.is_bijection()
