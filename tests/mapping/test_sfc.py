"""Space-filling-curve mapper: curves, determinism, and mapping quality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.mapping import RandomMapper, hop_bytes
from repro.mapping.sfc import SFCMapper, hilbert_indices, morton_indices
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.patterns import mesh_pattern, ring_pattern
from repro.topology import FatTree, Mesh, Torus


class TestCurves:
    @pytest.mark.parametrize("shape", [(4, 4), (8, 8), (4, 4, 4)])
    def test_hilbert_is_a_permutation_of_the_lattice(self, shape):
        n = int(np.prod(shape))
        coords = np.stack(np.unravel_index(np.arange(n), shape), axis=1)
        h = hilbert_indices(coords)
        assert sorted(h.tolist()) == list(range(n))

    @pytest.mark.parametrize("shape", [(4, 4), (8, 8), (4, 4, 4)])
    def test_hilbert_consecutive_cells_are_adjacent(self, shape):
        """The defining Hilbert property: the curve moves one lattice step
        at a time, so consecutive indices are grid neighbors."""
        n = int(np.prod(shape))
        coords = np.stack(np.unravel_index(np.arange(n), shape), axis=1)
        walk = coords[np.argsort(hilbert_indices(coords))]
        steps = np.abs(np.diff(walk.astype(np.int64), axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_morton_is_bit_interleave(self):
        # Axis-0-major interleave: (2, 3) = (10, 11) -> bits 1101 = 13.
        coords = np.array([[0, 0], [0, 1], [1, 0], [1, 1], [2, 3]])
        m = morton_indices(coords)
        assert m.tolist() == [0, 1, 2, 3, 13]

    def test_float_coords_are_quantized(self):
        rng = np.random.default_rng(7)
        coords = rng.normal(size=(50, 2))
        h = hilbert_indices(coords)
        assert len(np.unique(h)) > 1


class TestSFCMapper:
    def test_rejects_unknown_curve(self):
        with pytest.raises(MappingError, match="unknown space-filling curve"):
            SFCMapper(curve="peano")

    def test_requires_coords(self):
        graph = ring_pattern(16)  # carries no coordinates
        with pytest.raises(MappingError, match="coordinates"):
            SFCMapper().map(graph, Torus((4, 4)))

    @pytest.mark.parametrize("curve", ["hilbert", "morton"])
    def test_deterministic(self, curve):
        graph = mesh_pattern((8, 8))
        topo = Torus((8, 8))
        a = SFCMapper(curve).map(graph, topo).assignment
        b = SFCMapper(curve).map(graph, topo).assignment
        assert (a == b).all()

    @pytest.mark.parametrize("topo", [Torus((8, 8)), Mesh((8, 8))],
                             ids=["torus", "mesh"])
    def test_never_worse_than_random(self, topo):
        """The satellite acceptance bar: on a Jacobi pattern the geometric
        ordering must beat (or at worst tie) random placement for every
        random seed tried."""
        graph = mesh_pattern((8, 8))
        sfc = hop_bytes(graph, topo, SFCMapper().map(graph, topo).assignment)
        for seed in range(5):
            rnd = RandomMapper(seed=seed).map(graph, topo).assignment
            assert sfc <= hop_bytes(graph, topo, rnd)

    def test_indirect_machine_uses_bfs_processor_order(self):
        graph = mesh_pattern((2, 4))
        topo = FatTree(2, 3)
        mapping = SFCMapper().map(graph, topo)
        assert sorted(mapping.assignment.tolist()) == list(range(8))

    def test_allowed_mask_respected(self):
        graph = mesh_pattern((6, 10))
        topo = Torus((8, 8))
        allowed = np.ones(64, dtype=bool)
        allowed[[0, 1, 2, 3]] = False
        mapping = SFCMapper().map(graph, topo, allowed=allowed)
        assert not np.isin(mapping.assignment, [0, 1, 2, 3]).any()
        assert len(np.unique(mapping.assignment)) == graph.num_tasks

    def test_attach_coords_survives_relabel_and_induced(self):
        graph = mesh_pattern((4, 4))
        perm = np.random.default_rng(0).permutation(16)
        relabeled = graph.relabel(perm)
        assert relabeled.coords is not None
        assert (relabeled.coords[perm] == graph.coords).all()
        sub = graph.induced([0, 1, 5, 4])
        assert (sub.coords == graph.coords[[0, 1, 5, 4]]).all()

    def test_spec_round_trip(self):
        from repro.engine.specs import MAPPER_KINDS, parse_mapper_spec

        assert "sfc" in MAPPER_KINDS
        mapper = parse_mapper_spec("sfc:curve=morton").build(seed=0)
        assert isinstance(mapper, SFCMapper)
        assert mapper.curve == "morton"
        default = parse_mapper_spec("sfc").build(seed=0)
        assert default.curve == "hilbert"
