"""Mapping onto degraded machines: the allowed-processor mask end to end.

The acceptance scenario of the fault-tolerance work: an 8x8 torus with 5%
dead nodes plus one dead link, and all three paper mappers must place n
tasks on the p' < p healthy processors only — deterministically, and with
honest capacity errors when the healthy machine is too small.
"""

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.faults import DegradedTopology, FaultSet
from repro.mapping import RandomMapper, RefineTopoLB, TopoCentLB, TopoLB
from repro.mapping.base import resolve_allowed
from repro.mapping.metrics import hop_bytes
from repro.taskgraph import random_taskgraph
from repro.topology import Torus


@pytest.fixture(scope="module")
def degraded():
    base = Torus((8, 8))
    faults = FaultSet.generate(base, seed=3, node_rate=0.05)
    faults = FaultSet(
        dead_nodes=faults.dead_nodes,
        dead_links=[*faults.dead_links, (0, 1)],
    )
    return DegradedTopology(base, faults)


def _mappers():
    return [
        ("TopoLB", TopoLB()),
        ("TopoCentLB", TopoCentLB()),
        ("RefineTopoLB", RefineTopoLB(base=TopoLB())),
    ]


class TestDegradedMapping:
    @pytest.mark.parametrize("name,mapper", _mappers(), ids=lambda v: v if isinstance(v, str) else "")
    def test_all_tasks_on_healthy_processors(self, degraded, name, mapper):
        graph = random_taskgraph(degraded.num_healthy, edge_prob=0.2, seed=1)
        mapping = mapper.map(graph, degraded)
        assign = np.asarray(mapping.assignment)
        assert degraded.allowed_mask()[assign].all(), name
        # injective over the healthy set: one task per surviving processor
        assert len(np.unique(assign)) == graph.num_tasks

    @pytest.mark.parametrize("name,mapper", _mappers(), ids=lambda v: v if isinstance(v, str) else "")
    def test_deterministic(self, degraded, name, mapper):
        graph = random_taskgraph(degraded.num_healthy, edge_prob=0.2, seed=1)
        a = np.asarray(mapper.map(graph, degraded).assignment)
        b = np.asarray(mapper.map(graph, degraded).assignment)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name,mapper", _mappers(), ids=lambda v: v if isinstance(v, str) else "")
    def test_insufficient_capacity_raises(self, degraded, name, mapper):
        graph = random_taskgraph(degraded.num_nodes, edge_prob=0.2, seed=1)
        with pytest.raises(MappingError, match="healthy capacity"):
            mapper.map(graph, degraded)

    def test_underfull_machine_accepted(self, degraded):
        graph = random_taskgraph(degraded.num_healthy - 5, edge_prob=0.2, seed=2)
        mapping = TopoLB().map(graph, degraded)
        assert degraded.allowed_mask()[mapping.assignment].all()

    def test_two_phase_underfull_on_degraded(self, degraded):
        """Fewer tasks than healthy processors through the full pipeline
        (the repro-map CLI path): phase 1 degenerates to the identity and
        the masked mapper places each task directly."""
        from repro.mapping.pipeline import TwoPhaseMapper

        graph = random_taskgraph(degraded.num_healthy - 4, edge_prob=0.2, seed=3)
        mapping = TwoPhaseMapper().map(graph, degraded)
        assert degraded.allowed_mask()[mapping.assignment].all()
        assert len(np.unique(mapping.assignment)) == graph.num_tasks

    def test_explicit_mask_on_pristine_topology(self):
        topo = Torus((4, 4))
        allowed = np.ones(16, dtype=bool)
        allowed[[3, 7]] = False
        graph = random_taskgraph(14, edge_prob=0.3, seed=5)
        mapping = TopoLB().map(graph, topo, allowed=allowed)
        assert allowed[mapping.assignment].all()

    def test_topology_aware_beats_random_on_degraded(self, degraded):
        graph = random_taskgraph(degraded.num_healthy, edge_prob=0.2, seed=7)
        topolb = TopoLB().map(graph, degraded)
        rnd = RandomMapper(seed=0).map(graph, degraded)
        assert degraded.allowed_mask()[rnd.assignment].all()
        assert (
            hop_bytes(graph, degraded, topolb.assignment)
            < hop_bytes(graph, degraded, rnd.assignment)
        )

    def test_refine_rejects_start_on_dead_processor(self, degraded):
        graph = random_taskgraph(degraded.num_healthy, edge_prob=0.2, seed=1)
        base = TopoLB().map(graph, degraded)
        bad = base.with_assignment(
            np.where(
                np.arange(graph.num_tasks) == 0,
                degraded.faults.dead_nodes[0],
                base.assignment,
            )
        )
        with pytest.raises(MappingError, match="disallowed"):
            RefineTopoLB().refine(bad)


class TestResolveAllowed:
    def test_none_on_pristine_is_none(self):
        assert resolve_allowed(Torus((4, 4)), None) is None

    def test_auto_derived_on_degraded(self, degraded):
        mask = resolve_allowed(degraded, None)
        np.testing.assert_array_equal(mask, degraded.allowed_mask())

    def test_bad_shape_rejected(self):
        with pytest.raises(MappingError):
            resolve_allowed(Torus((4, 4)), np.ones(9, dtype=bool))

    def test_empty_mask_rejected(self):
        with pytest.raises(MappingError):
            resolve_allowed(Torus((4, 4)), np.zeros(16, dtype=bool))
