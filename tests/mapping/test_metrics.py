"""Tests for hop-bytes and related mapping metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MappingError
from repro.mapping.metrics import (
    dilation_histogram,
    dilation_stats,
    hop_bytes,
    hops_per_byte,
    load_imbalance,
    per_link_loads,
    per_task_hop_bytes,
    processor_loads,
)
from repro.taskgraph import TaskGraph, random_taskgraph
from repro.topology import Mesh, Torus


class TestHopBytes:
    def test_manual_example(self, tiny_graph):
        topo = Mesh((4,))  # a path of 4 processors
        # identity: d(0,1)=1, d(1,2)=1, d(2,3)=1, d(0,3)=3
        assert hop_bytes(tiny_graph, topo, [0, 1, 2, 3]) == pytest.approx(
            10 * 1 + 20 * 1 + 30 * 1 + 100 * 3
        )

    def test_all_on_one_processor_is_zero(self, tiny_graph):
        topo = Mesh((2, 2))
        assert hop_bytes(tiny_graph, topo, [0, 0, 0, 0]) == 0.0

    def test_hops_per_byte_normalization(self, tiny_graph):
        topo = Mesh((4,))
        hb = hop_bytes(tiny_graph, topo, [0, 1, 2, 3])
        assert hops_per_byte(tiny_graph, topo, [0, 1, 2, 3]) == pytest.approx(
            hb / tiny_graph.total_bytes
        )

    def test_edgeless_graph(self):
        g = TaskGraph(3)
        topo = Mesh((3,))
        assert hop_bytes(g, topo, [0, 1, 2]) == 0.0
        assert hops_per_byte(g, topo, [0, 1, 2]) == 0.0

    def test_bad_assignment_shape(self, tiny_graph):
        topo = Mesh((4,))
        with pytest.raises(MappingError):
            hop_bytes(tiny_graph, topo, [0, 1])

    def test_bad_processor_id(self, tiny_graph):
        topo = Mesh((4,))
        with pytest.raises(MappingError):
            hop_bytes(tiny_graph, topo, [0, 1, 2, 9])

    def test_identity_on_matching_pattern_is_one_hop(self):
        from repro.taskgraph import mesh2d_pattern

        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        assert hops_per_byte(g, topo, np.arange(36)) == pytest.approx(1.0)

    def test_large_p_groupby_path_matches_matrix_path(self, rng):
        """The no-distance-matrix code path gives identical results."""
        import repro.mapping.metrics as metrics

        g = random_taskgraph(40, edge_prob=0.2, seed=3)
        topo = Torus((7, 6))
        assign = rng.permutation(42)[:40]
        expected = hop_bytes(g, topo, assign)
        old = metrics._MATRIX_LIMIT
        try:
            metrics._MATRIX_LIMIT = 1  # force the group-by-source path
            topo2 = Torus((7, 6))  # fresh topology: no cached matrix
            assert hop_bytes(g, topo2, assign) == pytest.approx(expected)
        finally:
            metrics._MATRIX_LIMIT = old


class TestPerTaskHopBytes:
    def test_additivity_identity(self, tiny_graph):
        """The paper's identity: HB = (1/2) * sum over tasks of HB(t)."""
        topo = Torus((2, 2))
        assign = [0, 1, 2, 3]
        per_task = per_task_hop_bytes(tiny_graph, topo, assign)
        assert per_task.sum() / 2 == pytest.approx(hop_bytes(tiny_graph, topo, assign))

    def test_isolated_task_contributes_zero(self):
        g = TaskGraph(3, [(0, 1, 10.0)])
        topo = Mesh((3,))
        per_task = per_task_hop_bytes(g, topo, [0, 2, 1])
        assert per_task[2] == 0.0


class TestPerLinkLoads:
    def test_single_edge_route(self):
        g = TaskGraph(2, [(0, 1, 100.0)])
        topo = Mesh((4,))
        loads = per_link_loads(g, topo, [0, 3])
        # 50 bytes each way across every link of the 3-hop path.
        assert loads[(0, 1)] == 50.0
        assert loads[(3, 2)] == 50.0
        assert len(loads) == 6

    def test_colocated_edge_loads_nothing(self):
        g = TaskGraph(2, [(0, 1, 100.0)])
        topo = Mesh((2, 2))
        assert per_link_loads(g, topo, [1, 1]) == {}

    def test_total_conservation(self, tiny_graph):
        """Summed link loads equal hop-bytes (each byte counted per hop)."""
        topo = Torus((2, 2))
        assign = [0, 1, 2, 3]
        loads = per_link_loads(tiny_graph, topo, assign)
        assert sum(loads.values()) == pytest.approx(hop_bytes(tiny_graph, topo, assign))


class TestDilationHistogram:
    def test_identity_concentrates_at_one(self):
        from repro.taskgraph import mesh2d_pattern

        g = mesh2d_pattern(4, 4)
        topo = Torus((4, 4))
        hist = dilation_histogram(g, topo, np.arange(16))
        assert set(hist) == {1}
        assert hist[1] == pytest.approx(g.total_bytes)

    def test_histogram_sums_to_total_bytes(self, tiny_graph, rng):
        topo = Torus((2, 2))
        hist = dilation_histogram(tiny_graph, topo, rng.permutation(4))
        assert sum(hist.values()) == pytest.approx(tiny_graph.total_bytes)

    def test_hop_bytes_identity(self, tiny_graph):
        topo = Mesh((4,))
        assign = [0, 1, 2, 3]
        hist = dilation_histogram(tiny_graph, topo, assign)
        assert sum(d * b for d, b in hist.items()) == pytest.approx(
            hop_bytes(tiny_graph, topo, assign)
        )

    def test_colocation_bucket_zero(self, tiny_graph):
        topo = Mesh((2, 2))
        hist = dilation_histogram(tiny_graph, topo, [0, 0, 0, 0])
        assert set(hist) == {0}

    def test_empty_graph(self):
        g = TaskGraph(3)
        assert dilation_histogram(g, Mesh((3,)), [0, 1, 2]) == {}


class TestDilationAndLoads:
    def test_dilation_stats(self, tiny_graph):
        topo = Mesh((4,))
        stats = dilation_stats(tiny_graph, topo, [0, 1, 2, 3])
        assert stats["max"] == 3.0
        assert stats["mean"] == pytest.approx((1 + 1 + 1 + 3) / 4)

    def test_dilation_empty(self):
        g = TaskGraph(2)
        assert dilation_stats(g, Mesh((2,)), [0, 1])["max"] == 0.0

    def test_processor_loads(self, tiny_graph):
        topo = Mesh((2, 2))
        loads = processor_loads(tiny_graph, topo, [0, 0, 1, 3])
        assert loads.tolist() == [3.0, 3.0, 0.0, 4.0]

    def test_load_imbalance_balanced(self):
        g = TaskGraph(4, [], vertex_weights=[1, 1, 1, 1])
        assert load_imbalance(g, Mesh((4,)), [0, 1, 2, 3]) == 1.0

    def test_load_imbalance_skewed(self):
        g = TaskGraph(4, [], vertex_weights=[4, 0, 0, 0])
        assert load_imbalance(g, Mesh((4,)), [0, 1, 2, 3]) == 4.0


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_property_permutation_of_processor_labels_by_automorphism(seed):
    """Translating every processor of a torus (an automorphism) preserves HB."""
    rng = np.random.default_rng(seed)
    topo = Torus((4, 4))
    g = random_taskgraph(16, edge_prob=0.3, seed=int(seed))
    assign = rng.permutation(16)
    shift = int(rng.integers(0, 16))
    coords = np.array([topo.coords(int(a)) for a in assign])
    dcoord = np.array(topo.coords(shift))
    translated = np.array(
        [topo.index(tuple((c + dcoord) % 4)) for c in coords]
    )
    assert hop_bytes(g, topo, assign) == pytest.approx(hop_bytes(g, topo, translated))


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_property_hop_bytes_scales_linearly_with_weights(seed):
    rng = np.random.default_rng(seed)
    g = random_taskgraph(12, edge_prob=0.4, seed=int(seed))
    scaled = TaskGraph(12, [(a, b, 3.5 * w) for a, b, w in g.edges()])
    topo = Mesh((3, 4))
    assign = rng.permutation(12)
    assert hop_bytes(scaled, topo, assign) == pytest.approx(
        3.5 * hop_bytes(g, topo, assign)
    )
