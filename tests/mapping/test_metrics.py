"""Tests for hop-bytes and related mapping metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MappingError
from repro.mapping.metrics import (
    dilation_histogram,
    dilation_stats,
    hop_bytes,
    hops_per_byte,
    load_imbalance,
    per_link_loads,
    per_task_hop_bytes,
    processor_loads,
)
from repro.taskgraph import TaskGraph, random_taskgraph
from repro.topology import ArbitraryTopology, Hypercube, Mesh, Torus


class TestHopBytes:
    def test_manual_example(self, tiny_graph):
        topo = Mesh((4,))  # a path of 4 processors
        # identity: d(0,1)=1, d(1,2)=1, d(2,3)=1, d(0,3)=3
        assert hop_bytes(tiny_graph, topo, [0, 1, 2, 3]) == pytest.approx(
            10 * 1 + 20 * 1 + 30 * 1 + 100 * 3
        )

    def test_all_on_one_processor_is_zero(self, tiny_graph):
        topo = Mesh((2, 2))
        assert hop_bytes(tiny_graph, topo, [0, 0, 0, 0]) == 0.0

    def test_hops_per_byte_normalization(self, tiny_graph):
        topo = Mesh((4,))
        hb = hop_bytes(tiny_graph, topo, [0, 1, 2, 3])
        assert hops_per_byte(tiny_graph, topo, [0, 1, 2, 3]) == pytest.approx(
            hb / tiny_graph.total_bytes
        )

    def test_edgeless_graph(self):
        g = TaskGraph(3)
        topo = Mesh((3,))
        assert hop_bytes(g, topo, [0, 1, 2]) == 0.0
        assert hops_per_byte(g, topo, [0, 1, 2]) == 0.0

    def test_bad_assignment_shape(self, tiny_graph):
        topo = Mesh((4,))
        with pytest.raises(MappingError):
            hop_bytes(tiny_graph, topo, [0, 1])

    def test_bad_processor_id(self, tiny_graph):
        topo = Mesh((4,))
        with pytest.raises(MappingError):
            hop_bytes(tiny_graph, topo, [0, 1, 2, 9])

    def test_identity_on_matching_pattern_is_one_hop(self):
        from repro.taskgraph import mesh2d_pattern

        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        assert hops_per_byte(g, topo, np.arange(36)) == pytest.approx(1.0)

    def test_large_p_groupby_path_matches_matrix_path(self, rng):
        """The no-distance-matrix code path gives identical results."""
        import repro.mapping.metrics as metrics

        g = random_taskgraph(40, edge_prob=0.2, seed=3)
        topo = Torus((7, 6))
        assign = rng.permutation(42)[:40]
        expected = hop_bytes(g, topo, assign)
        old = metrics._MATRIX_LIMIT
        try:
            metrics._MATRIX_LIMIT = 1  # force the group-by-source path
            topo2 = Torus((7, 6))  # fresh topology: no cached matrix
            assert hop_bytes(g, topo2, assign) == pytest.approx(expected)
        finally:
            metrics._MATRIX_LIMIT = old


class TestPerTaskHopBytes:
    def test_additivity_identity(self, tiny_graph):
        """The paper's identity: HB = (1/2) * sum over tasks of HB(t)."""
        topo = Torus((2, 2))
        assign = [0, 1, 2, 3]
        per_task = per_task_hop_bytes(tiny_graph, topo, assign)
        assert per_task.sum() / 2 == pytest.approx(hop_bytes(tiny_graph, topo, assign))

    def test_isolated_task_contributes_zero(self):
        g = TaskGraph(3, [(0, 1, 10.0)])
        topo = Mesh((3,))
        per_task = per_task_hop_bytes(g, topo, [0, 2, 1])
        assert per_task[2] == 0.0


class TestPerLinkLoads:
    def test_single_edge_route(self):
        g = TaskGraph(2, [(0, 1, 100.0)])
        topo = Mesh((4,))
        loads = per_link_loads(g, topo, [0, 3])
        # 50 bytes each way across every link of the 3-hop path.
        assert loads[(0, 1)] == 50.0
        assert loads[(3, 2)] == 50.0
        assert len(loads) == 6

    def test_colocated_edge_loads_nothing(self):
        g = TaskGraph(2, [(0, 1, 100.0)])
        topo = Mesh((2, 2))
        assert per_link_loads(g, topo, [1, 1]) == {}

    def test_total_conservation(self, tiny_graph):
        """Summed link loads equal hop-bytes (each byte counted per hop)."""
        topo = Torus((2, 2))
        assign = [0, 1, 2, 3]
        loads = per_link_loads(tiny_graph, topo, assign)
        assert sum(loads.values()) == pytest.approx(hop_bytes(tiny_graph, topo, assign))


class TestDilationHistogram:
    def test_identity_concentrates_at_one(self):
        from repro.taskgraph import mesh2d_pattern

        g = mesh2d_pattern(4, 4)
        topo = Torus((4, 4))
        hist = dilation_histogram(g, topo, np.arange(16))
        assert set(hist) == {1}
        assert hist[1] == pytest.approx(g.total_bytes)

    def test_histogram_sums_to_total_bytes(self, tiny_graph, rng):
        topo = Torus((2, 2))
        hist = dilation_histogram(tiny_graph, topo, rng.permutation(4))
        assert sum(hist.values()) == pytest.approx(tiny_graph.total_bytes)

    def test_hop_bytes_identity(self, tiny_graph):
        topo = Mesh((4,))
        assign = [0, 1, 2, 3]
        hist = dilation_histogram(tiny_graph, topo, assign)
        assert sum(d * b for d, b in hist.items()) == pytest.approx(
            hop_bytes(tiny_graph, topo, assign)
        )

    def test_colocation_bucket_zero(self, tiny_graph):
        topo = Mesh((2, 2))
        hist = dilation_histogram(tiny_graph, topo, [0, 0, 0, 0])
        assert set(hist) == {0}

    def test_empty_graph(self):
        g = TaskGraph(3)
        assert dilation_histogram(g, Mesh((3,)), [0, 1, 2]) == {}

    def test_keys_are_ints_on_hop_metric_machines(self, tiny_graph):
        """Regression for the documented key-type contract: integral
        distances produce ``int`` keys, never ``float`` ones."""
        hist = dilation_histogram(tiny_graph, Mesh((4,)), [0, 1, 2, 3])
        assert hist  # non-trivial instance
        assert all(type(k) is int for k in hist)

    def test_keys_mix_float_and_int_on_weighted_machines(self):
        """On a weighted machine fractional distances keep float keys while
        integral ones still collapse to int (1.5 + 1.5 == 3)."""
        topo = ArbitraryTopology(3, [(0, 1, 1.5), (1, 2, 1.5)])
        g = TaskGraph(3, [(0, 1, 10.0), (0, 2, 20.0)])
        hist = dilation_histogram(g, topo, [0, 1, 2])
        assert hist[1.5] == 10.0
        assert hist[3] == 20.0
        assert type([k for k in hist if k == 1.5][0]) is float
        assert type([k for k in hist if k == 3][0]) is int


class TestDilationAndLoads:
    def test_dilation_stats(self, tiny_graph):
        topo = Mesh((4,))
        stats = dilation_stats(tiny_graph, topo, [0, 1, 2, 3])
        assert stats["max"] == 3.0
        assert stats["mean"] == pytest.approx((1 + 1 + 1 + 3) / 4)

    def test_dilation_empty(self):
        g = TaskGraph(2)
        assert dilation_stats(g, Mesh((2,)), [0, 1])["max"] == 0.0

    def test_processor_loads(self, tiny_graph):
        topo = Mesh((2, 2))
        loads = processor_loads(tiny_graph, topo, [0, 0, 1, 3])
        assert loads.tolist() == [3.0, 3.0, 0.0, 4.0]

    def test_load_imbalance_balanced(self):
        g = TaskGraph(4, [], vertex_weights=[1, 1, 1, 1])
        assert load_imbalance(g, Mesh((4,)), [0, 1, 2, 3]) == 1.0

    def test_load_imbalance_skewed(self):
        g = TaskGraph(4, [], vertex_weights=[4, 0, 0, 0])
        assert load_imbalance(g, Mesh((4,)), [0, 1, 2, 3]) == 4.0


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_property_permutation_of_processor_labels_by_automorphism(seed):
    """Translating every processor of a torus (an automorphism) preserves HB."""
    rng = np.random.default_rng(seed)
    topo = Torus((4, 4))
    g = random_taskgraph(16, edge_prob=0.3, seed=int(seed))
    assign = rng.permutation(16)
    shift = int(rng.integers(0, 16))
    coords = np.array([topo.coords(int(a)) for a in assign])
    dcoord = np.array(topo.coords(shift))
    translated = np.array(
        [topo.index(tuple((c + dcoord) % 4)) for c in coords]
    )
    assert hop_bytes(g, topo, assign) == pytest.approx(hop_bytes(g, topo, translated))


@given(st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_property_hop_bytes_scales_linearly_with_weights(seed):
    rng = np.random.default_rng(seed)
    g = random_taskgraph(12, edge_prob=0.4, seed=int(seed))
    scaled = TaskGraph(12, [(a, b, 3.5 * w) for a, b, w in g.edges()])
    topo = Mesh((3, 4))
    assign = rng.permutation(12)
    assert hop_bytes(scaled, topo, assign) == pytest.approx(
        3.5 * hop_bytes(g, topo, assign)
    )


# --------------------------------------------------------------------------
# Metric invariants over randomized graph x topology x assignment triples.
# All machines here route minimally (Mesh/Torus dimension-ordered routes and
# Hypercube bit-fixing routes have length == distance), which the link-load
# conservation identity requires.
_TOPOLOGIES = (
    Mesh((8,)),
    Mesh((4, 4)),
    Mesh((2, 3, 3)),
    Torus((4, 4)),
    Torus((2, 3, 3)),
    Hypercube(4),
)


@st.composite
def _metric_instances(draw):
    """(graph, topology, assignment) with many-to-one assignments allowed."""
    topo = draw(st.sampled_from(_TOPOLOGIES))
    n = draw(st.integers(2, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    graph = random_taskgraph(n, edge_prob=0.35, seed=seed)
    assignment = draw(
        st.lists(st.integers(0, topo.num_nodes - 1), min_size=n, max_size=n)
    )
    return graph, topo, assignment


@given(_metric_instances())
@settings(max_examples=60, deadline=None)
def test_property_per_task_additivity(instance):
    """``per_task_hop_bytes(...).sum() / 2 == hop_bytes(...)`` always."""
    graph, topo, assignment = instance
    per_task = per_task_hop_bytes(graph, topo, assignment)
    assert per_task.sum() / 2 == pytest.approx(hop_bytes(graph, topo, assignment))


@given(_metric_instances())
@settings(max_examples=60, deadline=None)
def test_property_dilation_histogram_conserves_bytes(instance):
    """Histogram values sum to total bytes; distance-weighted sum to hop-bytes."""
    graph, topo, assignment = instance
    hist = dilation_histogram(graph, topo, assignment)
    assert sum(hist.values()) == pytest.approx(graph.total_bytes)
    assert sum(d * b for d, b in hist.items()) == pytest.approx(
        hop_bytes(graph, topo, assignment)
    )


@given(_metric_instances())
@settings(max_examples=40, deadline=None)
def test_property_link_loads_conserve_hop_bytes(instance):
    """On minimal-routing machines every byte loads exactly d(u, v) links,
    so summed per-link loads equal hop-bytes."""
    graph, topo, assignment = instance
    loads = per_link_loads(graph, topo, assignment)
    assert sum(loads.values()) == pytest.approx(hop_bytes(graph, topo, assignment))
    assert all(v > 0 for v in loads.values())
