"""Cross-mapper property tests: invariants every strategy must satisfy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import (
    HybridTopoLB,
    LinearOrderingMapper,
    Mapping,
    RandomMapper,
    RecursiveEmbeddingMapper,
    RefineTopoLB,
    TopoCentLB,
    TopoLB,
    hop_bytes,
    hop_bytes_lower_bound,
)
from repro.taskgraph import TaskGraph, random_taskgraph
from repro.topology import Mesh, Torus

MAPPER_FACTORIES = [
    lambda: TopoLB(),
    lambda: TopoLB(order=1),
    lambda: TopoLB(order=3),
    lambda: TopoCentLB(),
    lambda: LinearOrderingMapper(),
    lambda: RecursiveEmbeddingMapper(seed=0),
    lambda: HybridTopoLB(num_blocks=3, seed=0),
]


@given(
    seed=st.integers(0, 20_000),
    mapper_idx=st.integers(0, len(MAPPER_FACTORIES) - 1),
    wrap=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_property_bijection_and_bound(seed, mapper_idx, wrap):
    """Every mapper yields a bijection whose HB respects the lower bound
    and matches an independent recomputation."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 14))
    graph = random_taskgraph(n, edge_prob=0.35, seed=seed)
    topo = (Torus if wrap else Mesh)((n,))
    mapping = MAPPER_FACTORIES[mapper_idx]().map(graph, topo)
    assert sorted(mapping.assignment.tolist()) == list(range(n))
    recomputed = hop_bytes(graph, topo, mapping.assignment)
    assert mapping.hop_bytes == pytest.approx(recomputed)
    assert recomputed >= hop_bytes_lower_bound(graph, topo) - 1e-9


@given(seed=st.integers(0, 20_000))
@settings(max_examples=30, deadline=None)
def test_property_refine_idempotent_at_fixpoint(seed):
    """Refining a refined mapping changes nothing (descent terminates at a
    swap-local minimum)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 12))
    graph = random_taskgraph(n, edge_prob=0.4, seed=seed)
    topo = Torus((n,))
    once = RefineTopoLB(max_sweeps=20, seed=0).refine(
        RandomMapper(seed=seed).map(graph, topo)
    )
    twice = RefineTopoLB(max_sweeps=20, seed=0).refine(once)
    assert twice.hop_bytes == pytest.approx(once.hop_bytes)


@given(seed=st.integers(0, 20_000), exponent=st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_property_uniform_weight_scaling_preserves_topolb_mapping(seed, exponent):
    """Scaling all edge weights uniformly must not change TopoLB's choices
    (the algorithm is scale-free in the bytes). Power-of-two factors keep
    IEEE arithmetic exact, so the assignments must match bit-for-bit;
    arbitrary factors can flip near-ties through rounding, which is a float
    artifact rather than an algorithmic one."""
    factor = float(2**exponent)
    n = 10
    graph = random_taskgraph(n, edge_prob=0.4, seed=seed)
    scaled = TaskGraph(
        n, [(a, b, w * factor) for a, b, w in graph.edges()], graph.vertex_weights
    )
    topo = Torus((n,))
    a = TopoLB().map(graph, topo).assignment
    b = TopoLB().map(scaled, topo).assignment
    assert (a == b).all()


@given(seed=st.integers(0, 20_000))
@settings(max_examples=25, deadline=None)
def test_property_colocating_any_pair_never_below_lower_bound_logic(seed):
    """Many-to-one mappings only reduce hop-bytes relative to spreading the
    same pair apart (moving a task onto its partner's processor zeroes that
    edge and cannot be beaten by the bound logic, which excludes it)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 10))
    graph = random_taskgraph(n, edge_prob=0.5, seed=seed)
    topo = Mesh((n,))
    base = RandomMapper(seed=seed).map(graph, topo)
    u, v, w = graph.edge_arrays()
    if len(u) == 0:
        return
    heaviest = int(np.argmax(w))
    a, b = int(u[heaviest]), int(v[heaviest])
    squashed = base.assignment.copy()
    squashed[a] = squashed[b]
    assert hop_bytes(graph, topo, squashed) <= base.hop_bytes + 1e-9 + float(
        np.dot(w, np.ones_like(w)) * topo.diameter()
    )
    # The tightened claim: removing the heaviest edge's distance is a real
    # decrease of at least w_max * d(P(a), P(b)) minus what a's other edges
    # gained; verify the decomposition exactly.
    delta = hop_bytes(graph, topo, squashed) - base.hop_bytes
    mat = topo.distance_matrix()
    expected = 0.0
    for j, c in zip(*graph.neighbor_slice(a)):
        j = int(j)
        old = mat[base.processor_of(a), base.processor_of(j)]
        new = mat[int(squashed[a]), int(squashed[j]) if j != a else int(squashed[a])]
        expected += c * (new - old)
    assert delta == pytest.approx(expected)
