"""Dense-table audit: above ``_MATRIX_LIMIT`` processors, no code path may
materialize a full p x p distance matrix, and byte totals must stay exact
past int32 range."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import HierarchicalMapper
from repro.mapping.context import context_for
from repro.mapping.metrics import _MATRIX_LIMIT, hop_bytes, metrics_block
from repro.taskgraph import TaskGraph, mesh2d_pattern
from repro.topology import Torus
from repro.topology.base import Topology

BIG = (32, 32, 16)  # 16384 processors, 2x the dense-table limit


@pytest.fixture
def forbid_big_matrices(monkeypatch):
    """Any dense-matrix build on a machine above the limit fails the test."""
    original = Topology._build_distance_matrix

    def guarded(self, dtype):
        assert self.num_nodes <= _MATRIX_LIMIT, (
            f"dense {self.num_nodes}x{self.num_nodes} distance matrix "
            f"materialized above the limit ({_MATRIX_LIMIT})"
        )
        return original(self, dtype)

    monkeypatch.setattr(Topology, "_build_distance_matrix", guarded)


def test_metrics_stream_rows_above_limit(forbid_big_matrices):
    topo = Torus(BIG)
    graph = mesh2d_pattern(8, 8, message_bytes=64)
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, topo.num_nodes, size=64)
    block = metrics_block(graph, topo, assignment)
    assert block["hop_bytes"] > 0
    # The MappingContext gather path streams rows too.
    ctx = context_for(graph, topo)
    dist = ctx.edge_distances(assignment)
    assert np.dot(graph.edge_arrays()[2], dist) == block["hop_bytes"]


def test_multilevel_never_materializes_big_tables(forbid_big_matrices):
    """End-to-end multilevel on a 16384-node torus: coarse machines may use
    dense tables (they are small), the full machine never."""
    topo = Torus(BIG)
    graph = mesh2d_pattern(8, 8, message_bytes=64)
    mapper = HierarchicalMapper(stop=256, refine_window=0, seed=0)
    mapping = mapper.map(graph, topo)
    assert len(np.unique(mapping.assignment)) == 64
    # Levels above the limit were really traversed.
    assert any(p > _MATRIX_LIMIT for _, p, _, _ in mapper.last_level_assignments)


def test_cli_warmup_gated_above_limit(tmp_path, monkeypatch):
    """run_mapping warms the estimation tables only on machines whose dense
    matrix is affordable."""
    import repro.mapping.estimation as estimation
    from repro.cli import run_mapping
    from repro.taskgraph.io import save_taskgraph

    warmed: list[int] = []
    original = estimation.average_distance_vector

    def recording(topology, subset=None):
        warmed.append(topology.num_nodes)
        return original(topology, subset)

    monkeypatch.setattr(estimation, "average_distance_vector", recording)

    graph_path = tmp_path / "graph.json"
    save_taskgraph(mesh2d_pattern(4, 4, message_bytes=8), graph_path)

    run_mapping(graph_path, False, "torus:4x4", "TopoLB", 0, None)
    assert 16 in warmed

    warmed.clear()
    shape = "x".join(str(s) for s in BIG)
    run_mapping(
        graph_path, False, f"torus:{shape}",
        "multilevel:inner=topolb;refine_window=0;stop=256", 0, None,
    )
    assert all(p <= _MATRIX_LIMIT for p in warmed)


def test_hop_bytes_exact_beyond_int32():
    """Byte volumes past int32 range accumulate exactly (float64 pipeline,
    no intermediate int32 product)."""
    w = float(2**33)
    graph = TaskGraph(2, [(0, 1, w)])
    topo = Torus((8, 8))
    assignment = np.array([0, 3])  # distance 3 on a ring of 8
    assert hop_bytes(graph, topo, assignment) == 3.0 * w


def test_grouped_distance_rows_never_touch_root_matrix(forbid_big_matrices):
    """Representative aggregation on a big grid answers distance rows from
    the closed form, not a root-sized table."""
    from repro.topology import coarsen_machine

    topo = Torus(BIG)
    level, shape = topo, None
    for _ in range(3):
        level, _, _, shape = coarsen_machine(level, shape=shape)
    assert level.num_nodes == topo.num_nodes // 8
    row = level.distance_row(0)
    assert row.shape == (level.num_nodes,)
    assert row[0] == 0 and row.max() > 0
