"""Vectorized-vs-reference kernel equivalence.

The vectorized kernels are only allowed to exist because they are *proven*
interchangeable with the scalar reference paths: every test here pins the
two to **bit-identical assignments** (not merely equal hop-bytes) across
estimator orders, selection rules, fest dtypes, and instance shapes —
including symmetric instances whose massive score ties are where a batched
reimplementation would first diverge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.mapping import RandomMapper, RefineTopoLB, TopoLB
from repro.mapping.estimation import EstimatorOrder
from repro.mapping.kernels import (
    DEFAULT_KERNEL,
    KERNELS,
    get_default_kernel,
    resolve_kernel,
    set_default_kernel,
)
from repro.taskgraph import mesh2d_pattern, mesh3d_pattern, random_taskgraph
from repro.taskgraph.random_graphs import geometric_taskgraph
from repro.topology import Hypercube, Mesh, Torus

ORDERS = (EstimatorOrder.FIRST, EstimatorOrder.SECOND, EstimatorOrder.THIRD)
SELECTIONS = ("gain", "max_cost", "volume")
DTYPES = (np.float64, np.float32)


def _instances():
    """(label, graph, topology) shape grid.

    The torus/mesh pattern pairs are maximally symmetric — every row of the
    initial fest table ties with dozens of others, so any divergence in
    tie-breaking between the kernels shows up immediately. The random and
    geometric instances cover irregular degrees and weights.
    """
    return [
        ("torus4x4-mesh2d", mesh2d_pattern(4, 4), Torus((4, 4))),
        ("mesh2x3x2-mesh3d", mesh3d_pattern(2, 3, 2), Mesh((2, 3, 2))),
        ("hypercube16-random", random_taskgraph(16, edge_prob=0.35, seed=5),
         Hypercube(4)),
        ("torus4x4x2-geometric", geometric_taskgraph(32, radius=0.35, seed=9),
         Torus((4, 4, 2))),
    ]


class TestTopoLBEquivalence:
    @pytest.mark.parametrize("label,graph,topo",
                             _instances(), ids=lambda v: v if isinstance(v, str) else "")
    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("selection", SELECTIONS)
    def test_assignments_bit_identical(self, label, graph, topo, order, selection):
        for dtype in DTYPES:
            ref = TopoLB(order=order, selection=selection, dtype=dtype,
                         kernel="reference").map(graph, topo)
            vec = TopoLB(order=order, selection=selection, dtype=dtype,
                         kernel="vectorized").map(graph, topo)
            np.testing.assert_array_equal(
                vec.assignment, ref.assignment,
                err_msg=f"{label} order={order} selection={selection} "
                        f"dtype={np.dtype(dtype)}",
            )

    def test_symmetric_tie_break_worst_case(self):
        """Fully symmetric instance: every initial fest row is identical, so
        the whole run is tie-breaking. The kernels must walk the exact same
        (value, id) order through all of it."""
        graph = mesh2d_pattern(4, 4, message_bytes=1.0)
        topo = Torus((4, 4))
        for order in ORDERS:
            ref = TopoLB(order=order, kernel="reference").map(graph, topo)
            vec = TopoLB(order=order, kernel="vectorized").map(graph, topo)
            np.testing.assert_array_equal(vec.assignment, ref.assignment)


class TestRefineEquivalence:
    @pytest.mark.parametrize("block_size", (1, 7, 64, 512))
    def test_block_sweep_matches_reference(self, block_size):
        graph = geometric_taskgraph(48, radius=0.3, seed=3)
        topo = Mesh((6, 8))
        # A random start leaves plenty of improving swaps, so the block
        # sweep's discard-and-restart machinery is exercised hard.
        start = RandomMapper(seed=11).map(graph, topo)
        ref = RefineTopoLB(kernel="reference", seed=1).refine(start)
        vec = RefineTopoLB(kernel="vectorized", seed=1,
                           block_size=block_size).refine(start)
        np.testing.assert_array_equal(vec.assignment, ref.assignment)

    def test_incremental_matches_reference(self):
        graph = geometric_taskgraph(48, radius=0.3, seed=3)
        topo = Mesh((6, 8))
        start = RandomMapper(seed=11).map(graph, topo)
        ref = RefineTopoLB(kernel="reference", seed=1).refine(start)
        inc = RefineTopoLB(kernel="incremental", seed=1).refine(start)
        np.testing.assert_array_equal(inc.assignment, ref.assignment)

    def test_converged_input_is_noop_for_all(self):
        graph = mesh2d_pattern(4, 4)
        topo = Torus((4, 4))
        first = RefineTopoLB(kernel="reference", seed=0).refine(
            TopoLB().map(graph, topo))
        for kernel in KERNELS:
            again = RefineTopoLB(kernel=kernel, seed=0).refine(first)
            np.testing.assert_array_equal(
                again.assignment, first.assignment, err_msg=kernel)


class TestIncrementalNative:
    """The compiled incremental kernel and its pure-numpy fallback are the
    same algorithm twice; both must land bit-identically on the reference
    path's result whether or not a C compiler is around."""

    def _instances(self):
        insts = [(geometric_taskgraph(48, radius=0.3, seed=3), Mesh((6, 8))),
                 (random_taskgraph(64, edge_prob=0.12, seed=8), Torus((8, 8))),
                 (mesh3d_pattern(4, 4, 4), Torus((4, 4, 4)))]
        return [(g, t, RandomMapper(seed=11).map(g, t)) for g, t in insts]

    def test_fallback_matches_native(self, monkeypatch):
        for graph, topo, start in self._instances():
            native = RefineTopoLB(kernel="incremental", seed=1).refine(start)
            with monkeypatch.context() as m:
                m.setenv("REPRO_NO_NATIVE", "1")
                fallback = RefineTopoLB(kernel="incremental",
                                        seed=1).refine(start)
            np.testing.assert_array_equal(
                fallback.assignment, native.assignment)

    def test_native_loader_is_memoized_and_gated(self, monkeypatch):
        from repro.mapping import _native

        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        assert _native.load() is None
        assert not _native.available()
        monkeypatch.delenv("REPRO_NO_NATIVE")
        first = _native.load()
        if first is not None:  # no compiler on this host -> both stay None
            assert _native.load() is first
            assert _native.available()


class TestMaskedEquivalence:
    """The allowed-processor mask (degraded machines) preserves equivalence."""

    def _degraded(self):
        from repro.faults import DegradedTopology, FaultSet

        base = Torus((4, 4))
        faults = FaultSet(dead_nodes=[5, 10], dead_links=[(0, 1)])
        return DegradedTopology(base, faults)

    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("selection", SELECTIONS)
    def test_topolb_masked_bit_identical(self, order, selection):
        deg = self._degraded()
        graph = random_taskgraph(deg.num_healthy, edge_prob=0.3, seed=2)
        for dtype in DTYPES:
            ref = TopoLB(order=order, selection=selection, dtype=dtype,
                         kernel="reference").map(graph, deg)
            vec = TopoLB(order=order, selection=selection, dtype=dtype,
                         kernel="vectorized").map(graph, deg)
            np.testing.assert_array_equal(
                vec.assignment, ref.assignment,
                err_msg=f"masked order={order} selection={selection} "
                        f"dtype={np.dtype(dtype)}",
            )
            assert deg.allowed_mask()[vec.assignment].all()

    def test_topolb_masked_underfull(self):
        """Fewer tasks than healthy processors (n < p')."""
        deg = self._degraded()
        graph = random_taskgraph(deg.num_healthy - 3, edge_prob=0.3, seed=4)
        ref = TopoLB(kernel="reference").map(graph, deg)
        vec = TopoLB(kernel="vectorized").map(graph, deg)
        np.testing.assert_array_equal(vec.assignment, ref.assignment)

    @pytest.mark.parametrize("block_size", (1, 7, 64))
    def test_refine_masked_bit_identical(self, block_size):
        deg = self._degraded()
        graph = random_taskgraph(deg.num_healthy, edge_prob=0.3, seed=6)
        start = RandomMapper(seed=11).map(graph, deg)
        ref = RefineTopoLB(kernel="reference", seed=1).refine(start)
        vec = RefineTopoLB(kernel="vectorized", seed=1,
                           block_size=block_size).refine(start)
        np.testing.assert_array_equal(vec.assignment, ref.assignment)
        assert deg.allowed_mask()[vec.assignment].all()

    def test_refine_masked_incremental(self, monkeypatch):
        deg = self._degraded()
        graph = random_taskgraph(deg.num_healthy, edge_prob=0.3, seed=6)
        start = RandomMapper(seed=11).map(graph, deg)
        ref = RefineTopoLB(kernel="reference", seed=1).refine(start)
        inc = RefineTopoLB(kernel="incremental", seed=1).refine(start)
        np.testing.assert_array_equal(inc.assignment, ref.assignment)
        assert deg.allowed_mask()[inc.assignment].all()
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        fallback = RefineTopoLB(kernel="incremental", seed=1).refine(start)
        np.testing.assert_array_equal(fallback.assignment, ref.assignment)


class TestKernelSelection:
    def test_invalid_kernel_rejected(self):
        with pytest.raises(MappingError):
            TopoLB(kernel="simd")
        with pytest.raises(MappingError):
            RefineTopoLB(kernel="fortran")
        with pytest.raises(MappingError):
            resolve_kernel("nope")

    def test_default_kernel_resolution(self):
        assert DEFAULT_KERNEL == "vectorized"
        assert get_default_kernel() in KERNELS
        previous = set_default_kernel("reference")
        try:
            assert previous == "vectorized"
            # kernel=None resolves against the process default at
            # construction time; explicit names always win.
            assert TopoLB().kernel == "reference"
            assert RefineTopoLB().kernel == "reference"
            assert TopoLB(kernel="vectorized").kernel == "vectorized"
        finally:
            set_default_kernel(previous)
        assert TopoLB().kernel == "vectorized"

    def test_set_default_kernel_validates(self):
        with pytest.raises(MappingError):
            set_default_kernel("scalar")
        assert get_default_kernel() == "vectorized"

    def test_kernel_fixed_at_construction(self):
        mapper = TopoLB()
        prev = set_default_kernel("reference")
        try:
            # Flipping the default later never changes an existing mapper.
            assert mapper.kernel == "vectorized"
        finally:
            set_default_kernel(prev)
