"""Property and unit tests for the multilevel hierarchical mapper.

Covers the coarse-machine model (GroupedTopology / coarsen_machine), the
HierarchicalMapper's per-level invariants, quality bounds against random and
direct TopoLB baselines, determinism (including across engine process
pools), and the spec-grammar entry points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MappingError, TopologyError
from repro.faults import DegradedTopology, FaultSet
from repro.mapping import HierarchicalMapper, RandomMapper, TopoLB
from repro.taskgraph import mesh2d_pattern, random_taskgraph
from repro.topology import GroupedTopology, Mesh, Torus, coarsen_machine


# --------------------------------------------------------------------------
# GroupedTopology / coarsen_machine
# --------------------------------------------------------------------------
class TestGroupedTopology:
    def test_representative_distances_are_parent_distances(self):
        parent = Torus((4, 4))
        groups = np.arange(16) // 2
        coarse = GroupedTopology(parent, groups)
        reps = coarse.representatives
        want = parent.distance_matrix()[np.ix_(reps, reps)]
        assert np.array_equal(coarse.distance_matrix(), want)
        for node in range(coarse.num_nodes):
            assert np.array_equal(coarse.distance_row(node), want[node])

    def test_mean_distances_satisfy_metric_axioms(self):
        parent = Torus((4, 4))
        groups = np.arange(16) // 4
        coarse = GroupedTopology(parent, groups, aggregate="mean")
        mat = coarse.distance_matrix(np.float64)
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0.0)
        assert np.all(mat[~np.eye(len(mat), dtype=bool)] > 0)
        k = len(mat)
        for a in range(k):
            for b in range(k):
                for c in range(k):
                    assert mat[a, c] <= mat[a, b] + mat[b, c] + 1e-12

    def test_mean_distances_survive_int32_first_request(self):
        """Regression: an int32 matrix request must not poison later float64
        requests with truncated values (fractional means)."""
        parent = Mesh((3,))
        # d(group0, group1) = mean(d(0,2), d(1,2)) = 1.5 — fractional.
        coarse = GroupedTopology(parent, np.array([0, 0, 1]), aggregate="mean")
        _ = coarse.distance_matrix(np.int32)  # truncating request first
        mat = coarse.distance_matrix(np.float64)
        assert mat[0, 1] == 1.5  # fractional values intact

    def test_route_raises_metric_only(self):
        coarse = GroupedTopology(Torus((4, 4)), np.arange(16) // 2)
        with pytest.raises(TopologyError, match="metric-only"):
            coarse.route(0, 1)

    def test_member_lists_partition_the_parent(self):
        groups = np.array([0, 1, 0, 2, 1, 2, 0, 1])
        coarse = GroupedTopology(Torus((8,)), groups)
        members = coarse.member_lists()
        seen = np.sort(np.concatenate(members))
        assert np.array_equal(seen, np.arange(8))
        for gid, m in enumerate(members):
            assert np.array_equal(np.sort(m), m)  # ascending
            assert np.all(groups[m] == gid)

    def test_cache_key_distinguishes_aggregation(self):
        parent = Torus((4, 4))
        groups = np.arange(16) // 2
        rep = GroupedTopology(parent, groups)
        mean = GroupedTopology(parent, groups, aggregate="mean")
        assert rep.cache_key() is not None
        assert rep.cache_key() != mean.cache_key()
        assert rep.cache_key() == GroupedTopology(parent, groups).cache_key()

    def test_invalid_groups_rejected(self):
        parent = Torus((4,))
        with pytest.raises(TopologyError):
            GroupedTopology(parent, np.array([0, 2, 2, 2]))  # id 1 empty
        with pytest.raises(TopologyError):
            GroupedTopology(parent, np.array([0, 0]))  # wrong shape
        with pytest.raises(TopologyError):
            GroupedTopology(parent, np.array([0, 0, 1, 1]),
                            reps=np.array([2, 1]))  # rep 2 not in group 0


class TestCoarsenMachine:
    def test_grid_halves_largest_extent(self):
        topo = Torus((4, 8))
        coarse, groups, _, new_shape = coarsen_machine(topo)
        assert new_shape == (4, 4)
        assert coarse.num_nodes == 16
        # Groups pair neighbors along the halved axis: same row, cols 2k/2k+1.
        coords = np.stack(np.unravel_index(np.arange(32), (4, 8)), axis=1)
        for g in range(16):
            a, b = np.flatnonzero(groups == g)
            assert coords[a][0] == coords[b][0]
            assert coords[b][1] == coords[a][1] + 1

    def test_virtual_shape_threads_through_levels(self):
        topo = Torus((4, 4))
        shape = None
        level, p = topo, 16
        while p > 2:
            level, _, _, shape = coarsen_machine(level, shape=shape)
            assert level.num_nodes < p
            p = level.num_nodes
        assert p == 2

    def test_degraded_mask_propagates_and_reps_stay_healthy(self):
        base = Torus((4, 4))
        topo = DegradedTopology(base, FaultSet(dead_nodes=[0, 5]))
        allowed = topo.allowed_mask()
        coarse, groups, cmask, _ = coarsen_machine(topo, allowed)
        for g in range(coarse.num_nodes):
            members = np.flatnonzero(groups == g)
            assert cmask[g] == bool(allowed[members].any())
        reps = coarse.representatives
        healthy = cmask.nonzero()[0]
        assert allowed[reps[healthy]].all()

    def test_single_node_machine_refused(self):
        with pytest.raises(TopologyError):
            coarsen_machine(Torus((1,)))


# --------------------------------------------------------------------------
# HierarchicalMapper properties
# --------------------------------------------------------------------------
def _mean_random_hop_bytes(graph, topo, seeds=(0, 1, 2)):
    return float(np.mean(
        [RandomMapper(seed=s).map(graph, topo).hop_bytes for s in seeds]
    ))


class TestHierarchicalProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_never_worse_than_random(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(3, 9)), int(rng.integers(3, 9))
        graph = mesh2d_pattern(r, c, message_bytes=64)
        topo = (Torus if seed % 2 else Mesh)((r, c))
        ml = HierarchicalMapper(stop=max(4, (r * c) // 4), seed=seed).map(graph, topo)
        assert ml.hop_bytes <= _mean_random_hop_bytes(graph, topo) + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_bounded_factor_vs_direct_topolb(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(3, 9)), int(rng.integers(3, 9))
        graph = mesh2d_pattern(r, c, message_bytes=64)
        topo = (Torus if seed % 2 else Mesh)((r, c))
        ml = HierarchicalMapper(stop=max(4, (r * c) // 4), seed=seed).map(graph, topo)
        direct = TopoLB().map(graph, topo)
        assert ml.hop_bytes <= 3.0 * direct.hop_bytes + 1e-9

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_level_invariants_every_uncoarsening_step(self, seed):
        """At every recorded level: bounds, injectivity (within capacity),
        and the allowed mask hold."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(12, 80))
        graph = random_taskgraph(n, edge_prob=0.15, seed=seed)
        side = int(rng.integers(3, 7))
        topo = Torus((side, side))
        mapper = HierarchicalMapper(stop=4, seed=seed)
        mapper.map(graph, topo)
        assert mapper.last_level_assignments  # at least the coarsest level
        for ln, lp, allowed, assign in mapper.last_level_assignments:
            assert assign.shape == (ln,)
            assert assign.min() >= 0 and assign.max() < lp
            capacity = lp if allowed is None else int(allowed.sum())
            if ln <= capacity:
                assert len(np.unique(assign)) == ln  # injective
            if allowed is not None:
                assert allowed[assign].all()

    def test_masked_run_uses_whole_healthy_machine(self):
        """64 tasks, 61 healthy processors: the partial final contraction
        must land on exactly 61 distinct processors, not a full halving."""
        graph = mesh2d_pattern(8, 8)
        topo = DegradedTopology(Torus((8, 8)), FaultSet(dead_nodes=[3, 17, 42]))
        mapping = HierarchicalMapper(stop=16, seed=0).map(graph, topo)
        allowed = topo.allowed_mask()
        assert allowed[mapping.assignment].all()
        assert len(np.unique(mapping.assignment)) == int(allowed.sum())

    def test_many_to_one_groups_cover_machine(self):
        graph = random_taskgraph(100, edge_prob=0.05, seed=3)
        topo = Torus((4, 4))
        mapper = HierarchicalMapper(stop=4, seed=0)
        mapping = mapper.map(graph, topo)
        assert len(np.unique(mapping.assignment)) == 16
        groups = mapper.last_groups
        assert groups.shape == (100,)
        group_map = mapper.last_group_mapping
        assert group_map.is_bijection()
        # group mapping and expansion agree task by task
        assert np.array_equal(
            mapping.assignment, group_map.assignment[groups]
        )

    def test_bad_parameters_rejected(self):
        with pytest.raises(MappingError):
            HierarchicalMapper(levels=0)
        with pytest.raises(MappingError):
            HierarchicalMapper(refine_window=-1)
        with pytest.raises(MappingError):
            HierarchicalMapper(stop=0)
        with pytest.raises(MappingError):
            HierarchicalMapper(levels="many")


class TestDeterminism:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_repeat_runs_bit_identical(self, seed):
        graph = mesh2d_pattern(6, 6, message_bytes=32)
        topo = Torus((6, 6))
        a = HierarchicalMapper(stop=9, seed=seed).map(graph, topo).assignment
        b = HierarchicalMapper(stop=9, seed=seed).map(graph, topo).assignment
        assert np.array_equal(a, b)

    def test_kernels_bit_identical(self):
        graph = mesh2d_pattern(8, 8, message_bytes=128)
        topo = Torus((8, 8))
        vec = HierarchicalMapper(stop=16, kernel="vectorized").map(graph, topo)
        ref = HierarchicalMapper(stop=16, kernel="reference").map(graph, topo)
        assert np.array_equal(vec.assignment, ref.assignment)

    def test_engine_jobs1_vs_jobs2_identical(self):
        """The same spec batch maps identically whether run serially or over
        a process pool (fresh caches per worker)."""
        from repro.engine import MappingEngine, MappingRequest

        requests = [
            MappingRequest(
                graph="mesh2d:8x8;bytes=64",
                topology="torus:8x8",
                mapper="multilevel:inner=topolb;stop=16",
                seed=s,
                validate="cheap",
            )
            for s in (0, 1)
        ]
        engine = MappingEngine()
        serial = engine.run_many(requests, jobs=1)
        pooled = engine.run_many(requests, jobs=2)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.assignment, b.assignment)
            assert a.metrics == b.metrics


# --------------------------------------------------------------------------
# Spec grammar
# --------------------------------------------------------------------------
class TestMultilevelSpecs:
    def test_acceptance_spec_parses_with_comma_spillover(self):
        from repro.engine import canonical_mapper_spec

        assert canonical_mapper_spec("multilevel:inner=topolb,levels=auto") == \
            canonical_mapper_spec("multilevel:inner=topolb;levels=auto")

    def test_spillover_keeps_inner_options_inner(self):
        from repro.engine import canonical_mapper_spec

        spec = canonical_mapper_spec(
            "multilevel:inner=topolb,order=3,levels=2;stop=16"
        )
        assert "inner=topolb,order=3" in spec
        assert "levels=2" in spec and "stop=16" in spec

    def test_multilevel_alias_builds(self):
        from repro.engine import mapper_from_spec

        mapper = mapper_from_spec("MultilevelLB", seed=0)
        assert isinstance(mapper, HierarchicalMapper)

    def test_engine_multilevel_validates_full_on_small_machine(self):
        from repro.engine import MappingEngine, MappingRequest

        result = MappingEngine().run(MappingRequest(
            graph="mesh2d:8x8;bytes=64",
            topology="torus:8x8",
            mapper="multilevel:inner=topolb;stop=16",
            seed=0,
            validate="full",
        ))
        assert sorted(result.assignment.tolist()) == list(range(64))
        assert result.metrics["hop_bytes"] > 0
