"""Tests for the hop-byte lower bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import (
    IdentityMapper,
    RandomMapper,
    TopoLB,
    hop_bytes_lower_bound,
    optimality_gap,
)
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph
from repro.topology import Mesh, Torus


class TestLowerBound:
    def test_stencil_bound_is_tight(self):
        """4-neighbor pattern on a degree-4 torus: bound == total bytes, and
        the identity mapping attains it — optimality certified."""
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        bound = hop_bytes_lower_bound(g, topo)
        assert bound == pytest.approx(g.total_bytes)
        mapping = IdentityMapper().map(g, topo)
        assert optimality_gap(mapping) == pytest.approx(1.0)

    def test_topolb_certified_optimal(self):
        topo = Torus((8, 8))
        g = mesh2d_pattern(8, 8)
        assert optimality_gap(TopoLB().map(g, topo)) == pytest.approx(1.0)

    def test_bound_exceeds_total_bytes_for_high_degree(self):
        """A task with more partners than machine degree must reach past
        distance 1, so the bound strictly exceeds total bytes."""
        g = TaskGraph(9, [(0, j, 10.0) for j in range(1, 9)])
        topo = Torus((3, 3))  # degree 4 < 8 partners
        assert hop_bytes_lower_bound(g, topo) > g.total_bytes

    def test_heavy_edges_matched_to_short_distances(self):
        # Star with one giant edge: the bound must charge the giant edge
        # distance 1, not the average.
        g = TaskGraph(9, [(0, 1, 1e6)] + [(0, j, 1.0) for j in range(2, 9)])
        topo = Torus((3, 3))
        bound = hop_bytes_lower_bound(g, topo)
        assert bound < 1.1e6  # ~1e6*1 + small change, NOT 2e6

    def test_edgeless(self):
        g = TaskGraph(4)
        assert hop_bytes_lower_bound(g, Mesh((2, 2))) == 0.0

    def test_size_mismatch_returns_trivial(self):
        g = mesh2d_pattern(2, 2)
        assert hop_bytes_lower_bound(g, Mesh((3, 3))) == 0.0

    def test_gap_of_random_large(self):
        topo = Torus((8, 8))
        g = mesh2d_pattern(8, 8)
        gap = optimality_gap(RandomMapper(seed=0).map(g, topo))
        assert gap > 3.0


@given(st.integers(0, 5_000))
@settings(max_examples=30, deadline=None)
def test_property_bound_below_every_bijection(seed):
    """Soundness: the bound never exceeds an actual bijective mapping's HB."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 16))
    g = random_taskgraph(n, edge_prob=0.4, seed=seed)
    topo = Torus((n,)) if seed % 2 else Mesh((n,))
    bound = hop_bytes_lower_bound(g, topo)
    for s in range(3):
        mapping = RandomMapper(seed=seed + s).map(g, topo)
        assert bound <= mapping.hop_bytes + 1e-9
