"""Tests for the ASCII placement / link-heat renderers."""

from __future__ import annotations

import pytest

from repro.exceptions import MappingError
from repro.mapping import IdentityMapper, Mapping, RandomMapper, render_link_heat, render_placement
from repro.taskgraph import TaskGraph, mesh2d_pattern
from repro.topology import Hypercube, Mesh, Torus


class TestRenderPlacement:
    def test_identity_grid(self):
        g = mesh2d_pattern(2, 2)
        m = IdentityMapper().map(g, Torus((2, 2)))
        assert render_placement(m) == "0 1\n2 3"

    def test_permuted(self):
        g = mesh2d_pattern(2, 2)
        m = Mapping(g, Mesh((2, 2)), [3, 2, 1, 0])
        assert render_placement(m) == "3 2\n1 0"

    def test_multi_resident(self):
        g = TaskGraph(3)
        m = Mapping(g, Mesh((2, 2)), [0, 0, 3])
        out = render_placement(m)
        assert "0+1" in out
        assert "." in out  # empty processors marked

    def test_rejects_non_2d(self):
        g = mesh2d_pattern(2, 4)
        with pytest.raises(MappingError):
            render_placement(IdentityMapper().map(g, Hypercube(3)))
        with pytest.raises(MappingError):
            render_placement(IdentityMapper().map(g, Mesh((8,))))

    def test_alignment_for_wide_ids(self):
        g = mesh2d_pattern(4, 4)
        m = IdentityMapper().map(g, Mesh((4, 4)))
        lines = render_placement(m).splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular


class TestRenderLinkHeat:
    def test_identity_uniform_heat(self):
        g = mesh2d_pattern(3, 3)
        m = IdentityMapper().map(g, Mesh((3, 3)))
        out = render_link_heat(m)
        # all used links carry equal load -> hottest everywhere
        assert "@" in out
        assert out.count("o") == 9

    def test_no_traffic(self):
        g = TaskGraph(4)
        m = IdentityMapper().map(g, Mesh((2, 2)))
        out = render_link_heat(m)
        assert "@" not in out

    def test_hot_link_visible(self):
        g = TaskGraph(4, [(0, 1, 1000.0), (2, 3, 1.0)])
        m = IdentityMapper().map(g, Mesh((2, 2)))
        out = render_link_heat(m)
        lines = out.splitlines()
        assert lines[0] == "o@o"      # the heavy 0-1 link
        assert lines[2][1] == " "     # the featherweight 2-3 link

    def test_random_mapping_renders(self):
        g = mesh2d_pattern(4, 4)
        m = RandomMapper(seed=0).map(g, Torus((4, 4)))
        out = render_link_heat(m)
        assert out.count("o") == 16
