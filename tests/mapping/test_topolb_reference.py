"""Equivalence of the optimized TopoLB against a naive reference.

The shipped TopoLB maintains its ``fest`` table and row reductions
incrementally (reserve minima, lazy repair, penalty columns). This file
re-implements Algorithm 1 *naively* — recomputing every ``fest(t, q)`` from
scratch each cycle straight from the paper's formulas — and asserts both
produce identical assignments on a battery of instances. Any bookkeeping bug
in the fast path shows up here as a divergence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.estimation import EstimatorOrder
from repro.mapping.topolb import TopoLB
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph
from repro.topology import Hypercube, Mesh, Torus


def naive_topolb(graph: TaskGraph, topology, order: EstimatorOrder) -> np.ndarray:
    """Algorithm 1 with from-scratch fest recomputation every cycle."""
    n = graph.num_tasks
    dist = topology.distance_matrix().astype(np.float64)
    placed: dict[int, int] = {}
    avail = np.ones(n, dtype=bool)
    unassigned = np.ones(n, dtype=bool)

    def fest_row(t: int) -> np.ndarray:
        """fest(t, q) for every processor q, straight from Section 4.3."""
        row = np.zeros(n, dtype=np.float64)
        nbrs, wts = graph.neighbor_slice(t)
        if order is EstimatorOrder.FIRST:
            expect = np.zeros(n)
        elif order is EstimatorOrder.SECOND:
            expect = dist.mean(axis=1)
        else:
            expect = dist[:, avail].sum(axis=1) / max(int(avail.sum()), 1)
        for j, c in zip(nbrs.tolist(), wts.tolist()):
            if j in placed:
                row += c * dist[placed[j]]
            else:
                row += c * expect
        return row

    assignment = np.full(n, -1, dtype=np.int64)
    for _cycle in range(n):
        best_gain, best_t, best_p = -np.inf, -1, -1
        for t in np.flatnonzero(unassigned):
            row = fest_row(int(t))
            free = row[avail]
            gain = free.mean() - free.min()
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_t = int(t)
                # argmin over available processors, lowest id on ties
                masked = row + np.where(avail, 0.0, np.inf)
                best_p = int(np.argmin(masked))
        assignment[best_t] = best_p
        placed[best_t] = best_p
        unassigned[best_t] = False
        avail[best_p] = False
    return assignment


INSTANCES = [
    ("mesh2x3_on_torus6", lambda: (mesh2d_pattern(2, 3), Torus((6,)))),
    ("mesh3x3_on_mesh3x3", lambda: (mesh2d_pattern(3, 3), Mesh((3, 3)))),
    ("random8_on_cube3", lambda: (random_taskgraph(8, edge_prob=0.4, seed=1), Hypercube(3))),
    ("random12_on_torus", lambda: (random_taskgraph(12, edge_prob=0.3, seed=2), Torus((3, 4)))),
    ("weighted_path", lambda: (
        TaskGraph(6, [(0, 1, 5.0), (1, 2, 50.0), (2, 3, 500.0), (3, 4, 5.0), (4, 5, 1.0)]),
        Mesh((6,)),
    )),
    ("star", lambda: (
        TaskGraph(9, [(0, j, float(j)) for j in range(1, 9)]), Mesh((3, 3)),
    )),
]


@pytest.mark.parametrize("order", [EstimatorOrder.FIRST, EstimatorOrder.SECOND,
                                   EstimatorOrder.THIRD], ids=["o1", "o2", "o3"])
@pytest.mark.parametrize("name,factory", INSTANCES, ids=[n for n, _ in INSTANCES])
def test_fast_topolb_matches_naive_reference(order, name, factory):
    graph, topo = factory()
    fast = TopoLB(order=order).map(graph, topo).assignment
    naive = naive_topolb(graph, topo, order)
    assert fast.tolist() == naive.tolist()


@pytest.mark.parametrize("seed", range(8))
def test_fast_matches_naive_random_instances(seed):
    """Randomized cross-check, second order (the shipped configuration)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 15))
    graph = random_taskgraph(n, edge_prob=0.35, seed=seed)
    shape = (n,) if rng.random() < 0.5 else None
    topo = Torus((n,)) if shape else Mesh((n,))
    fast = TopoLB(order=2).map(graph, topo).assignment
    naive = naive_topolb(graph, topo, EstimatorOrder.SECOND)
    assert fast.tolist() == naive.tolist()
