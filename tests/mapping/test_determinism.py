"""Determinism contracts of TopoLB.

The stable tie-break documented at ``topolb.py`` (reserve ``rebuild`` uses a
*stable* argsort, breaking fest-value ties by lowest processor id) is what
makes the mapper reproducible: on symmetric instances huge tie classes arise
and the tie-break decides the growth pattern. These tests pin down two
consequences:

* repeated runs of the same configured mapper give bit-identical placements;
* the fest-table dtype (float32 vs float64) does not change the placement on
  small symmetric instances for the first- and second-order estimators,
  whose well-separated table values survive float32 rounding. (The
  third-order estimator is excluded by design: its O(p^2) running-average
  updates accumulate dtype-dependent rounding that can legitimately reorder
  near-ties.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import EstimatorOrder, Mesh, TopoLB, Torus, mesh2d_pattern, ring_pattern

#: Small symmetric instances: (task pattern, machine).
_INSTANCES = [
    pytest.param(mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4)),
                 id="mesh4x4-on-torus4x4"),
    pytest.param(mesh2d_pattern(4, 4, message_bytes=256), Mesh((4, 4)),
                 id="mesh4x4-on-mesh4x4"),
    pytest.param(mesh2d_pattern(3, 3, message_bytes=100), Mesh((3, 3)),
                 id="mesh3x3-on-mesh3x3"),
    pytest.param(ring_pattern(8, message_bytes=512), Torus((2, 4)),
                 id="ring8-on-torus2x4"),
]

_DTYPE_ORDERS = [EstimatorOrder.FIRST, EstimatorOrder.SECOND]


class TestDtypeInvariance:
    @pytest.mark.parametrize("graph,topo", _INSTANCES)
    @pytest.mark.parametrize("order", _DTYPE_ORDERS)
    def test_float32_matches_float64(self, graph, topo, order):
        a32 = TopoLB(order=order, dtype=np.float32).map(graph, topo).assignment
        a64 = TopoLB(order=order, dtype=np.float64).map(graph, topo).assignment
        assert (a32 == a64).all()

    @pytest.mark.parametrize("order", _DTYPE_ORDERS)
    def test_selection_rules_dtype_invariant(self, order):
        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4))
        for selection in ("gain", "max_cost", "volume"):
            a32 = TopoLB(order=order, dtype=np.float32, selection=selection)
            a64 = TopoLB(order=order, dtype=np.float64, selection=selection)
            assert (a32.map(graph, topo).assignment
                    == a64.map(graph, topo).assignment).all()


class TestRepeatedRuns:
    @pytest.mark.parametrize("graph,topo", _INSTANCES)
    def test_same_mapper_instance_is_deterministic(self, graph, topo):
        mapper = TopoLB()
        first = mapper.map(graph, topo).assignment
        second = mapper.map(graph, topo).assignment
        assert (first == second).all()

    @pytest.mark.parametrize("order",
                             [EstimatorOrder.FIRST, EstimatorOrder.SECOND,
                              EstimatorOrder.THIRD])
    def test_fresh_mapper_instances_agree(self, order):
        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4))
        runs = [TopoLB(order=order).map(graph, topo).assignment for _ in range(3)]
        assert (runs[0] == runs[1]).all()
        assert (runs[0] == runs[2]).all()

    def test_determinism_survives_profiling(self):
        """Instrumentation must never perturb placement decisions."""
        from repro import obs

        graph, topo = mesh2d_pattern(4, 4, message_bytes=256), Torus((4, 4))
        plain = TopoLB().map(graph, topo).assignment
        with obs.profiled():
            profiled = TopoLB().map(graph, topo).assignment
        assert (plain == profiled).all()
