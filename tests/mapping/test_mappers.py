"""Tests for TopoLB, TopoCentLB and the baseline mappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.mapping import (
    EstimatorOrder,
    IdentityMapper,
    Mapping,
    RandomMapper,
    TopoCentLB,
    TopoLB,
    expected_random_hops_per_byte,
)
from repro.taskgraph import (
    TaskGraph,
    all_to_all_pattern,
    mesh2d_pattern,
    random_taskgraph,
    ring_pattern,
)
from repro.topology import FatTree, Hypercube, Mesh, Torus
from repro.utils.validation import check_permutation

ALL_MAPPERS = [
    RandomMapper(seed=0),
    IdentityMapper(),
    TopoCentLB(),
    TopoLB(order=EstimatorOrder.FIRST),
    TopoLB(order=EstimatorOrder.SECOND),
    TopoLB(order=EstimatorOrder.THIRD),
]


class TestBijectionInvariant:
    @pytest.mark.parametrize("mapper", ALL_MAPPERS, ids=lambda m: repr(m))
    @pytest.mark.parametrize(
        "topo_factory",
        [lambda: Torus((4, 4)), lambda: Mesh((4, 4)), lambda: Hypercube(4),
         lambda: FatTree(4, 2)],
        ids=["torus", "mesh", "hypercube", "fattree"],
    )
    def test_every_mapper_produces_bijection(self, mapper, topo_factory):
        topo = topo_factory()
        g = random_taskgraph(topo.num_nodes, edge_prob=0.2, seed=1)
        mapping = mapper.map(g, topo)
        check_permutation(mapping.assignment, topo.num_nodes, MappingError)
        assert mapping.is_bijection()

    @pytest.mark.parametrize("mapper", ALL_MAPPERS, ids=lambda m: repr(m))
    def test_size_mismatch_rejected(self, mapper):
        g = random_taskgraph(10, seed=0)
        with pytest.raises(MappingError, match="partition"):
            mapper.map(g, Torus((4, 4)))


class TestMappingObject:
    def test_metrics_cached_and_consistent(self, pattern8x8, torus8x8):
        m = IdentityMapper().map(pattern8x8, torus8x8)
        assert m.hop_bytes == pytest.approx(pattern8x8.total_bytes)
        assert m.hops_per_byte == pytest.approx(1.0)
        assert m.processor_of(5) == 5

    def test_assignment_readonly(self, pattern8x8, torus8x8):
        m = IdentityMapper().map(pattern8x8, torus8x8)
        with pytest.raises(ValueError):
            m.assignment[0] = 3

    def test_with_assignment(self, pattern8x8, torus8x8):
        m = IdentityMapper().map(pattern8x8, torus8x8)
        m2 = m.with_assignment(np.roll(np.arange(64), 1))
        assert m2.hops_per_byte > 0

    def test_bad_assignment_rejected(self, pattern8x8, torus8x8):
        with pytest.raises(MappingError):
            Mapping(pattern8x8, torus8x8, [0] * 63)
        with pytest.raises(MappingError):
            Mapping(pattern8x8, torus8x8, [99] * 64)

    def test_many_to_one_not_bijection(self, pattern8x8, torus8x8):
        m = Mapping(pattern8x8, torus8x8, [0] * 64)
        assert not m.is_bijection()
        assert m.hop_bytes == 0.0


class TestRandomMapper:
    def test_seeded_reproducible(self, pattern8x8, torus8x8):
        a = RandomMapper(seed=5).map(pattern8x8, torus8x8).assignment
        b = RandomMapper(seed=5).map(pattern8x8, torus8x8).assignment
        assert (a == b).all()

    def test_matches_expectation(self):
        """Mean hops-per-byte over seeds ~ analytic expectation (Fig 1's check)."""
        topo = Torus((8, 8))
        g = mesh2d_pattern(8, 8)
        values = [
            RandomMapper(seed=s).map(g, topo).hops_per_byte for s in range(30)
        ]
        expected = expected_random_hops_per_byte(topo, distinct=True)
        assert np.mean(values) == pytest.approx(expected, rel=0.06)


class TestTopoLB:
    def test_optimal_on_matching_torus(self):
        """Paper: TopoLB maps 2D-mesh onto 2D-torus optimally in most cases."""
        for side in (4, 8, 12):
            topo = Torus((side, side))
            g = mesh2d_pattern(side, side)
            assert TopoLB().map(g, topo).hops_per_byte == pytest.approx(1.0)

    def test_optimal_embedding_8x8_in_444(self):
        """Paper Fig 4: (8,8) mesh embeds in (4,4,4) torus; TopoLB finds it."""
        mapping = TopoLB().map(mesh2d_pattern(8, 8), Torus((4, 4, 4)))
        assert mapping.hops_per_byte == pytest.approx(1.0)

    def test_beats_random_substantially(self):
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        topolb = TopoLB().map(g, topo).hops_per_byte
        rand = np.mean(
            [RandomMapper(seed=s).map(g, topo).hops_per_byte for s in range(5)]
        )
        assert topolb < rand / 2

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_all_orders_valid_and_good(self, order):
        topo = Torus((5, 5))
        g = mesh2d_pattern(5, 5)
        mapping = TopoLB(order=order).map(g, topo)
        assert mapping.is_bijection()
        assert mapping.hops_per_byte < 3.0  # far below random's ~2.4+... loose

    def test_order_accessor(self):
        assert TopoLB(order=3).order is EstimatorOrder.THIRD

    def test_bad_dtype_rejected(self):
        with pytest.raises(MappingError):
            TopoLB(dtype=np.int32)

    @pytest.mark.parametrize("rule", ["gain", "max_cost", "volume"])
    def test_selection_rules_valid(self, rule):
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4)
        mapping = TopoLB(selection=rule).map(g, topo)
        assert mapping.is_bijection()
        assert TopoLB(selection=rule).selection == rule

    def test_gain_rule_beats_alternatives_on_stencil(self):
        topo = Torus((8, 8))
        g = mesh2d_pattern(8, 8)
        results = {
            rule: TopoLB(selection=rule).map(g, topo).hops_per_byte
            for rule in ("gain", "max_cost", "volume")
        }
        assert results["gain"] == min(results.values())
        assert results["gain"] == pytest.approx(1.0)

    def test_bad_selection_rejected(self):
        with pytest.raises(MappingError, match="selection"):
            TopoLB(selection="chaos")

    def test_deterministic(self):
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.3, seed=9)
        a = TopoLB().map(g, topo).assignment
        b = TopoLB().map(g, topo).assignment
        assert (a == b).all()

    def test_edgeless_graph(self):
        g = TaskGraph(9)
        mapping = TopoLB().map(g, Mesh((3, 3)))
        assert mapping.is_bijection()

    def test_single_task(self):
        g = TaskGraph(1)
        mapping = TopoLB().map(g, Mesh((1,)))
        assert mapping.assignment.tolist() == [0]

    def test_float32_table(self):
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        assert TopoLB(dtype=np.float32).map(g, topo).hops_per_byte == pytest.approx(1.0)

    def test_weighted_edges_respected(self):
        """A very heavy edge must end up at distance 1."""
        g = TaskGraph(
            8, [(i, j, 1.0) for i in range(8) for j in range(i + 1, 8)] + [(0, 7, 1e6)]
        )
        topo = Torus((8,))
        m = TopoLB().map(g, topo)
        assert topo.distance(m.processor_of(0), m.processor_of(7)) == 1


class TestTopoCentLB:
    def test_good_on_matching_torus(self):
        topo = Torus((8, 8))
        g = mesh2d_pattern(8, 8)
        hpb = TopoCentLB().map(g, topo).hops_per_byte
        assert hpb < expected_random_hops_per_byte(topo) / 2

    def test_worse_or_equal_to_topolb(self):
        """Paper: TopoLB performs better than TopoCentLB in all tested cases."""
        for side, shape in ((8, (8, 8)), (8, (4, 4, 4))):
            g = mesh2d_pattern(side, side)
            topo = Torus(shape)
            cent = TopoCentLB().map(g, topo).hops_per_byte
            tlb = TopoLB().map(g, topo).hops_per_byte
            assert tlb <= cent + 1e-9

    def test_first_pick_is_most_communicating(self):
        # One hub with overwhelming traffic; it must be placed first and its
        # partners must surround it.
        g = TaskGraph(9, [(0, j, 100.0) for j in range(1, 5)] + [(5, 6, 1.0), (7, 8, 1.0), (1, 5, 1.0), (2, 7, 1.0)])
        topo = Mesh((3, 3))
        m = TopoCentLB().map(g, topo)
        hub = m.processor_of(0)
        for j in range(1, 5):
            assert topo.distance(hub, m.processor_of(j)) == 1

    def test_ring_stays_local(self):
        topo = Torus((16,))
        m = TopoCentLB().map(ring_pattern(16), topo)
        assert m.hops_per_byte <= 2.0

    def test_deterministic(self):
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.3, seed=9)
        assert (
            TopoCentLB().map(g, topo).assignment
            == TopoCentLB().map(g, topo).assignment
        ).all()

    def test_edgeless_graph(self):
        g = TaskGraph(4)
        assert TopoCentLB().map(g, Mesh((2, 2))).is_bijection()


class TestAllToAllControl:
    def test_mapping_cannot_help_all_to_all(self):
        """On a vertex-transitive machine every bijection of a uniform
        all-to-all pattern has identical hop-bytes (the dense-LeanMD regime)."""
        topo = Torus((4, 4))
        g = all_to_all_pattern(16)
        hb_random = RandomMapper(seed=0).map(g, topo).hop_bytes
        hb_topolb = TopoLB().map(g, topo).hop_bytes
        assert hb_topolb == pytest.approx(hb_random)


class TestFatTreeContrast:
    def test_mapping_gain_small_on_fattree(self):
        """The paper's motivation: on fat-trees contention/mapping matters
        little; the TopoLB-vs-random gap collapses relative to a torus."""
        g = mesh2d_pattern(4, 4)
        ft = FatTree(4, 2)
        torus = Torus((4, 4))
        gain_ft = (
            RandomMapper(seed=0).map(g, ft).hops_per_byte
            / TopoLB().map(g, ft).hops_per_byte
        )
        gain_torus = (
            RandomMapper(seed=0).map(g, torus).hops_per_byte
            / TopoLB().map(g, torus).hops_per_byte
        )
        assert gain_torus > gain_ft
