"""Tests for the estimation-function helpers and TopoLB internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping.estimation import EstimatorOrder, average_distance_vector
from repro.topology import Mesh, Torus


class TestAverageDistanceVector:
    def test_full_set_is_row_means(self):
        topo = Mesh((3, 3))
        avg = average_distance_vector(topo)
        mat = topo.distance_matrix()
        assert avg == pytest.approx(mat.mean(axis=1))

    def test_torus_uniform(self):
        """Vertex-transitive machine: every processor has the same average."""
        avg = average_distance_vector(Torus((4, 4)))
        assert np.allclose(avg, avg[0])

    def test_mesh_center_smaller_than_corner(self):
        topo = Mesh((5, 5))
        avg = average_distance_vector(topo)
        center = topo.index((2, 2))
        corner = topo.index((0, 0))
        assert avg[center] < avg[corner]

    def test_subset_restriction(self):
        topo = Mesh((4,))
        mask = np.array([True, False, False, True])
        avg = average_distance_vector(topo, mask)
        # node 0: mean(d(0,0), d(0,3)) = 1.5 ; node 1: mean(1, 2) = 1.5
        assert avg[0] == pytest.approx(1.5)
        assert avg[2] == pytest.approx(1.5)

    def test_empty_subset(self):
        topo = Mesh((3,))
        avg = average_distance_vector(topo, np.zeros(3, dtype=bool))
        assert (avg == 0).all()

    def test_third_order_shrinks_with_subset(self):
        """Removing far processors lowers the expected distance."""
        topo = Mesh((6,))
        full = average_distance_vector(topo)
        near = average_distance_vector(
            topo, np.array([True, True, True, False, False, False])
        )
        assert near[0] < full[0]


class TestEstimatorOrder:
    def test_values(self):
        assert EstimatorOrder.FIRST == 1
        assert EstimatorOrder.SECOND == 2
        assert EstimatorOrder.THIRD == 3

    def test_coercion(self):
        assert EstimatorOrder(2) is EstimatorOrder.SECOND
        with pytest.raises(ValueError):
            EstimatorOrder(4)
