"""Tests for RefineTopoLB, TwoPhaseMapper and the analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import MappingError
from repro.mapping import (
    IdentityMapper,
    Mapping,
    RandomMapper,
    RefineTopoLB,
    TopoLB,
    TwoPhaseMapper,
    hop_bytes,
)
from repro.mapping.analysis import (
    expected_random_hops_per_byte,
    expected_random_pair_distance,
)
from repro.partition import GreedyPartitioner, MultilevelPartitioner
from repro.taskgraph import TaskGraph, leanmd_taskgraph, mesh2d_pattern, random_taskgraph
from repro.topology import Mesh, Torus


class TestRefineTopoLB:
    def test_never_worse(self):
        topo = Torus((5, 5))
        g = random_taskgraph(25, edge_prob=0.25, seed=2)
        for seed in range(4):
            before = RandomMapper(seed=seed).map(g, topo)
            after = RefineTopoLB(seed=seed).refine(before)
            assert after.hop_bytes <= before.hop_bytes + 1e-9

    def test_improves_random_substantially(self):
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        before = RandomMapper(seed=0).map(g, topo)
        after = RefineTopoLB(max_sweeps=20, seed=0).refine(before)
        assert after.hop_bytes < 0.6 * before.hop_bytes

    def test_hop_bytes_recomputed_matches_incremental(self):
        """The refiner's internal cost table must stay consistent: the final
        mapping's recomputed hop-bytes equals what metrics report."""
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.4, seed=7)
        after = RefineTopoLB(seed=1).refine(RandomMapper(seed=1).map(g, topo))
        assert after.hop_bytes == pytest.approx(
            hop_bytes(g, topo, after.assignment)
        )

    def test_result_is_bijection(self):
        topo = Mesh((3, 3))
        g = random_taskgraph(9, edge_prob=0.5, seed=3)
        after = RefineTopoLB(seed=0).refine(RandomMapper(seed=0).map(g, topo))
        assert after.is_bijection()

    def test_fixed_point_of_optimal(self):
        """An optimal 1.0-hops/byte mapping admits no improving swap."""
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        optimal = IdentityMapper().map(g, topo)
        refined = RefineTopoLB(seed=0).refine(optimal)
        assert refined.hop_bytes == pytest.approx(optimal.hop_bytes)

    def test_map_requires_base(self):
        with pytest.raises(MappingError, match="base"):
            RefineTopoLB().map(mesh2d_pattern(2, 2), Torus((2, 2)))

    def test_map_with_base(self):
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4)
        m = RefineTopoLB(base=TopoLB(), seed=0).map(g, topo)
        assert m.hops_per_byte <= TopoLB().map(g, topo).hops_per_byte + 1e-9

    def test_requires_bijection(self, pattern8x8, torus8x8):
        squashed = Mapping(pattern8x8, torus8x8, [0] * 64)
        with pytest.raises(MappingError, match="bijective"):
            RefineTopoLB().refine(squashed)

    def test_bad_sweeps(self):
        with pytest.raises(MappingError):
            RefineTopoLB(max_sweeps=0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_monotone_improvement(self, seed):
        topo = Torus((3, 4))
        g = random_taskgraph(12, edge_prob=0.3, seed=seed)
        before = RandomMapper(seed=seed).map(g, topo)
        after = RefineTopoLB(max_sweeps=3, seed=seed).refine(before)
        assert after.hop_bytes <= before.hop_bytes + 1e-9
        assert after.is_bijection()

    @given(
        seed=st.integers(0, 10_000),
        kernel=st.sampled_from(["vectorized", "reference"]),
        block_size=st.sampled_from([1, 3, 16, 64]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_never_worse_any_kernel(self, seed, kernel, block_size):
        """Monotone improvement holds for both kernels at any block size."""
        topo = Mesh((4, 3))
        g = random_taskgraph(12, edge_prob=0.35, seed=seed % 97)
        before = RandomMapper(seed=seed).map(g, topo)
        after = RefineTopoLB(
            max_sweeps=3, seed=seed, kernel=kernel, block_size=block_size
        ).refine(before)
        assert after.hop_bytes <= before.hop_bytes + 1e-9
        assert after.is_bijection()


class TestApplySwapDegenerateGuard:
    """Regression: a degenerate swap (same task, or two tasks already on the
    same processor, which non-bijective internal states can produce) must be
    an exact no-op — the old patch path accumulated rounding into the cost
    table instead."""

    @staticmethod
    def _state(assign):
        topo = Torus((3, 3))
        g = random_taskgraph(9, edge_prob=0.5, seed=4)
        dist = topo.distance_matrix(np.float64)
        indptr, indices, weights = g.csr_arrays()
        assign = np.asarray(assign, dtype=np.int64)
        cost = np.asarray(g.adjacency_csr() @ dist[assign])
        return assign, cost, dist, indptr, indices, weights

    def test_same_task_is_noop(self):
        assign, cost, dist, indptr, indices, weights = self._state(range(9))
        assign0, cost0 = assign.copy(), cost.copy()
        RefineTopoLB._apply_swap(3, 3, assign, cost, dist, indptr, indices,
                                 weights)
        np.testing.assert_array_equal(assign, assign0)
        np.testing.assert_array_equal(cost, cost0)

    def test_same_processor_is_noop(self):
        # Crafted non-bijective state: tasks 2 and 5 share processor 7.
        assign, cost, dist, indptr, indices, weights = self._state(
            [0, 1, 7, 3, 4, 7, 6, 2, 8])
        assert assign[2] == assign[5]
        assign0, cost0 = assign.copy(), cost.copy()
        RefineTopoLB._apply_swap(2, 5, assign, cost, dist, indptr, indices,
                                 weights)
        np.testing.assert_array_equal(assign, assign0)
        np.testing.assert_array_equal(cost, cost0)

    def test_real_swap_still_applies(self):
        assign, cost, dist, indptr, indices, weights = self._state(range(9))
        RefineTopoLB._apply_swap(1, 6, assign, cost, dist, indptr, indices,
                                 weights)
        assert assign[1] == 6 and assign[6] == 1
        # Patched table equals a from-scratch rebuild.
        g = random_taskgraph(9, edge_prob=0.5, seed=4)
        np.testing.assert_allclose(cost, g.adjacency_csr() @ dist[assign])


class TestTwoPhaseMapper:
    def test_equal_sizes_skips_partitioning(self):
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4)
        tp = TwoPhaseMapper(mapper=TopoLB())
        mapping = tp.map(g, topo)
        assert mapping.is_bijection()
        assert (tp.last_groups == np.arange(16)).all()

    def test_larger_graph_coalesces(self):
        topo = Torus((4, 4))
        g = leanmd_taskgraph(16, cells_shape=(3, 3, 3))
        tp = TwoPhaseMapper()
        mapping = tp.map(g, topo)
        assert mapping.assignment.shape == (g.num_tasks,)
        # Every processor hosts at least one task.
        assert len(np.unique(mapping.assignment)) == 16
        assert tp.last_group_mapping is not None
        assert tp.last_group_mapping.is_bijection()

    def test_expansion_consistent_with_groups(self):
        topo = Torus((3, 3))
        g = random_taskgraph(40, edge_prob=0.1, seed=0)
        tp = TwoPhaseMapper(partitioner=GreedyPartitioner())
        mapping = tp.map(g, topo)
        groups = tp.last_groups
        gmap = tp.last_group_mapping.assignment
        assert (mapping.assignment == gmap[groups]).all()

    def test_refiner_plumbed_through(self):
        topo = Torus((4, 4))
        g = leanmd_taskgraph(8, cells_shape=(3, 3, 3))
        plain = TwoPhaseMapper(
            partitioner=MultilevelPartitioner(seed=0), mapper=RandomMapper(seed=0)
        )
        refined = TwoPhaseMapper(
            partitioner=MultilevelPartitioner(seed=0),
            mapper=RandomMapper(seed=0),
            refiner=RefineTopoLB(seed=0),
        )
        assert (
            refined.map(g, topo).hop_bytes <= plain.map(g, topo).hop_bytes + 1e-9
        )

    def test_defaults(self):
        tp = TwoPhaseMapper()
        topo = Torus((3, 3))
        g = random_taskgraph(30, edge_prob=0.2, seed=1)
        assert tp.map(g, topo).assignment.shape == (30,)


class TestAnalysis:
    def test_expected_pair_distance_matches_matrix(self):
        topo = Torus((5, 4))
        assert expected_random_pair_distance(topo) == pytest.approx(
            topo.distance_matrix().mean()
        )

    def test_distinct_correction(self):
        topo = Torus((4, 4))
        mat = topo.distance_matrix().astype(float)
        off = mat[~np.eye(16, dtype=bool)].mean()
        assert expected_random_pair_distance(topo, distinct=True) == pytest.approx(off)

    def test_paper_formulas(self):
        # sqrt(p)/2 on square 2D tori, 3*cbrt(p)/4 on cubic 3D tori.
        assert expected_random_hops_per_byte(Torus((16, 16))) == pytest.approx(8.0)
        assert expected_random_hops_per_byte(Torus((8, 8, 8))) == pytest.approx(6.0)

    def test_arbitrary_topology_fallback(self):
        from repro.topology import ArbitraryTopology

        topo = ArbitraryTopology(3, [(0, 1), (1, 2)])
        assert expected_random_pair_distance(topo) == pytest.approx(
            topo.distance_matrix().mean()
        )

    def test_monte_carlo_agreement(self):
        """Sampled random-mapping hops/byte converges to the formula."""
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        samples = [
            RandomMapper(seed=s).map(g, topo).hops_per_byte for s in range(40)
        ]
        assert np.mean(samples) == pytest.approx(
            expected_random_hops_per_byte(topo, distinct=True), rel=0.05
        )
