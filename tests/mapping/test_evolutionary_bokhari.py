"""Tests for the genetic and Bokhari mappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import MappingError
from repro.mapping import (
    BokhariMapper,
    GeneticMapper,
    RandomMapper,
    TopoLB,
    cardinality,
    expected_random_hops_per_byte,
)
from repro.mapping.evolutionary import GeneticMapper as GM
from repro.taskgraph import TaskGraph, mesh2d_pattern, random_taskgraph
from repro.topology import Mesh, Torus


class TestGeneticMapper:
    def test_bijection_and_quality(self):
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4)
        mapping = GeneticMapper(seed=0).map(g, topo)
        assert mapping.is_bijection()
        assert mapping.hops_per_byte < expected_random_hops_per_byte(topo)

    def test_deterministic(self):
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.3, seed=1)
        a = GeneticMapper(seed=9).map(g, topo).assignment
        b = GeneticMapper(seed=9).map(g, topo).assignment
        assert (a == b).all()

    def test_more_generations_no_worse(self):
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.4, seed=2)
        short = GeneticMapper(generations=5, seed=0).map(g, topo)
        long = GeneticMapper(generations=80, seed=0).map(g, topo)
        assert long.hop_bytes <= short.hop_bytes * 1.05

    def test_seeded_population_keeps_heuristic_quality(self):
        """Orduña-style seeding: GA never loses the seed's quality (elitism)."""
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        seed_hb = TopoLB().map(g, topo).hop_bytes
        ga = GeneticMapper(seed=0, seed_mapper=TopoLB(), generations=20).map(g, topo)
        assert ga.hop_bytes <= seed_hb + 1e-9

    def test_seeded_beats_unseeded_at_equal_budget(self):
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        unseeded = GeneticMapper(seed=0, generations=30).map(g, topo)
        seeded = GeneticMapper(seed=0, seed_mapper=TopoLB(), generations=30).map(g, topo)
        assert seeded.hop_bytes <= unseeded.hop_bytes

    def test_pmx_produces_permutations(self, rng):
        for _ in range(50):
            a, b = rng.permutation(12), rng.permutation(12)
            child = GM._pmx(a, b, rng)
            assert sorted(child.tolist()) == list(range(12))

    def test_validation(self):
        with pytest.raises(MappingError):
            GeneticMapper(population=2)
        with pytest.raises(MappingError):
            GeneticMapper(generations=0)
        with pytest.raises(MappingError):
            GeneticMapper(elite=40, population=40)
        with pytest.raises(MappingError):
            GeneticMapper(tournament=0)


class TestBokhariMapper:
    def test_bijection(self):
        topo = Mesh((4, 4))
        g = random_taskgraph(16, edge_prob=0.3, seed=0)
        mapping = BokhariMapper(seed=0).map(g, topo)
        assert mapping.is_bijection()

    def test_cardinality_improves_over_random(self):
        topo = Torus((6, 6))
        g = mesh2d_pattern(6, 6)
        rand_card = cardinality(RandomMapper(seed=0).map(g, topo))
        bok_card = cardinality(BokhariMapper(seed=0).map(g, topo))
        assert bok_card > rand_card

    def test_deterministic(self):
        topo = Torus((4, 4))
        g = random_taskgraph(16, edge_prob=0.3, seed=3)
        a = BokhariMapper(seed=5).map(g, topo).assignment
        b = BokhariMapper(seed=5).map(g, topo).assignment
        assert (a == b).all()

    def test_cardinality_blind_to_weights(self):
        """The historical weakness: cardinality ignores byte volumes, so a
        Bokhari-optimal mapping can be much worse in hop-bytes than TopoLB
        on weight-skewed instances."""
        rng = np.random.default_rng(0)
        # A cycle with one overwhelmingly heavy edge.
        n = 12
        edges = [(i, (i + 1) % n, 1.0) for i in range(n)]
        edges.append((0, 6, 1e6))
        g = TaskGraph(n, edges)
        topo = Torus((n,))
        tlb = TopoLB().map(g, topo)
        # TopoLB puts the heavy pair adjacent.
        assert topo.distance(tlb.processor_of(0), tlb.processor_of(6)) == 1

    def test_validation(self):
        with pytest.raises(MappingError):
            BokhariMapper(jumps=-1)
        with pytest.raises(MappingError):
            BokhariMapper(max_sweeps=0)


class TestCardinalityMetric:
    def test_identity_stencil_full_cardinality(self):
        g = mesh2d_pattern(4, 4)
        topo = Torus((4, 4))
        from repro.mapping import IdentityMapper

        assert cardinality(IdentityMapper().map(g, topo)) == g.num_edges

    def test_colocated_edges_not_counted(self):
        from repro.mapping import Mapping

        g = TaskGraph(2, [(0, 1, 5.0)])
        topo = Mesh((2, 2))
        assert cardinality(Mapping(g, topo, [0, 0])) == 0

    def test_empty_graph(self):
        from repro.mapping import Mapping

        g = TaskGraph(2)
        assert cardinality(Mapping(g, Mesh((2,)), [0, 1])) == 0
