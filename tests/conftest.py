"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Mesh, TaskGraph, Torus, mesh2d_pattern


@pytest.fixture
def torus8x8() -> Torus:
    return Torus((8, 8))


@pytest.fixture
def mesh4cube() -> Mesh:
    return Mesh((4, 4, 4))


@pytest.fixture
def pattern8x8() -> TaskGraph:
    return mesh2d_pattern(8, 8, message_bytes=1024)


@pytest.fixture
def tiny_graph() -> TaskGraph:
    """4 tasks in a weighted path 0-1-2-3 plus a heavy 0-3 chord."""
    return TaskGraph(
        4,
        [(0, 1, 10.0), (1, 2, 20.0), (2, 3, 30.0), (0, 3, 100.0)],
        vertex_weights=[1.0, 2.0, 3.0, 4.0],
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
