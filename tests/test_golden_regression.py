"""Golden regression tests: exact pinned outputs on fixed instances.

Every algorithm here is deterministic given a seed; these tests pin exact
assignments and metric values so refactors that accidentally change
behaviour (tie-breaking, update order, RNG consumption) fail loudly instead
of silently shifting results. If a change is *intentional*, update the
constants and note it — EXPERIMENTS.md numbers likely moved too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MultilevelPartitioner,
    RandomMapper,
    TopoCentLB,
    TopoLB,
    Torus,
    hop_bytes,
    leanmd_taskgraph,
    mesh2d_pattern,
    random_taskgraph,
)
from repro.mapping import RefineTopoLB, SimulatedAnnealingMapper


@pytest.fixture(scope="module")
def instance():
    return mesh2d_pattern(4, 4, message_bytes=512), Torus((4, 4))


class TestGoldenMappings:
    def test_topolb_assignment_pinned(self, instance):
        graph, topo = instance
        assignment = TopoLB().map(graph, topo).assignment.tolist()
        assert assignment == [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]

    def test_topocentlb_quality_pinned(self, instance):
        graph, topo = instance
        mapping = TopoCentLB().map(graph, topo)
        assert mapping.hops_per_byte == pytest.approx(1.0)  # optimal at 4x4

    def test_random_mapper_seed0_pinned(self, instance):
        graph, topo = instance
        mapping = RandomMapper(seed=0).map(graph, topo)
        assert mapping.assignment.tolist() == list(
            np.random.default_rng(0).permutation(16)
        )

    def test_refine_from_random_pinned(self, instance):
        graph, topo = instance
        refined = RefineTopoLB(seed=0).refine(RandomMapper(seed=0).map(graph, topo))
        assert refined.hop_bytes == pytest.approx(
            hop_bytes(graph, topo, refined.assignment)
        )
        assert refined.hops_per_byte <= 1.5  # near-optimal on this instance

    def test_annealing_seed0_quality_band(self, instance):
        graph, topo = instance
        mapping = SimulatedAnnealingMapper(steps=5000, seed=0).map(graph, topo)
        assert 1.0 <= mapping.hops_per_byte <= 1.6


class TestGoldenPartitions:
    def test_multilevel_leanmd_cut_pinned(self):
        from repro.partition import edge_cut_bytes

        graph = leanmd_taskgraph(8, cells_shape=(3, 3, 3), seed=0)
        groups = MultilevelPartitioner(seed=0).partition(graph, 8)
        cut = edge_cut_bytes(graph, groups)
        # Pin to a band (exact float depends on platform BLAS only weakly).
        assert 0 < cut < 0.75 * graph.total_bytes

    def test_partition_deterministic_fingerprint(self):
        graph = random_taskgraph(50, edge_prob=0.15, seed=4)
        groups = MultilevelPartitioner(seed=4).partition(graph, 5)
        fingerprint = int(np.dot(groups, np.arange(50)) % 100003)
        again = MultilevelPartitioner(seed=4).partition(graph, 5)
        assert int(np.dot(again, np.arange(50)) % 100003) == fingerprint


class TestGoldenSimulation:
    def test_jacobi_total_time_pinned(self, instance):
        from repro.mapping import IdentityMapper
        from repro.netsim import IterativeApplication, NetworkSimulator

        graph, topo = instance
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
        app = IterativeApplication(
            IdentityMapper().map(graph, topo), sim, iterations=5,
            message_bytes=256.0, compute_time=1.0,
        )
        result = app.run()
        # Fully deterministic DES: pin the exact completion time.
        # Per iteration: 1us compute + one 2.56us-serialized 1-hop exchange
        # wave with fan-out contention -> 3.66us steady state; 5 iterations.
        assert result.total_time == pytest.approx(18.3, abs=0.01)
        assert result.messages_delivered == 5 * int(graph.degrees().sum())

    def test_table1_quick_ratios_band(self):
        from repro.experiments import table1

        result = table1.run(quick=True, side=3, iterations=5)
        ratios = result.column("ratio")
        assert all(1.0 < r < 6.0 for r in ratios)
        assert ratios == sorted(ratios) or max(
            abs(a - b) for a, b in zip(ratios, sorted(ratios))
        ) < 0.1
