"""Regression tests for the run_many batch contract.

Pins the three engine-batch bugfixes:

* retry delays are deadlines, not inline sleeps — one slow retry neither
  serializes with other retries nor delays collection of finished futures;
* ``keep_mapping`` is honored identically on the serial and pooled paths
  (default: both drop the Mapping; True: both keep it);
* ``ValidationError`` fails fast on both paths instead of burning the retry
  budget on a deterministic invariant violation (and survives the pickle
  round-trip from a pool worker).
"""

import pickle
import threading
import time

import numpy as np
import pytest

from repro.engine import MappingEngine, MappingRequest
from repro.exceptions import SpecError, ValidationError
from repro.mapping.base import Mapping
from repro.taskgraph import mesh2d_pattern, save_taskgraph


# --------------------------------------------------------- failure injectors
class FlakyMapper:
    """Raise ``exc`` on every attempt, appending one line per call to a file.

    Top-level class so pooled requests carrying it still pickle; the attempt
    file is the cross-process attempt counter.
    """

    def __init__(self, attempts_path, exc_factory_name):
        self.attempts_path = str(attempts_path)
        self.exc_factory_name = exc_factory_name

    def map(self, graph, topology, allowed=None):
        with open(self.attempts_path, "a") as fh:
            fh.write("attempt\n")
        if self.exc_factory_name == "validation":
            raise ValidationError(
                "injected", "deterministic invariant violation",
                spec={"mapper": "FlakyMapper"},
            )
        raise RuntimeError("transient failure (injected)")


def _attempts(path) -> int:
    try:
        return len(path.read_text().splitlines())
    except FileNotFoundError:
        return 0


# ------------------------------------------------- retry-delay scheduling fix
def test_pooled_retry_delays_overlap_instead_of_serializing(tmp_path):
    """Four requests each fail once, then succeed after the file appears.

    With the old inline ``time.sleep(retry_delay)`` the four delays
    serialized in the dispatch loop (>= 4 * delay wall time); rescheduling
    with deadlines lets them wait concurrently, so the batch finishes in
    roughly one delay.
    """
    graph_path = tmp_path / "app.json"

    def _materialize():
        save_taskgraph(mesh2d_pattern(4, 4, message_bytes=1024), graph_path)

    delay = 0.8
    requests = [
        MappingRequest(graph=f"file:{graph_path}", topology="torus:4x4",
                       mapper="TopoLB", seed=0)
        for _ in range(4)
    ]
    timer = threading.Timer(0.2, _materialize)
    timer.start()
    try:
        started = time.monotonic()
        results = MappingEngine().run_many(
            requests, jobs=2, retries=2, retry_delay=delay
        )
        elapsed = time.monotonic() - started
    finally:
        timer.cancel()
    assert all(r is not None for r in results)
    assert all(
        np.array_equal(r.assignment, results[0].assignment) for r in results
    )
    # Old behavior: >= 4 * 0.8 = 3.2 s of serialized sleeps (plus compute).
    # New behavior: one shared 0.8 s deadline. Generous CI margin below the
    # old floor.
    assert elapsed < 2.4, (
        f"retry delays appear to serialize again: {elapsed:.2f}s for 4 "
        f"concurrent {delay}s retries"
    )


def test_pooled_retry_delay_still_waits_before_resubmitting(tmp_path):
    """The deadline reschedule must still honor the delay (no hot-loop retry)."""
    graph_path = tmp_path / "app.json"

    def _materialize():
        save_taskgraph(mesh2d_pattern(4, 4, message_bytes=1024), graph_path)

    # The graph file appears *after* an immediate retry would have fired:
    # only a retry that actually waits out its 0.5 s delay can succeed.
    timer = threading.Timer(0.25, _materialize)
    timer.start()
    try:
        results = MappingEngine().run_many(
            [MappingRequest(graph=f"file:{graph_path}", topology="torus:4x4",
                            mapper="TopoLB", seed=0)],
            jobs=2, retries=1, retry_delay=0.5,
        )
    finally:
        timer.cancel()
    assert results[0].metrics["hop_bytes"] > 0


# ------------------------------------------------------- keep_mapping parity
@pytest.mark.parametrize("jobs", [1, 2])
def test_run_many_drops_mapping_by_default(jobs):
    requests = [
        MappingRequest(graph="mesh2d:8x8;bytes=1024", topology="torus:8x8",
                       mapper=strategy, seed=0)
        for strategy in ("TopoLB", "TopoCentLB")
    ]
    results = MappingEngine().run_many(requests, jobs=jobs)
    assert all(r.mapping is None for r in results)


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_many_keep_mapping_keeps_it(jobs):
    requests = [
        MappingRequest(graph="mesh2d:8x8;bytes=1024", topology="torus:8x8",
                       mapper="TopoLB", seed=0)
    ]
    results = MappingEngine().run_many(requests, jobs=jobs, keep_mapping=True)
    mapping = results[0].mapping
    assert isinstance(mapping, Mapping)
    assert np.array_equal(mapping.assignment, results[0].assignment)


def test_run_many_serial_pooled_parity_both_settings():
    """assignment/metrics/mapping-presence agree between jobs=1 and jobs=2."""
    engine = MappingEngine()
    requests = [
        MappingRequest(graph="mesh2d:8x8;bytes=1024", topology="torus:8x8",
                       mapper=strategy, seed=0)
        for strategy in ("TopoLB", "RefineTopoLB")
    ]
    for keep in (False, True):
        serial = engine.run_many(requests, jobs=1, keep_mapping=keep)
        pooled = engine.run_many(requests, jobs=2, keep_mapping=keep)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.assignment, b.assignment)
            assert a.metrics == b.metrics
            assert (a.mapping is None) == (b.mapping is None) == (not keep)
            if keep:
                assert np.array_equal(
                    a.mapping.assignment, b.mapping.assignment
                )


# -------------------------------------------------- ValidationError fail-fast
def test_serial_validation_error_not_retried(tmp_path):
    attempts = tmp_path / "attempts.txt"
    mapper = FlakyMapper(attempts, "validation")
    graph = mesh2d_pattern(4, 4, message_bytes=1024)
    with pytest.raises(ValidationError):
        MappingEngine().run_many(
            [MappingRequest(graph=graph, topology="torus:4x4", mapper=mapper)],
            jobs=1, retries=5, retry_delay=0.0,
        )
    assert _attempts(attempts) == 1  # fail fast: the budget was not consumed


def test_serial_transient_error_still_retried(tmp_path):
    attempts = tmp_path / "attempts.txt"
    mapper = FlakyMapper(attempts, "transient")
    graph = mesh2d_pattern(4, 4, message_bytes=1024)
    with pytest.raises(RuntimeError):
        MappingEngine().run_many(
            [MappingRequest(graph=graph, topology="torus:4x4", mapper=mapper)],
            jobs=1, retries=2, retry_delay=0.0,
        )
    assert _attempts(attempts) == 3  # initial attempt + both retries


def test_pooled_validation_error_not_retried(tmp_path):
    attempts = tmp_path / "attempts.txt"
    mapper = FlakyMapper(attempts, "validation")
    graph = mesh2d_pattern(4, 4, message_bytes=1024)
    with pytest.raises(ValidationError):
        MappingEngine().run_many(
            [MappingRequest(graph=graph, topology="torus:4x4", mapper=mapper)],
            jobs=2, retries=5, retry_delay=0.0,
        )
    assert _attempts(attempts) == 1


def test_validation_error_pickle_round_trip():
    exc = ValidationError(
        "injectivity", "two tasks share processor 3",
        spec={"mapper": "topolb"}, replay="repro-validate ...",
        details={"processor": 3},
    )
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, ValidationError)
    assert str(clone) == str(exc)
    assert clone.invariant == "injectivity"
    assert clone.details == {"processor": 3}


def test_pooled_spec_error_still_respects_retry_budget():
    # Non-validation deterministic errors keep the documented behavior:
    # they consume the budget, then propagate.
    with pytest.raises(SpecError):
        MappingEngine().run_many(
            [MappingRequest(graph="mesh2d:4x4", topology="torus:4x4",
                            mapper="NopeLB")],
            jobs=2, retries=1, retry_delay=0.0,
        )
