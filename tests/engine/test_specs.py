"""Spec-string registry tests: grammar, errors, canonicalization."""

import pytest

from repro.engine import (
    MAPPER_KINDS,
    STRATEGY_SPECS,
    canonical_mapper_spec,
    describe_mappers,
    mapper_from_spec,
    parse_mapper_spec,
)
from repro.exceptions import SpecError


ROUND_TRIP_SPECS = [
    "random",
    "identity",
    "topolb",
    "topolb:order=3",
    "topolb:order=1;selection=max_cost;kernel=reference",
    "topocentlb",
    "refine:passes=3",
    "refine:base=topocentlb;passes=3",
    "refine:base=topolb,order=3;passes=2;block=32",
    "anneal:steps=500",
    "genetic:population=10;generations=5",
    "bokhari:jumps=2",
    "recursive",
    "linear",
    "hybrid:blocks=4",
    "pipeline:inner=topolb",
    "pipeline:partitioner=greedy;inner=random",
    "pipeline:inner=topolb,order=3;refine=on",
    "multilevel",
    "multilevel:inner=topolb;levels=auto",
    "multilevel:inner=topolb,order=3;levels=3;stop=16",
    "multilevel:inner=topolb,levels=auto",  # comma spillover form
    "multilevel:inner=topolb,order=3,levels=2,refine_window=1",
    "multilevel:aggregate=mean;stop=64;kernel=reference",
]


@pytest.mark.parametrize("spec", ROUND_TRIP_SPECS)
def test_canonical_is_fixed_point(spec):
    canonical = canonical_mapper_spec(spec)
    assert canonical_mapper_spec(canonical) == canonical
    # and the canonical form parses back to the same kind/options
    a, b = parse_mapper_spec(spec), parse_mapper_spec(canonical)
    assert a.kind == b.kind
    assert a.canonical == b.canonical


@pytest.mark.parametrize("alias", sorted(STRATEGY_SPECS))
def test_alias_expands_to_its_spec(alias):
    assert canonical_mapper_spec(alias) == canonical_mapper_spec(
        STRATEGY_SPECS[alias]
    )


def test_whitespace_and_case_are_normalized():
    assert canonical_mapper_spec("  TOPOLB : Order = 3 ") == "topolb:order=3"


def test_unknown_kind_mentions_strategies_and_kinds():
    with pytest.raises(SpecError, match="unknown strategy"):
        parse_mapper_spec("MagicLB")


def test_unknown_option_key():
    with pytest.raises(SpecError, match="unknown option"):
        parse_mapper_spec("topolb:wat=1")


def test_bad_option_value():
    with pytest.raises(SpecError, match="bad value"):
        parse_mapper_spec("topolb:order=seven")
    with pytest.raises(SpecError, match="bad value"):
        parse_mapper_spec("refine:passes=-1")
    with pytest.raises(SpecError, match="bad value"):
        parse_mapper_spec("topolb:selection=best")


def test_duplicate_option_rejected():
    with pytest.raises(SpecError, match="duplicate option"):
        parse_mapper_spec("topolb:order=2;order=3")


def test_missing_equals_rejected():
    with pytest.raises(SpecError, match="expected key=value"):
        parse_mapper_spec("topolb:order")


def test_empty_spec_rejected():
    with pytest.raises(SpecError):
        parse_mapper_spec("")
    with pytest.raises(SpecError):
        parse_mapper_spec("   ")


def test_nested_spec_errors_surface_at_parse_time():
    with pytest.raises(SpecError, match="unknown strategy"):
        parse_mapper_spec("pipeline:inner=nosuchmapper")
    with pytest.raises(SpecError, match="bad value for option"):
        parse_mapper_spec("refine:base=topolb,order=nine")


def test_nested_colon_form_accepted():
    # `inner=topolb:order=3` (with ':') means the same as the ',' form.
    a = canonical_mapper_spec("pipeline:inner=topolb:order=3")
    b = canonical_mapper_spec("pipeline:inner=topolb,order=3")
    assert a == b == "pipeline:inner=topolb,order=3"


def test_describe_mappers_covers_everything():
    text = "\n".join(describe_mappers())
    for alias in STRATEGY_SPECS:
        assert alias in text
    for kind in MAPPER_KINDS:
        assert kind in text


def test_mapper_from_spec_builds_every_kind():
    from repro.mapping.base import Mapper

    for kind in MAPPER_KINDS:
        assert isinstance(mapper_from_spec(kind, seed=0), Mapper)
    for alias in STRATEGY_SPECS:
        assert isinstance(mapper_from_spec(alias, seed=0), Mapper)
