"""MappingEngine end-to-end tests: equivalence, batching, metadata."""

import numpy as np
import pytest

from repro.engine import (
    MappingEngine,
    MappingRequest,
    canonical_command,
    graph_from_spec,
    mapper_from_spec,
)
from repro.exceptions import SpecError
from repro.mapping.refine import RefineTopoLB
from repro.mapping.topocentlb import TopoCentLB
from repro.mapping.topolb import TopoLB
from repro.taskgraph.patterns import mesh2d_pattern
from repro.topology.factory import topology_from_spec
from repro.topology.torus import Torus


# Values every pre-refactor release produced for mesh2d 8x8 (bytes=1024) on
# torus:8x8 at seed 0 — the engine must keep reproducing them bit-for-bit.
GOLDEN = {
    "TopoLB": (229376.0, 1.0),
    "TopoCentLB": (342016.0, 1.4910714285714286),
    "RefineTopoLB": (229376.0, 1.0),
}


@pytest.mark.parametrize("strategy", sorted(GOLDEN))
def test_golden_metrics(strategy):
    result = MappingEngine().run(
        MappingRequest(
            graph="mesh2d:8x8;bytes=1024",
            topology="torus:8x8",
            mapper=strategy,
            seed=0,
        )
    )
    hop_bytes, hpb = GOLDEN[strategy]
    assert result.metrics["hop_bytes"] == hop_bytes
    assert result.metrics["hops_per_byte"] == hpb


@pytest.mark.parametrize("spec,direct", [
    ("topolb", lambda seed: TopoLB()),
    ("topolb:order=3", lambda seed: TopoLB(order=3)),
    ("topocentlb", lambda seed: TopoCentLB()),
    ("refine:base=topolb", lambda seed: RefineTopoLB(base=TopoLB(), seed=seed)),
])
@pytest.mark.parametrize("topology_spec", [
    "torus:8x8",
    "degraded:torus:8x8;seed=3;nodes=0.05",
])
def test_spec_vs_direct_bit_identical(spec, direct, topology_spec):
    # The pristine torus wants |tasks| == p; the degraded one auto-restricts
    # to its surviving processors, so the graph must fit under that count.
    rows = 8 if topology_spec.startswith("torus") else 7
    graph = mesh2d_pattern(rows, 8, message_bytes=1024)
    topology = topology_from_spec(topology_spec)
    seed = 0
    via_spec = mapper_from_spec(spec, seed).map(graph, topology).assignment
    via_direct = direct(seed).map(graph, topology).assignment
    assert np.array_equal(via_spec, via_direct)


def test_reference_kernel_request_matches_direct():
    from repro.mapping.kernels import set_default_kernel

    graph = mesh2d_pattern(8, 8, message_bytes=1024)
    topology = Torus((8, 8))
    result = MappingEngine().run(
        MappingRequest(graph=graph, topology=topology, mapper="topolb",
                       seed=0, kernel="reference")
    )
    prev = set_default_kernel("reference")
    try:
        direct = TopoLB().map(graph, topology).assignment
    finally:
        set_default_kernel(prev)
    assert np.array_equal(result.assignment, direct)
    assert result.metadata["kernel"] == "reference"


def test_engine_accepts_live_objects():
    graph = mesh2d_pattern(8, 8, message_bytes=1024)
    topology = Torus((8, 8))
    result = MappingEngine().run(
        MappingRequest(graph=graph, topology=topology, mapper=TopoLB())
    )
    assert result.metrics["hops_per_byte"] == pytest.approx(
        GOLDEN["TopoLB"][1]
    )
    assert result.metadata["strategy"] == "TopoLB"
    assert result.metadata["spec"] is None  # no spec for a live mapper


def test_metadata_round_trips_through_the_engine():
    first = MappingEngine().run(
        MappingRequest(graph="mesh2d:8x8;bytes=1024", topology="torus:8x8",
                       mapper="RefineTopoLB", seed=0)
    )
    meta = first.metadata
    assert meta["spec"] == "pipeline:inner=topolb;refine=on"
    assert "--seed 0" in meta["command"]
    # Re-running from the recorded metadata reproduces the placement exactly.
    again = MappingEngine().run(
        MappingRequest(graph="mesh2d:8x8;bytes=1024",
                       topology=meta["topology"], mapper=meta["spec"],
                       seed=meta["seed"], kernel=meta["kernel"])
    )
    assert np.array_equal(first.assignment, again.assignment)
    assert first.metrics == again.metrics


def test_run_many_serial_equals_parallel():
    requests = [
        MappingRequest(graph="mesh2d:8x8;bytes=1024", topology="torus:8x8",
                       mapper=strategy, seed=0)
        for strategy in ("TopoLB", "TopoCentLB", "RefineTopoLB")
    ]
    engine = MappingEngine()
    serial = engine.run_many(requests, jobs=1)
    parallel = engine.run_many(requests, jobs=2)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.assignment, b.assignment)
        assert a.metrics == b.metrics
        assert b.mapping is None  # workers drop the heavyweight object


def test_run_many_retries_exhausted_raises():
    engine = MappingEngine()
    with pytest.raises(SpecError):
        engine.run_many(
            [MappingRequest(graph="mesh2d:8x8", topology="torus:8x8",
                            mapper="NopeLB")],
            retries=1,
        )


def test_engine_profile_document():
    result = MappingEngine().run(
        MappingRequest(graph="mesh2d:8x8;bytes=1024", topology="torus:8x8",
                       mapper="TopoLB", seed=0, profile=True)
    )
    assert result.profile is not None
    assert "engine.map" in result.profile["timers"]
    assert result.profile["context"]["spec"] == "pipeline:inner=topolb"


def test_graph_from_spec_kinds():
    assert graph_from_spec("mesh2d:4x4").num_tasks == 16
    assert graph_from_spec("mesh3d:2x2x2;bytes=64").num_tasks == 8
    assert graph_from_spec("ring:5").num_tasks == 5
    assert graph_from_spec("alltoall:4").num_edges == 6
    g = graph_from_spec("random:10;p=0.5;seed=7")
    assert g.num_tasks == 10


@pytest.mark.parametrize("bad", [
    "mesh2d", "mesh2d:4", "mesh3d:4x4", "ring:x", "random:10;q=1", "nope:3",
])
def test_graph_from_spec_errors(bad):
    with pytest.raises(SpecError):
        graph_from_spec(bad)


def test_canonical_command_includes_seed_and_kernel():
    line = canonical_command("TopoLB", "torus:8x8", None, None)
    assert "--strategy 'pipeline:inner=topolb'" in line
    assert "--seed 0" in line
    assert "--kernel vectorized" in line
    line = canonical_command("topolb:order=3", "mesh:4x4", 7, "reference")
    assert "--seed 7" in line and "--kernel reference" in line
