"""Tests for the DES event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.netsim import EventQueue


class TestEventQueue:
    def test_initial_state(self):
        q = EventQueue()
        assert q.now == 0.0
        assert q.pending == 0
        assert q.processed == 0

    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        for t in (3.0, 1.0, 2.0):
            q.schedule(t, lambda t=t: fired.append(t))
        assert q.run() == 3.0
        assert fired == [1.0, 2.0, 3.0]

    def test_simultaneous_events_fire_in_schedule_order(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.schedule(1.0, lambda i=i: fired.append(i))
        q.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_callbacks_can_schedule(self):
        q = EventQueue()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 4:
                q.schedule(q.now + 1.0, lambda: chain(n + 1))

        q.schedule(0.0, lambda: chain(0))
        assert q.run() == 4.0
        assert fired == [0, 1, 2, 3, 4]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError, match="causality"):
            q.run()

    def test_max_events(self):
        q = EventQueue()
        for t in range(10):
            q.schedule(float(t), lambda: None)
        q.run(max_events=4)
        assert q.processed == 4
        assert q.pending == 6

    def test_step(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        assert q.step() is True
        assert q.step() is False

    def test_now_tracks_last_event(self):
        q = EventQueue()
        q.schedule(7.5, lambda: None)
        q.run()
        assert q.now == 7.5


@given(st.lists(st.floats(0, 1e6, allow_nan=False), max_size=100))
@settings(max_examples=50)
def test_property_events_fire_sorted(times):
    q = EventQueue()
    fired = []
    for t in times:
        q.schedule(t, lambda t=t: fired.append(t))
    q.run()
    assert fired == sorted(times)
    assert q.processed == len(times)
