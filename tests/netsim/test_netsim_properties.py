"""Property-based tests of simulator invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import LinkModel, NetworkSimulator, RoutingPolicy
from repro.topology import Mesh, Torus


@given(
    seed=st.integers(0, 100_000),
    n_msgs=st.integers(1, 30),
    routing=st.sampled_from(list(RoutingPolicy)),
)
@settings(max_examples=40, deadline=None)
def test_property_all_messages_delivered_exactly_once(seed, n_msgs, routing):
    """Conservation: every sent message is delivered exactly once, and the
    delivered byte total matches the injected byte total."""
    topo = Torus((3, 4))
    sim = NetworkSimulator(topo, bandwidth=80.0, alpha=0.2, routing=routing)
    rng = np.random.default_rng(seed)
    delivered = []
    total_sent = 0.0
    for _ in range(n_msgs):
        a, b = (int(x) for x in rng.integers(0, 12, size=2))
        size = float(rng.uniform(1, 400))
        total_sent += size
        sim.send(a, b, size, at=float(rng.uniform(0, 10)),
                 on_delivery=lambda m: delivered.append(m.msg_id))
    sim.run()
    assert len(delivered) == n_msgs
    assert len(set(delivered)) == n_msgs
    assert sim.stats.total_bytes == pytest.approx(total_sent)


@given(seed=st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_property_adaptive_routes_always_minimal(seed):
    """Whatever route adaptivity picks, observed hops == shortest distance."""
    topo = Torus((4, 4))
    sim = NetworkSimulator(topo, bandwidth=40.0, alpha=0.1,
                           routing=RoutingPolicy.ADAPTIVE)
    rng = np.random.default_rng(seed)
    msgs = []
    for _ in range(20):
        a, b = (int(x) for x in rng.integers(0, 16, size=2))
        msgs.append((sim.send(a, b, float(rng.uniform(10, 200))), a, b))
    sim.run()
    for msg, a, b in msgs:
        assert msg.hops == topo.distance(a, b)


@given(
    seed=st.integers(0, 50_000),
    model=st.sampled_from(list(LinkModel)),
)
@settings(max_examples=30, deadline=None)
def test_property_link_bytes_match_hop_bytes(seed, model):
    """Sum of per-link carried bytes == sum over messages of size * hops."""
    topo = Mesh((2, 5))
    sim = NetworkSimulator(topo, bandwidth=60.0, alpha=0.1, model=model)
    rng = np.random.default_rng(seed)
    expected = 0.0
    for _ in range(15):
        a, b = (int(x) for x in rng.integers(0, 10, size=2))
        size = float(rng.uniform(1, 100))
        msg = sim.send(a, b, size)
        sim.run()
        expected += size * msg.hops
    assert sum(sim.link_bytes().values()) == pytest.approx(expected)


@given(seed=st.integers(0, 50_000), scale=st.floats(1.5, 10.0))
@settings(max_examples=25, deadline=None)
def test_property_bandwidth_scaling_uncontended(seed, scale):
    """One message alone: delivery time strictly improves with bandwidth.

    Per-message monotonicity does NOT hold under contention — faster links
    reorder FIFO queueing, and an individual message can be delivered
    *later* on the faster machine (seed 83 is a concrete counterexample:
    message 0 arrives at t=4.18 with bandwidth 50 but t=5.25 with 100). So
    the per-message claim is only tested uncontended; the contended
    aggregate claim is the makespan property below.
    """
    topo = Torus((3, 3))
    rng = np.random.default_rng(seed)
    a, b = (int(x) for x in rng.integers(0, 9, size=2))
    size = float(rng.uniform(10, 500))
    times = {}
    for bw in (50.0, 50.0 * scale):
        sim = NetworkSimulator(topo, bandwidth=bw, alpha=0.2)
        msg = sim.send(a, b, size)
        sim.run()
        times[bw] = msg.deliver_time
    assert times[50.0 * scale] <= times[50.0] + 1e-9


@given(seed=st.integers(0, 50_000), scale=st.floats(1.5, 10.0))
@settings(max_examples=25, deadline=None)
def test_property_bandwidth_scaling_makespan(seed, scale):
    """Contended traffic: the *last* delivery never gets later with more
    bandwidth, and total link-busy time shrinks by exactly the scale factor
    (both hold even though individual deliveries may reorder)."""
    topo = Torus((3, 3))
    rng = np.random.default_rng(seed)
    plan = [
        (int(rng.integers(0, 9)), int(rng.integers(0, 9)),
         float(rng.uniform(10, 500)), float(rng.uniform(0, 5)))
        for _ in range(12)
    ]
    ends, busy = {}, {}
    for bw in (50.0, 50.0 * scale):
        sim = NetworkSimulator(topo, bandwidth=bw, alpha=0.2)
        msgs = [sim.send(a, b, s, at=t) for a, b, s, t in plan]
        end = sim.run()
        ends[bw] = max(m.deliver_time for m in msgs)
        busy[bw] = sum(
            m.size_bytes * m.hops / bw for m in msgs
        )  # serialization work carried by the links
        assert end >= ends[bw] - 1e-9
    assert ends[50.0 * scale] <= ends[50.0] + 1e-9
    assert busy[50.0 * scale] == pytest.approx(busy[50.0] / scale)
