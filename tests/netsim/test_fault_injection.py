"""Network-simulator fault injection: retries, reroutes, drops, determinism."""

import numpy as np
import pytest

from repro import obs
from repro.exceptions import SimulationError
from repro.faults import DegradedTopology, FaultSet
from repro.netsim.simulator import NetworkSimulator
from repro.topology.torus import Torus


@pytest.fixture()
def profiler():
    prof = obs.enable()
    yield prof
    obs.disable()


def _counters(prof):
    return prof.snapshot().get("counters", {})


class TestConstruction:
    def test_link_bandwidths_endpoints_validated(self):
        topo = Torus((4, 4))
        with pytest.raises(SimulationError, match="not a link"):
            NetworkSimulator(topo, link_bandwidths={(0, 5): 1.0})
        with pytest.raises(SimulationError, match="not a link"):
            NetworkSimulator(topo, link_bandwidths={(0, 99): 1.0})
        # real links (either orientation) are accepted
        NetworkSimulator(topo, link_bandwidths={(0, 1): 1.0, (4, 0): 2.0})

    def test_fault_params_validated(self):
        topo = Torus((4, 4))
        with pytest.raises(SimulationError):
            NetworkSimulator(topo, max_retries=-1)
        with pytest.raises(SimulationError):
            NetworkSimulator(topo, retry_delay=0.0)
        with pytest.raises(SimulationError):
            NetworkSimulator(topo, retry_backoff=0.5)
        with pytest.raises(SimulationError):
            NetworkSimulator(topo, retry_timeout=-1.0)
        with pytest.raises(SimulationError):
            NetworkSimulator(topo, unroutable_policy="ignore")

    def test_scheduled_failures_validated_eagerly(self):
        sim = NetworkSimulator(Torus((4, 4)))
        with pytest.raises(SimulationError):
            sim.schedule_link_failure(1.0, 0, 5)  # not a link
        with pytest.raises(SimulationError):
            sim.schedule_node_failure(1.0, 99)

    def test_scheduled_failure_time_validated_eagerly(self):
        sim = NetworkSimulator(Torus((4, 4)))
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(SimulationError, match="failure time"):
                sim.schedule_link_failure(bad, 0, 1)
            with pytest.raises(SimulationError, match="failure time"):
                sim.schedule_node_failure(bad, 0)
        assert sim.queue.pending == 0  # nothing half-scheduled

    def test_faults_rejected_under_credit_flow_control(self):
        sim = NetworkSimulator(Torus((4, 4)), buffer_bytes=4096.0,
                               overload_policy="credit")
        with pytest.raises(SimulationError, match="credit"):
            sim.fail_link(0, 1)
        with pytest.raises(SimulationError, match="credit"):
            sim.fail_node(3)
        with pytest.raises(SimulationError, match="credit"):
            sim.schedule_link_failure(1.0, 0, 1)
        with pytest.raises(SimulationError, match="credit"):
            sim.schedule_node_failure(1.0, 3)


class TestLinkFailure:
    def test_dor_fixed_route_retries_then_raises(self, profiler):
        # 0 -> 3 in a 4x4 torus has exactly one minimal route (the wrap
        # link); DOR cannot sidestep a permanent failure on it.
        sim = NetworkSimulator(Torus((4, 4)), max_retries=3, retry_delay=2.0)
        sim.send(0, 3, 4096.0, at=0.0)
        sim.schedule_link_failure(0.5, 0, 3)
        with pytest.raises(SimulationError, match="retries exhausted"):
            sim.run()
        c = _counters(profiler)
        assert c["faults.injected"] == 1
        assert c["netsim.retries"] == 3

    def test_drop_policy_records_instead_of_raising(self, profiler):
        sim = NetworkSimulator(Torus((4, 4)), max_retries=2, retry_delay=2.0,
                               unroutable_policy="drop")
        msg = sim.send(0, 3, 4096.0, at=0.0)
        sim.schedule_link_failure(0.5, 0, 3)
        sim.run()
        assert msg.dropped and msg.deliver_time is None
        assert msg.attempts == 2
        c = _counters(profiler)
        assert c["netsim.dropped"] == 1
        assert c["netsim.retries"] == 2

    def test_retry_backoff_is_exponential(self):
        events = []
        sim = NetworkSimulator(Torus((4, 4)), max_retries=3, retry_delay=4.0,
                               retry_backoff=2.0, unroutable_policy="drop")
        sim.send(0, 3, 4096.0, at=0.0)
        sim.schedule_link_failure(0.5, 0, 3)
        end = sim.run()
        # attempts at ~t0, t0+4, t0+4+8, dropped on the third re-inject
        # (delay 4 * 2^2 = 16); the final event lands past t0 + 4 + 8 + 16.
        assert end >= 4.0 + 8.0 + 16.0

    def test_retry_timeout_bounds_the_retry_storm(self, profiler):
        sim = NetworkSimulator(Torus((4, 4)), max_retries=50, retry_delay=2.0,
                               retry_timeout=20.0, unroutable_policy="drop")
        msg = sim.send(0, 3, 4096.0, at=0.0)
        sim.schedule_link_failure(0.5, 0, 3)
        sim.run()
        assert msg.dropped
        # far fewer than 50 attempts: the 20us budget cuts the storm short
        assert msg.attempts < 6

    def test_adaptive_reroutes_midflight_message(self, profiler):
        # 0 -> 5 has two minimal routes (via 1 and via 4); slow links keep
        # the message in flight when (0, 1) dies, forcing a live reroute.
        sim = NetworkSimulator(Torus((4, 4)), routing="adaptive",
                               bandwidth=1.0, retry_delay=50.0)
        msgs = [sim.send(0, 5, 4096.0, at=0.0) for _ in range(3)]
        sim.schedule_link_failure(500.0, 0, 1)
        sim.run()
        assert all(m.deliver_time is not None for m in msgs)
        c = _counters(profiler)
        assert c["netsim.reroutes"] >= 1
        assert c["faults.injected"] == 1

    def test_messages_after_failure_avoid_dead_link(self):
        sim = NetworkSimulator(Torus((4, 4)), routing="adaptive")
        sim.schedule_link_failure(0.0, 0, 1)
        msg = sim.send(0, 5, 64.0, at=1.0)
        sim.run()
        assert msg.deliver_time is not None

    def test_failure_counted_once_per_undirected_link(self, profiler):
        sim = NetworkSimulator(Torus((4, 4)))
        sim.fail_link(0, 1)
        sim.fail_link(1, 0)  # same link, other orientation: no double count
        assert _counters(profiler)["faults.injected"] == 1


class TestNodeFailure:
    def test_dead_destination_raises(self):
        sim = NetworkSimulator(Torus((4, 4)))
        sim.send(0, 3, 4096.0, at=0.0)
        sim.schedule_node_failure(0.0, 3)
        with pytest.raises(SimulationError, match="endpoint processor failed"):
            sim.run()

    def test_dead_destination_drop_policy(self, profiler):
        sim = NetworkSimulator(Torus((4, 4)), unroutable_policy="drop")
        msgs = [sim.send(0, 3, 4096.0, at=float(i)) for i in range(4)]
        sim.schedule_node_failure(0.0, 3)
        sim.run()
        assert all(m.dropped for m in msgs)
        assert _counters(profiler)["netsim.dropped"] == 4

    def test_traffic_not_involving_dead_node_unaffected(self):
        sim = NetworkSimulator(Torus((4, 4)), unroutable_policy="drop")
        good = sim.send(8, 10, 64.0, at=0.0)
        sim.schedule_node_failure(0.0, 3)
        sim.run()
        assert good.deliver_time is not None and not good.dropped


class TestDeterminism:
    def _run(self):
        prof = obs.enable()
        try:
            sim = NetworkSimulator(Torus((4, 4)), routing="adaptive",
                                   bandwidth=1.0, retry_delay=50.0,
                                   unroutable_policy="drop")
            msgs = [sim.send(0, 5, 4096.0, at=float(i)) for i in range(5)]
            sim.schedule_link_failure(500.0, 0, 1)
            sim.schedule_node_failure(9000.0, 5)
            end = sim.run()
            return (
                end,
                [(m.deliver_time, m.attempts, m.dropped) for m in msgs],
                prof.snapshot().get("counters", {}),
            )
        finally:
            obs.disable()

    def test_identical_runs_bit_identical(self):
        assert self._run() == self._run()


class TestDegradedEndToEnd:
    def test_simulate_over_degraded_topology_with_slow_links(self, profiler):
        """Acceptance flow: map on the degraded machine, then simulate over
        its BFS routes with the fault set's bandwidth overrides applied."""
        from repro.mapping import TopoLB
        from repro.taskgraph import random_taskgraph

        base = Torus((8, 8))
        faults = FaultSet.generate(base, seed=3, node_rate=0.05,
                                   link_rate=0.02, slow_rate=0.05)
        deg = DegradedTopology(base, faults)
        graph = random_taskgraph(deg.num_healthy, edge_prob=0.1, seed=0)
        mapping = TopoLB().map(graph, deg)
        assign = np.asarray(mapping.assignment)

        sim = NetworkSimulator(
            deg, link_bandwidths=faults.bandwidth_overrides(100.0)
        )
        for a, b, w in graph.edges():
            sim.send(int(assign[a]), int(assign[b]), float(w))
        sim.run()
        c = _counters(profiler)
        assert c["netsim.delivered"] == c["netsim.messages"]
