"""Flow-level contention estimator vs the DES and the metrics oracles.

Three layers of evidence pin :mod:`repro.netsim.flow`:

* **exactness** — the grid fast path's per-link loads equal the
  route-walking oracle (:func:`repro.mapping.metrics.per_link_loads`) and
  the DES's measured ``link_bytes`` key-for-key, value-for-value;
* **the bound** — ``makespan_lower_bound`` never exceeds the DES
  ``total_time`` on the same instance (property-tested over random
  graphs, mappings, bandwidths and latencies);
* **the ranking** — Spearman rank correlation of flow vs DES makespans
  across a mapping pool stays >= 0.9 on the pinned validation instances
  (the envelope ``--netsim-mode flow`` advertises).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import mapper_from_spec
from repro.exceptions import SimulationError
from repro.mapping.base import Mapping
from repro.mapping.metrics import per_link_loads
from repro.netsim import NetworkSimulator
from repro.netsim.appsim import IterativeApplication
from repro.netsim.flow import (
    FlowResult,
    _generic_link_loads,
    flow_evaluate,
    flow_summary,
    spearman,
)
from repro.taskgraph import mesh2d_pattern, random_taskgraph
from repro.taskgraph.patterns import mesh3d_pattern, ring_pattern
from repro.topology import FatTree, Hypercube, Mesh, Torus

GRID_CASES = [
    ("torus6x6", mesh2d_pattern(6, 6, message_bytes=512.0), Torus((6, 6))),
    ("torus5x7-odd", random_taskgraph(35, edge_prob=0.2, seed=3),
     Torus((5, 7))),
    ("mesh4x4x4", mesh3d_pattern(4, 4, 4, message_bytes=256.0),
     Mesh((4, 4, 4))),
    ("torus4x3x2", random_taskgraph(24, edge_prob=0.3, seed=8),
     Torus((4, 3, 2))),
    ("ring-on-mesh", ring_pattern(12, message_bytes=128.0), Mesh((3, 4))),
]


def _mapping(graph, topo, seed=0):
    rng = np.random.default_rng(seed)
    return Mapping(graph, topo, rng.permutation(topo.num_nodes)[:graph.num_tasks])


class TestGridExactness:
    @pytest.mark.parametrize("label,graph,topo", GRID_CASES,
                             ids=[c[0] for c in GRID_CASES])
    @pytest.mark.parametrize("seed", (0, 1))
    def test_link_loads_match_route_oracle(self, label, graph, topo, seed):
        """The difference-array fast path equals walking every route."""
        mapping = _mapping(graph, topo, seed)
        flow = flow_evaluate(mapping)
        oracle = per_link_loads(graph, topo, mapping.assignment)
        assert flow.link_bytes.keys() == oracle.keys()
        for link, load in oracle.items():
            assert flow.link_bytes[link] == pytest.approx(load), (label, link)

    @pytest.mark.parametrize("label,graph,topo", GRID_CASES[:3],
                             ids=[c[0] for c in GRID_CASES[:3]])
    def test_grid_path_matches_generic_path(self, label, graph, topo):
        """Same module, two algorithms: fast path == route-walking fallback."""
        from repro.netsim.flow import _directed_messages

        mapping = _mapping(graph, topo, seed=5)
        src, dst, sizes = _directed_messages(mapping, None)
        remote = src != dst
        fast = flow_evaluate(mapping)
        slow_bytes, slow_msgs = _generic_link_loads(
            topo, src[remote], dst[remote], sizes[remote])
        assert fast.link_bytes.keys() == slow_bytes.keys()
        for link in slow_bytes:
            assert fast.link_bytes[link] == pytest.approx(slow_bytes[link])
            assert fast.link_messages[link] == slow_msgs[link]

    def test_conservation_total_is_hop_bytes(self):
        """Bytes-on-links summed over links == the hop-bytes metric."""
        graph, topo = mesh2d_pattern(6, 6, message_bytes=512.0), Torus((6, 6))
        mapping = _mapping(graph, topo, seed=2)
        flow = flow_evaluate(mapping, iterations=3)
        assert sum(flow.link_bytes.values()) == pytest.approx(mapping.hop_bytes)
        assert flow.total_bytes == pytest.approx(3 * mapping.hop_bytes)

    def test_matches_des_link_bytes(self):
        """Offered load == what the DES actually pushed through each link."""
        graph, topo = mesh2d_pattern(6, 6, message_bytes=512.0), Torus((6, 6))
        mapping = mapper_from_spec("topocentlb", 0).map(graph, topo)
        iters = 2
        sim = NetworkSimulator(topo)
        IterativeApplication(mapping, sim, iterations=iters).run()
        des = sim.link_bytes()
        flow = flow_evaluate(mapping, iterations=iters)
        assert flow.link_bytes.keys() == des.keys()
        for link, measured in des.items():
            assert flow.link_bytes[link] * iters == pytest.approx(measured)


class TestGenericFallback:
    def _topologies(self):
        from repro.topology import ArbitraryTopology

        ring_plus_chord = ArbitraryTopology(
            8, [(i, (i + 1) % 8) for i in range(8)] + [(0, 4)])
        return [("hypercube5", Hypercube(5)),
                ("irregular8", ring_plus_chord)]

    def test_non_grid_topologies_match_route_oracle(self):
        for label, topo in self._topologies():
            graph = random_taskgraph(topo.num_nodes, edge_prob=0.15, seed=4)
            mapping = _mapping(graph, topo, seed=1)
            flow = flow_evaluate(mapping)
            oracle = per_link_loads(graph, topo, mapping.assignment)
            assert flow.link_bytes.keys() == oracle.keys(), label
            for link, load in oracle.items():
                assert flow.link_bytes[link] == pytest.approx(load), label

    def test_indirect_networks_match_route_oracle(self):
        """Fat-tree and dragonfly routes run over switch links; the flow
        estimator charges exactly the per_link_loads oracle's loads."""
        from repro.topology import Dragonfly

        for label, topo in (("fattree4x3", FatTree(4, 3)),
                            ("dragonfly", Dragonfly(4, 4, 2))):
            graph = random_taskgraph(topo.num_nodes, edge_prob=0.2, seed=4)
            mapping = _mapping(graph, topo, seed=1)
            flow = flow_evaluate(mapping)
            oracle = per_link_loads(graph, topo, mapping.assignment)
            assert flow.link_bytes.keys() == oracle.keys(), label
            for link, load in oracle.items():
                assert flow.link_bytes[link] == pytest.approx(load), label

    def test_indirect_network_flow_matches_des_link_bytes(self):
        """DES ≡ flow on an indirect machine: the per-switch-link bytes the
        DES actually forwarded equal the flow estimator's offered load."""
        from repro.topology import Dragonfly

        for label, topo in (("fattree2x3", FatTree(2, 3)),
                            ("dragonfly", Dragonfly(3, 2, 2))):
            graph = random_taskgraph(topo.num_nodes, edge_prob=0.4, seed=7)
            mapping = _mapping(graph, topo, seed=3)
            iters = 2
            sim = NetworkSimulator(topo)
            IterativeApplication(mapping, sim, iterations=iters).run()
            des = sim.link_bytes()
            flow = flow_evaluate(mapping, iterations=iters)
            assert flow.link_bytes.keys() == des.keys(), label
            for link, measured in des.items():
                assert flow.link_bytes[link] * iters == pytest.approx(measured), label


class TestMakespanLowerBound:
    @given(
        seed=st.integers(0, 10_000),
        bandwidth=st.sampled_from((20.0, 100.0, 1000.0)),
        alpha=st.sampled_from((0.0, 0.1, 0.5)),
        iterations=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_bound_below_des(self, seed, bandwidth, alpha,
                                      iterations):
        """flow makespan <= DES total_time for random instances/parameters."""
        rng = np.random.default_rng(seed)
        graph = random_taskgraph(12, edge_prob=0.3, seed=seed)
        topo = Torus((3, 4))
        mapping = Mapping(graph, topo, rng.permutation(12))
        sim = NetworkSimulator(topo, bandwidth=bandwidth, alpha=alpha)
        res = IterativeApplication(mapping, sim, iterations=iterations).run()
        flow = flow_evaluate(mapping, iterations=iterations,
                             bandwidth=bandwidth, alpha=alpha)
        assert flow.makespan_lower_bound <= res.total_time * (1 + 1e-9)

    def test_bound_tight_when_uncontended(self):
        """With nothing to queue behind, one iteration's bound (compute +
        slowest no-load delivery) IS the DES answer exactly; over several
        iterations the DES re-pays the delivery latency per round while the
        bound only charges it once, so the ratio stays close to 1 but the
        inequality is strict."""
        graph = ring_pattern(64, message_bytes=64.0)
        topo = Torus((8, 8))
        mapping = mapper_from_spec("topolb", 0).map(graph, topo)

        sim = NetworkSimulator(topo)
        one = IterativeApplication(mapping, sim, iterations=1).run()
        assert flow_evaluate(mapping).makespan_lower_bound \
            == pytest.approx(one.total_time)

        sim = NetworkSimulator(topo)
        five = IterativeApplication(mapping, sim, iterations=5).run()
        bound = flow_evaluate(mapping, iterations=5).makespan_lower_bound
        assert 0.85 * five.total_time <= bound <= five.total_time


class TestRankCorrelation:
    """Pinned validity-envelope fixtures behind ``--netsim-mode flow``."""

    FIXTURES = [
        ("jacobi6x6-torus6x6",
         lambda: mesh2d_pattern(6, 6, message_bytes=512.0), Torus((6, 6)),
         1000.0),
        ("jacobi8x8-torus4x4x4",
         lambda: mesh2d_pattern(8, 8, message_bytes=512.0), Torus((4, 4, 4)),
         50.0),  # congested regime: low bandwidth
    ]

    @pytest.mark.parametrize("label,make_graph,topo,bandwidth", FIXTURES,
                             ids=[f[0] for f in FIXTURES])
    def test_flow_ranks_mappings_like_des(self, label, make_graph, topo,
                                          bandwidth):
        graph = make_graph()
        rng = np.random.default_rng(17)
        pool = [mapper_from_spec(spec, 0).map(graph, topo)
                for spec in ("topolb", "topocentlb", "random")]
        pool += [_mapping(graph, topo, seed=int(s))
                 for s in rng.integers(0, 10_000, size=5)]
        des, flow = [], []
        for mapping in pool:
            sim = NetworkSimulator(topo, bandwidth=bandwidth)
            res = IterativeApplication(mapping, sim, iterations=4).run()
            des.append(res.total_time)
            flow.append(flow_evaluate(mapping, iterations=4,
                                      bandwidth=bandwidth).makespan_lower_bound)
        assert spearman(flow, des) >= 0.9, label


class TestSpearman:
    def test_monotone_is_one(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [1, 8, 27, 64]) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_use_average_ranks(self):
        # scipy.stats.spearmanr([1, 2, 2, 3], [1, 2, 3, 4]) == 0.9486832...
        assert spearman([1, 2, 2, 3], [1, 2, 3, 4]) == pytest.approx(
            0.9486832980505138)

    def test_degenerate_inputs(self):
        assert spearman([5.0], [7.0]) == 1.0
        assert spearman([2, 2, 2], [1, 5, 9]) == 1.0  # zero variance

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


class TestResultSurface:
    def _flow(self, iterations=2):
        graph, topo = mesh2d_pattern(4, 4, message_bytes=256.0), Torus((4, 4))
        return flow_evaluate(_mapping(graph, topo, seed=0),
                             iterations=iterations)

    def test_summary_shape(self):
        flow = self._flow()
        summary = flow_summary(flow, top=3)
        assert summary["mode"] == "flow"
        assert summary["links_used"] == flow.links_used > 0
        assert summary["max_link_bytes"] == flow.max_link_bytes
        assert 0.0 < summary["max_utilization"] <= 1.0 + 1e-9
        assert len(summary["top_links"]) == 3
        tops = [entry["bytes"] for entry in summary["top_links"]]
        assert tops == sorted(tops, reverse=True)
        assert tops[0] == pytest.approx(flow.max_link_bytes)

    def test_load_histogram(self):
        flow = self._flow()
        hist = flow.load_histogram(bins=5)
        assert sum(hist["counts"]) == flow.links_used
        assert hist["max"] == pytest.approx(flow.max_link_bytes)

    def test_empty_traffic(self):
        from repro.taskgraph import TaskGraph

        graph = TaskGraph(4, [])  # no edges -> no traffic at all
        topo = Torus((2, 2))
        flow = flow_evaluate(_mapping(graph, topo))
        assert flow.links_used == 0
        assert flow.total_bytes == 0.0
        assert flow_summary(flow)["top_links"] == []
        assert flow.load_histogram()["counts"] == []

    def test_parameter_validation(self):
        graph, topo = mesh2d_pattern(4, 4), Torus((4, 4))
        mapping = _mapping(graph, topo)
        with pytest.raises(SimulationError):
            flow_evaluate(mapping, iterations=0)
        with pytest.raises(SimulationError):
            flow_evaluate(mapping, bandwidth=0.0)
        with pytest.raises(SimulationError):
            flow_evaluate(mapping, message_bytes=-1.0)
        with pytest.raises(SimulationError):
            flow_evaluate(mapping, alpha=-0.1)

    def test_result_type(self):
        assert isinstance(self._flow(), FlowResult)
