"""Property-based invariants of the finite-buffer link model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.base import Mapping
from repro.netsim import LinkModel, NetworkSimulator, RoutingPolicy
from repro.netsim.appsim import IterativeApplication
from repro.netsim.flow import flow_evaluate
from repro.taskgraph import mesh2d_pattern
from repro.topology import Mesh, Torus


def _seeded_traffic(sim, seed, n_msgs, nodes, max_size=400.0):
    rng = np.random.default_rng(seed)
    for _ in range(n_msgs):
        a, b = (int(x) for x in rng.integers(0, nodes, size=2))
        sim.send(a, b, float(rng.uniform(1, max_size)),
                 at=float(rng.uniform(0, 10)))


@given(
    seed=st.integers(0, 100_000),
    n_msgs=st.integers(1, 30),
    routing=st.sampled_from(list(RoutingPolicy)),
    model=st.sampled_from(list(LinkModel)),
    policy=st.sampled_from(("drop", "ecn", "credit")),
)
@settings(max_examples=40, deadline=None)
def test_property_none_bit_identical_to_huge_buffer(
    seed, n_msgs, routing, model, policy
):
    """``buffer_bytes=None`` (the seed's infinite model) and a buffer large
    enough to never fill must produce bit-identical runs under every policy,
    link model, and routing policy: the buffered code path is a strict
    extension, not a perturbation."""
    def run(**kwargs):
        sim = NetworkSimulator(Torus((3, 4)), bandwidth=80.0, alpha=0.2,
                               routing=routing, model=model, **kwargs)
        _seeded_traffic(sim, seed, n_msgs, 12)
        end = sim.run()
        return end, sim.stats.snapshot()

    assert run() == run(buffer_bytes=1e9, overload_policy=policy)


@given(seed=st.integers(0, 100_000), n_msgs=st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_property_credit_never_drops(seed, n_msgs):
    """Credit flow control is lossless by construction: on a mesh (no wrap
    rings, so no credit deadlock) every message is delivered, none dropped,
    none retransmitted, however small the buffers — as long as each message
    individually fits."""
    sim = NetworkSimulator(Mesh((4, 4)), bandwidth=40.0,
                           buffer_bytes=512.0, overload_policy="credit")
    _seeded_traffic(sim, seed, n_msgs, 16, max_size=500.0)
    sim.run()
    assert sim.stats.count == n_msgs
    assert sim.stats.dropped == 0
    assert sim.stats.buffer_drops == 0
    assert sim.stats.retransmits == 0
    assert sim.in_flight == 0


@given(
    seed=st.integers(0, 100_000),
    n_msgs=st.integers(1, 40),
    policy=st.sampled_from(("drop", "ecn")),
)
@settings(max_examples=40, deadline=None)
def test_property_drop_mode_conserves_messages(seed, n_msgs, policy):
    """Lossy policies partition traffic exactly: every message is either
    delivered exactly once or recorded as dropped — delivered + dropped ==
    sent, no duplicates from the retransmit path, nothing left in flight."""
    delivered = []
    sim = NetworkSimulator(Torus((3, 4)), bandwidth=20.0,
                           buffer_bytes=700.0, overload_policy=policy,
                           max_retries=2, unroutable_policy="drop")
    rng = np.random.default_rng(seed)
    for _ in range(n_msgs):
        a, b = (int(x) for x in rng.integers(0, 12, size=2))
        sim.send(a, b, float(rng.uniform(1, 600)),
                 at=float(rng.uniform(0, 5)),
                 on_delivery=lambda m: delivered.append(m.msg_id))
    sim.run()
    assert len(delivered) == len(set(delivered))
    assert len(delivered) == sim.stats.count
    assert sim.stats.count + sim.stats.dropped == n_msgs
    assert sim.in_flight == 0


@given(
    seed=st.integers(0, 10_000),
    policy=st.sampled_from(("drop", "ecn", "credit")),
)
@settings(max_examples=25, deadline=None)
def test_property_flow_bound_below_buffered_des(seed, policy):
    """The flow estimator's makespan lower bound assumes ideal (infinite)
    buffering; finite buffers only add delay (retransmits, pacing,
    backpressure), so the bound must still hold under every policy."""
    rng = np.random.default_rng(seed)
    # Fixed 4KiB messages (they must individually fit the credit buffer);
    # the random placement is what varies the contention.
    graph = mesh2d_pattern(4, 4, message_bytes=4096.0)
    topo = Mesh((4, 4))  # mesh: credit is deadlock-free here
    mapping = Mapping(graph, topo, rng.permutation(16))
    sim = NetworkSimulator(topo, bandwidth=100.0, buffer_bytes=8192.0,
                           overload_policy=policy, max_retries=64,
                           unroutable_policy="drop")
    res = IterativeApplication(mapping, sim, iterations=2).run()
    flow = flow_evaluate(mapping, iterations=2, bandwidth=100.0)
    assert flow.makespan_lower_bound <= res.total_time * (1 + 1e-9)
