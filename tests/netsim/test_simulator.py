"""Tests for the network simulator's link model and contention behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.netsim import LinkModel, NetworkSimulator
from repro.netsim.stats import link_utilization, summarize_latencies
from repro.topology import Mesh, Torus


def make_sim(**kw):
    defaults = dict(bandwidth=100.0, alpha=0.5, local_latency=0.05)
    defaults.update(kw)
    return NetworkSimulator(Mesh((8,)), **defaults)


class TestNoLoadLatency:
    def test_cut_through_formula(self):
        """Uncontended L-hop delivery = L*alpha + size/bandwidth."""
        sim = make_sim()
        msg = sim.send(0, 4, 200.0)  # 4 hops
        sim.run()
        assert msg.latency == pytest.approx(4 * 0.5 + 200.0 / 100.0)
        assert msg.hops == 4

    def test_store_and_forward_formula(self):
        """Uncontended L-hop S&F delivery = L*(alpha + size/bandwidth)."""
        sim = make_sim(model=LinkModel.STORE_AND_FORWARD)
        msg = sim.send(0, 3, 200.0)
        sim.run()
        assert msg.latency == pytest.approx(3 * (0.5 + 2.0))

    def test_store_and_forward_slower_multihop(self):
        lat = {}
        for model in LinkModel:
            sim = make_sim(model=model)
            msg = sim.send(0, 7, 500.0)
            sim.run()
            lat[model] = msg.latency
        assert lat[LinkModel.STORE_AND_FORWARD] > lat[LinkModel.CUT_THROUGH]

    def test_one_hop_models_agree(self):
        lat = {}
        for model in LinkModel:
            sim = make_sim(model=model)
            msg = sim.send(2, 3, 100.0)
            sim.run()
            lat[model] = msg.latency
        assert lat[LinkModel.STORE_AND_FORWARD] == pytest.approx(
            lat[LinkModel.CUT_THROUGH]
        )

    def test_local_message(self):
        sim = make_sim()
        msg = sim.send(3, 3, 1e9)  # size irrelevant on-node
        sim.run()
        assert msg.latency == pytest.approx(0.05)
        assert msg.hops == 0

    def test_latency_scales_with_bandwidth(self):
        lats = []
        for bw in (50.0, 100.0):
            sim = make_sim(bandwidth=bw)
            msg = sim.send(0, 1, 1000.0)
            sim.run()
            lats.append(msg.latency)
        assert lats[0] == pytest.approx(2 * lats[1] - 0.5)


class TestContention:
    def test_fifo_serialization_on_shared_link(self):
        """Two simultaneous messages over one link: second waits for first."""
        sim = make_sim()
        m1 = sim.send(0, 1, 100.0, at=0.0)
        m2 = sim.send(0, 1, 100.0, at=0.0)
        sim.run()
        assert m1.latency == pytest.approx(0.5 + 1.0)
        # m2 queues until m1's occupancy (alpha + serialization) ends.
        assert m2.deliver_time == pytest.approx(m1.deliver_time + 1.5)

    def test_fifo_order_preserved(self):
        sim = make_sim()
        order = []
        for i in range(5):
            sim.send(0, 2, 50.0, on_delivery=lambda m, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_disjoint_paths_do_not_interact(self):
        sim = NetworkSimulator(Mesh((2, 2)), bandwidth=100.0, alpha=0.5)
        m1 = sim.send(0, 1, 100.0)
        m2 = sim.send(2, 3, 100.0)
        sim.run()
        assert m1.latency == pytest.approx(m2.latency)
        assert m1.latency == pytest.approx(1.5)

    def test_opposite_directions_are_independent_channels(self):
        sim = make_sim()
        m1 = sim.send(0, 1, 100.0)
        m2 = sim.send(1, 0, 100.0)
        sim.run()
        assert m1.latency == pytest.approx(1.5)
        assert m2.latency == pytest.approx(1.5)

    def test_congestion_grows_latency(self):
        """Many senders crossing one cut: mean latency far above no-load."""
        sim = make_sim()
        for _ in range(20):
            sim.send(0, 7, 1000.0)
        sim.run()
        no_load = 7 * 0.5 + 10.0
        assert sim.stats.mean_latency > 3 * no_load


class TestNicModel:
    def test_nic_serializes_fanout(self):
        """With a NIC, simultaneous sends to different partners serialize."""
        topo = Torus((4,))
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.0, nic_bandwidth=100.0)
        m1 = sim.send(0, 1, 100.0)
        m2 = sim.send(0, 3, 100.0)  # other direction: different link, same NIC
        sim.run()
        assert abs(m1.deliver_time - m2.deliver_time) >= 1.0 - 1e-9

    def test_nic_channels_not_counted_as_hops(self):
        sim = NetworkSimulator(Mesh((4,)), bandwidth=100.0, nic_bandwidth=100.0)
        msg = sim.send(0, 2, 100.0)
        sim.run()
        assert msg.hops == 2

    def test_nic_free_for_single_cutthrough_message(self):
        """Cut-through pipelines through the NIC: one uncontended message
        pays nothing extra (the NIC only matters under fan-out load)."""
        lat = []
        for nic in (None, 100.0):
            sim = NetworkSimulator(Mesh((4,)), bandwidth=100.0, alpha=0.5,
                                   nic_bandwidth=nic)
            msg = sim.send(0, 1, 100.0)
            sim.run()
            lat.append(msg.latency)
        assert lat[1] == pytest.approx(lat[0])

    def test_nic_adds_latency_store_and_forward(self):
        lat = []
        for nic in (None, 100.0):
            sim = NetworkSimulator(Mesh((4,)), bandwidth=100.0, alpha=0.5,
                                   nic_bandwidth=nic,
                                   model=LinkModel.STORE_AND_FORWARD)
            msg = sim.send(0, 1, 100.0)
            sim.run()
            lat.append(msg.latency)
        assert lat[1] > lat[0]


class TestHeterogeneousLinks:
    def test_slow_link_slows_serialization(self):
        sim = NetworkSimulator(Mesh((3,)), bandwidth=100.0, alpha=0.0,
                               link_bandwidths={(0, 1): 10.0})
        slow = sim.send(0, 1, 100.0)
        fast = sim.send(1, 2, 100.0)
        sim.run()
        assert slow.latency == pytest.approx(10.0)
        assert fast.latency == pytest.approx(1.0)

    def test_override_applies_both_directions(self):
        sim = NetworkSimulator(Mesh((2,)), bandwidth=100.0, alpha=0.0,
                               link_bandwidths={(0, 1): 10.0})
        back = sim.send(1, 0, 100.0)
        sim.run()
        assert back.latency == pytest.approx(10.0)

    def test_asymmetric_overrides(self):
        sim = NetworkSimulator(Mesh((2,)), bandwidth=100.0, alpha=0.0,
                               link_bandwidths={(0, 1): 10.0, (1, 0): 50.0})
        fwd = sim.send(0, 1, 100.0)
        back = sim.send(1, 0, 100.0)
        sim.run()
        assert fwd.latency == pytest.approx(10.0)
        assert back.latency == pytest.approx(2.0)

    def test_bad_override_rejected(self):
        with pytest.raises(SimulationError):
            NetworkSimulator(Mesh((2,)), link_bandwidths={(0, 1): 0.0})


class TestValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(SimulationError):
            NetworkSimulator(Mesh((4,)), bandwidth=0.0)

    def test_bad_nic_bandwidth(self):
        with pytest.raises(SimulationError):
            NetworkSimulator(Mesh((4,)), nic_bandwidth=-1.0)

    def test_bad_alpha(self):
        with pytest.raises(SimulationError):
            NetworkSimulator(Mesh((4,)), alpha=-0.1)

    def test_bad_message_size(self):
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.send(0, 1, 0.0)


class TestStats:
    def test_message_accounting(self):
        sim = make_sim()
        sim.send(0, 3, 100.0)
        sim.send(1, 2, 50.0)
        sim.run()
        assert sim.stats.count == 2
        assert sim.stats.total_bytes == 150.0
        assert sim.stats.hops_per_byte == pytest.approx((100 * 3 + 50 * 1) / 150)

    def test_latency_summary(self):
        sim = make_sim()
        for i in range(10):
            sim.send(0, 1 + (i % 3), 100.0)
        sim.run()
        summary = summarize_latencies(sim)
        assert summary["count"] == 10
        assert summary["p50"] <= summary["p95"] <= summary["max"]

    def test_link_utilization_range(self):
        sim = make_sim()
        for _ in range(5):
            sim.send(0, 7, 500.0)
        sim.run()
        util = link_utilization(sim)
        assert 0.0 < util["mean"] <= util["max"] + 1e-9
        assert util["max"] <= 1.0 + 1e-9

    def test_link_bytes_conservation(self):
        sim = make_sim()
        sim.send(0, 3, 100.0)
        sim.run()
        total = sum(sim.link_bytes().values())
        assert total == pytest.approx(300.0)  # 100 bytes x 3 links

    def test_empty_stats(self):
        sim = make_sim()
        assert summarize_latencies(sim)["count"] == 0
        assert sim.stats.mean_latency == 0.0
        assert sim.stats.max_latency == 0.0

    def test_undelivered_latency_raises(self):
        sim = make_sim()
        msg = sim.send(0, 5, 10.0)
        with pytest.raises(ValueError):
            _ = msg.latency


@given(
    seed=st.integers(0, 100_000),
    n_msgs=st.integers(1, 25),
    model=st.sampled_from(list(LinkModel)),
)
@settings(max_examples=40, deadline=None)
def test_property_latency_at_least_no_load(seed, n_msgs, model):
    """Causality: no message beats its own no-load latency; all deliver."""
    topo = Torus((3, 3))
    sim = NetworkSimulator(topo, bandwidth=50.0, alpha=0.3, model=model)
    rng = np.random.default_rng(seed)
    msgs = []
    for _ in range(n_msgs):
        a, b = (int(x) for x in rng.integers(0, 9, size=2))
        msgs.append(sim.send(a, b, float(rng.uniform(1, 500)), at=float(rng.uniform(0, 5))))
    sim.run()
    for m in msgs:
        assert m.deliver_time is not None
        if m.hops == 0:
            continue
        no_load = m.hops * 0.3 + m.size_bytes / 50.0
        if model is LinkModel.STORE_AND_FORWARD:
            no_load = m.hops * (0.3 + m.size_bytes / 50.0)
        assert m.latency >= no_load - 1e-9
