"""Tests for collective-operation simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.netsim import (
    NetworkSimulator,
    bfs_tree,
    binomial_tree,
    simulate_allreduce,
    simulate_broadcast,
    simulate_reduce,
)
from repro.topology import Mesh, Torus


def _covers_all(children: dict[int, list[int]], root: int, p: int) -> bool:
    seen = {root}
    stack = [root]
    while stack:
        v = stack.pop()
        for c in children[v]:
            assert c not in seen  # a tree: no node reached twice
            seen.add(c)
            stack.append(c)
    return len(seen) == p


class TestTrees:
    @pytest.mark.parametrize("root", [0, 7, 15])
    def test_bfs_tree_spans(self, root):
        topo = Torus((4, 4))
        tree = bfs_tree(topo, root)
        assert _covers_all(tree, root, 16)

    def test_bfs_tree_edges_are_links(self):
        topo = Mesh((3, 3))
        tree = bfs_tree(topo, 4)
        for v, kids in tree.items():
            for c in kids:
                assert topo.distance(v, c) == 1

    @pytest.mark.parametrize("root", [0, 3])
    def test_binomial_tree_spans(self, root):
        topo = Torus((4, 4))
        tree = binomial_tree(topo, root)
        assert _covers_all(tree, root, 16)

    def test_binomial_depth_logarithmic(self):
        from repro.netsim.collectives import _tree_depths

        topo = Torus((8, 8))
        depths = _tree_depths(binomial_tree(topo, 0), 0)
        assert max(depths.values()) <= 6  # ceil(log2 64)


class TestTreeProperties:
    def test_trees_span_for_random_roots_and_shapes(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(10):
            shape = tuple(int(x) for x in rng.integers(2, 5, size=2))
            topo = Torus(shape)
            root = int(rng.integers(0, topo.num_nodes))
            for fn in (bfs_tree, binomial_tree):
                tree = fn(topo, root)
                assert _covers_all(tree, root, topo.num_nodes)
                # Exactly p-1 tree edges.
                assert sum(len(k) for k in tree.values()) == topo.num_nodes - 1


class TestBroadcast:
    def test_completes_and_counts_messages(self):
        topo = Torus((4, 4))
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
        t = simulate_broadcast(sim, 0, 1000.0)
        assert t > 0
        assert sim.stats.count == 15  # one message per non-root node

    def test_single_node(self):
        topo = Mesh((1,))
        sim = NetworkSimulator(topo, bandwidth=100.0)
        assert simulate_broadcast(sim, 0, 100.0) == 0.0

    def test_bfs_tree_beats_binomial_on_torus(self):
        """Topology-aware tree: every hop is a link; binomial edges span
        many hops and contend — the mapping lesson at collective level."""
        topo = Torus((8, 8))
        times = {}
        for name, tree_fn in (("bfs", bfs_tree), ("binomial", binomial_tree)):
            sim = NetworkSimulator(topo, bandwidth=50.0, alpha=0.2)
            times[name] = simulate_broadcast(sim, 0, 4000.0,
                                             tree=tree_fn(topo, 0))
        assert times["bfs"] < times["binomial"]

    def test_larger_payload_slower(self):
        topo = Torus((4, 4))
        t_small = simulate_broadcast(
            NetworkSimulator(topo, bandwidth=100.0, alpha=0.1), 0, 100.0
        )
        t_big = simulate_broadcast(
            NetworkSimulator(topo, bandwidth=100.0, alpha=0.1), 0, 10_000.0
        )
        assert t_big > t_small


class TestReduce:
    def test_completes(self):
        topo = Torus((4, 4))
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
        t = simulate_reduce(sim, 0, 500.0)
        assert t > 0
        assert sim.stats.count == 15

    def test_combine_time_adds_up(self):
        topo = Mesh((8,))  # a line: deep tree from node 0
        t_free = simulate_reduce(
            NetworkSimulator(topo, bandwidth=100.0, alpha=0.1), 0, 100.0
        )
        t_slow = simulate_reduce(
            NetworkSimulator(topo, bandwidth=100.0, alpha=0.1), 0, 100.0,
            combine_time=5.0,
        )
        assert t_slow > t_free + 5.0

    def test_allreduce_is_reduce_plus_broadcast(self):
        topo = Torus((4, 4))
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
        t = simulate_allreduce(sim, 0, 500.0)
        assert t > 0
        assert sim.stats.count == 30

    def test_roots_equivalent_on_torus(self):
        """Vertex-transitive machine: the root choice cannot matter."""
        topo = Torus((4, 4))
        times = []
        for root in (0, 5, 15):
            sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
            times.append(simulate_reduce(sim, root, 300.0))
        assert max(times) == pytest.approx(min(times))
