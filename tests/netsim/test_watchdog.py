"""Livelock watchdog, bounded ``run(until=)``, and wedge detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.netsim.simulator import NetworkSimulator
from repro.topology import Mesh, Torus


class TestWatchdog:
    def _livelocked_sim(self):
        """A retry loop that can never succeed: the only DOR route dies
        mid-run, retransmits never back off (backoff 1.0) and never run out
        (absurd max_retries) — without a watchdog this spins forever."""
        sim = NetworkSimulator(Mesh((4,)), max_retries=10**9,
                               retry_backoff=1.0, retry_delay=2.0,
                               unroutable_policy="drop", stall_window=100.0)
        sim.send(0, 3, 1000.0)
        sim.schedule_link_failure(0.05, 1, 2)
        return sim

    def test_livelock_raises_structured_error(self):
        with pytest.raises(SimulationError, match="livelock"):
            self._livelocked_sim().run()

    def test_livelock_error_names_oldest_message(self):
        with pytest.raises(SimulationError, match="message 0"):
            self._livelocked_sim().run()

    def test_watchdog_retires_cleanly_on_success(self):
        """A healthy run under a tight stall window completes normally and
        leaves no watchdog events behind."""
        sim = NetworkSimulator(Torus((4, 4)), stall_window=50.0)
        rng = np.random.default_rng(3)
        for _ in range(30):
            a, b = (int(x) for x in rng.integers(0, 16, size=2))
            sim.send(a, b, float(rng.uniform(10, 500)))
        sim.run()
        assert sim.stats.count == 30
        assert sim.queue.pending == 0

    def test_watchdog_tolerates_slow_but_live_progress(self):
        """Deliveries spaced wider than the event cadence but inside the
        stall window must not trip the detector."""
        sim = NetworkSimulator(Mesh((4,)), bandwidth=0.1,
                               stall_window=1e6)
        for i in range(5):
            sim.send(0, 3, 10_000.0, at=float(i) * 1e4)
        sim.run()
        assert sim.stats.count == 5


class TestRunUntil:
    def test_until_pauses_and_resumes(self):
        sim = NetworkSimulator(Mesh((4,)), bandwidth=1.0)
        msg = sim.send(0, 3, 1000.0)
        now = sim.run(until=2.0)
        assert now == 2.0
        assert msg.deliver_time is None
        assert sim.queue.pending > 0
        sim.run()
        assert msg.deliver_time is not None
        assert sim.stats.count == 1

    def test_until_past_completion_returns_deadline(self):
        sim = NetworkSimulator(Mesh((4,)))
        sim.send(0, 1, 10.0)
        end = sim.run(until=1e9)
        assert end == 1e9
        assert sim.stats.count == 1

    def test_until_does_not_trip_wedge_check(self):
        """Pausing with messages legitimately in flight is not a wedge."""
        sim = NetworkSimulator(Mesh((4,)), bandwidth=1.0, stall_window=1e6)
        sim.send(0, 3, 1000.0)
        sim.run(until=2.0)  # must not raise
        assert sim.in_flight == 1
        sim.run()
        assert sim.in_flight == 0


class TestWedgeDetection:
    def test_credit_deadlock_reported_with_count(self):
        """Torus wrap rings + credit + tiny buffers deadlock; the drained
        queue with undelivered messages must raise, naming the count."""
        sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                               buffer_bytes=4096.0, overload_policy="credit")
        rng = np.random.default_rng(1)
        for i in range(200):
            a, b = (int(x) for x in rng.integers(0, 16, size=2))
            while b == a:
                b = int(rng.integers(0, 16))
            sim.send(a, b, float(rng.integers(64, 4000)), at=float(i) * 0.4)
        with pytest.raises(SimulationError, match=r"wedged.*undelivered"):
            sim.run()

    def test_unbuffered_runs_never_wedge_checked(self):
        """The wedge check only arms for credit flow control or an explicit
        stall window — plain runs keep the seed's exact behavior."""
        sim = NetworkSimulator(Torus((4, 4)))
        sim.send(0, 5, 100.0)
        sim.run()
        assert sim.stats.count == 1
