"""Tests for the iterative application replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.mapping import IdentityMapper, Mapping, RandomMapper, TopoLB
from repro.netsim import IterativeApplication, NetworkSimulator
from repro.taskgraph import TaskGraph, mesh2d_pattern
from repro.topology import Torus


def run_app(mapping, iterations=5, bandwidth=100.0, message_bytes=100.0,
            compute_time=1.0, **sim_kw):
    sim = NetworkSimulator(mapping.topology, bandwidth=bandwidth, alpha=0.1, **sim_kw)
    app = IterativeApplication(
        mapping, sim, iterations=iterations,
        message_bytes=message_bytes, compute_time=compute_time,
    )
    return app.run()


class TestBasicExecution:
    def test_all_iterations_complete(self, pattern8x8, torus8x8):
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        result = run_app(mapping, iterations=4)
        assert result.iterations == 4
        assert len(result.iteration_finish_times) == 4
        assert result.total_time > 0

    def test_iteration_times_monotone(self, pattern8x8, torus8x8):
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        result = run_app(mapping, iterations=6)
        finish = result.iteration_finish_times
        assert (np.diff(finish) > 0).all()

    def test_message_count(self, pattern8x8, torus8x8):
        """Each task sends one message per neighbor per iteration."""
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        result = run_app(mapping, iterations=3)
        expected = 3 * int(pattern8x8.degrees().sum())
        assert result.messages_delivered == expected

    def test_single_task_no_messages(self):
        g = TaskGraph(1)
        topo = Torus((1,))
        mapping = IdentityMapper().map(g, topo)
        result = run_app(mapping, iterations=3, compute_time=2.0)
        assert result.messages_delivered == 0
        assert result.total_time == pytest.approx(3 * 2.0)

    def test_compute_only_lower_bound(self, pattern8x8, torus8x8):
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        result = run_app(mapping, iterations=5, compute_time=10.0)
        assert result.total_time >= 5 * 10.0

    def test_run_once_only(self, pattern8x8, torus8x8):
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        sim = NetworkSimulator(torus8x8, bandwidth=100.0)
        app = IterativeApplication(mapping, sim, iterations=2, message_bytes=10.0)
        app.run()
        with pytest.raises(SimulationError):
            app.run()

    def test_bad_params(self, pattern8x8, torus8x8):
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        sim = NetworkSimulator(torus8x8)
        with pytest.raises(SimulationError):
            IterativeApplication(mapping, sim, iterations=0)
        with pytest.raises(SimulationError):
            IterativeApplication(mapping, sim, iterations=1, message_bytes=-5.0)
        with pytest.raises(SimulationError):
            IterativeApplication(mapping, sim, iterations=1, compute_time=-1.0)


class TestDependencyStructure:
    def test_jacobi_iteration_gating(self):
        """A task cannot race ahead: iteration k+1 needs all of k's messages.

        Two tasks on adjacent processors with very different compute times:
        the fast one must still wait for the slow one's message each round,
        so total time tracks the slow task.
        """
        g = TaskGraph(2, [(0, 1, 20.0)])
        topo = Torus((2,))
        mapping = IdentityMapper().map(g, topo)
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
        app = IterativeApplication(
            mapping, sim, iterations=5, message_bytes=10.0,
            compute_time=np.array([1.0, 30.0]),
        )
        result = app.run()
        assert result.total_time >= 5 * 30.0

    def test_per_edge_message_sizes_from_graph(self):
        """message_bytes=None derives per-direction sizes from edge weights."""
        g = TaskGraph(2, [(0, 1, 2000.0)])  # 1000 bytes per direction
        topo = Torus((2,))
        mapping = IdentityMapper().map(g, topo)
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.0)
        app = IterativeApplication(mapping, sim, iterations=1, compute_time=0.0)
        result = app.run()
        # 1000-byte message at 100 B/us -> 10us serialization
        assert result.mean_message_latency == pytest.approx(10.0)

    def test_colocated_tasks_use_local_latency(self):
        g = TaskGraph(2, [(0, 1, 100.0)])
        topo = Torus((2,))
        mapping = Mapping(g, topo, [0, 0])
        result = run_app(mapping, iterations=2)
        assert result.hops_per_byte == 0.0
        assert result.mean_message_latency < 0.2


class TestCoScheduling:
    def test_two_jobs_share_one_network(self):
        """start()/result() let several applications co-run on one machine."""
        machine = Torus((4, 4))
        sim = NetworkSimulator(machine, bandwidth=100.0, alpha=0.1)
        apps = []
        for base in (0, 8):
            g = mesh2d_pattern(2, 4)
            assign = np.arange(8) + base
            app = IterativeApplication(Mapping(g, machine, assign), sim,
                                       iterations=3, message_bytes=500.0,
                                       compute_time=1.0)
            app.start()
            apps.append(app)
        sim.run()
        results = [app.result() for app in apps]
        assert all(r.iterations == 3 for r in results)
        total_msgs = sum(r.messages_delivered for r in results)
        # the sim's stats are shared; each app reports the combined count
        assert total_msgs == 2 * sim.stats.count

    def test_interference_slows_jobs_down(self):
        """A co-runner crossing the same links must cost the victim time."""
        machine = Torus((8,))
        g = mesh2d_pattern(2, 2)

        def run(with_interference: bool) -> float:
            sim = NetworkSimulator(machine, bandwidth=50.0, alpha=0.1)
            victim = IterativeApplication(
                Mapping(g, machine, [0, 1, 2, 3]), sim, iterations=5,
                message_bytes=800.0, compute_time=1.0,
            )
            victim.start()
            apps = [victim]
            if with_interference:
                # A second job whose ring traffic crosses the victim's links.
                other = IterativeApplication(
                    Mapping(g, machine, [4, 0, 2, 6]), sim, iterations=5,
                    message_bytes=800.0, compute_time=1.0,
                )
                other.start()
                apps.append(other)
            sim.run()
            return victim.result().total_time

        assert run(True) > run(False)

    def test_result_before_run_raises(self, pattern8x8, torus8x8):
        sim = NetworkSimulator(torus8x8)
        app = IterativeApplication(IdentityMapper().map(pattern8x8, torus8x8),
                                   sim, iterations=1, message_bytes=10.0)
        with pytest.raises(SimulationError):
            app.result()
        app.start()
        with pytest.raises(SimulationError):  # queue not drained yet
            app.result()


class TestMappingEffects:
    def test_topolb_beats_random_total_time(self):
        """The paper's bottom line, end to end through the simulator."""
        topo = Torus((4, 4, 4))
        g = mesh2d_pattern(8, 8)
        random_time = run_app(
            RandomMapper(seed=0).map(g, topo), iterations=10,
            bandwidth=100.0, message_bytes=2000.0,
        ).total_time
        topolb_time = run_app(
            TopoLB().map(g, topo), iterations=10,
            bandwidth=100.0, message_bytes=2000.0,
        ).total_time
        assert topolb_time < random_time

    def test_observed_hops_per_byte_matches_metric(self):
        topo = Torus((4, 4))
        g = mesh2d_pattern(4, 4)
        mapping = RandomMapper(seed=3).map(g, topo)
        result = run_app(mapping, iterations=2)
        # Uniform message sizes: DES-observed hops/byte == static metric.
        assert result.hops_per_byte == pytest.approx(mapping.hops_per_byte)

    def test_lower_bandwidth_never_faster(self, pattern8x8, torus8x8):
        mapping = RandomMapper(seed=1).map(pattern8x8, torus8x8)
        fast = run_app(mapping, iterations=5, bandwidth=200.0, message_bytes=1000.0)
        slow = run_app(mapping, iterations=5, bandwidth=50.0, message_bytes=1000.0)
        assert slow.total_time >= fast.total_time

    def test_time_per_iteration(self, pattern8x8, torus8x8):
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        result = run_app(mapping, iterations=4)
        assert result.time_per_iteration == pytest.approx(result.total_time / 4)
