"""Tests for synthetic traffic generators and adaptive routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.netsim import NetworkSimulator, RoutingPolicy, run_open_loop
from repro.netsim.traffic import make_pattern
from repro.topology import Hypercube, Mesh, Torus


class TestPatterns:
    def test_uniform_covers_destinations(self, rng):
        topo = Torus((4, 4))
        pattern = make_pattern("uniform", topo, seed=0)
        dests = {pattern(0, rng) for _ in range(300)}
        assert len(dests) > 10

    def test_permutation_fixed_and_derangement(self, rng):
        topo = Torus((8,))
        pattern = make_pattern("permutation", topo, seed=1)
        for src in range(8):
            dst = pattern(src, rng)
            assert dst != src
            assert dst == pattern(src, rng)  # stable

    def test_neighbor_one_hop(self, rng):
        topo = Torus((4, 4))
        pattern = make_pattern("neighbor", topo, seed=2)
        for src in range(16):
            assert topo.distance(src, pattern(src, rng)) == 1

    def test_transpose_square(self, rng):
        topo = Mesh((4, 4))
        pattern = make_pattern("transpose", topo, seed=0)
        assert pattern(topo.index((1, 3)), rng) == topo.index((3, 1))

    def test_transpose_needs_grid(self, rng):
        with pytest.raises(SimulationError):
            make_pattern("transpose", Hypercube(3))

    def test_hotspot_concentrates(self, rng):
        topo = Torus((4, 4))
        pattern = make_pattern("hotspot", topo, seed=3, hotspot_fraction=0.5)
        hits = sum(1 for _ in range(400) if pattern(0, rng) == 8)
        assert hits > 120  # ~50% plus uniform background

    def test_unknown_pattern(self):
        with pytest.raises(SimulationError, match="unknown traffic"):
            make_pattern("zipf", Torus((4,)))


class TestOpenLoop:
    def test_throughput_tracks_offered_load_below_saturation(self):
        topo = Torus((4, 4))
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
        r = run_open_loop(sim, "neighbor", 0.3, message_bytes=256.0,
                          duration=400.0, seed=0)
        assert r.throughput == pytest.approx(0.3, rel=0.2)
        assert r.delivered > 0

    def test_latency_grows_with_load(self):
        topo = Torus((4, 4))
        lats = []
        for load in (0.1, 0.8):
            sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
            r = run_open_loop(sim, "uniform", load, message_bytes=256.0,
                              duration=400.0, seed=0)
            lats.append(r.mean_latency)
        assert lats[1] > lats[0]

    def test_neighbor_saturates_later_than_uniform(self):
        """The paper's premise as a saturation statement: fewer hops per
        byte => less capacity consumed => lower latency at equal load."""
        topo = Torus((4, 4, 4))
        out = {}
        for pattern in ("neighbor", "uniform"):
            sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
            out[pattern] = run_open_loop(sim, pattern, 0.7,
                                         message_bytes=256.0, duration=300.0,
                                         seed=0).mean_latency
        assert out["neighbor"] < out["uniform"]

    def test_bad_load(self):
        sim = NetworkSimulator(Torus((4,)), bandwidth=100.0)
        with pytest.raises(SimulationError):
            run_open_loop(sim, "uniform", 0.0)


class TestAdaptiveRouting:
    def test_adaptive_never_lengthens_routes(self):
        """Adaptive candidates are all minimal: observed hops == distance."""
        topo = Torus((4, 4))
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1,
                               routing=RoutingPolicy.ADAPTIVE)
        msgs = [sim.send(0, 15, 100.0) for _ in range(10)]
        sim.run()
        for m in msgs:
            assert m.hops == topo.distance(0, 15)

    def test_adaptive_helps_under_congestion(self):
        topo = Torus((4, 4, 4))
        lat = {}
        for routing in RoutingPolicy:
            sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1,
                                   routing=routing)
            lat[routing] = run_open_loop(sim, "uniform", 0.8,
                                         message_bytes=256.0, duration=400.0,
                                         seed=0).mean_latency
        assert lat[RoutingPolicy.ADAPTIVE] < lat[RoutingPolicy.DOR]

    def test_adaptive_equals_dor_on_1d(self):
        """One axis: a single minimal route exists, policies coincide."""
        topo = Torus((8,))
        lat = {}
        for routing in RoutingPolicy:
            sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1,
                                   routing=routing)
            r = run_open_loop(sim, "uniform", 0.4, message_bytes=128.0,
                              duration=200.0, seed=0)
            lat[routing] = r.mean_latency
        assert lat[RoutingPolicy.ADAPTIVE] == pytest.approx(lat[RoutingPolicy.DOR])

    def test_deterministic(self):
        topo = Torus((4, 4))
        results = []
        for _ in range(2):
            sim = NetworkSimulator(topo, bandwidth=50.0, alpha=0.1,
                                   routing=RoutingPolicy.ADAPTIVE)
            r = run_open_loop(sim, "uniform", 0.5, message_bytes=128.0,
                              duration=200.0, seed=7)
            results.append(r.mean_latency)
        assert results[0] == results[1]
