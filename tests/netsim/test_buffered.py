"""Finite-buffer link model: drop / ECN / credit policies and tail stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.exceptions import SimulationError, SpecError
from repro.netsim.messages import SIZE_CLASS_EDGES, size_class_label
from repro.netsim.simulator import NetworkSimulator, OverloadPolicy
from repro.netsim.stats import tail_summary
from repro.topology import Mesh, Torus


def _random_load(sim, n=200, max_size=4000, nodes=16, seed=1):
    """Inject a fixed seeded batch of cross traffic (pre-scheduled sends)."""
    rng = np.random.default_rng(seed)
    for i in range(n):
        a, b = (int(x) for x in rng.integers(0, nodes, size=2))
        while b == a:
            b = int(rng.integers(0, nodes))
        sim.send(a, b, float(rng.integers(64, max_size)), at=float(i) * 0.4)


class TestConstruction:
    def test_buffer_knobs_validated(self):
        topo = Mesh((4,))
        with pytest.raises(SimulationError, match="buffer_bytes"):
            NetworkSimulator(topo, buffer_bytes=0.0)
        with pytest.raises(SimulationError, match="buffer_bytes"):
            NetworkSimulator(topo, buffer_bytes=float("inf"))
        with pytest.raises(SimulationError, match="overload_policy"):
            NetworkSimulator(topo, buffer_bytes=1024.0,
                             overload_policy="panic")
        with pytest.raises(SimulationError, match="ecn_threshold"):
            NetworkSimulator(topo, ecn_threshold=0.0)
        with pytest.raises(SimulationError, match="ecn_backoff"):
            NetworkSimulator(topo, ecn_backoff=0.9)
        with pytest.raises(SimulationError, match="ecn_recover"):
            NetworkSimulator(topo, ecn_recover=-0.1)
        with pytest.raises(SimulationError, match="ecn_max_stretch"):
            NetworkSimulator(topo, ecn_max_stretch=0.5)
        with pytest.raises(SimulationError, match="retry_jitter"):
            NetworkSimulator(topo, retry_jitter=-1.0)
        with pytest.raises(SimulationError, match="stall_window"):
            NetworkSimulator(topo, stall_window=0.0)

    def test_policy_accepts_enum_and_string(self):
        topo = Mesh((4,))
        sim = NetworkSimulator(topo, buffer_bytes=1024.0,
                               overload_policy=OverloadPolicy.ECN)
        assert sim.overload_policy is OverloadPolicy.ECN
        sim = NetworkSimulator(topo, buffer_bytes=1024.0,
                               overload_policy="credit")
        assert sim.overload_policy is OverloadPolicy.CREDIT
        assert sim.buffer_bytes == 1024.0
        assert NetworkSimulator(topo).buffer_bytes is None


class TestDropPolicy:
    def test_overflow_drops_and_retransmits_to_delivery(self):
        sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                               buffer_bytes=4096.0, overload_policy="drop",
                               max_retries=64, unroutable_policy="drop")
        _random_load(sim)
        sim.run()
        stats = sim.stats
        assert stats.buffer_drops > 0
        assert stats.retransmits >= stats.buffer_drops - stats.dropped
        assert stats.count + stats.dropped == 200
        assert sim.in_flight == 0

    def test_retry_exhaustion_follows_unroutable_policy(self):
        def build(policy):
            sim = NetworkSimulator(
                Torus((4, 4)), bandwidth=10.0, buffer_bytes=512.0,
                overload_policy="drop", max_retries=0,
                unroutable_policy=policy,
            )
            _random_load(sim, n=80, max_size=500)
            return sim

        sim = build("drop")
        sim.run()
        assert sim.stats.dropped > 0
        assert sim.stats.dropped_bytes > 0
        with pytest.raises(SimulationError, match="buffer overflow"):
            build("raise").run()

    def test_overflow_counters_profiled(self):
        prof = obs.enable()
        try:
            sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                                   buffer_bytes=4096.0,
                                   overload_policy="drop", max_retries=64,
                                   unroutable_policy="drop")
            _random_load(sim)
            sim.run()
            counters = prof.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters["netsim.buffer_drops"] == sim.stats.buffer_drops
        assert counters["netsim.retransmits"] == sim.stats.retransmits


class TestEcnPolicy:
    def test_marks_recorded_and_flows_paced(self):
        sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                               buffer_bytes=4096.0, overload_policy="ecn",
                               max_retries=64, unroutable_policy="drop")
        _random_load(sim)
        sim.run()
        assert sim.stats.ecn_marks > 0
        assert sim.stats.ecn_delivered > 0
        assert sim.stats.count + sim.stats.dropped == 200

    def test_backpressure_reduces_drops_vs_pure_drop(self):
        """Same load, same buffers: pacing marked flows must not drop more."""
        results = {}
        for policy in ("drop", "ecn"):
            sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                                   buffer_bytes=4096.0,
                                   overload_policy=policy, max_retries=64,
                                   unroutable_policy="drop")
            # Repeating (src, dst) pairs so the per-flow AIMD state matters.
            rng = np.random.default_rng(5)
            pairs = [(int(a), int(b)) for a, b in rng.integers(0, 16, (8, 2))
                     if a != b]
            for i in range(400):
                a, b = pairs[i % len(pairs)]
                sim.send(a, b, 2048.0, at=float(i) * 0.3)
            sim.run()
            results[policy] = sim.stats.buffer_drops
        assert results["ecn"] < results["drop"]

    def test_unmarked_flows_not_paced(self):
        """Below the marking threshold ECN behaves exactly like no policy."""
        def snapshot(**kwargs):
            sim = NetworkSimulator(Torus((4, 4)), **kwargs)
            _random_load(sim, n=60, max_size=600)
            sim.run()
            return sim.stats.snapshot()

        assert snapshot() == snapshot(buffer_bytes=10_000_000.0,
                                      overload_policy="ecn")


class TestCreditPolicy:
    def test_lossless_under_heavy_load(self):
        sim = NetworkSimulator(Mesh((4, 4)), bandwidth=50.0,
                               buffer_bytes=4096.0, overload_policy="credit")
        _random_load(sim, max_size=4000)
        sim.run()
        assert sim.stats.dropped == 0
        assert sim.stats.buffer_drops == 0
        assert sim.stats.retransmits == 0
        assert sim.stats.count == 200
        assert sim.in_flight == 0

    def test_oversized_message_rejected(self):
        sim = NetworkSimulator(Mesh((4,)), buffer_bytes=1024.0,
                               overload_policy="credit")
        sim.send(0, 3, 4096.0)
        with pytest.raises(SimulationError, match="exceeds buffer_bytes"):
            sim.run()

    def test_backpressure_stalls_counted(self):
        prof = obs.enable()
        try:
            # Two flows merging mid-chain with one-message buffers: heads
            # must block waiting for downstream credit, and injections must
            # park in the entry queue — both backpressure paths fire.
            sim = NetworkSimulator(Mesh((8,)), bandwidth=10.0,
                                   buffer_bytes=600.0,
                                   overload_policy="credit")
            for i in range(20):
                sim.send(0, 7, 500.0, at=float(i) * 0.1)
                sim.send(3, 7, 500.0, at=float(i) * 0.1)
            sim.run()
            counters = prof.snapshot()["counters"]
        finally:
            obs.disable()
        assert sim.stats.count == 40
        assert counters.get("netsim.credit_stalls", 0) > 0
        assert counters.get("netsim.injection_stalls", 0) > 0

    def test_torus_wrap_deadlock_detected_not_hung(self):
        """Credit + DOR on torus wrap rings can deadlock; the drain check
        must convert that into a structured error, not a silent hang."""
        sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                               buffer_bytes=4096.0, overload_policy="credit")
        _random_load(sim, max_size=4000)
        with pytest.raises(SimulationError, match="wedged"):
            sim.run()


class TestNicChannels:
    def test_nic_channels_not_buffered(self):
        """NIC serialization stages queue without buffer admission — only
        network links are capacity-limited."""
        sim = NetworkSimulator(Mesh((4,)), bandwidth=100.0,
                               nic_bandwidth=100.0, buffer_bytes=128.0,
                               overload_policy="credit")
        # Many small messages from one node: they all pile into nic_out:0,
        # whose queue is unbounded; each then trickles into the network.
        for i in range(20):
            sim.send(0, 1, 100.0)
        sim.run()
        assert sim.stats.count == 20
        assert sim.stats.dropped == 0


class TestDeterminism:
    def test_jittered_retransmits_bit_identical_per_seed(self):
        def run(seed):
            sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                                   buffer_bytes=2048.0,
                                   overload_policy="drop", max_retries=64,
                                   retry_jitter=0.5, seed=seed,
                                   unroutable_policy="drop")
            _random_load(sim)
            sim.run()
            return sim.stats.snapshot()

        a, b = run(7), run(7)
        assert a == b
        assert a["retransmits"] > 0  # the stochastic path actually ran
        assert run(8) != a  # and the seed actually matters

    def test_ecn_runs_bit_identical(self):
        def run():
            sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                                   buffer_bytes=4096.0,
                                   overload_policy="ecn", max_retries=64,
                                   unroutable_policy="drop")
            _random_load(sim)
            sim.run()
            return sim.stats.snapshot()

        assert run() == run()


class TestTailStats:
    def test_size_class_labels(self):
        assert size_class_label(0) == "<=1KiB"
        assert size_class_label(1) == "<=16KiB"
        assert size_class_label(len(SIZE_CLASS_EDGES)) == ">256KiB"

    def test_percentiles_and_classes(self):
        sim = NetworkSimulator(Mesh((4,)))
        sim.send(0, 1, 512.0)
        sim.send(0, 1, 2048.0)
        sim.send(0, 1, 300_000.0)
        sim.run()
        pct = sim.stats.percentiles()
        assert set(pct) == {"p50", "p99", "p999"}
        assert pct["p50"] <= pct["p99"] <= pct["p999"]
        rows = sim.stats.class_summary()
        assert [r["class"] for r in rows] == ["<=1KiB", "<=16KiB", ">256KiB"]
        assert all(r["count"] == 1 for r in rows)

    def test_tail_summary_shape(self):
        sim = NetworkSimulator(Torus((4, 4)), bandwidth=50.0,
                               buffer_bytes=4096.0, overload_policy="ecn",
                               max_retries=64, unroutable_policy="drop")
        _random_load(sim)
        sim.run()
        tail = tail_summary(sim, iteration_times=[1.0, 2.0, 1.5])
        assert tail["delivered"] == sim.stats.count
        assert tail["latency"]["p50"] <= tail["latency"]["p999"]
        assert tail["classes"]
        assert tail["iterations"]["count"] == 3
        assert tail["iterations"]["max"] == 2.0

    def test_empty_simulation_tail_summary(self):
        sim = NetworkSimulator(Mesh((4,)))
        tail = tail_summary(sim)
        assert tail["delivered"] == 0
        assert tail["latency"]["p999"] == 0.0
        assert tail["classes"] == []
        assert "iterations" not in tail


class TestEngineIntegration:
    def test_netsim_request_merges_des_metrics(self):
        from repro.engine import MappingEngine, MappingRequest

        result = MappingEngine().run(MappingRequest(
            graph="mesh2d:4x4;bytes=2048",
            topology="torus:4x4",
            mapper="TopoLB",
            seed=0,
            netsim={"buffer_bytes": 2048.0, "overload_policy": "ecn",
                    "iterations": 2, "bandwidth": 200.0},
        ))
        for key in ("des_makespan_us", "des_p50_us", "des_p99_us",
                    "des_p999_us", "des_delivered", "des_dropped",
                    "des_retransmits", "des_buffer_drops", "des_ecn_marks"):
            assert key in result.metrics
        assert result.metrics["des_delivered"] > 0

    def test_unknown_netsim_key_rejected(self):
        from repro.engine import MappingEngine, MappingRequest

        with pytest.raises(SpecError, match="netsim key"):
            MappingEngine().run(MappingRequest(
                graph="mesh2d:4x4",
                topology="torus:4x4",
                netsim={"bufsz": 1024},
            ))


class TestCli:
    def test_buffer_flags_reported(self, tmp_path, capsys):
        from repro.cli import main
        from repro.taskgraph import mesh2d_pattern, save_taskgraph

        path = tmp_path / "app.json"
        save_taskgraph(mesh2d_pattern(4, 4, message_bytes=2048), path)
        rc = main(["--taskgraph", str(path), "--topology", "torus:4x4",
                   "--simulate-iters", "2", "--buffer-bytes", "2048",
                   "--overload-policy", "ecn"])
        assert rc == 0
        out = capsys.readouterr().out
        for key in ("sim_p999_us", "sim_dropped", "sim_retransmits",
                    "sim_ecn_marks"):
            assert key in out

    def test_buffer_bytes_requires_des_mode(self, tmp_path, capsys):
        from repro.cli import main
        from repro.taskgraph import mesh2d_pattern, save_taskgraph

        path = tmp_path / "app.json"
        save_taskgraph(mesh2d_pattern(4, 4), path)
        with pytest.raises(SystemExit):
            main(["--taskgraph", str(path), "--topology", "torus:4x4",
                  "--netsim-mode", "flow", "--buffer-bytes", "1024"])
