"""Tests for the application-trace record/replay machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.mapping import IdentityMapper, RandomMapper
from repro.netsim import (
    ApplicationTrace,
    IterativeApplication,
    NetworkSimulator,
    TracePhase,
    TraceReplayer,
    jacobi_trace,
)
from repro.taskgraph import TaskGraph, mesh2d_pattern
from repro.topology import Torus


class TestTraceConstruction:
    def test_jacobi_trace_shape(self, pattern8x8):
        trace = jacobi_trace(pattern8x8, iterations=3, message_bytes=100.0)
        assert trace.num_tasks == 64
        assert trace.num_phases == 3
        assert trace.phase(0, 0).expected_receives == pattern8x8.degree(0)
        assert trace.total_bytes() == pytest.approx(
            3 * 100.0 * pattern8x8.degrees().sum()
        )

    def test_edge_derived_sizes(self):
        g = TaskGraph(2, [(0, 1, 2000.0)])
        trace = jacobi_trace(g, iterations=1)
        assert trace.phase(0, 0).sends == [(1, 1000.0)]

    def test_mismatched_receives_rejected(self):
        phases = [
            [TracePhase(1.0, sends=[(1, 10.0)], expected_receives=0)],
            [TracePhase(1.0, sends=[], expected_receives=0)],  # should be 1
        ]
        with pytest.raises(SimulationError, match="expects"):
            ApplicationTrace(phases)

    def test_ragged_phases_rejected(self):
        phases = [
            [TracePhase(1.0), TracePhase(1.0)],
            [TracePhase(1.0)],
        ]
        with pytest.raises(SimulationError, match="same phase count"):
            ApplicationTrace(phases)

    def test_bad_send_target_rejected(self):
        phases = [[TracePhase(1.0, sends=[(5, 10.0)], expected_receives=0)]]
        with pytest.raises(SimulationError, match="unknown task"):
            ApplicationTrace(phases)

    def test_json_roundtrip(self, pattern8x8):
        trace = jacobi_trace(pattern8x8, iterations=2, message_bytes=64.0)
        again = ApplicationTrace.from_json(trace.to_json())
        assert again.num_tasks == trace.num_tasks
        assert again.phase(5, 1).sends == trace.phase(5, 1).sends

    def test_file_roundtrip(self, tmp_path, pattern8x8):
        trace = jacobi_trace(pattern8x8, iterations=2)
        trace.save(tmp_path / "t.json")
        again = ApplicationTrace.load(tmp_path / "t.json")
        assert again.total_bytes() == pytest.approx(trace.total_bytes())

    def test_garbage_rejected(self):
        with pytest.raises(SimulationError):
            ApplicationTrace.from_json("{nope")
        with pytest.raises(SimulationError):
            ApplicationTrace.from_json('{"format": "other"}')


class TestReplay:
    def test_matches_iterative_application(self, pattern8x8, torus8x8):
        """The Jacobi trace replayed must time exactly like the appsim."""
        mapping = RandomMapper(seed=3).map(pattern8x8, torus8x8)
        trace = jacobi_trace(pattern8x8, iterations=4,
                             compute_time=2.0, message_bytes=512.0)
        sim1 = NetworkSimulator(torus8x8, bandwidth=100.0, alpha=0.1)
        res_trace = TraceReplayer(trace, mapping, sim1).run()
        sim2 = NetworkSimulator(torus8x8, bandwidth=100.0, alpha=0.1)
        res_app = IterativeApplication(
            mapping, sim2, iterations=4, message_bytes=512.0, compute_time=2.0
        ).run()
        assert res_trace.total_time == pytest.approx(res_app.total_time)
        assert res_trace.messages_delivered == res_app.messages_delivered
        assert res_trace.mean_message_latency == pytest.approx(
            res_app.mean_message_latency
        )

    def test_sweep_same_trace_many_networks(self, pattern8x8, torus8x8):
        """The BigNetSim workflow: one trace, several bandwidths."""
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        trace = jacobi_trace(pattern8x8, iterations=3, message_bytes=1024.0)
        times = []
        for bw in (400.0, 100.0, 25.0):
            sim = NetworkSimulator(torus8x8, bandwidth=bw, alpha=0.1)
            times.append(TraceReplayer(trace, mapping, sim).run().total_time)
        assert times == sorted(times)  # lower bandwidth, longer run

    def test_heterogeneous_phases(self):
        """Tasks with phase-varying behaviour (not expressible as appsim)."""
        # Task 0 pings task 1 in phase 0; task 1 answers in phase 1.
        phases = [
            [
                TracePhase(1.0, sends=[(1, 100.0)], expected_receives=0),
                TracePhase(0.5, sends=[], expected_receives=1),
            ],
            [
                TracePhase(5.0, sends=[], expected_receives=1),
                TracePhase(0.5, sends=[(0, 100.0)], expected_receives=0),
            ],
        ]
        trace = ApplicationTrace(phases)
        topo = Torus((2,))
        g = TaskGraph(2, [(0, 1, 1.0)])
        mapping = IdentityMapper().map(g, topo)
        sim = NetworkSimulator(topo, bandwidth=100.0, alpha=0.1)
        result = TraceReplayer(trace, mapping, sim).run()
        # Task 1 computes 5us, then replies; task 0 waits for the reply.
        assert result.total_time >= 5.0 + 0.5
        assert result.messages_delivered == 2

    def test_size_mismatch_rejected(self, pattern8x8, torus8x8):
        trace = jacobi_trace(mesh2d_pattern(4, 4), iterations=1)
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        sim = NetworkSimulator(torus8x8)
        with pytest.raises(SimulationError, match="trace has"):
            TraceReplayer(trace, mapping, sim)

    def test_run_once(self, pattern8x8, torus8x8):
        trace = jacobi_trace(pattern8x8, iterations=1)
        mapping = IdentityMapper().map(pattern8x8, torus8x8)
        replayer = TraceReplayer(trace, mapping, NetworkSimulator(torus8x8))
        replayer.run()
        with pytest.raises(SimulationError):
            replayer.run()
