"""Smoke tests: every shipped example must run clean and print sane output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "TopoLB" in out
        assert "hops/byte" in out
        # TopoLB reaches 1.0 on this instance.
        topolb_line = next(l for l in out.splitlines() if l.startswith("TopoLB "))
        assert "1.000" in topolb_line

    def test_leanmd_loadbalance(self):
        out = run_example("leanmd_loadbalance.py", "32")
        assert "TopoLB reduction over random placement" in out
        assert "RefineTopoLB" in out

    def test_network_contention(self):
        out = run_example("network_contention.py")
        assert "max link load" in out
        assert "random" in out and "TopoLB" in out

    def test_custom_machine(self):
        out = run_example("custom_machine.py")
        assert "bridge traffic" in out
        assert "torus(8x8)" in out

    def test_trace_replay(self):
        out = run_example("trace_replay.py")
        assert "adaptive" in out
        assert "jacobi.trace.json" in out

    def test_heterogeneous_machine(self):
        out = run_example("heterogeneous_machine.py")
        assert "uplink" in out
        assert "TopoLB" in out


@pytest.mark.parametrize(
    "name", ["quickstart.py", "leanmd_loadbalance.py",
             "network_contention.py", "custom_machine.py", "trace_replay.py",
             "heterogeneous_machine.py"]
)
def test_examples_exist_and_have_docstrings(name):
    text = (EXAMPLES / name).read_text()
    assert text.startswith("#!/usr/bin/env python")
    assert '"""' in text
