#!/usr/bin/env python
"""Heterogeneous machines: weighted link costs end to end.

The related work the paper builds on (Taura & Chien) targets machines with
*variable link capacities* — clusters of clusters, where some links are an
order of magnitude slower. This example builds such a machine, shows that
every mapper handles the weighted metric transparently, and verifies the
placement with the network simulator's per-link bandwidth overrides:

1. machine: two 8-node cluster islands joined by one slow uplink
   (transit cost 10x in the metric, bandwidth 1/10th in the simulator);
2. application: two communication communities with weak cross-talk;
3. TopoLB puts each community on one island; a random mapping straddles the
   uplink and pays for it in simulated completion time.

Run:  python examples/heterogeneous_machine.py
"""

import numpy as np

from repro import ArbitraryTopology, Mapping, RandomMapper, TaskGraph, TopoLB
from repro.netsim import IterativeApplication, NetworkSimulator


def build_machine() -> tuple[ArbitraryTopology, dict]:
    """Two 8-node rings joined by a 10x-cost uplink between nodes 0 and 8."""
    edges = []
    for base in (0, 8):
        for i in range(8):
            edges.append((base + i, base + (i + 1) % 8, 1.0))
        edges.append((base, base + 4, 1.0))  # a chord for shorter paths
    edges.append((0, 8, 10.0))  # the slow uplink (10x transit cost)
    topo = ArbitraryTopology(16, edges)
    slow_links = {(0, 8): 20.0}  # 20 MB/s vs the default 200 MB/s
    return topo, slow_links


def build_application(rng: np.random.Generator) -> TaskGraph:
    edges = []
    for base in (0, 8):  # two tight communities
        for _ in range(40):
            a, b = rng.integers(0, 8, size=2)
            if a != b:
                edges.append((base + int(a), base + int(b), 2000.0))
    for _ in range(4):   # weak cross-community coupling
        edges.append((int(rng.integers(0, 8)), 8 + int(rng.integers(0, 8)), 100.0))
    return TaskGraph(16, edges)


def main() -> None:
    rng = np.random.default_rng(0)
    machine, slow_links = build_machine()
    app_graph = build_application(rng)
    print(f"machine: {machine.name} (weighted: {machine.is_weighted}), "
          f"diameter {machine.diameter():.1f}")
    print(f"uplink metric cost {machine.link_cost(0, 8):.0f}x, "
          f"bandwidth {slow_links[(0, 8)]:.0f} MB/s vs 200 MB/s elsewhere\n")

    mappings = {
        "random": RandomMapper(seed=1).map(app_graph, machine),
        "TopoLB": TopoLB().map(app_graph, machine),
    }

    print(f"{'mapping':<8} {'hop-bytes':>12} {'uplink msgs':>12} {'sim time':>10}")
    print("-" * 48)
    for name, mapping in mappings.items():
        # How many task pairs straddle the islands?
        island = mapping.assignment // 8
        u, v, w = app_graph.edge_arrays()
        straddling = int((island[u] != island[v]).sum())
        sim = NetworkSimulator(machine, bandwidth=200.0, alpha=0.2,
                               link_bandwidths=slow_links)
        result = IterativeApplication(
            mapping, sim, iterations=10, compute_time=5.0
        ).run()
        print(f"{name:<8} {mapping.hop_bytes:>12.3e} {straddling:>12} "
              f"{result.total_time:>9.0f}us")

    print("\nTopoLB keeps each community on its island: almost nothing")
    print("crosses the expensive uplink, so the slow link never saturates.")


if __name__ == "__main__":
    main()
