#!/usr/bin/env python
"""Quickstart: map a Jacobi stencil onto a torus and compare strategies.

This is the 60-second tour of the library:

1. build a machine model (a 2D torus),
2. build an application model (a 2D Jacobi communication pattern),
3. run the paper's mappers plus baselines,
4. compare hop-bytes — the metric everything here minimizes.

Run:  python examples/quickstart.py
"""

from repro import (
    IdentityMapper,
    RandomMapper,
    RefineTopoLB,
    TopoCentLB,
    TopoLB,
    Torus,
    expected_random_hops_per_byte,
    mesh2d_pattern,
)


def main() -> None:
    side = 16
    topology = Torus((side, side))
    tasks = mesh2d_pattern(side, side, message_bytes=4096)
    print(f"machine: {topology.name}  ({topology.num_nodes} processors)")
    print(f"tasks:   {tasks.num_tasks} in a {side}x{side} Jacobi pattern, "
          f"{tasks.total_bytes / 1e6:.1f} MB exchanged per step\n")

    mappers = [
        ("RandomMapper", RandomMapper(seed=0)),
        ("TopoCentLB", TopoCentLB()),
        ("TopoLB", TopoLB()),
        ("TopoLB+Refine", RefineTopoLB(base=TopoLB(), seed=0)),
        ("Identity (optimal here)", IdentityMapper()),
    ]

    print(f"{'strategy':<26} {'hops/byte':>10} {'hop-bytes':>14}")
    print("-" * 52)
    for name, mapper in mappers:
        mapping = mapper.map(tasks, topology)
        print(f"{name:<26} {mapping.hops_per_byte:>10.3f} {mapping.hop_bytes:>14.3e}")

    print("-" * 52)
    print(f"{'analytic E[random]':<26} "
          f"{expected_random_hops_per_byte(topology):>10.3f}")
    print("\nTopoLB should reach ~1.0: the 2D torus contains the 2D mesh, so a")
    print("neighborhood-preserving mapping exists and the heuristic finds it.")


if __name__ == "__main__":
    main()
