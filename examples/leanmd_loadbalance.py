#!/usr/bin/env python
"""LeanMD-style load balancing: the full Charm++ workflow, end to end.

Reproduces the Section 5.2.3 setup in miniature:

1. generate a synthetic LeanMD chare graph (3240 + p objects: cells,
   self-computes, pairwise-force computes, per-processor managers),
2. capture it in a load-balancing database and *dump* it to disk
   (the ``+LBDump`` analog),
3. *replay* the identical scenario under several strategies
   (the ``+LBSim`` analog) on a 2D torus,
4. report group-level hops-per-byte — the paper's Figure 5 metric —
   including the RefineTopoLB post-pass.

Run:  python examples/leanmd_loadbalance.py [num_processors]
"""

import sys
import tempfile
from pathlib import Path

from repro import Torus, leanmd_taskgraph
from repro.experiments.common import near_square_factors
from repro.runtime import LBDatabase, compare_strategies


def main(p: int = 64) -> None:
    shape = near_square_factors(p)
    topology = Torus(shape)
    graph = leanmd_taskgraph(p, seed=0)
    print(f"LeanMD scenario: {graph.num_tasks} chares "
          f"(virtualization ratio {graph.num_tasks / p:.1f}) "
          f"on {topology.name}\n")

    # Capture and dump the load scenario, then replay from the file —
    # exactly how one compares strategies on identical load data.
    with tempfile.TemporaryDirectory() as tmp:
        dump = Path(tmp) / "leanmd_step0.json"
        LBDatabase.from_taskgraph(graph).dump(dump)
        reports = compare_strategies(
            dump, topology,
            ["GreedyLB", "RandomLB", "TopoCentLB", "TopoLB", "RefineTopoLB"],
            seed=0,
        )

    print(f"{'strategy':<14} {'group hops/byte':>16} {'imbalance':>10} "
          f"{'max dilation':>13}")
    print("-" * 56)
    for r in reports:
        ghpb = r.get("group_hops_per_byte", float("nan"))
        print(f"{r['strategy']:<14} {ghpb:>16.3f} "
              f"{r['load_imbalance']:>10.3f} {r['max_dilation']:>13.0f}")

    rand = next(r for r in reports if r["strategy"] == "RandomLB")
    topo = next(r for r in reports if r["strategy"] == "TopoLB")
    refined = next(r for r in reports if r["strategy"] == "RefineTopoLB")
    base = rand["group_hops_per_byte"]
    print("-" * 56)
    print(f"TopoLB reduction over random placement: "
          f"{100 * (1 - topo['group_hops_per_byte'] / base):.1f}%")
    print(f"with RefineTopoLB:                      "
          f"{100 * (1 - refined['group_hops_per_byte'] / base):.1f}%")
    print("\n(paper, large p: ~34% for TopoLB, ~12% more from the refiner)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
