#!/usr/bin/env python
"""Network contention study: why hop-bytes matter (Figures 7-9 in miniature).

Replays a 2D-Jacobi program on a (4,4,4) torus through the discrete-event
network simulator under three mappings, sweeping link bandwidth downward
until congestion bites. Shows the paper's causal chain:

    lower hop-bytes  ->  lower per-link load  ->  contention sets in later
                      ->  lower message latency  ->  faster completion.

Run:  python examples/network_contention.py
"""

import numpy as np

from repro import RandomMapper, TopoCentLB, TopoLB, Torus, mesh2d_pattern, per_link_loads
from repro.netsim import IterativeApplication, NetworkSimulator


def main() -> None:
    topology = Torus((4, 4, 4))
    tasks = mesh2d_pattern(8, 8, message_bytes=2048)
    iterations = 40

    mappings = {
        "random": RandomMapper(seed=0).map(tasks, topology),
        "TopoCentLB": TopoCentLB().map(tasks, topology),
        "TopoLB": TopoLB().map(tasks, topology),
    }

    print("static mapping quality and the contention mechanism:")
    print(f"{'mapping':<12} {'hops/byte':>10} {'max link load/step':>20}")
    print("-" * 44)
    for name, mapping in mappings.items():
        loads = per_link_loads(tasks, topology, mapping.assignment)
        worst = max(loads.values()) if loads else 0.0
        print(f"{name:<12} {mapping.hops_per_byte:>10.3f} {worst:>17.0f} B")

    print(f"\nreplaying {iterations} Jacobi iterations per point "
          "(latency in us, total in ms):")
    header = f"{'bw MB/s':>8}"
    for name in mappings:
        header += f" | {name + ' lat':>14} {name + ' tot':>12}"
    print(header)
    print("-" * len(header))

    for bw in (1000.0, 500.0, 250.0, 125.0, 60.0):
        line = f"{bw:>8.0f}"
        for name, mapping in mappings.items():
            sim = NetworkSimulator(topology, bandwidth=bw, alpha=0.1)
            app = IterativeApplication(
                mapping, sim, iterations=iterations,
                message_bytes=2048.0, compute_time=2.0,
            )
            result = app.run()
            line += (f" | {result.mean_message_latency:>14.2f}"
                     f" {result.total_time / 1000.0:>12.2f}")
        print(line)

    print("\nas bandwidth shrinks, the random mapping congests first and its")
    print("latency explodes; TopoLB tolerates the lowest bandwidth (Fig 7/9).")


if __name__ == "__main__":
    main()
