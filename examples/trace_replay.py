#!/usr/bin/env python
"""Trace-driven what-if analysis: record once, re-time everywhere.

The BigNetSim workflow of Section 5.3: capture an application's event trace
(with dependency information) once, then re-time it under different network
parameters and mappings without re-running the application. This example:

1. builds a Jacobi trace and saves it to disk (the archival format),
2. reloads it and sweeps link bandwidth x routing policy x mapping,
3. prints the completion-time matrix — Figures 7/9 as a what-if study.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import RandomMapper, TopoLB, Torus, mesh2d_pattern
from repro.netsim import ApplicationTrace, NetworkSimulator, RoutingPolicy, TraceReplayer, jacobi_trace


def main() -> None:
    topology = Torus((4, 4, 4))
    tasks = mesh2d_pattern(8, 8)

    # --- record once -----------------------------------------------------
    trace = jacobi_trace(tasks, iterations=30, compute_time=2.0,
                         message_bytes=2048.0)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "jacobi.trace.json"
        trace.save(path)
        print(f"recorded {trace.num_tasks} tasks x {trace.num_phases} phases, "
              f"{trace.total_bytes() / 1e6:.1f} MB of traffic -> {path.name}\n")
        trace = ApplicationTrace.load(path)  # ...and reload, as a user would

    # --- re-time under many configurations --------------------------------
    mappings = {
        "random": RandomMapper(seed=0).map(tasks, topology),
        "TopoLB": TopoLB().map(tasks, topology),
    }
    print(f"{'bandwidth':>10} {'routing':>9} | "
          + " | ".join(f"{name + ' (ms)':>14}" for name in mappings))
    print("-" * 60)
    for bw in (400.0, 100.0, 50.0):
        for routing in RoutingPolicy:
            line = f"{bw:>8.0f}MB {routing.value:>9}"
            for name, mapping in mappings.items():
                sim = NetworkSimulator(topology, bandwidth=bw, alpha=0.1,
                                       routing=routing)
                result = TraceReplayer(trace, mapping, sim).run()
                line += f" | {result.total_time / 1000.0:>14.2f}"
            print(line)

    print("\nsame trace, eight network configurations: adaptive routing")
    print("rescues some of the random mapping's congestion; TopoLB barely")
    print("needs it because its traffic is one-hop to begin with.")


if __name__ == "__main__":
    main()
