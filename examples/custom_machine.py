#!/usr/bin/env python
"""Mapping onto custom machines: arbitrary topologies and big task graphs.

The mapping algorithms "work for arbitrary network topologies" (Section 3).
This example builds an irregular machine — two 3x3 mesh islands joined by a
thin bridge, the classic contention trap — plus a task graph larger than the
machine, and runs the full two-phase pipeline (METIS-substitute partitioning,
coalescing, TopoLB placement, swap refinement).

Also shows spec-string construction and the fat-tree contrast case.

Run:  python examples/custom_machine.py
"""

import networkx as nx
import numpy as np

from repro import (
    ArbitraryTopology,
    MultilevelPartitioner,
    RandomMapper,
    RefineTopoLB,
    TaskGraph,
    TopoLB,
    TwoPhaseMapper,
    random_taskgraph,
    topology_from_spec,
)


def build_bridged_machine() -> ArbitraryTopology:
    """Two 3x3 mesh islands connected by a single bridge link."""
    g = nx.Graph()
    for island, base in ((0, 0), (1, 9)):
        for r in range(3):
            for c in range(3):
                v = base + 3 * r + c
                if c < 2:
                    g.add_edge(v, v + 1)
                if r < 2:
                    g.add_edge(v, v + 3)
    g.add_edge(8, 9)  # the bridge
    return ArbitraryTopology.from_networkx(g)


def main() -> None:
    machine = build_bridged_machine()
    print(f"machine: {machine.name}, diameter {machine.diameter()}")

    # A communication-clustered application: two communities of 60 tasks,
    # lightly coupled — if the mapper is topology-aware, each community
    # should land on one island, keeping the bridge quiet.
    rng = np.random.default_rng(0)
    edges = []
    for base in (0, 60):
        for _ in range(300):
            a, b = rng.integers(0, 60, size=2)
            if a != b:
                edges.append((base + int(a), base + int(b), 1000.0))
    for _ in range(20):  # weak inter-community coupling
        edges.append((int(rng.integers(0, 60)), 60 + int(rng.integers(0, 60)), 50.0))
    app = TaskGraph(120, edges)
    print(f"application: {app.num_tasks} tasks, {app.num_edges} edges, "
          f"{app.total_bytes / 1e6:.2f} MB per step\n")

    pipeline = TwoPhaseMapper(
        partitioner=MultilevelPartitioner(seed=0),
        mapper=TopoLB(),
        refiner=RefineTopoLB(seed=0),
    )
    smart = pipeline.map(app, machine)
    naive = TwoPhaseMapper(
        partitioner=MultilevelPartitioner(seed=0),
        mapper=RandomMapper(seed=0),
    ).map(app, machine)

    print(f"{'pipeline':<28} {'hops/byte':>10}")
    print("-" * 40)
    print(f"{'partition + random place':<28} {naive.hops_per_byte:>10.3f}")
    print(f"{'partition + TopoLB + refine':<28} {smart.hops_per_byte:>10.3f}")

    # How much traffic crosses the bridge under each mapping?
    from repro import per_link_loads

    for name, mapping in (("random", naive), ("TopoLB", smart)):
        loads = per_link_loads(app, machine, mapping.assignment)
        bridge = loads.get((8, 9), 0.0) + loads.get((9, 8), 0.0)
        print(f"bridge traffic under {name:<8}: {bridge / 1e3:8.1f} KB/step")

    # Spec strings build standard machines in one line.
    print("\nspec-string machines:",
          ", ".join(topology_from_spec(s).name
                    for s in ("torus:8x8", "mesh:4x4x4", "hypercube:6", "fattree:4x3")))


if __name__ == "__main__":
    main()
