"""Fault model: seedable fault sets and degraded machine wrappers.

Real BlueGene/L-class machines seldom run pristine: drained nodes and failed
links leave holes in the torus, and service actions throttle individual
links. This module makes that the common case the rest of the library can
talk about:

* :class:`FaultSet` — an immutable, hashable description of what is broken
  (dead nodes, dead links, slow links). :meth:`FaultSet.generate` draws one
  deterministically from a seed, so experiments over degraded machines are
  bit-reproducible.
* :class:`DegradedTopology` — a :class:`~repro.topology.base.Topology`
  wrapper that recomputes distances and routes *around* the holes via BFS
  over the surviving links. Node ids are preserved (processor 17 is still
  processor 17, it is just dead), so mappings, traces and telemetry stay
  comparable with the pristine machine.

Distances to or from a dead processor — and between healthy processors a
fault disconnects — are the sentinel ``num_nodes`` (one more than any real
path can be), so the tables stay finite and metric. The mappers never read
those entries: they receive the healthy-processor mask
(:meth:`DegradedTopology.allowed_mask`) and place tasks on survivors only.

The degraded tables fold the fault signature into the shared topology cache
key (:meth:`DegradedTopology.cache_key`), so a degraded machine can never
alias a pristine machine's cached tables — or another fault pattern's.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["FaultSet", "DegradedTopology"]


def _normalize_link(link) -> tuple[int, int]:
    try:
        a, b = link
    except (TypeError, ValueError) as exc:
        raise TopologyError(f"link must be an (a, b) pair, got {link!r}") from exc
    a, b = int(a), int(b)
    if a == b:
        raise TopologyError(f"link endpoints must differ, got ({a}, {b})")
    return (a, b) if a < b else (b, a)


class FaultSet:
    """An immutable set of machine faults: dead nodes, dead and slow links.

    Parameters
    ----------
    dead_nodes:
        Processor ids that are down. Links incident to a dead node are
        implicitly dead and need not be listed.
    dead_links:
        Undirected links ``(a, b)`` that are down (either order; stored
        normalized with ``a < b``).
    slow_links:
        ``(a, b, factor)`` triples: the link survives but carries only
        ``factor`` (in ``(0, 1]``) of its nominal bandwidth. A link may not
        be both dead and slow.
    """

    __slots__ = ("_dead_nodes", "_dead_links", "_slow_links")

    def __init__(
        self,
        dead_nodes: Iterable[int] = (),
        dead_links: Iterable[tuple[int, int]] = (),
        slow_links: Iterable[tuple[int, int, float]] = (),
    ):
        self._dead_nodes = tuple(sorted({int(v) for v in dead_nodes}))
        if any(v < 0 for v in self._dead_nodes):
            raise TopologyError(f"dead node ids must be >= 0, got {self._dead_nodes}")
        self._dead_links = tuple(sorted({_normalize_link(link) for link in dead_links}))
        slow: dict[tuple[int, int], float] = {}
        for entry in slow_links:
            try:
                a, b, factor = entry
            except (TypeError, ValueError) as exc:
                raise TopologyError(
                    f"slow link must be an (a, b, factor) triple, got {entry!r}"
                ) from exc
            link = _normalize_link((a, b))
            factor = float(factor)
            if not 0.0 < factor <= 1.0:
                raise TopologyError(
                    f"slow-link factor must be in (0, 1], got {factor} for {link}"
                )
            if link in slow and slow[link] != factor:
                raise TopologyError(f"conflicting factors for slow link {link}")
            slow[link] = factor
        self._slow_links = tuple(sorted(slow.items()))
        dead = set(self._dead_links)
        overlap = [link for link, _ in self._slow_links if link in dead]
        if overlap:
            raise TopologyError(f"links cannot be both dead and slow: {overlap}")

    # ------------------------------------------------------------- accessors
    @property
    def dead_nodes(self) -> tuple[int, ...]:
        """Failed processor ids, ascending."""
        return self._dead_nodes

    @property
    def dead_links(self) -> tuple[tuple[int, int], ...]:
        """Failed undirected links, normalized ``a < b``, sorted."""
        return self._dead_links

    @property
    def slow_links(self) -> tuple[tuple[tuple[int, int], float], ...]:
        """``((a, b), factor)`` pairs for degraded-bandwidth links, sorted."""
        return self._slow_links

    @property
    def is_empty(self) -> bool:
        """True when nothing at all is broken."""
        return not (self._dead_nodes or self._dead_links or self._slow_links)

    def signature(self) -> tuple:
        """A stable, hashable identity of this fault pattern.

        Folded into cache keys and usable as a dict key; two fault sets with
        equal signatures degrade a machine identically.
        """
        return (self._dead_nodes, self._dead_links, self._slow_links)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSet) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultSet dead_nodes={len(self._dead_nodes)} "
            f"dead_links={len(self._dead_links)} slow_links={len(self._slow_links)}>"
        )

    # ------------------------------------------------------------ generation
    @classmethod
    def generate(
        cls,
        topology: Topology,
        seed: int = 0,
        node_rate: float = 0.0,
        link_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_factor: float = 0.25,
    ) -> "FaultSet":
        """Draw a fault set for ``topology`` deterministically from ``seed``.

        ``node_rate`` of the processors die (rounded to the nearest count),
        then ``link_rate`` of the links *not* already killed by a dead
        endpoint die, then ``slow_rate`` of the surviving links are throttled
        to ``slow_factor`` of nominal bandwidth. The same seed always yields
        the bit-identical fault set.
        """
        for name, rate in (("node_rate", node_rate),
                           ("link_rate", link_rate),
                           ("slow_rate", slow_rate)):
            if not 0.0 <= rate <= 1.0:
                raise TopologyError(f"{name} must be in [0, 1], got {rate}")
        rng = np.random.default_rng(seed)
        p = topology.num_nodes

        num_dead = int(round(node_rate * p))
        if num_dead >= p:
            raise TopologyError(
                f"node_rate={node_rate} would kill all {p} processors"
            )
        dead_nodes = sorted(
            int(v) for v in rng.choice(p, size=num_dead, replace=False)
        )
        dead_set = set(dead_nodes)

        # Links killed by a dead endpoint are already gone; sample the rest.
        live_links = [
            link for link in topology.links()
            if link[0] not in dead_set and link[1] not in dead_set
        ]
        num_dead_links = int(round(link_rate * len(live_links)))
        dead_idx = rng.choice(len(live_links), size=num_dead_links, replace=False)
        dead_links = [live_links[int(i)] for i in sorted(dead_idx)]

        surviving = [
            link for i, link in enumerate(live_links)
            if i not in set(int(j) for j in dead_idx)
        ]
        num_slow = int(round(slow_rate * len(surviving)))
        slow_idx = rng.choice(len(surviving), size=num_slow, replace=False)
        slow_links = [
            (*surviving[int(i)], slow_factor) for i in sorted(slow_idx)
        ]
        return cls(dead_nodes=dead_nodes, dead_links=dead_links,
                   slow_links=slow_links)

    # ------------------------------------------------------------ validation
    def validate(self, topology: Topology) -> None:
        """Check every referenced node/link actually exists in ``topology``.

        Raises :class:`~repro.exceptions.TopologyError` otherwise.
        """
        p = topology.num_nodes
        for v in self._dead_nodes:
            if v >= p:
                raise TopologyError(f"dead node {v} out of range [0, {p})")
        for (a, b) in self._dead_links:
            if b >= p or b not in topology.neighbors(a):
                raise TopologyError(
                    f"dead link ({a}, {b}) is not a link of {topology.name}"
                )
        for (a, b), _factor in self._slow_links:
            if b >= p or b not in topology.neighbors(a):
                raise TopologyError(
                    f"slow link ({a}, {b}) is not a link of {topology.name}"
                )

    # --------------------------------------------------------------- helpers
    def bandwidth_overrides(
        self, bandwidth: float
    ) -> dict[tuple[int, int], float]:
        """Per-link bandwidth overrides for the network simulator.

        Maps each slow link to ``bandwidth * factor``; feed the result to
        :class:`~repro.netsim.simulator.NetworkSimulator`'s
        ``link_bandwidths`` argument.
        """
        return {link: float(bandwidth) * factor
                for link, factor in self._slow_links}

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{len(self._dead_nodes)} dead nodes, "
            f"{len(self._dead_links)} dead links, "
            f"{len(self._slow_links)} slow links"
        )


class DegradedTopology(Topology):
    """A machine with holes: ``base`` minus the faults in ``faults``.

    Keeps the base machine's node ids and count; dead processors stay
    addressable (so traces and mappings remain comparable) but have no
    links. Distances and routes are recomputed by BFS over the surviving
    links, so they honestly reflect detours around failures — unlike the
    pristine closed forms. Pairs with no surviving path (and every pair
    involving a dead processor) get the finite sentinel distance
    :attr:`unreachable_distance` ( = ``num_nodes``, longer than any real
    path), keeping the matrix metric without infinities.

    The mappers recognize this class and automatically restrict placement
    to :meth:`allowed_mask`; the network simulator routes over it like any
    other topology.
    """

    def __init__(self, base: Topology, faults: FaultSet):
        if isinstance(base, DegradedTopology):
            raise TopologyError(
                "nesting DegradedTopology is not supported; merge the fault "
                "sets instead"
            )
        faults.validate(base)
        super().__init__(base.num_nodes)
        self._base = base
        self._faults = faults

        p = base.num_nodes
        healthy = np.ones(p, dtype=bool)
        healthy[list(faults.dead_nodes)] = False
        if not healthy.any():
            raise TopologyError("a degraded machine needs at least one healthy node")
        self._healthy = healthy
        self._healthy.flags.writeable = False

        dead_links = set(faults.dead_links)
        dead_nodes = set(faults.dead_nodes)
        # Surviving adjacency, ascending per node: BFS visits neighbors in id
        # order, which makes every distance/route deterministic.
        adjacency: list[list[int]] = []
        for v in range(p):
            if v in dead_nodes:
                adjacency.append([])
                continue
            adjacency.append([
                u for u in sorted(base.neighbors(v))
                if u not in dead_nodes
                and (min(v, u), max(v, u)) not in dead_links
            ])
        self._adjacency = adjacency

    # ------------------------------------------------------------- accessors
    @property
    def base(self) -> Topology:
        """The pristine machine this wraps."""
        return self._base

    @property
    def faults(self) -> FaultSet:
        """The applied fault set."""
        return self._faults

    @property
    def unreachable_distance(self) -> int:
        """Sentinel distance for dead/disconnected pairs ( = ``num_nodes``)."""
        return self._num_nodes

    def allowed_mask(self) -> np.ndarray:
        """Read-only boolean mask of healthy (mappable) processors."""
        return self._healthy

    def healthy_nodes(self) -> np.ndarray:
        """Ids of the healthy processors, ascending."""
        return np.flatnonzero(self._healthy)

    @property
    def num_healthy(self) -> int:
        """Number of surviving processors ``p'``."""
        return int(self._healthy.sum())

    # ------------------------------------------------------------- distances
    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        sentinel = self._num_nodes
        row = np.full(self._num_nodes, sentinel, dtype=np.int64)
        row[node] = 0
        if not self._healthy[node]:
            return row
        adjacency = self._adjacency
        frontier = deque((node,))
        while frontier:
            v = frontier.popleft()
            dv = row[v] + 1
            for u in adjacency[v]:
                if row[u] > dv:
                    row[u] = dv
                    frontier.append(u)
        return row

    def diameter(self) -> int:
        """Longest *finite* shortest path (dead/disconnected pairs ignored)."""
        sentinel = self._num_nodes
        best = 0
        for v in self.healthy_nodes():
            row = self.distance_row(int(v))
            finite = row[row < sentinel]
            if finite.size:
                best = max(best, int(finite.max()))
        return best

    def cache_key(self) -> tuple | None:
        base_key = self._base.cache_key()
        if base_key is None:
            return None
        return ("Degraded", base_key, self._faults.signature())

    # ----------------------------------------------------------- connectivity
    def neighbors(self, node: int) -> list[int]:
        return list(self._adjacency[self._check_node(node)])

    # ---------------------------------------------------------------- routing
    def route(self, src: int, dst: int) -> list[int]:
        """Deterministic BFS shortest path over the surviving links.

        Unlike the base machine's closed-form (e.g. dimension-ordered)
        routes, the degraded route detours around holes. Raises
        :class:`~repro.exceptions.TopologyError` when either endpoint is
        dead or no surviving path exists.
        """
        src = self._check_node(src)
        dst = self._check_node(dst)
        if not (self._healthy[src] and self._healthy[dst]):
            raise TopologyError(
                f"no route {src} -> {dst}: endpoint processor is dead"
            )
        if src == dst:
            return [src]
        # BFS with parent tracking; ascending adjacency means the parent of
        # every node is the lowest-id predecessor on any shortest path.
        parent = np.full(self._num_nodes, -1, dtype=np.int64)
        parent[src] = src
        frontier = deque((src,))
        while frontier:
            v = frontier.popleft()
            for u in self._adjacency[v]:
                if parent[u] < 0:
                    parent[u] = v
                    if u == dst:
                        frontier.clear()
                        break
                    frontier.append(u)
        if parent[dst] < 0:
            raise TopologyError(
                f"no route {src} -> {dst}: faults disconnect the machine "
                f"({self._faults.describe()})"
            )
        path = [dst]
        while path[-1] != src:
            path.append(int(parent[path[-1]]))
        path.reverse()
        return path

    # ------------------------------------------------------------------ misc
    @property
    def name(self) -> str:
        return f"degraded({self._base.name}; {self._faults.describe()})"

    def coords(self, node: int) -> tuple[int, ...]:
        return self._base.coords(node)

    def index(self, coords) -> int:
        return self._base.index(coords)
