"""``repro-serve`` — run the mapping daemon from the command line.

Serves until SIGTERM/SIGINT or a ``POST /shutdown``, then exits 0 after a
clean drain. Examples::

    repro-serve --port 8177 --jobs 4
    repro-serve --port 0 --cache-dir /var/cache/repro   # ephemeral port
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from pathlib import Path

from repro.service.daemon import ServiceConfig
from repro.service.http import serve

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Mapping-as-a-service daemon over MappingEngine with a "
                    "content-addressed result cache (see docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8177,
                        help="listen port; 0 binds an ephemeral port")
    parser.add_argument("--jobs", type=int, default=1,
                        help="process-pool workers (0 = in-process threads)")
    parser.add_argument("--queue-limit", type=int, default=64,
                        help="queued misses before 429 backpressure")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="max requests per worker batch")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-request wall bound in seconds (0 disables)")
    parser.add_argument("--retries", type=int, default=0,
                        help="per-request retry budget for transient failures")
    parser.add_argument("--retry-delay", type=float, default=0.1,
                        help="delay between request retries")
    parser.add_argument("--cache-entries", type=int, default=1024,
                        help="in-memory result-cache capacity")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="optional on-disk result-cache directory")
    parser.add_argument("--retry-after", type=float, default=1.0,
                        help="seconds advertised in 429 Retry-After")
    return parser


async def _amain(args) -> None:
    config = ServiceConfig(
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        batch_size=args.batch_size,
        timeout=None if args.timeout <= 0 else args.timeout,
        retries=args.retries,
        retry_delay=args.retry_delay,
        cache_entries=args.cache_entries,
        cache_dir=args.cache_dir,
        retry_after=args.retry_after,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, stop.set)
    ready = loop.create_future()

    async def _announce() -> None:
        host, port = await ready
        print(f"repro-serve listening on http://{host}:{port} "
              f"(jobs={config.jobs}, queue_limit={config.queue_limit})",
              flush=True)

    announce = asyncio.create_task(_announce())
    await serve(config, args.host, args.port, ready=ready, stop=stop)
    await announce
    print("repro-serve: clean shutdown", flush=True)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.queue_limit < 1 or args.batch_size < 1 or args.cache_entries < 1:
        build_parser().error("--queue-limit/--batch-size/--cache-entries must be >= 1")
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("repro-serve: interrupted, shut down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
