"""Content-addressed mapping results — cache keys and the result cache.

The serving layer's scaling lever: a mapping is fully determined by
*(task-graph content, canonical mapper spec, topology shape, seed, kernel,
evaluation knobs)*, so the request stream from many clients — which is
mostly duplicates — collapses onto a small set of keys. The key is built
from

* :meth:`repro.taskgraph.TaskGraph.content_digest` — sha256 over the
  canonical edge/weight/coordinate arrays, so two spellings of the same
  graph (different edge order, ``file:`` vs generated) share an entry while
  any structural mutation gets a fresh one;
* :func:`repro.engine.specs.canonical_mapper_spec` — aliases and
  equivalent spellings normalize to one string;
* the topology's :meth:`~repro.topology.base.Topology.cache_key` (the same
  shape identity the shared distance-table cache uses), falling back to the
  spec string for content-defined machines;
* the seed, the resolved kernel, and the result-shaping knobs
  (``flow_metrics`` / ``validate`` / ``netsim`` / ``allowed``).

:class:`ResultCache` stores JSON-able result payloads under those keys in a
bounded in-memory LRU with an optional on-disk tier (one file per key,
written atomically), so a restarted daemon starts warm.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.exceptions import SpecError

__all__ = [
    "CACHE_KEY_VERSION",
    "RESULT_FORMAT",
    "request_cache_key",
    "result_to_payload",
    "ResultCache",
]

CACHE_KEY_VERSION = "repro-mapkey-v1"
RESULT_FORMAT = "repro-mapresult-v1"

#: Generative graph-spec kinds that are pure functions of the spec string —
#: safe to memoize. ``file:``/``lbdump:`` specs point at mutable paths, so
#: they are re-read (and re-digested) on every request.
_PURE_GRAPH_KINDS = ("mesh2d", "mesh3d", "ring", "alltoall", "random")


@lru_cache(maxsize=256)
def _pure_graph(spec: str):
    from repro.engine.core import graph_from_spec

    graph = graph_from_spec(spec)
    return graph, graph.content_digest()


def _graph_digest(graph) -> str:
    """Content digest for a live TaskGraph or a graph spec string."""
    from repro.engine.core import graph_from_spec
    from repro.taskgraph.graph import TaskGraph

    if isinstance(graph, TaskGraph):
        return graph.content_digest()
    kind = str(graph).partition(":")[0].strip().lower()
    if kind in _PURE_GRAPH_KINDS:
        return _pure_graph(str(graph))[1]
    return graph_from_spec(graph).content_digest()


@lru_cache(maxsize=256)
def _topology_token_for_spec(spec: str) -> str:
    from repro.topology.factory import topology_from_spec

    key = topology_from_spec(spec).cache_key()
    return repr(key) if key is not None else f"spec:{spec}"


def _topology_token(topology) -> str:
    """Stable identity token for a topology spec or live instance."""
    if isinstance(topology, str):
        return _topology_token_for_spec(topology)
    key = topology.cache_key()
    if key is None:
        raise SpecError(
            f"topology {type(topology).__name__} has no cache_key() and was "
            "not given as a spec string — its identity cannot be proven "
            "stable, so the result is not content-addressable"
        )
    return repr(key)


def request_cache_key(request) -> str:
    """The content-addressed key of a :class:`~repro.engine.MappingRequest`.

    Two requests with equal keys produce bit-identical results (same
    assignment, same metrics block), so a cached payload can be served in
    place of a recompute. Raises :class:`~repro.exceptions.SpecError` when
    the request is not content-addressable (a live mapper object carries no
    canonical spec; a content-defined topology instance has no shape key).
    """
    from repro.engine.specs import canonical_mapper_spec
    from repro.mapping.kernels import get_default_kernel

    if not isinstance(request.mapper, str):
        raise SpecError(
            f"mapper {type(request.mapper).__name__} is a live object — only "
            "spec-string mappers have a canonical identity, so the result "
            "is not content-addressable"
        )
    allowed_digest = None
    if request.allowed is not None:
        mask = np.asarray(request.allowed, dtype=bool)
        allowed_digest = hashlib.sha256(np.packbits(mask).tobytes()).hexdigest()
    payload = {
        "v": CACHE_KEY_VERSION,
        "graph": _graph_digest(request.graph),
        "topology": _topology_token(request.topology),
        "mapper": canonical_mapper_spec(request.mapper),
        "seed": request.seed,
        "kernel": request.kernel or get_default_kernel(),
        "allowed": allowed_digest,
        "flow_metrics": bool(request.flow_metrics),
        "validate": request.validate,
        "netsim": (
            None
            if request.netsim is None
            else json.dumps(request.netsim, sort_keys=True)
        ),
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def result_to_payload(result) -> dict:
    """Flatten a :class:`~repro.engine.MappingResult` into a JSON-able dict.

    Exactly the reproducible surface of the result travels: the assignment,
    the canonical metrics block, and the replay metadata. The heavyweight
    ``Mapping``/profile objects stay behind.
    """
    return {
        "assignment": [int(x) for x in result.assignment],
        "metrics": {k: float(v) for k, v in result.metrics.items()},
        "metadata": {
            k: v for k, v in result.metadata.items()
            if isinstance(v, (str, int, float, bool)) or v is None
        },
    }


class ResultCache:
    """Bounded LRU of result payloads with an optional on-disk tier.

    Thread-safe (one lock around the ordered dict — the daemon's event loop
    and any helper threads share it). Disk entries are one JSON file per
    key, written atomically (tmp + rename) so a crashed writer never leaves
    a torn entry; reads promote back into memory.
    """

    def __init__(self, max_entries: int = 1024,
                 disk_dir: str | Path | None = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max = int(max_entries)
        self._mem: OrderedDict[str, dict] = OrderedDict()
        self._dir = Path(disk_dir) if disk_dir is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    def _disk_path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The payload under ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            payload = self._mem.get(key)
            if payload is not None:
                self._mem.move_to_end(key)
                self.hits += 1
                return payload
        if self._dir is not None:
            path = self._disk_path(key)
            try:
                doc = json.loads(path.read_text())
                payload = doc["payload"]
            except (OSError, ValueError, KeyError):
                payload = None
            if payload is not None:
                with self._lock:
                    self.hits += 1
                    self.disk_hits += 1
                    self._store(key, payload)
                return payload
        with self._lock:
            self.misses += 1
        return None

    def _store(self, key: str, payload: dict) -> None:
        self._mem[key] = payload
        self._mem.move_to_end(key)
        while len(self._mem) > self._max:
            self._mem.popitem(last=False)
            self.evictions += 1

    def put(self, key: str, payload: dict) -> None:
        """Insert ``payload`` under ``key`` (memory, then disk if enabled)."""
        with self._lock:
            self._store(key, payload)
        if self._dir is not None:
            path = self._disk_path(key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(
                {"format": RESULT_FORMAT, "key": key, "payload": payload}
            ))
            os.replace(tmp, path)

    def stats(self) -> dict[str, int]:
        """Counter snapshot: hits / misses / disk_hits / evictions / size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "entries": len(self._mem),
            }
