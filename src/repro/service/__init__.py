"""repro.service — mapping-as-a-service over :class:`MappingEngine`.

The "heavy traffic" layer (ROADMAP item 2): a long-running asyncio daemon
with a small HTTP/JSON API whose scaling lever is a content-addressed
result cache — duplicate requests (the dominant traffic shape) are served
from the cache in microseconds instead of recomputed.

Layers, bottom up:

* :mod:`repro.service.cache` — the content key
  (graph :meth:`~repro.taskgraph.TaskGraph.content_digest` × canonical
  mapper spec × topology ``cache_key()`` × seed × kernel × evaluation
  knobs) and :class:`ResultCache` (LRU + optional disk tier).
* :mod:`repro.service.daemon` — :class:`MappingService`: bounded queue,
  batching into pool workers, backpressure, per-request timeouts/retries,
  ``service.*`` telemetry.
* :mod:`repro.service.http` — the four-route HTTP transport and
  :class:`ThreadedServer` harness.
* :mod:`repro.service.loadgen` — duplicate-heavy load driver producing the
  ``BENCH_service_loadgen.json`` artifact.
* :mod:`repro.service.cli` — the ``repro-serve`` entry point.

See docs/SERVICE.md for the API, cache-key anatomy, and validity envelope.
"""

from repro.service.cache import (
    ResultCache,
    request_cache_key,
    result_to_payload,
)
from repro.service.daemon import (
    BackpressureError,
    MappingService,
    ServiceConfig,
    ServiceRequestError,
)
from repro.service.http import ThreadedServer, serve

__all__ = [
    "ResultCache",
    "request_cache_key",
    "result_to_payload",
    "BackpressureError",
    "MappingService",
    "ServiceConfig",
    "ServiceRequestError",
    "ThreadedServer",
    "serve",
]
