"""The mapping daemon: bounded queue → batches → pool workers → cache.

:class:`MappingService` is the asyncio core of ``repro-serve``. One request
travels::

    submit(body)
      └─ parse → MappingRequest → content key (repro.service.cache)
           ├─ cache hit  → served immediately (the fast path)
           ├─ in flight  → coalesced onto the existing future
           ├─ queue full → BackpressureError (HTTP 429 + Retry-After)
           └─ enqueue    → batcher drains ≤ batch_size requests at a time
                           into a process-pool worker (jobs=0: thread
                           executor, for tests); each request inside the
                           worker runs under the resilient-runner timeout +
                           retry discipline (per-request SIGALRM bound,
                           retries with delay, ValidationError fails fast)

Everything is measured: ``service.*`` counters/timers accumulate in a
dedicated :class:`~repro.obs.core.Profiler`, and
:meth:`MappingService.metrics_profile` exports them — queue depth
high-water, hit/miss/coalesced/rejected counts, p50/p99 service latency for
hits and misses separately — as a ``repro-profile-v1`` document.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ReproError, SpecError, ValidationError
from repro.obs.core import Profiler
from repro.service.cache import (
    ResultCache,
    request_cache_key,
    result_to_payload,
)

__all__ = [
    "ServiceConfig",
    "BackpressureError",
    "ServiceRequestError",
    "MappingService",
]


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance (all have serving-friendly defaults)."""

    #: Process-pool workers; ``0`` runs batches on a thread executor in the
    #: daemon process (no pool spin-up — the test/CI fast path, at the cost
    #: of the per-request SIGALRM timeout degrading to the batch guard).
    jobs: int = 1
    #: Maximum queued-but-undispatched misses before new misses are rejected
    #: with a 429.
    queue_limit: int = 64
    #: Maximum requests handed to one pool worker in one call — a batch
    #: warms the worker's topology/context caches once for all its members.
    batch_size: int = 8
    #: Per-request wall-clock bound inside the worker (SIGALRM, reusing the
    #: experiment runner's machinery); ``None`` disables it.
    timeout: float | None = 30.0
    #: Per-request retry budget and delay inside the worker (transient
    #: failures only — ValidationError always fails fast).
    retries: int = 0
    retry_delay: float = 0.1
    #: In-memory LRU capacity and optional on-disk tier of the result cache.
    cache_entries: int = 1024
    cache_dir: str | Path | None = None
    #: Seconds advertised in the 429 ``Retry-After`` header.
    retry_after: float = 1.0
    #: Bounded per-class latency samples kept for the p50/p99 report.
    latency_samples: int = 8192


class BackpressureError(ReproError):
    """The miss queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, limit: int, retry_after: float):
        super().__init__(
            f"request queue is full ({depth}/{limit} pending); "
            f"retry after {retry_after:g}s"
        )
        self.retry_after = retry_after


class ServiceRequestError(ReproError):
    """A request body that can never be served (unknown field, bad spec)."""


_BODY_KEYS = frozenset({
    "graph", "topology", "mapper", "seed", "kernel", "flow_metrics",
    "validate", "netsim", "wait",
})


def parse_request_body(body) -> tuple[object, bool]:
    """Validate a ``POST /map`` JSON body into a (MappingRequest, wait) pair."""
    from repro.engine.core import MappingRequest

    if not isinstance(body, dict):
        raise ServiceRequestError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    unknown = set(body) - _BODY_KEYS
    if unknown:
        raise ServiceRequestError(
            f"unknown request field(s) {sorted(unknown)}; "
            f"recognized: {sorted(_BODY_KEYS)}"
        )
    for field in ("graph", "topology"):
        if not isinstance(body.get(field), str):
            raise ServiceRequestError(
                f"request field {field!r} must be a spec string"
            )
    seed = body.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ServiceRequestError(f"seed must be an integer, got {seed!r}")
    kernel = body.get("kernel")
    if kernel is not None and not isinstance(kernel, str):
        raise ServiceRequestError(f"kernel must be a string, got {kernel!r}")
    netsim = body.get("netsim")
    if netsim is not None and not isinstance(netsim, dict):
        raise ServiceRequestError(f"netsim must be an object, got {netsim!r}")
    validate = body.get("validate", "off")
    if validate not in ("off", "cheap", "full"):
        raise ServiceRequestError(
            f"validate must be one of ('off', 'cheap', 'full'), "
            f"got {validate!r}"
        )
    request = MappingRequest(
        graph=body["graph"],
        topology=body["topology"],
        mapper=body.get("mapper", "TopoLB"),
        seed=seed,
        kernel=kernel,
        flow_metrics=bool(body.get("flow_metrics", False)),
        validate=validate,
        netsim=netsim,
    )
    return request, bool(body.get("wait", True))


def _serve_batch(requests, retries, retry_delay, timeout):
    """Worker: run a batch of requests, one guarded outcome per request.

    Runs inside a pool worker's main thread, so the experiment runner's
    SIGALRM machinery bounds each request's wall time individually; errors
    are captured per request (one poisoned request cannot take down its
    batchmates). ValidationError fails fast via the engine's retry loop.
    """
    from repro.engine.core import MappingEngine
    from repro.experiments.runner import _alarm, _ExperimentTimeout

    engine = MappingEngine()
    outcomes = []
    for request in requests:
        try:
            with _alarm(timeout):
                result = engine._run_with_retries(request, retries, retry_delay)
            outcomes.append({"ok": True, "payload": result_to_payload(result)})
        except _ExperimentTimeout:
            outcomes.append({
                "ok": False,
                "error": f"timed out after {timeout}s",
                "kind": "timeout",
            })
        except ValidationError as exc:
            outcomes.append({
                "ok": False, "error": str(exc), "kind": "ValidationError",
            })
        except Exception as exc:  # noqa: BLE001 — per-request guard
            outcomes.append({
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "kind": type(exc).__name__,
            })
    return outcomes


class MappingService:
    """Long-running mapping server core (transport-agnostic).

    Use :meth:`start` / :meth:`stop` around the serving lifetime;
    :meth:`submit` is the one request entry point (the HTTP layer is a thin
    adapter over it). All state lives on the event loop except the result
    cache, which is lock-protected.
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.cache = ResultCache(
            max_entries=self.config.cache_entries,
            disk_dir=self.config.cache_dir,
        )
        self.profiler = Profiler()
        self._inflight: dict[str, asyncio.Future] = {}
        self._errors: OrderedDict[str, dict] = OrderedDict()
        self._queue: asyncio.Queue | None = None
        self._executor = None
        self._batcher: asyncio.Task | None = None
        self._dispatch_tasks: set[asyncio.Task] = set()
        self._latencies: dict[str, deque] = {
            "hit": deque(maxlen=self.config.latency_samples),
            "miss": deque(maxlen=self.config.latency_samples),
        }
        self._started_at: float | None = None
        self._requests_seen = 0

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Spin up the executor and the batch-dispatch task."""
        if self._queue is not None:
            return
        self._queue = asyncio.Queue()
        if self.config.jobs > 0:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(max_workers=self.config.jobs)
        self._sem = asyncio.Semaphore(max(1, self.config.jobs))
        self._batcher = asyncio.create_task(self._batch_loop())
        self._started_at = time.monotonic()

    async def stop(self) -> None:
        """Drain nothing, cancel the batcher, shut the pool down."""
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for task in list(self._dispatch_tasks):
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        for future in self._inflight.values():
            if not future.done():
                # A result (not an exception): wait=False submitters never
                # retrieve these futures, and an unretrieved exception would
                # warn at GC time.
                future.set_result({
                    "ok": False, "kind": "shutdown",
                    "error": "service stopped before the request completed",
                })
        self._inflight.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._queue = None

    # ----------------------------------------------------------------- submit
    async def submit(self, body) -> dict:
        """Serve one ``POST /map`` body; returns the JSON-able response.

        Raises :class:`ServiceRequestError` for bodies that can never be
        served and :class:`BackpressureError` when the miss queue is full.
        """
        if self._queue is None:
            raise ReproError("MappingService.submit before start()")
        t0 = time.perf_counter()
        self.profiler.count("service.requests")
        self._requests_seen += 1
        try:
            request, wait = parse_request_body(body)
            with self.profiler.timer("service.key"):
                key = request_cache_key(request)
        except (ServiceRequestError, SpecError) as exc:
            self.profiler.count("service.bad_requests")
            raise ServiceRequestError(str(exc)) from exc

        payload = self.cache.get(key)
        if payload is not None:
            self.profiler.count("service.hits")
            latency = time.perf_counter() - t0
            self._latencies["hit"].append(latency)
            self.profiler.add_time("service.request.hit", latency)
            return {"id": key, "status": "done", "cached": True,
                    "result": payload}

        error = self._errors.get(key)
        if error is not None and error["kind"] != "timeout":
            # Deterministic failures (bad graph/mapper combination,
            # validation violation) are replay-stable: answering from the
            # error record avoids recomputing a known-bad request forever.
            self.profiler.count("service.error_hits")
            return {"id": key, "status": "error", **error}

        future = self._inflight.get(key)
        if future is not None:
            self.profiler.count("service.coalesced")
        else:
            depth = self._queue.qsize()
            if depth >= self.config.queue_limit:
                self.profiler.count("service.rejected")
                raise BackpressureError(
                    depth, self.config.queue_limit, self.config.retry_after
                )
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self._queue.put_nowait((key, request, time.perf_counter()))
            self.profiler.count_max(
                "service.queue_depth_max", self._queue.qsize()
            )

        if not wait:
            return {"id": key, "status": "pending"}

        grace = 5.0 if self.config.timeout is None else self.config.timeout
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(future),
                timeout=grace * (1 + self.config.batch_size),
            )
        except asyncio.TimeoutError:
            self.profiler.count("service.wait_timeouts")
            return {"id": key, "status": "pending"}
        latency = time.perf_counter() - t0
        self._latencies["miss"].append(latency)
        self.profiler.add_time("service.request.miss", latency)
        if outcome["ok"]:
            return {"id": key, "status": "done", "cached": False,
                    "result": outcome["payload"]}
        return {"id": key, "status": "error", "error": outcome["error"],
                "kind": outcome["kind"]}

    async def result(self, key: str) -> dict | None:
        """Poll a previously submitted request: done / error / pending / None."""
        payload = self.cache.get(key)
        if payload is not None:
            return {"id": key, "status": "done", "cached": True,
                    "result": payload}
        error = self._errors.get(key)
        if error is not None:
            return {"id": key, "status": "error", **error}
        if key in self._inflight:
            return {"id": key, "status": "pending"}
        return None

    # ------------------------------------------------------------- dispatching
    async def _batch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            batch = [item]
            while len(batch) < self.config.batch_size:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._sem.acquire()
            task = asyncio.create_task(self._dispatch(batch))
            self._dispatch_tasks.add(task)
            task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch(self, batch) -> None:
        loop = asyncio.get_running_loop()
        keys = [key for key, _, _ in batch]
        requests = [request for _, request, _ in batch]
        cfg = self.config
        self.profiler.count("service.batches")
        self.profiler.count("service.batched_requests", len(batch))
        try:
            worker_call = loop.run_in_executor(
                self._executor, _serve_batch,
                requests, cfg.retries, cfg.retry_delay, cfg.timeout,
            )
            # Belt over the per-request SIGALRM suspenders: a worker that
            # hangs in uninterruptible code still cannot wedge the daemon.
            if cfg.timeout is not None:
                guard = cfg.timeout * len(batch) + 5.0
                outcomes = await asyncio.wait_for(worker_call, timeout=guard)
            else:
                outcomes = await worker_call
        except asyncio.TimeoutError:
            outcomes = [
                {"ok": False, "kind": "timeout",
                 "error": f"batch timed out after {cfg.timeout}s per request"}
            ] * len(batch)
        except Exception as exc:  # noqa: BLE001 — pool/pickling failures
            outcomes = [
                {"ok": False, "kind": type(exc).__name__,
                 "error": f"{type(exc).__name__}: {exc}"}
            ] * len(batch)
        finally:
            self._sem.release()

        now = time.perf_counter()
        for (key, _, enqueued_at), outcome in zip(batch, outcomes):
            if outcome["ok"]:
                self.cache.put(key, outcome["payload"])
                self.profiler.count("service.misses")
                self.profiler.add_time("service.compute", now - enqueued_at)
            else:
                self.profiler.count("service.errors")
                if outcome["kind"] == "timeout":
                    self.profiler.count("service.timeouts")
                self._errors[key] = {
                    "error": outcome["error"], "kind": outcome["kind"],
                }
                while len(self._errors) > 1024:
                    self._errors.popitem(last=False)
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(outcome)

    # ------------------------------------------------------------------ status
    def healthz(self) -> dict:
        """Liveness report for ``GET /healthz``."""
        return {
            "status": "ok",
            "uptime_s": (
                0.0 if self._started_at is None
                else time.monotonic() - self._started_at
            ),
            "requests": self._requests_seen,
            "queue_depth": 0 if self._queue is None else self._queue.qsize(),
            "inflight": len(self._inflight),
            "cache": self.cache.stats(),
            "jobs": self.config.jobs,
        }

    def metrics_profile(self) -> dict:
        """Service telemetry as a ``repro-profile-v1`` document."""
        from repro import obs

        def _pct(samples, q):
            if not samples:
                return 0.0
            ordered = sorted(samples)
            rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
            return ordered[rank]

        prof = Profiler()
        prof.merge(self.profiler.snapshot())
        for name, value in self.cache.stats().items():
            prof.count(f"service.cache.{name}", value)
        for cls in ("hit", "miss"):
            samples = list(self._latencies[cls])
            prof.count(f"service.latency_{cls}_p50_us",
                       _pct(samples, 0.50) * 1e6)
            prof.count(f"service.latency_{cls}_p99_us",
                       _pct(samples, 0.99) * 1e6)
            prof.count(f"service.latency_{cls}_samples", len(samples))
        return obs.build_profile(
            prof,
            command="repro-serve",
            context={
                "queue_limit": self.config.queue_limit,
                "batch_size": self.config.batch_size,
                "jobs": self.config.jobs,
                "uptime_s": round(self.healthz()["uptime_s"], 3),
            },
        )
