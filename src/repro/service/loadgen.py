"""Load generator for the mapping service — the serving-path benchmark.

Drives a stream of ``POST /map`` requests in which a configurable fraction
are duplicates (the ROADMAP's "millions of users, mostly duplicate
requests" regime), measures per-request latency client-side, classifies
each response as a cache hit or a cold compute, and writes the result as a
``repro-profile-v1`` artifact (``benchmarks/BENCH_service_loadgen.json``):
requests/sec, hit ratio, p50/p99 overall and per class, and the hit-vs-cold
speedup.

Self-hosting by default (it spins a :class:`ThreadedServer` in-process), or
point it at a running daemon with ``--url``::

    python -m repro.service.loadgen --requests 200 --duplicate 0.9 \\
        --output BENCH_service_loadgen.json
"""

from __future__ import annotations

import argparse
import json
import time
import urllib.error
import urllib.request

import numpy as np

from repro.obs.core import Profiler

__all__ = ["run_loadgen", "main"]


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[rank]


def _post_map(url: str, body: dict, retry_after_cap: float = 30.0) -> dict:
    """POST one request; on 429, honor Retry-After and try again."""
    data = json.dumps(body).encode()
    deadline = time.monotonic() + retry_after_cap
    while True:
        req = urllib.request.Request(
            f"{url}/map", data=data,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            if exc.code == 429 and time.monotonic() < deadline:
                time.sleep(float(exc.headers.get("Retry-After", 1)))
                continue
            detail = exc.read().decode(errors="replace")
            raise RuntimeError(f"HTTP {exc.code} from {url}/map: {detail}")


def build_workload(
    requests: int,
    duplicate: float,
    seed: int = 0,
    graph: str = "mesh2d:16x16;bytes=1024",
    topology: str = "torus:16x16",
    mapper: str = "refine:base=topolb",
) -> list[dict]:
    """A request stream with a ``duplicate`` fraction of repeats.

    Unique requests differ by seed (so each is a genuine cold compute);
    duplicates re-issue a uniformly random earlier unique. Uniques lead the
    stream, which makes the expected hit ratio exactly ``duplicate`` when
    driven sequentially.
    """
    if not 0.0 <= duplicate < 1.0:
        raise ValueError(f"duplicate fraction must be in [0, 1), got {duplicate}")
    uniques = max(1, round(requests * (1.0 - duplicate)))
    rng = np.random.default_rng(seed)
    bodies = []
    for i in range(requests):
        idx = i if i < uniques else int(rng.integers(0, uniques))
        bodies.append({
            "graph": graph,
            "topology": topology,
            "mapper": mapper,
            "seed": idx,
        })
    return bodies


def run_loadgen(
    requests: int = 200,
    duplicate: float = 0.9,
    seed: int = 0,
    url: str | None = None,
    jobs: int = 0,
    graph: str = "mesh2d:16x16;bytes=1024",
    topology: str = "torus:16x16",
    mapper: str = "refine:base=topolb",
) -> dict:
    """Drive the workload and return the benchmark profile document."""
    from repro import obs

    bodies = build_workload(requests, duplicate, seed,
                            graph=graph, topology=topology, mapper=mapper)
    own_server = None
    if url is None:
        from repro.service.daemon import ServiceConfig
        from repro.service.http import ThreadedServer

        own_server = ThreadedServer(ServiceConfig(
            jobs=jobs, queue_limit=max(64, requests), batch_size=8,
        ))
        url = own_server.start()

    hit_lat: list[float] = []
    miss_lat: list[float] = []
    errors = 0
    started = time.perf_counter()
    try:
        for body in bodies:
            t0 = time.perf_counter()
            reply = _post_map(url, body)
            elapsed = time.perf_counter() - t0
            if reply.get("status") != "done":
                errors += 1
            elif reply.get("cached"):
                hit_lat.append(elapsed)
            else:
                miss_lat.append(elapsed)
        total = time.perf_counter() - started
        health = json.loads(urllib.request.urlopen(f"{url}/healthz").read())
    finally:
        if own_server is not None:
            own_server.stop()

    served = len(hit_lat) + len(miss_lat)
    hit_ratio = len(hit_lat) / served if served else 0.0
    hit_p50 = _percentile(hit_lat, 0.5)
    miss_p50 = _percentile(miss_lat, 0.5)
    speedup = (miss_p50 / hit_p50) if hit_p50 > 0 else 0.0

    prof = Profiler()
    prof.count("loadgen.requests", requests)
    prof.count("loadgen.served", served)
    prof.count("loadgen.errors", errors)
    prof.count("loadgen.hits", len(hit_lat))
    prof.count("loadgen.misses", len(miss_lat))
    prof.count("loadgen.hit_ratio", round(hit_ratio, 6))
    prof.count("loadgen.requests_per_s", round(requests / total, 3))
    prof.count("loadgen.p50_us",
               round(_percentile(hit_lat + miss_lat, 0.5) * 1e6, 3))
    prof.count("loadgen.p99_us",
               round(_percentile(hit_lat + miss_lat, 0.99) * 1e6, 3))
    prof.count("loadgen.hit_p50_us", round(hit_p50 * 1e6, 3))
    prof.count("loadgen.hit_p99_us",
               round(_percentile(hit_lat, 0.99) * 1e6, 3))
    prof.count("loadgen.miss_p50_us", round(miss_p50 * 1e6, 3))
    prof.count("loadgen.miss_p99_us",
               round(_percentile(miss_lat, 0.99) * 1e6, 3))
    prof.count("loadgen.hit_speedup", round(speedup, 3))
    prof.add_time("loadgen.total", total)
    return obs.build_profile(
        prof,
        command=(
            f"python -m repro.service.loadgen --requests {requests} "
            f"--duplicate {duplicate} --seed {seed} --jobs {jobs}"
        ),
        context={
            "graph": graph,
            "topology": topology,
            "mapper": mapper,
            "duplicate_fraction": duplicate,
            "server": "self-hosted" if own_server is not None else url,
            "server_requests": health["requests"],
            "server_cache_entries": health["cache"]["entries"],
        },
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drive duplicate-heavy load at a mapping daemon and "
                    "record a repro-profile-v1 benchmark artifact."
    )
    parser.add_argument("--requests", type=int, default=200,
                        help="total requests to send (default 200)")
    parser.add_argument("--duplicate", type=float, default=0.9,
                        help="fraction of duplicate requests (default 0.9)")
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    parser.add_argument("--url", default=None,
                        help="daemon base URL; omitted = self-host in-process")
    parser.add_argument("--jobs", type=int, default=0,
                        help="self-hosted pool workers (0 = thread executor)")
    parser.add_argument("--graph", default="mesh2d:16x16;bytes=1024")
    parser.add_argument("--topology", default="torus:16x16")
    parser.add_argument("--mapper", default="refine:base=topolb")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the profile artifact here")
    args = parser.parse_args(argv)

    profile = run_loadgen(
        requests=args.requests, duplicate=args.duplicate, seed=args.seed,
        url=args.url, jobs=args.jobs, graph=args.graph,
        topology=args.topology, mapper=args.mapper,
    )
    counters = profile["counters"]
    print(
        f"{counters['loadgen.requests']:.0f} requests in "
        f"{profile['timers']['loadgen.total']['total_s']:.2f}s "
        f"({counters['loadgen.requests_per_s']:.1f} req/s), "
        f"hit ratio {counters['loadgen.hit_ratio']:.3f}, "
        f"p50 {counters['loadgen.p50_us']:.0f}us "
        f"p99 {counters['loadgen.p99_us']:.0f}us, "
        f"hit p50 {counters['loadgen.hit_p50_us']:.0f}us vs "
        f"cold p50 {counters['loadgen.miss_p50_us']:.0f}us "
        f"({counters['loadgen.hit_speedup']:.1f}x)"
    )
    if args.output:
        from repro.obs import save_profile

        save_profile(profile, args.output)
        print(f"wrote {args.output}")
    return 1 if counters["loadgen.errors"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
