"""Minimal asyncio HTTP/JSON transport for :class:`MappingService`.

No third-party web framework — the API is four routes over a hand-rolled
HTTP/1.1 parser on ``asyncio.start_server`` (the container deliberately
carries no server dependency):

================  =======================================================
``POST /map``     submit a mapping request body (see docs/SERVICE.md);
                  200 done (``cached`` tells hit vs computed), 202 pending
                  (``wait=false`` or wait timeout), 400 malformed, 422
                  deterministic failure, 429 + ``Retry-After`` backpressure
``GET /result/<id>``  poll by content key: 200 done, 202 pending,
                  404 unknown, 422 failed
``GET /healthz``  liveness + queue/cache snapshot
``GET /metrics``  ``repro-profile-v1`` telemetry document
``POST /shutdown``  graceful stop (also triggered by SIGTERM/SIGINT)
================  =======================================================

:func:`serve` runs a service + server until the stop event fires;
:class:`ThreadedServer` wraps it in a background thread for tests and the
load generator.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.service.daemon import (
    BackpressureError,
    MappingService,
    ServiceConfig,
    ServiceRequestError,
)

__all__ = ["serve", "ThreadedServer"]

_MAX_BODY = 16 * 1024 * 1024


def _response(status: int, body: dict, extra_headers: dict | None = None) -> bytes:
    reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
               404: "Not Found", 405: "Method Not Allowed",
               413: "Payload Too Large", 422: "Unprocessable Entity",
               429: "Too Many Requests", 500: "Internal Server Error"}
    payload = json.dumps(body).encode()
    headers = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + payload


async def _read_request(reader) -> tuple[str, str, bytes] | None:
    """Parse one request into (method, path, body); None on EOF/overflow."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                length = 0
    if length > _MAX_BODY:
        return method, path, b"\x00overflow"
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def _handle(service: MappingService, stop: asyncio.Event,
                  reader, writer) -> None:
    try:
        parsed = await _read_request(reader)
        if parsed is None:
            return
        method, path, body = parsed
        if body == b"\x00overflow":
            writer.write(_response(413, {"error": "request body too large"}))
            return
        writer.write(await _route(service, stop, method, path, body))
    except Exception as exc:  # noqa: BLE001 — connection-level guard
        try:
            writer.write(_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            ))
        except Exception:  # noqa: BLE001 — peer already gone
            pass
    finally:
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def _route(service: MappingService, stop: asyncio.Event,
                 method: str, path: str, body: bytes) -> bytes:
    if path == "/map":
        if method != "POST":
            return _response(405, {"error": "POST only"})
        try:
            doc = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _response(400, {"error": f"invalid JSON body: {exc}"})
        try:
            reply = await service.submit(doc)
        except ServiceRequestError as exc:
            return _response(400, {"error": str(exc)})
        except BackpressureError as exc:
            return _response(
                429, {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": str(max(1, round(exc.retry_after)))},
            )
        status = {"done": 200, "pending": 202, "error": 422}[reply["status"]]
        return _response(status, reply)

    if path.startswith("/result/"):
        if method != "GET":
            return _response(405, {"error": "GET only"})
        reply = await service.result(path[len("/result/"):])
        if reply is None:
            return _response(404, {"error": "unknown result id"})
        status = {"done": 200, "pending": 202, "error": 422}[reply["status"]]
        return _response(status, reply)

    if path == "/healthz":
        if method != "GET":
            return _response(405, {"error": "GET only"})
        return _response(200, service.healthz())

    if path == "/metrics":
        if method != "GET":
            return _response(405, {"error": "GET only"})
        return _response(200, service.metrics_profile())

    if path == "/shutdown":
        if method != "POST":
            return _response(405, {"error": "POST only"})
        stop.set()
        return _response(200, {"status": "shutting-down"})

    return _response(404, {"error": f"no route {method} {path}"})


async def serve(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    ready: "asyncio.Future | None" = None,
    stop: asyncio.Event | None = None,
) -> None:
    """Run a daemon until ``stop`` fires (or forever).

    ``ready``, when given, resolves to the actually bound ``(host, port)``
    once the socket listens — pass ``port=0`` to bind an ephemeral port.
    """
    service = MappingService(config)
    await service.start()
    stop = stop or asyncio.Event()
    server = await asyncio.start_server(
        lambda r, w: _handle(service, stop, r, w), host, port
    )
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None and not ready.done():
        ready.set_result(bound)
    try:
        async with server:
            await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.stop()


class ThreadedServer:
    """A daemon on a background thread — the test/loadgen harness.

    ``with ThreadedServer(config) as url:`` yields ``http://host:port`` once
    the socket listens; exiting stops the loop and joins the thread.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        self._config = config
        self._host = host
        self._port = port
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._bound: tuple[str, int] | None = None
        self._startup = threading.Event()
        self._error: BaseException | None = None

    @property
    def url(self) -> str:
        if self._bound is None:
            raise RuntimeError("server not started")
        return f"http://{self._bound[0]}:{self._bound[1]}"

    def start(self) -> str:
        def _main() -> None:
            async def _amain() -> None:
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                ready = self._loop.create_future()
                task = asyncio.create_task(serve(
                    self._config, self._host, self._port,
                    ready=ready, stop=self._stop,
                ))
                self._bound = await ready
                self._startup.set()
                await task

            try:
                asyncio.run(_amain())
            except BaseException as exc:  # noqa: BLE001 — surfaced in start()
                self._error = exc
                self._startup.set()

        self._thread = threading.Thread(target=_main, daemon=True)
        self._thread.start()
        self._startup.wait(timeout=60)
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        if self._bound is None:
            raise RuntimeError("service did not come up within 60s")
        return self.url

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already exited (e.g. via POST /shutdown)
        if self._thread is not None:
            self._thread.join(timeout=60)
            self._thread = None

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
