"""Multilevel k-way partitioner — the METIS substitute.

Pipeline (Karypis–Kumar scheme, built from scratch):

1. **Coarsen**: repeat heavy-edge matching + contraction until the graph is
   small relative to ``k`` (or contraction stalls);
2. **Initial partition**: recursive BFS-grown bisection on the coarsest graph;
3. **Uncoarsen**: project each coarse partition to the finer level and run
   FM-style boundary refinement under a load ceiling.

This fills the role METIS plays in the paper's phase 1: balanced groups with
low inter-group communication, oblivious to the machine topology.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PartitionError
from repro.partition.base import Partitioner
from repro.partition.coarsening import contract, heavy_edge_matching
from repro.partition.recursive_bisection import RecursiveBisectionPartitioner
from repro.partition.refinement import rebalance_kway, refine_kway
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = ["MultilevelPartitioner"]


class MultilevelPartitioner(Partitioner):
    """METIS-style multilevel k-way partitioner.

    Parameters
    ----------
    imbalance_tol:
        Load ceiling as a multiple of the perfectly balanced group load
        (refinement rejects moves past ``tol * total / k``).
    coarsen_factor:
        Stop coarsening once the graph has at most ``coarsen_factor * k``
        vertices (floored at 64 so tiny inputs skip coarsening entirely).
    refine_passes:
        FM passes per uncoarsening level.
    """

    strategy_name = "MultilevelPartition"

    def __init__(
        self,
        imbalance_tol: float = 1.10,
        coarsen_factor: int = 8,
        refine_passes: int = 4,
        seed: int | np.random.Generator | None = 0,
    ):
        if imbalance_tol < 1.0:
            raise PartitionError(f"imbalance_tol must be >= 1.0, got {imbalance_tol}")
        if coarsen_factor < 2:
            raise PartitionError(f"coarsen_factor must be >= 2, got {coarsen_factor}")
        self._tol = float(imbalance_tol)
        self._coarsen_factor = int(coarsen_factor)
        self._refine_passes = int(refine_passes)
        self._seed = seed

    def partition(self, graph: TaskGraph, k: int) -> np.ndarray:
        k = self._check(graph, k)
        rng = as_rng(self._seed)
        stop_at = max(self._coarsen_factor * k, 64)

        # ---- coarsening -----------------------------------------------
        levels: list[tuple[TaskGraph, np.ndarray]] = []  # (fine graph, fine->coarse)
        current = graph
        while current.num_tasks > stop_at:
            match = heavy_edge_matching(current, rng)
            coarse, fine2coarse = contract(current, match)
            if coarse.num_tasks < k or coarse.num_tasks > 0.95 * current.num_tasks:
                break  # would under-shoot k, or contraction stalled
            levels.append((current, fine2coarse))
            current = coarse

        # ---- initial partition on the coarsest graph -------------------
        initial = RecursiveBisectionPartitioner(seed=rng)
        groups = initial.partition(current, k).copy()

        # ---- uncoarsen + refine ----------------------------------------
        total = graph.total_vertex_weight
        max_load = self._tol * total / k if total > 0 else np.inf
        groups = rebalance_kway(current, groups, k, max_load)
        groups = refine_kway(current, groups, k, max_load, self._refine_passes, rng)
        for fine_graph, fine2coarse in reversed(levels):
            groups = groups[fine2coarse]
            groups = rebalance_kway(fine_graph, groups, k, max_load)
            groups = refine_kway(fine_graph, groups, k, max_load,
                                 self._refine_passes, rng)

        groups = self._repair_empty_groups(graph, groups, k)
        return self._validate_result(groups, graph.num_tasks, k)

    @staticmethod
    def _repair_empty_groups(graph: TaskGraph, groups: np.ndarray, k: int) -> np.ndarray:
        """Guarantee every group is non-empty (refinement keeps this invariant,
        but the initial projection could in pathological cases collapse one).

        Each empty group steals one vertex from the currently largest group.
        """
        counts = np.bincount(groups, minlength=k)
        for g in np.flatnonzero(counts == 0):
            donor = int(np.argmax(counts))
            victims = np.flatnonzero(groups == donor)
            # Steal the lightest vertex to perturb balance least.
            victim = int(victims[np.argmin(graph.vertex_weights[victims])])
            groups[victim] = g
            counts[donor] -= 1
            counts[g] += 1
        return groups
