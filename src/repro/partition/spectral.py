"""Spectral recursive-bisection partitioner.

A second comm-aware phase-1 option next to the multilevel partitioner: the
Fiedler vector (second-smallest eigenvector of the weighted graph Laplacian)
orders vertices along the graph's smoothest direction; splitting at the
weighted median gives a balanced bisection with provably related cut quality
(Cheeger). Recursing yields k groups. Slower than multilevel but often
smoother cuts on geometric task graphs — an ablation-worthy contrast
(``benchmarks/test_ablation_partitioners.py``).

Uses ``scipy.sparse.linalg.eigsh`` on the Laplacian with a dense fallback
for tiny subproblems; disconnected subgraphs fall back to the BFS-growing
bisection (a Fiedler vector is only meaningful on connected graphs).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.partition.base import Partitioner
from repro.partition.recursive_bisection import RecursiveBisectionPartitioner
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng
from repro.utils.union_find import UnionFind

__all__ = ["SpectralPartitioner"]

#: Below this size a dense eigensolve is both faster and more robust.
_DENSE_CUTOFF = 64


class SpectralPartitioner(Partitioner):
    """Recursive Fiedler-vector bisection."""

    strategy_name = "SpectralPartition"

    def __init__(self, seed: int | np.random.Generator | None = 0):
        self._seed = seed

    def partition(self, graph: TaskGraph, k: int) -> np.ndarray:
        k = self._check(graph, k)
        rng = as_rng(self._seed)
        groups = np.zeros(graph.num_tasks, dtype=np.int64)
        self._split(graph, np.arange(graph.num_tasks), k, 0, groups, rng)
        return self._validate_result(groups, graph.num_tasks, k)

    # ------------------------------------------------------------------ core
    def _split(self, graph: TaskGraph, subset: np.ndarray, k: int, base: int,
               groups: np.ndarray, rng: np.random.Generator) -> None:
        if k == 1:
            groups[subset] = base
            return
        k1 = k // 2
        k2 = k - k1
        side_a = self._fiedler_bisect(graph, subset, k1, k2, rng)
        self._split(graph, subset[side_a], k1, base, groups, rng)
        self._split(graph, subset[~side_a], k2, base + k1, groups, rng)

    def _fiedler_bisect(self, graph: TaskGraph, subset: np.ndarray,
                        k1: int, k2: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean mask over ``subset``; True side gets ``k1`` groups."""
        fiedler = self._fiedler_vector(graph, subset, rng)
        if fiedler is None:
            # Disconnected or degenerate: BFS graph growing handles it.
            return RecursiveBisectionPartitioner(seed=rng)._grow_bisection(
                graph, subset, k1, k2, rng
            )
        # Split at the load-weighted quantile, respecting count floors.
        order = np.argsort(fiedler, kind="stable")
        weights = graph.vertex_weights[subset][order]
        cum = np.cumsum(weights)
        target = cum[-1] * k1 / (k1 + k2)
        cut = int(np.searchsorted(cum, target)) + 1
        cut = min(max(cut, k1), len(subset) - k2)
        mask = np.zeros(len(subset), dtype=bool)
        mask[order[:cut]] = True
        return mask

    @staticmethod
    def _fiedler_vector(graph: TaskGraph, subset: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray | None:
        n = len(subset)
        if n < 4:
            return None
        local = {int(t): i for i, t in enumerate(subset)}
        rows, cols, vals = [], [], []
        uf = UnionFind(n)
        u, v, w = graph.edge_arrays()
        for a, b, wt in zip(u.tolist(), v.tolist(), w.tolist()):
            ia, ib = local.get(a), local.get(b)
            if ia is None or ib is None or wt <= 0:
                continue
            rows += [ia, ib]
            cols += [ib, ia]
            vals += [wt, wt]
            uf.union(ia, ib)
        if uf.num_components != 1:
            return None
        adj = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
        degree = np.asarray(adj.sum(axis=1)).ravel()
        laplacian = sp.diags(degree) - adj
        if n <= _DENSE_CUTOFF:
            eigvals, eigvecs = np.linalg.eigh(laplacian.toarray())
            return eigvecs[:, 1]
        try:
            _, eigvecs = spla.eigsh(
                laplacian.asfptype(), k=2, sigma=-1e-3, which="LM",
                v0=rng.standard_normal(n),
            )
            return eigvecs[:, 1]
        except (spla.ArpackError, RuntimeError):  # pragma: no cover - rare
            return None
