"""Heavy-edge-matching coarsening for the multilevel partitioner.

Visiting vertices in random order, each unmatched vertex pairs with its
unmatched neighbor of heaviest communication volume; matched pairs contract
into one coarse vertex whose load is the sum and whose edges merge. Matching
the heaviest edges first hides as much communication volume as possible
inside coarse vertices — the property that makes the coarse partition a good
seed for the fine one.
"""

from __future__ import annotations

import numpy as np

from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = [
    "heavy_edge_matching",
    "contract",
    "pair_unmatched",
    "limit_pairs",
    "coarsen_step",
    "coarsen_toward",
    "coarsen_levels",
]


def heavy_edge_matching(
    graph: TaskGraph, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = v's partner (or ``v`` if single)."""
    rng = as_rng(seed)
    n = graph.num_tasks
    match = np.full(n, -1, dtype=np.int64)
    for v in rng.permutation(n):
        v = int(v)
        if match[v] >= 0:
            continue
        nbrs, wts = graph.neighbor_slice(v)
        best, best_w = v, -1.0
        for j, w in zip(nbrs, wts):
            j = int(j)
            if match[j] < 0 and j != v and w > best_w:
                best, best_w = j, float(w)
        match[v] = best
        match[best] = v
    return match


def contract(graph: TaskGraph, match: np.ndarray) -> tuple[TaskGraph, np.ndarray]:
    """Contract matched pairs; return (coarse graph, fine→coarse map)."""
    n = graph.num_tasks
    match = np.asarray(match, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    if np.array_equal(match[match], ids):
        # Symmetric matching (what heavy_edge_matching produces): coarse ids
        # are assigned by ascending first member, i.e. the rank of each
        # pair's smaller endpoint — same numbering the sequential scan gives.
        rep = np.minimum(ids, match)
        _, fine2coarse = np.unique(rep, return_inverse=True)
        fine2coarse = fine2coarse.astype(np.int64)
        next_id = int(fine2coarse.max()) + 1
    else:
        fine2coarse = np.full(n, -1, dtype=np.int64)
        next_id = 0
        for v in range(n):
            if fine2coarse[v] >= 0:
                continue
            partner = int(match[v])
            fine2coarse[v] = next_id
            fine2coarse[partner] = next_id
            next_id += 1

    loads = np.bincount(fine2coarse, weights=graph.vertex_weights, minlength=next_id)
    u, vv, w = graph.edge_arrays()
    cu, cv = fine2coarse[u], fine2coarse[vv]
    keep = cu != cv  # intra-pair edges disappear into the coarse vertex
    coarse = TaskGraph.from_arrays(next_id, cu[keep], cv[keep], w[keep], loads)
    return coarse, fine2coarse


def pair_unmatched(match: np.ndarray) -> np.ndarray:
    """Forcibly pair leftover self-matched vertices, consecutively by id.

    Heavy-edge matching leaves a vertex single when all its neighbors are
    already taken (stars), when it has no neighbors at all (singletons), or
    when ties starve it. Pairing the leftovers two-by-two guarantees every
    contraction shrinks the graph to ``ceil(n/2)`` vertices, which is what
    makes multilevel coarsening terminate on pathological graphs. One vertex
    stays single when the leftover count is odd.
    """
    match = np.asarray(match, dtype=np.int64).copy()
    singles = np.flatnonzero(match == np.arange(len(match)))
    for i in range(0, len(singles) - 1, 2):
        a, b = int(singles[i]), int(singles[i + 1])
        match[a] = b
        match[b] = a
    return match


def limit_pairs(
    graph: TaskGraph, match: np.ndarray, max_pairs: int
) -> np.ndarray:
    """Keep only the ``max_pairs`` heaviest matched pairs; unmatch the rest.

    A full contraction halves the graph, which overshoots when only a few
    merges are needed (e.g. 64 tasks onto 61 healthy processors needs 3, not
    32). Ranking pairs by the weight of their connecting edge (0 for
    force-paired leftovers, ties to the smallest endpoint id) keeps the
    merges that hide the most communication volume and releases the rest, so
    a contraction can land on an exact target size.
    """
    match = np.asarray(match, dtype=np.int64).copy()
    n = len(match)
    ids = np.arange(n, dtype=np.int64)
    a = np.flatnonzero(match > ids)  # each pair once, keyed by smaller endpoint
    if len(a) <= max_pairs:
        return match
    if max_pairs <= 0:
        return ids
    b = match[a]
    weights = np.zeros(len(a), dtype=np.float64)
    pair_of = np.full(n, -1, dtype=np.int64)
    pair_of[a] = np.arange(len(a), dtype=np.int64)
    eu, ev, ew = graph.edge_arrays()
    sel = match[eu] == ev  # the edge connects a matched pair (eu < ev always)
    weights[pair_of[eu[sel]]] = ew[sel]
    order = np.lexsort((a, -weights))  # heaviest first, ties to smallest id
    drop = order[max_pairs:]
    match[a[drop]] = a[drop]
    match[b[drop]] = b[drop]
    return match


def coarsen_step(
    graph: TaskGraph,
    seed: int | np.random.Generator | None = 0,
    force: bool = False,
) -> tuple[TaskGraph, np.ndarray]:
    """One coarsening level: match, optionally force-pair leftovers, contract.

    Returns ``(coarse graph, fine→coarse map)``. With ``force`` the coarse
    graph has exactly ``ceil(n/2)`` vertices.
    """
    match = heavy_edge_matching(graph, seed)
    if force:
        match = pair_unmatched(match)
    return contract(graph, match)


def coarsen_toward(
    graph: TaskGraph, target: int, seed: int | np.random.Generator | None = 0
) -> tuple[TaskGraph, np.ndarray]:
    """One forced coarsening level that never shrinks below ``target``.

    The result has exactly ``max(target, ceil(n/2))`` vertices: a full
    forced halving when the graph is still far above the target, a partial
    contraction of just the heaviest ``n - target`` pairs on the final
    approach. Returns ``(coarse graph, fine→coarse map)``.
    """
    target = max(1, int(target))
    match = pair_unmatched(heavy_edge_matching(graph, seed))
    match = limit_pairs(graph, match, graph.num_tasks - target)
    return contract(graph, match)


def coarsen_levels(
    graph: TaskGraph,
    target: int,
    seed: int = 0,
    max_levels: int | None = None,
    force: bool = True,
) -> tuple[TaskGraph, list[np.ndarray]]:
    """Coarsen until at most ``target`` vertices (or the level budget ends).

    Returns ``(coarsest graph, maps)`` where ``maps`` lists the fine→coarse
    vertex map of every level, finest first; composing them (``maps[-1][...
    maps[0]]`` read right to left) prolongs a coarse labeling back to the
    original vertices. With ``force`` (default) each level halves the vertex
    count, so the loop terminates on stars, singleton clouds, zero-weight
    edges, and any other graph that starves the matching.
    """
    target = max(1, int(target))
    maps: list[np.ndarray] = []
    g = graph
    while g.num_tasks > target:
        if max_levels is not None and len(maps) >= max_levels:
            break
        coarse, fine2coarse = coarsen_step(g, seed=seed + len(maps), force=force)
        if coarse.num_tasks >= g.num_tasks:
            break  # matching found nothing to merge and force is off
        maps.append(fine2coarse)
        g = coarse
    return g, maps
