"""Heavy-edge-matching coarsening for the multilevel partitioner.

Visiting vertices in random order, each unmatched vertex pairs with its
unmatched neighbor of heaviest communication volume; matched pairs contract
into one coarse vertex whose load is the sum and whose edges merge. Matching
the heaviest edges first hides as much communication volume as possible
inside coarse vertices — the property that makes the coarse partition a good
seed for the fine one.
"""

from __future__ import annotations

import numpy as np

from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = ["heavy_edge_matching", "contract"]


def heavy_edge_matching(
    graph: TaskGraph, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Return ``match`` with ``match[v]`` = v's partner (or ``v`` if single)."""
    rng = as_rng(seed)
    n = graph.num_tasks
    match = np.full(n, -1, dtype=np.int64)
    for v in rng.permutation(n):
        v = int(v)
        if match[v] >= 0:
            continue
        nbrs, wts = graph.neighbor_slice(v)
        best, best_w = v, -1.0
        for j, w in zip(nbrs, wts):
            j = int(j)
            if match[j] < 0 and j != v and w > best_w:
                best, best_w = j, float(w)
        match[v] = best
        match[best] = v
    return match


def contract(graph: TaskGraph, match: np.ndarray) -> tuple[TaskGraph, np.ndarray]:
    """Contract matched pairs; return (coarse graph, fine→coarse map)."""
    n = graph.num_tasks
    fine2coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine2coarse[v] >= 0:
            continue
        partner = int(match[v])
        fine2coarse[v] = next_id
        fine2coarse[partner] = next_id
        next_id += 1

    loads = np.bincount(fine2coarse, weights=graph.vertex_weights, minlength=next_id)
    u, vv, w = graph.edge_arrays()
    cu, cv = fine2coarse[u], fine2coarse[vv]
    keep = cu != cv  # intra-pair edges disappear into the coarse vertex
    coarse = TaskGraph(
        next_id,
        zip(cu[keep].tolist(), cv[keep].tolist(), w[keep].tolist()),
        loads,
    )
    return coarse, fine2coarse
