"""Partitioner interface."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import PartitionError
from repro.taskgraph.graph import TaskGraph

__all__ = ["Partitioner"]


class Partitioner(abc.ABC):
    """Strategy interface: split ``n`` tasks into ``k`` balanced groups.

    Implementations return a length-``n`` int array of group ids covering
    ``0..k-1`` with every group non-empty (the mapper needs one group per
    processor). Balance is best-effort within the implementation's tolerance;
    communication-awareness varies by strategy.
    """

    def _check(self, graph: TaskGraph, k: int) -> int:
        k = int(k)
        if k < 1:
            raise PartitionError(f"k must be >= 1, got {k}")
        if k > graph.num_tasks:
            raise PartitionError(
                f"cannot split {graph.num_tasks} tasks into {k} non-empty groups"
            )
        return k

    @abc.abstractmethod
    def partition(self, graph: TaskGraph, k: int) -> np.ndarray:
        """Compute the group assignment."""

    @staticmethod
    def _validate_result(groups: np.ndarray, n: int, k: int) -> np.ndarray:
        """Internal sanity check applied by implementations before returning."""
        if groups.shape != (n,):
            raise PartitionError(f"internal: bad groups shape {groups.shape}")
        counts = np.bincount(groups, minlength=k)
        if len(counts) > k or (counts == 0).any():
            raise PartitionError("internal: partition produced an empty group")
        return groups

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"
