"""Partition-quality metrics: cut bytes, balance, group sizes."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import PartitionError
from repro.taskgraph.graph import TaskGraph

__all__ = ["edge_cut_bytes", "partition_imbalance", "partition_sizes"]


def _as_groups(graph: TaskGraph, groups: Sequence[int]) -> np.ndarray:
    arr = np.asarray(groups, dtype=np.int64)
    if arr.shape != (graph.num_tasks,):
        raise PartitionError(
            f"groups must have shape ({graph.num_tasks},), got {arr.shape}"
        )
    if len(arr) and arr.min() < 0:
        raise PartitionError("group ids must be non-negative")
    return arr


def edge_cut_bytes(graph: TaskGraph, groups: Sequence[int]) -> float:
    """Total bytes on edges whose endpoints sit in different groups.

    This is what phase 1 minimizes — bytes that will have to cross the
    network at all (phase 2 then decides how *far* they travel).
    """
    arr = _as_groups(graph, groups)
    u, v, w = graph.edge_arrays()
    if len(w) == 0:
        return 0.0
    return float(w[arr[u] != arr[v]].sum())


def partition_sizes(graph: TaskGraph, groups: Sequence[int], k: int | None = None) -> np.ndarray:
    """Summed task load per group."""
    arr = _as_groups(graph, groups)
    if k is None:
        k = int(arr.max()) + 1 if len(arr) else 0
    return np.bincount(arr, weights=graph.vertex_weights, minlength=k)


def partition_imbalance(graph: TaskGraph, groups: Sequence[int], k: int | None = None) -> float:
    """``max group load / mean group load`` (1.0 = perfect balance)."""
    sizes = partition_sizes(graph, groups, k)
    mean = sizes.mean()
    if mean == 0:
        return 1.0
    return float(sizes.max() / mean)
