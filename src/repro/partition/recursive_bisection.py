"""Recursive bisection with BFS graph growing.

Each split grows one side outward from a pseudo-peripheral seed in BFS order
until it holds the target share of the load — the classic "greedy graph
growing" initial-partition scheme from the multilevel literature. Growing a
connected blob keeps heavily-communicating tasks together, which is the
comm-reducing property the paper asks of its phase-1 partitioner.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.partition.base import Partitioner
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = ["RecursiveBisectionPartitioner"]


class RecursiveBisectionPartitioner(Partitioner):
    """Balanced k-way partition via recursive BFS-grown bisection."""

    strategy_name = "RecursiveBisection"

    def __init__(self, seed: int | np.random.Generator | None = 0):
        self._seed = seed

    def partition(self, graph: TaskGraph, k: int) -> np.ndarray:
        k = self._check(graph, k)
        n = graph.num_tasks
        rng = as_rng(self._seed)
        groups = np.zeros(n, dtype=np.int64)
        self._split(graph, np.arange(n), k, 0, groups, rng)
        return self._validate_result(groups, n, k)

    # ------------------------------------------------------------------ split
    def _split(self, graph: TaskGraph, subset: np.ndarray, k: int, base: int,
               groups: np.ndarray, rng: np.random.Generator) -> None:
        if k == 1:
            groups[subset] = base
            return
        k1 = k // 2
        k2 = k - k1
        side_a = self._grow_bisection(graph, subset, k1, k2, rng)
        self._split(graph, subset[side_a], k1, base, groups, rng)
        self._split(graph, subset[~side_a], k2, base + k1, groups, rng)

    def _grow_bisection(self, graph: TaskGraph, subset: np.ndarray,
                        k1: int, k2: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean mask over ``subset``: True = side A (gets k1 groups).

        Side A must end with at least ``k1`` vertices and leave at least
        ``k2`` for side B; within those hard bounds growth stops once side A
        holds its proportional share ``k1/k`` of the subset's load.
        """
        weights = graph.vertex_weights
        total = float(weights[subset].sum())
        target = total * k1 / (k1 + k2)

        in_subset = np.zeros(graph.num_tasks, dtype=bool)
        in_subset[subset] = True
        local_index = {int(t): i for i, t in enumerate(subset)}

        picked = np.zeros(len(subset), dtype=bool)
        seed = self._pseudo_peripheral(graph, subset, in_subset, rng)
        queue: deque[int] = deque([seed])
        queued = {seed}
        acc_weight = 0.0
        count = 0
        max_count = len(subset) - k2

        while count < max_count:
            if not queue:
                # Disconnected remainder: restart from any unpicked vertex.
                remaining = subset[~picked]
                nxt = int(remaining[0])
                queue.append(nxt)
                queued.add(nxt)
            v = queue.popleft()
            i = local_index[v]
            if picked[i]:
                continue
            # Stop at the load target once the count floor is satisfied.
            if count >= k1 and acc_weight + 0.5 * float(weights[v]) >= target:
                break
            picked[i] = True
            acc_weight += float(weights[v])
            count += 1
            for nbr in graph.neighbors(v):
                if in_subset[nbr] and nbr not in queued and not picked[local_index[nbr]]:
                    queue.append(nbr)
                    queued.add(nbr)

        # Count floor may still be unmet if growth broke early on weight.
        if count < k1:
            for i in np.flatnonzero(~picked):
                picked[i] = True
                count += 1
                if count >= k1:
                    break
        return picked

    @staticmethod
    def _pseudo_peripheral(graph: TaskGraph, subset: np.ndarray,
                           in_subset: np.ndarray, rng: np.random.Generator) -> int:
        """A vertex far from the subset's 'center': two BFS sweeps.

        Start from a random subset vertex, BFS to the farthest vertex, repeat
        once — the standard cheap approximation of a peripheral seed.
        """
        start = int(subset[rng.integers(0, len(subset))])
        for _ in range(2):
            seen = {start}
            frontier = [start]
            last = start
            while frontier:
                nxt: list[int] = []
                for v in frontier:
                    for nbr in graph.neighbors(v):
                        if in_subset[nbr] and nbr not in seen:
                            seen.add(nbr)
                            nxt.append(nbr)
                if nxt:
                    last = nxt[-1]
                frontier = nxt
            start = last
        return start
