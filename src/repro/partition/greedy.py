"""Greedy load-only partitioner (the GreedyLB analog).

Longest-processing-time-first: visit tasks in decreasing load order and put
each on the currently lightest group. Communication-oblivious — exactly the
Charm++ ``GreedyLB`` behaviour the paper uses both as a partitioning option
and as its "essentially random placement" baseline in Section 5.3.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.partition.base import Partitioner
from repro.taskgraph.graph import TaskGraph

__all__ = ["GreedyPartitioner"]


class GreedyPartitioner(Partitioner):
    """LPT makespan-balancing partitioner."""

    strategy_name = "GreedyPartition"

    def partition(self, graph: TaskGraph, k: int) -> np.ndarray:
        k = self._check(graph, k)
        n = graph.num_tasks
        groups = np.empty(n, dtype=np.int64)
        order = np.argsort(-graph.vertex_weights, kind="stable")

        # Give each group one task up front so no group ends empty even when
        # some loads are zero.
        heap: list[tuple[float, int]] = []
        for g, t in enumerate(order[:k]):
            groups[t] = g
            heap.append((float(graph.vertex_weights[t]), g))
        heapq.heapify(heap)

        for t in order[k:]:
            load, g = heapq.heappop(heap)
            groups[t] = g
            heapq.heappush(heap, (load + float(graph.vertex_weights[t]), g))

        return self._validate_result(groups, n, k)
