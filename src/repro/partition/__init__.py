"""Topology-oblivious partitioning (phase 1 of the two-phase approach).

The paper partitions the ``n`` compute objects into ``p`` balanced groups
before mapping, using METIS or a Charm++ greedy strategy. This package is
the from-scratch substitute:

* :class:`GreedyPartitioner` — load-only LPT assignment (GreedyLB analog),
* :class:`RecursiveBisectionPartitioner` — BFS graph-growing bisection,
* :class:`MultilevelPartitioner` — METIS-style multilevel k-way pipeline
  (heavy-edge-matching coarsening, recursive-bisection initial partition,
  FM boundary refinement during uncoarsening).
"""

from repro.partition.base import Partitioner
from repro.partition.greedy import GreedyPartitioner
from repro.partition.recursive_bisection import RecursiveBisectionPartitioner
from repro.partition.multilevel import MultilevelPartitioner
from repro.partition.spectral import SpectralPartitioner
from repro.partition.metrics import edge_cut_bytes, partition_imbalance, partition_sizes

__all__ = [
    "Partitioner",
    "GreedyPartitioner",
    "RecursiveBisectionPartitioner",
    "MultilevelPartitioner",
    "SpectralPartitioner",
    "edge_cut_bytes",
    "partition_imbalance",
    "partition_sizes",
]
