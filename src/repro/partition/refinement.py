"""FM-style k-way boundary refinement.

After projecting a coarse partition down a level, boundary vertices may sit
better in a neighboring group. Each pass scans the boundary in random order
and greedily applies the best strictly-cut-reducing move that keeps every
group within the load ceiling and non-empty. Passes repeat until quiescent
or the pass budget runs out — the standard greedy simplification of
Fiduccia–Mattheyses used by multilevel partitioners.
"""

from __future__ import annotations

import numpy as np

from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = ["refine_kway", "rebalance_kway"]


def rebalance_kway(
    graph: TaskGraph,
    groups: np.ndarray,
    k: int,
    max_load: float,
    max_moves: int | None = None,
) -> np.ndarray:
    """Push overloaded groups under ``max_load`` with minimum cut damage.

    Repeatedly takes the most-loaded group above the ceiling and moves out
    the vertex whose departure costs the least cut bytes, into the
    receiving group (preferring communication-adjacent ones) with the most
    headroom. Vertices heavier than the ceiling itself are unmovable-by-
    balance and are skipped; the loop is bounded by ``max_moves`` (default
    ``4 n``) so pathological inputs terminate.
    """
    loads = np.bincount(groups, weights=graph.vertex_weights, minlength=k).astype(np.float64)
    counts = np.bincount(groups, minlength=k)
    weights = graph.vertex_weights
    if max_moves is None:
        max_moves = 4 * graph.num_tasks

    for _ in range(max_moves):
        src = int(np.argmax(loads))
        if loads[src] <= max_load:
            break
        members = np.flatnonzero(groups == src)
        if counts[src] <= 1:
            break
        best: tuple[float, int, int] | None = None  # (cut_delta, vertex, dst)
        order = members[np.argsort(weights[members])[::-1]]  # heavy first
        for v in order:
            v = int(v)
            w = float(weights[v])
            nbrs, wts = graph.neighbor_slice(v)
            conn: dict[int, float] = {}
            for j, c in zip(nbrs, wts):
                g = int(groups[j])
                conn[g] = conn.get(g, 0.0) + float(c)
            internal = conn.get(src, 0.0)
            # Candidate destinations: adjacent groups first, then the
            # globally lightest group as a fallback.
            candidates = [g for g in conn if g != src]
            lightest = int(np.argmin(loads))
            if lightest != src:
                candidates.append(lightest)
            for g in candidates:
                if loads[g] + w > max_load and loads[g] + w >= loads[src]:
                    continue  # move would not even help balance
                cut_delta = internal - conn.get(g, 0.0)
                if best is None or cut_delta < best[0]:
                    best = (cut_delta, v, g)
            if best is not None and best[0] <= 0:
                break  # a free (or cut-improving) balance move exists
        if best is None:
            break
        _, v, dst = best
        groups[v] = dst
        loads[src] -= weights[v]
        loads[dst] += weights[v]
        counts[src] -= 1
        counts[dst] += 1
    return groups


def refine_kway(
    graph: TaskGraph,
    groups: np.ndarray,
    k: int,
    max_load: float,
    passes: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Refine ``groups`` in place toward lower cut bytes; returns it.

    ``max_load`` is the hard per-group load ceiling (typically
    ``tolerance * total / k``); moves that would breach it, or would empty
    the source group, are rejected.
    """
    rng = as_rng(seed)
    loads = np.bincount(groups, weights=graph.vertex_weights, minlength=k).astype(np.float64)
    counts = np.bincount(groups, minlength=k)
    weights = graph.vertex_weights

    for _pass in range(passes):
        moved = False
        for v in rng.permutation(graph.num_tasks):
            v = int(v)
            src = int(groups[v])
            if counts[src] <= 1:
                continue
            nbrs, wts = graph.neighbor_slice(v)
            if len(nbrs) == 0:
                continue
            # Connectivity of v to each adjacent group.
            conn: dict[int, float] = {}
            for j, w in zip(nbrs, wts):
                g = int(groups[j])
                conn[g] = conn.get(g, 0.0) + float(w)
            internal = conn.get(src, 0.0)
            best_g, best_gain = -1, 0.0
            for g, c in conn.items():
                if g == src:
                    continue
                gain = c - internal
                if gain > best_gain and loads[g] + weights[v] <= max_load:
                    best_g, best_gain = g, gain
            if best_g >= 0:
                groups[v] = best_g
                loads[src] -= weights[v]
                loads[best_g] += weights[v]
                counts[src] -= 1
                counts[best_g] += 1
                moved = True
        if not moved:
            break
    return groups
