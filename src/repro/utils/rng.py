"""Seeded random-number-generator helpers.

All stochastic code in the library threads an explicit generator so every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS-entropy generator). Using one coercion point keeps the
    seeding policy uniform across the package.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
