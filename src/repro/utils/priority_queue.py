"""Addressable binary heaps with decrease/increase-key.

TopoCentLB selects, every cycle, the unplaced task with maximum total
communication to the placed set and bumps the keys of its neighbors — exactly
the extract-max / increase-key workload of an addressable heap (the paper's
stated ``O(log p)`` operations). The FM refinement pass in the partitioner
uses the same structure for gain buckets.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["AddressableMinHeap", "AddressableMaxHeap"]


class AddressableMinHeap:
    """Binary min-heap over integer items with O(log n) update-key.

    Items are arbitrary hashable objects; each item may appear at most once.
    """

    def __init__(self, items: Iterable[tuple[object, float]] = ()):
        self._heap: list[object] = []
        self._keys: dict[object, float] = {}
        self._pos: dict[object, int] = {}
        # Monotonic insertion counter: the final tie-break, so extraction
        # order is fully determined by (key, item, arrival) for *any* item
        # type — never by the heap's internal sift history.
        self._counter = 0
        self._order: dict[object, int] = {}
        for item, key in items:
            self._keys[item] = key
            self._pos[item] = len(self._heap)
            self._order[item] = self._counter
            self._counter += 1
            self._heap.append(item)
        # Floyd heapify: sift down from the last internal node.
        for i in range(len(self._heap) // 2 - 1, -1, -1):
            self._sift_down(i)

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, item: object) -> bool:
        return item in self._pos

    def key(self, item: object) -> float:
        """Current key of ``item`` (KeyError if absent)."""
        return self._keys[item]

    def _less(self, a: object, b: object) -> bool:
        ka, kb = self._keys[a], self._keys[b]
        if ka != kb:
            return ka < kb
        return self._tie_break(a, b)

    def _tie_break(self, a: object, b: object) -> bool:
        # Deterministic tie-break: smaller item wins when items compare;
        # otherwise (or when they compare equal without being the same
        # entry) earlier insertion wins. Either way the order is a property
        # of the input sequence, never of the heap's internal state —
        # TopoCentLB/FM extraction stays reproducible for any item type.
        try:
            if a < b:  # type: ignore[operator]
                return True
            if b < a:  # type: ignore[operator]
                return False
        except TypeError:
            pass  # non-comparable items fall through to insertion order
        return self._order[a] < self._order[b]

    def _swap(self, i: int, j: int) -> None:
        h = self._heap
        h[i], h[j] = h[j], h[i]
        self._pos[h[i]] = i
        self._pos[h[j]] = j

    def _sift_up(self, i: int) -> None:
        h = self._heap
        while i > 0:
            parent = (i - 1) // 2
            if self._less(h[i], h[parent]):
                self._swap(i, parent)
                i = parent
            else:
                return

    def _sift_down(self, i: int) -> None:
        h = self._heap
        n = len(h)
        while True:
            left, right = 2 * i + 1, 2 * i + 2
            smallest = i
            if left < n and self._less(h[left], h[smallest]):
                smallest = left
            if right < n and self._less(h[right], h[smallest]):
                smallest = right
            if smallest == i:
                return
            self._swap(i, smallest)
            i = smallest

    def push(self, item: object, key: float) -> None:
        """Insert ``item`` with ``key``; raises ValueError if already present."""
        if item in self._pos:
            raise ValueError(f"item {item!r} already in heap")
        self._keys[item] = key
        self._pos[item] = len(self._heap)
        self._order[item] = self._counter
        self._counter += 1
        self._heap.append(item)
        self._sift_up(len(self._heap) - 1)

    def update(self, item: object, key: float) -> None:
        """Change ``item``'s key to ``key`` (any direction)."""
        self._keys[item] = key
        # Try both directions; at most one moves the item. Using the
        # subclass's comparison keeps this correct for the max-heap variant.
        self._sift_up(self._pos[item])
        self._sift_down(self._pos[item])

    def peek(self) -> tuple[object, float]:
        """Return (item, key) with minimum key without removing it."""
        if not self._heap:
            raise IndexError("peek from empty heap")
        item = self._heap[0]
        return item, self._keys[item]

    def pop(self) -> tuple[object, float]:
        """Remove and return (item, key) with minimum key."""
        if not self._heap:
            raise IndexError("pop from empty heap")
        top = self._heap[0]
        key = self._keys.pop(top)
        last = self._heap.pop()
        del self._pos[top]
        del self._order[top]
        if self._heap:
            self._heap[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return top, key

    def remove(self, item: object) -> float:
        """Remove ``item`` wherever it sits; return its key."""
        i = self._pos.pop(item)
        key = self._keys.pop(item)
        del self._order[item]
        last = self._heap.pop()
        if i < len(self._heap):
            self._heap[i] = last
            self._pos[last] = i
            # Restore the invariant in whichever direction is needed.
            self._sift_down(i)
            self._sift_up(self._pos[last])
        return key


class AddressableMaxHeap(AddressableMinHeap):
    """Max-heap variant: ``pop`` returns the item with the *largest* key."""

    def _less(self, a: object, b: object) -> bool:  # invert the key comparison
        ka, kb = self._keys[a], self._keys[b]
        if ka != kb:
            return ka > kb
        # Ties still pop smallest (then earliest-inserted) item first.
        return self._tie_break(a, b)
