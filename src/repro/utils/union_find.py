"""Disjoint-set (union-find) with path compression and union by size.

Used by the coarsening phase of the multilevel partitioner and by topology
connectivity checks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Array-backed disjoint-set forest over the integers ``0..n-1``."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def num_components(self) -> int:
        """Number of disjoint components currently tracked."""
        return self._count

    def find(self, x: int) -> int:
        """Return the representative of ``x``'s component (path compressed)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._count -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` share a component."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Number of elements in ``x``'s component."""
        return int(self._size[self.find(x)])
