"""Shared low-level utilities: heaps, union-find, RNG, validation."""

from repro.utils.priority_queue import AddressableMaxHeap, AddressableMinHeap
from repro.utils.union_find import UnionFind
from repro.utils.rng import as_rng
from repro.utils.validation import (
    check_nonnegative,
    check_positive,
    check_permutation,
    check_shape_volume,
)

__all__ = [
    "AddressableMaxHeap",
    "AddressableMinHeap",
    "UnionFind",
    "as_rng",
    "check_nonnegative",
    "check_positive",
    "check_permutation",
    "check_shape_volume",
]
