"""Argument-validation helpers shared across modules."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "check_nonnegative",
    "check_positive",
    "check_permutation",
    "check_shape_volume",
]


def check_positive(name: str, value: float, err: type[ReproError] = ReproError) -> None:
    """Raise ``err`` unless ``value > 0``."""
    if not value > 0:
        raise err(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value: float, err: type[ReproError] = ReproError) -> None:
    """Raise ``err`` unless ``value >= 0``."""
    if not value >= 0:
        raise err(f"{name} must be non-negative, got {value!r}")


def check_permutation(assignment: np.ndarray, n: int, err: type[ReproError] = ReproError) -> None:
    """Raise ``err`` unless ``assignment`` is a permutation of ``range(n)``."""
    arr = np.asarray(assignment)
    if arr.shape != (n,):
        raise err(f"expected a length-{n} assignment, got shape {arr.shape}")
    seen = np.zeros(n, dtype=bool)
    if arr.min(initial=0) < 0 or arr.max(initial=-1) >= n:
        raise err("assignment values out of range")
    seen[arr] = True
    if not seen.all():
        missing = int(np.flatnonzero(~seen)[0])
        raise err(f"assignment is not a permutation: value {missing} missing")


def check_shape_volume(shape: Sequence[int], err: type[ReproError] = ReproError) -> int:
    """Validate a dimension tuple and return its volume (product)."""
    if len(shape) == 0:
        raise err("shape must have at least one dimension")
    for extent in shape:
        if int(extent) != extent or extent < 1:
            raise err(f"shape extents must be positive integers, got {shape!r}")
    return int(math.prod(int(e) for e in shape))
