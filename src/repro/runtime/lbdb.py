"""The load-balancing database — measured loads and communication.

Mirrors the Charm++ LB framework's central data structure: per-object wall
loads and a pairwise communication matrix accumulated over a measurement
window, plus the current object → processor placement. Databases serialize
to JSON (the ``+LBDump`` analog) so a load scenario captured once can be
replayed under every strategy.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph

__all__ = ["LBDatabase"]

_FORMAT = "repro-lbdump-v1"


class LBDatabase:
    """Measured per-object loads + pairwise communication volumes."""

    def __init__(self, num_objects: int):
        if num_objects < 1:
            raise TaskGraphError(f"need at least one object, got {num_objects}")
        self._n = int(num_objects)
        self._loads = np.zeros(self._n, dtype=np.float64)
        self._comm: dict[tuple[int, int], float] = {}
        self._placement = np.zeros(self._n, dtype=np.int64)
        self._steps = 0
        self._coords: np.ndarray | None = None

    # ------------------------------------------------------------ recording
    @property
    def num_objects(self) -> int:
        """Number of migratable objects tracked."""
        return self._n

    @property
    def num_steps(self) -> int:
        """Measurement steps accumulated so far."""
        return self._steps

    def _check(self, obj: int) -> int:
        obj = int(obj)
        if not 0 <= obj < self._n:
            raise TaskGraphError(f"object {obj} out of range [0, {self._n})")
        return obj

    def record_load(self, obj: int, load: float) -> None:
        """Accumulate measured compute load for one object."""
        obj = self._check(obj)
        if load < 0:
            raise TaskGraphError(f"load must be non-negative, got {load}")
        self._loads[obj] += float(load)

    def record_comm(self, src: int, dst: int, num_bytes: float) -> None:
        """Accumulate measured communication between two objects."""
        src, dst = self._check(src), self._check(dst)
        if src == dst:
            return  # local communication is free; not tracked
        if num_bytes < 0:
            raise TaskGraphError(f"bytes must be non-negative, got {num_bytes}")
        key = (src, dst) if src < dst else (dst, src)
        self._comm[key] = self._comm.get(key, 0.0) + float(num_bytes)

    def end_step(self) -> None:
        """Close one measurement step (bookkeeping only)."""
        self._steps += 1

    def set_placement(self, placement) -> None:
        """Record the current object → processor placement."""
        arr = np.asarray(placement, dtype=np.int64)
        if arr.shape != (self._n,):
            raise TaskGraphError(f"placement must have shape ({self._n},)")
        self._placement = arr.copy()

    @property
    def placement(self) -> np.ndarray:
        """Current object placement (copied)."""
        return self._placement.copy()

    @property
    def loads(self) -> np.ndarray:
        """Accumulated per-object loads (copied)."""
        return self._loads.copy()

    # ----------------------------------------------------------- conversion
    def to_taskgraph(self) -> TaskGraph:
        """Snapshot the database as an immutable :class:`TaskGraph`.

        Objects that recorded zero load still appear (weight 0), matching
        the Charm++ model where every migratable object is a vertex.
        """
        edges = [(a, b, w) for (a, b), w in sorted(self._comm.items())]
        graph = TaskGraph(self._n, edges, self._loads)
        if self._coords is not None:
            graph.attach_coords(self._coords)
        return graph

    @classmethod
    def from_taskgraph(cls, graph: TaskGraph, placement=None) -> "LBDatabase":
        """Build a database from an existing task graph (for synthetic runs)."""
        db = cls(graph.num_tasks)
        db._loads = graph.vertex_weights.copy()
        db._comm = {(a, b): w for a, b, w in graph.edges()}
        db._steps = 1
        if graph.coords is not None:
            db._coords = graph.coords.copy()
        if placement is not None:
            db.set_placement(placement)
        return db

    # ------------------------------------------------------------ dump files
    def dump(self, path: str | Path) -> None:
        """Write the database to a JSON dump file (the ``+LBDump`` analog)."""
        payload = {
            "format": _FORMAT,
            "num_objects": self._n,
            "steps": self._steps,
            "loads": self._loads.tolist(),
            "placement": self._placement.tolist(),
            "comm": [[a, b, w] for (a, b), w in sorted(self._comm.items())],
        }
        if self._coords is not None:
            payload["coords"] = self._coords.tolist()
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "LBDatabase":
        """Read a dump written by :meth:`dump` (the ``+LBSim`` input)."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise TaskGraphError(f"invalid LB dump: {exc}") from exc
        if payload.get("format") != _FORMAT:
            raise TaskGraphError(f"not a {_FORMAT} dump file")
        db = cls(int(payload["num_objects"]))
        db._steps = int(payload["steps"])
        db._loads = np.asarray(payload["loads"], dtype=np.float64)
        db.set_placement(payload["placement"])
        for a, b, w in payload["comm"]:
            db.record_comm(int(a), int(b), float(w))
        if "coords" in payload:
            db._coords = np.asarray(payload["coords"], dtype=np.float64)
        return db

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LBDatabase objects={self._n} pairs={len(self._comm)} steps={self._steps}>"
