"""Dynamic load balancing over time: measure → balance → migrate → repeat.

The Charm++ model the paper's framework lives in: loads drift while the
program runs; periodically the runtime consults a strategy and *migrates*
objects, paying for every moved object's serialized state (the PUP
framework's job). This module provides:

* :class:`DriftingWorkload` — a synthetic application whose per-object loads
  follow a bounded multiplicative random walk (communication stays fixed, as
  the paper's persistent-communication model assumes),
* :func:`run_dynamic_lb` — the driver: runs ``steps`` measurement steps,
  invoking a balancer every ``lb_period`` steps, and records the trajectory
  of load imbalance, hop-bytes, and migration volume.

Balancers come in two flavors, matching the production trade-off:

* ``"full:<StrategyName>"`` — remap from scratch with a registry strategy
  (best placement, most migration),
* ``"incremental"`` — :class:`~repro.mapping.incremental.IncrementalRefineLB`
  (fewest moves that restore balance, topology-aware destinations).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exceptions import MappingError, TaskGraphError
from repro.mapping.base import Mapping
from repro.mapping.context import context_for
from repro.mapping.incremental import IncrementalRefineLB
from repro.mapping.metrics import load_imbalance
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["DriftingWorkload", "LBStepReport", "run_dynamic_lb"]


class DriftingWorkload:
    """A task graph whose vertex loads drift step to step.

    Loads follow ``load *= exp(sigma * N(0,1))``, clipped to a band around
    the initial value so the instance stays balanceable; the communication
    structure is fixed (the paper's "persistent processes which have stable
    communication patterns").
    """

    def __init__(self, base: TaskGraph, drift_sigma: float = 0.1,
                 band: float = 8.0, seed: int | np.random.Generator | None = 0):
        if drift_sigma < 0:
            raise TaskGraphError(f"drift_sigma must be >= 0, got {drift_sigma}")
        if band < 1.0:
            raise TaskGraphError(f"band must be >= 1.0, got {band}")
        self._base = base
        self._sigma = float(drift_sigma)
        self._band = float(band)
        self._rng = as_rng(seed)
        self._loads = base.vertex_weights.copy()
        self._initial = np.maximum(base.vertex_weights.copy(), 1e-12)

    @property
    def num_tasks(self) -> int:
        """Number of tasks (fixed across steps)."""
        return self._base.num_tasks

    @property
    def base(self) -> TaskGraph:
        """The underlying task graph (fixed edges; loads drift per step)."""
        return self._base

    def advance(self) -> TaskGraph:
        """Drift loads one step; return the current task graph snapshot."""
        factors = np.exp(self._sigma * self._rng.standard_normal(len(self._loads)))
        self._loads = np.clip(
            self._loads * factors,
            self._initial / self._band,
            self._initial * self._band,
        )
        return TaskGraph(self._base.num_tasks, self._base.edges(), self._loads)


@dataclasses.dataclass
class LBStepReport:
    """Metrics of one measurement step."""

    step: int
    balanced: bool            # did a balancer run this step?
    imbalance: float          # after any balancing
    hop_bytes: float
    migrated_tasks: int
    migration_bytes: float    # PUP'd state volume moved this step
    failed_nodes: tuple[int, ...] = ()  # processors that died this step
    # hop-bytes degradation caused by this step's failures: cost right after
    # evacuating the victims minus cost just before the failure (same loads)
    hop_bytes_delta: float = 0.0


def _evacuate_tasks(
    graph: TaskGraph,
    dist: np.ndarray,
    placement: np.ndarray,
    victims: np.ndarray,
    alive: np.ndarray,
) -> None:
    """Move each victim task onto a surviving processor, in place.

    Greedy first-order choice, in ascending task order: each victim goes to
    the surviving processor minimizing the hop-bytes of its edges (neighbors
    at their current placement), ties broken toward the least-loaded
    processor, then the lowest id — fully deterministic.
    """
    weights = graph.vertex_weights
    alive_ids = np.flatnonzero(alive)
    loads = np.bincount(placement, weights=weights, minlength=dist.shape[0])
    for t in victims:
        t = int(t)
        nbrs, wts = graph.neighbor_slice(t)
        if len(nbrs):
            cost = wts @ dist[placement[nbrs]][:, alive_ids]
        else:
            cost = np.zeros(len(alive_ids))
        pick = np.lexsort((alive_ids, loads[alive_ids], cost))[0]
        dst = int(alive_ids[pick])
        loads[placement[t]] -= weights[t]
        loads[dst] += weights[t]
        placement[t] = dst


def run_dynamic_lb(
    workload: DriftingWorkload,
    topology: Topology,
    balancer: str,
    steps: int,
    lb_period: int = 5,
    state_bytes_per_task: float | np.ndarray = 1024.0,
    imbalance_tol: float = 1.10,
    seed: int | None = 0,
    node_failures: dict[int, int | list[int] | tuple[int, ...]] | None = None,
) -> list[LBStepReport]:
    """Drive the measure/balance/migrate loop; return the step trajectory.

    ``node_failures`` maps step number -> processor id(s) failing at the
    start of that step. A failed processor's tasks are *evacuated*: an
    incremental refine pass moves each one to the surviving processor where
    its communication costs the fewest hop-bytes (counted as migrations —
    restart state must move like any PUP'd object). Later balancing runs
    over the survivors only; the per-step report records which nodes died
    and the hop-bytes degradation the failure caused.
    """
    if steps < 1:
        raise MappingError(f"steps must be >= 1, got {steps}")
    if lb_period < 1:
        raise MappingError(f"lb_period must be >= 1, got {lb_period}")
    n = workload.num_tasks
    p = topology.num_nodes
    state_bytes = np.broadcast_to(
        np.asarray(state_bytes_per_task, dtype=np.float64), (n,)
    )

    failures_at: dict[int, tuple[int, ...]] = {}
    if node_failures:
        for step_no, nodes in node_failures.items():
            step_no = int(step_no)
            if not 0 <= step_no < steps:
                raise MappingError(
                    f"node failure scheduled at step {step_no}, outside "
                    f"[0, {steps})"
                )
            if isinstance(nodes, (int, np.integer)):
                nodes = (int(nodes),)
            nodes = tuple(int(v) for v in nodes)
            for v in nodes:
                if not 0 <= v < p:
                    raise MappingError(
                        f"failing node {v} out of range [0, {p})"
                    )
            failures_at[step_no] = nodes

    incremental: IncrementalRefineLB | None = None
    full_strategy: str | None = None
    if balancer == "incremental":
        incremental = IncrementalRefineLB(imbalance_tol=imbalance_tol)
    elif balancer.startswith("full:"):
        full_strategy = balancer.split(":", 1)[1]
    else:
        raise MappingError(
            f"balancer must be 'incremental' or 'full:<StrategyName>', got {balancer!r}"
        )

    from repro import obs

    # Communication is persistent (fixed edges), so hop-bytes of every step
    # routes through one shared context over the base graph instead of
    # re-deriving edge arrays from each step's load snapshot. The per-step
    # snapshots dedup the same edge list in the same order, so the values
    # are bitwise identical.
    ctx = context_for(workload.base, topology)
    dist = ctx.distance_matrix(np.float64)
    alive = np.ones(p, dtype=bool)
    any_failed = False

    placement = np.arange(n, dtype=np.int64) % p  # round-robin start
    reports: list[LBStepReport] = []
    for step in range(steps):
        graph = workload.advance()
        migrated = np.zeros(n, dtype=bool)

        # --- node failures fire at the start of the step -------------------
        failed_now = failures_at.get(step, ())
        hb_delta = 0.0
        if failed_now:
            hb_before = ctx.hop_bytes(placement)
            for v in failed_now:
                alive[v] = False
            if not alive.any():
                raise MappingError("every processor has failed")
            any_failed = True
            victims = np.flatnonzero(~alive[placement])
            if victims.size:
                placement = placement.copy()
                _evacuate_tasks(graph, dist, placement, victims, alive)
                migrated[victims] = True
            hb_delta = ctx.hop_bytes(placement) - hb_before
            prof = obs.active()
            if prof is not None:
                prof.count("faults.injected", len(failed_now))
                prof.count("runtime.evacuated_tasks", int(victims.size))
                prof.event(
                    "runtime.node_failed",
                    step=step,
                    nodes=list(failed_now),
                    evacuated=int(victims.size),
                    hop_bytes_delta=float(hb_delta),
                )

        balanced = step % lb_period == 0
        if balanced:
            if incremental is not None:
                mapping, mig = incremental.rebalance(
                    Mapping(graph, topology, placement),
                    allowed=alive if any_failed else None,
                )
                new_placement = np.asarray(mapping.assignment, dtype=np.int64)
            else:
                from repro.runtime.lbdb import LBDatabase
                from repro.runtime.strategies import run_strategy

                db = LBDatabase.from_taskgraph(graph, placement)
                new_placement = np.asarray(
                    run_strategy(full_strategy, db, topology, seed),
                    dtype=np.int64,
                )
                # Registry strategies remap over the pristine machine; any
                # task they put on a dead processor is evacuated right away
                # (and pays migration for it).
                if any_failed:
                    stranded = np.flatnonzero(~alive[new_placement])
                    if stranded.size:
                        _evacuate_tasks(graph, dist, new_placement, stranded, alive)
                mig = new_placement != placement
            migrated |= mig
            placement = new_placement
        reports.append(
            LBStepReport(
                step=step,
                balanced=balanced,
                imbalance=load_imbalance(graph, topology, placement),
                hop_bytes=ctx.hop_bytes(placement),
                migrated_tasks=int(migrated.sum()),
                migration_bytes=float(state_bytes[migrated].sum()),
                failed_nodes=tuple(failed_now),
                hop_bytes_delta=float(hb_delta),
            )
        )
    return reports
