"""Dynamic load balancing over time: measure → balance → migrate → repeat.

The Charm++ model the paper's framework lives in: loads drift while the
program runs; periodically the runtime consults a strategy and *migrates*
objects, paying for every moved object's serialized state (the PUP
framework's job). This module provides:

* :class:`DriftingWorkload` — a synthetic application whose per-object loads
  follow a bounded multiplicative random walk (communication stays fixed, as
  the paper's persistent-communication model assumes),
* :func:`run_dynamic_lb` — the driver: runs ``steps`` measurement steps,
  invoking a balancer every ``lb_period`` steps, and records the trajectory
  of load imbalance, hop-bytes, and migration volume.

Balancers come in two flavors, matching the production trade-off:

* ``"full:<StrategyName>"`` — remap from scratch with a registry strategy
  (best placement, most migration),
* ``"incremental"`` — :class:`~repro.mapping.incremental.IncrementalRefineLB`
  (fewest moves that restore balance, topology-aware destinations).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exceptions import MappingError, TaskGraphError
from repro.mapping.base import Mapping
from repro.mapping.incremental import IncrementalRefineLB
from repro.mapping.metrics import hop_bytes, load_imbalance
from repro.taskgraph.graph import TaskGraph
from repro.topology.base import Topology
from repro.utils.rng import as_rng

__all__ = ["DriftingWorkload", "LBStepReport", "run_dynamic_lb"]


class DriftingWorkload:
    """A task graph whose vertex loads drift step to step.

    Loads follow ``load *= exp(sigma * N(0,1))``, clipped to a band around
    the initial value so the instance stays balanceable; the communication
    structure is fixed (the paper's "persistent processes which have stable
    communication patterns").
    """

    def __init__(self, base: TaskGraph, drift_sigma: float = 0.1,
                 band: float = 8.0, seed: int | np.random.Generator | None = 0):
        if drift_sigma < 0:
            raise TaskGraphError(f"drift_sigma must be >= 0, got {drift_sigma}")
        if band < 1.0:
            raise TaskGraphError(f"band must be >= 1.0, got {band}")
        self._base = base
        self._sigma = float(drift_sigma)
        self._band = float(band)
        self._rng = as_rng(seed)
        self._loads = base.vertex_weights.copy()
        self._initial = np.maximum(base.vertex_weights.copy(), 1e-12)

    @property
    def num_tasks(self) -> int:
        """Number of tasks (fixed across steps)."""
        return self._base.num_tasks

    def advance(self) -> TaskGraph:
        """Drift loads one step; return the current task graph snapshot."""
        factors = np.exp(self._sigma * self._rng.standard_normal(len(self._loads)))
        self._loads = np.clip(
            self._loads * factors,
            self._initial / self._band,
            self._initial * self._band,
        )
        return TaskGraph(self._base.num_tasks, self._base.edges(), self._loads)


@dataclasses.dataclass
class LBStepReport:
    """Metrics of one measurement step."""

    step: int
    balanced: bool            # did a balancer run this step?
    imbalance: float          # after any balancing
    hop_bytes: float
    migrated_tasks: int
    migration_bytes: float    # PUP'd state volume moved this step


def run_dynamic_lb(
    workload: DriftingWorkload,
    topology: Topology,
    balancer: str,
    steps: int,
    lb_period: int = 5,
    state_bytes_per_task: float | np.ndarray = 1024.0,
    imbalance_tol: float = 1.10,
    seed: int | None = 0,
) -> list[LBStepReport]:
    """Drive the measure/balance/migrate loop; return the step trajectory."""
    if steps < 1:
        raise MappingError(f"steps must be >= 1, got {steps}")
    if lb_period < 1:
        raise MappingError(f"lb_period must be >= 1, got {lb_period}")
    n = workload.num_tasks
    p = topology.num_nodes
    state_bytes = np.broadcast_to(
        np.asarray(state_bytes_per_task, dtype=np.float64), (n,)
    )

    incremental: IncrementalRefineLB | None = None
    full_strategy: str | None = None
    if balancer == "incremental":
        incremental = IncrementalRefineLB(imbalance_tol=imbalance_tol)
    elif balancer.startswith("full:"):
        full_strategy = balancer.split(":", 1)[1]
    else:
        raise MappingError(
            f"balancer must be 'incremental' or 'full:<StrategyName>', got {balancer!r}"
        )

    placement = np.arange(n, dtype=np.int64) % p  # round-robin start
    reports: list[LBStepReport] = []
    for step in range(steps):
        graph = workload.advance()
        migrated = np.zeros(n, dtype=bool)
        balanced = step % lb_period == 0
        if balanced:
            if incremental is not None:
                mapping, migrated = incremental.rebalance(
                    Mapping(graph, topology, placement)
                )
                new_placement = mapping.assignment
            else:
                from repro.runtime.lbdb import LBDatabase
                from repro.runtime.strategies import run_strategy

                db = LBDatabase.from_taskgraph(graph, placement)
                new_placement = run_strategy(full_strategy, db, topology, seed)
                migrated = new_placement != placement
            placement = np.asarray(new_placement, dtype=np.int64)
        reports.append(
            LBStepReport(
                step=step,
                balanced=balanced,
                imbalance=load_imbalance(graph, topology, placement),
                hop_bytes=hop_bytes(graph, topology, placement),
                migrated_tasks=int(migrated.sum()),
                migration_bytes=float(state_bytes[migrated].sum()),
            )
        )
    return reports
