"""A minimal migratable-objects (chare) programming model.

Charm++ programs are collections of *chares* — migratable objects whose
loads and communication the runtime measures during execution and feeds to
the load-balancing framework. This module provides the instrumentation side
of that model: user code runs its "iterations" against a :class:`ChareArray`
(doing work via :meth:`ChareArray.work` and messaging via
:meth:`ChareArray.send`), and the array accumulates everything into an
:class:`~repro.runtime.lbdb.LBDatabase` ready for dumping or balancing.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import TaskGraphError
from repro.runtime.lbdb import LBDatabase

__all__ = ["ChareArray"]


class ChareArray:
    """An indexed collection of migratable compute objects.

    Parameters
    ----------
    num_chares:
        Number of objects in the array.
    num_processors:
        Machine size; the initial placement is round-robin (Charm++'s
        default block/cyclic placement family).
    """

    def __init__(self, num_chares: int, num_processors: int):
        if num_chares < 1:
            raise TaskGraphError(f"need at least one chare, got {num_chares}")
        if num_processors < 1:
            raise TaskGraphError(f"need at least one processor, got {num_processors}")
        self._n = int(num_chares)
        self._p = int(num_processors)
        self._db = LBDatabase(self._n)
        self._placement = np.arange(self._n, dtype=np.int64) % self._p
        self._db.set_placement(self._placement)

    @property
    def num_chares(self) -> int:
        """Number of objects in the array."""
        return self._n

    @property
    def num_processors(self) -> int:
        """Machine size this array runs on."""
        return self._p

    @property
    def database(self) -> LBDatabase:
        """The accumulated load-balancing database."""
        return self._db

    @property
    def placement(self) -> np.ndarray:
        """Current chare → processor placement (copied)."""
        return self._placement.copy()

    # ------------------------------------------------------------- execution
    def work(self, chare: int, load: float) -> None:
        """Record that ``chare`` performed ``load`` units of computation."""
        self._db.record_load(chare, load)

    def send(self, src: int, dst: int, num_bytes: float) -> None:
        """Record a message of ``num_bytes`` from ``src`` to ``dst``."""
        self._db.record_comm(src, dst, num_bytes)

    def run_iteration(self, body: Callable[[int], None] | None = None) -> None:
        """Run one measured iteration.

        ``body(chare_id)`` is invoked for every chare (it should call
        :meth:`work` / :meth:`send`); afterwards the measurement step closes.
        """
        if body is not None:
            for c in range(self._n):
                body(c)
        self._db.end_step()

    # ------------------------------------------------------------- migration
    def migrate(self, new_placement) -> None:
        """Apply a new placement (the PUP-and-move step of Charm++ LB).

        All chares are migratable; the array simply adopts the assignment
        computed by a strategy.
        """
        arr = np.asarray(new_placement, dtype=np.int64)
        if arr.shape != (self._n,):
            raise TaskGraphError(f"placement must have shape ({self._n},)")
        if len(arr) and (arr.min() < 0 or arr.max() >= self._p):
            raise TaskGraphError("placement references processors outside the machine")
        self._placement = arr.copy()
        self._db.set_placement(self._placement)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChareArray n={self._n} on p={self._p}>"
