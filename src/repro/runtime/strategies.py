"""Charm++ strategy names, resolved through the unified engine registry.

Historically this module carried its own factory table; it is now a thin
compatibility veneer over :mod:`repro.engine.specs` — the *single* strategy
registry. :data:`STRATEGIES` maps each Charm++ name to its canonical mapper
spec string (``"TopoLB" -> "pipeline:inner=topolb"``), and
:func:`get_strategy` accepts either a name or any spec string, so runtime
callers (``full:<strategy>`` balancer specs included) gained spec-string
configurability for free.

Registered names:

``RandomLB``
    Uniformly random placement (the paper's baseline).
``GreedyLB``
    Charm++'s load-greedy strategy: balances compute load, oblivious to both
    communication and topology — "essentially random placement" networkwise.
``TopoCentLB`` / ``TopoLB`` / ``TopoLB3``
    The paper's topology-aware strategies (TopoLB3 = third-order estimator).
``RefineTopoLB``
    TopoLB followed by the pairwise-swap refiner (the paper applies the
    refiner after an initial topology-aware balancer).
"""

from __future__ import annotations

import numpy as np

from repro.engine.specs import STRATEGY_SPECS, mapper_from_spec
from repro.exceptions import MappingError, SpecError
from repro.mapping.base import Mapper
from repro.runtime.lbdb import LBDatabase
from repro.topology.base import Topology

__all__ = ["STRATEGIES", "get_strategy", "run_strategy"]


#: Charm++ name -> canonical mapper spec (the engine's alias table). Kept
#: under the old name so ``sorted(STRATEGIES)`` / ``name in STRATEGIES``
#: keep working; construction goes through :func:`get_strategy`.
STRATEGIES: dict[str, str] = STRATEGY_SPECS


def get_strategy(name: str, seed: int | None = None) -> Mapper:
    """Instantiate a strategy by Charm++ name *or* mapper spec string."""
    try:
        return mapper_from_spec(name, seed)
    except SpecError as exc:
        raise MappingError(str(exc)) from None


def run_strategy(
    name: str, database: LBDatabase, topology: Topology, seed: int | None = None
) -> np.ndarray:
    """Run a named strategy on a load database; return the new placement."""
    graph = database.to_taskgraph()
    mapper = get_strategy(name, seed)
    return mapper.map(graph, topology).assignment.copy()
