"""Registry of load-balancing strategies under their Charm++ names.

Every strategy consumes an :class:`~repro.runtime.lbdb.LBDatabase` plus a
:class:`~repro.topology.Topology` and returns an object → processor
assignment. Object counts larger than the machine go through the two-phase
pipeline (partition, coalesce, map) automatically, exactly as the paper's
TopoLB/TopoCentLB implementations do.

Registered names:

``RandomLB``
    Uniformly random placement (the paper's baseline).
``GreedyLB``
    Charm++'s load-greedy strategy: balances compute load, oblivious to both
    communication and topology — "essentially random placement" networkwise.
``TopoCentLB`` / ``TopoLB`` / ``TopoLB3``
    The paper's topology-aware strategies (TopoLB3 = third-order estimator).
``RefineTopoLB``
    TopoLB followed by the pairwise-swap refiner (the paper applies the
    refiner after an initial topology-aware balancer).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.base import Mapper
from repro.mapping.estimation import EstimatorOrder
from repro.mapping.pipeline import TwoPhaseMapper
from repro.mapping.random_map import RandomMapper
from repro.mapping.refine import RefineTopoLB
from repro.mapping.topocentlb import TopoCentLB
from repro.mapping.topolb import TopoLB
from repro.partition.greedy import GreedyPartitioner
from repro.partition.multilevel import MultilevelPartitioner
from repro.runtime.lbdb import LBDatabase
from repro.topology.base import Topology

__all__ = ["STRATEGIES", "get_strategy", "run_strategy"]


def _pipeline(mapper: Mapper, refiner: RefineTopoLB | None = None) -> TwoPhaseMapper:
    return TwoPhaseMapper(
        partitioner=MultilevelPartitioner(), mapper=mapper, refiner=refiner
    )


def _greedylb_factory(seed: int | None) -> Mapper:
    # GreedyLB balances load and then scatters groups over processors with no
    # topology awareness; group g landing on processor g of an arbitrary
    # numbering is topologically random for any structured pattern.
    return TwoPhaseMapper(
        partitioner=GreedyPartitioner(),
        mapper=RandomMapper(seed=seed),
    )


#: name -> factory(seed) -> Mapper (all accept n == p directly; n > p goes
#: through the two-phase pipeline inside TwoPhaseMapper).
STRATEGIES: dict[str, Callable[[int | None], Mapper]] = {
    "RandomLB": lambda seed: _pipeline(RandomMapper(seed=seed)),
    "GreedyLB": _greedylb_factory,
    "TopoCentLB": lambda seed: _pipeline(TopoCentLB()),
    "TopoLB": lambda seed: _pipeline(TopoLB(order=EstimatorOrder.SECOND)),
    "TopoLB1": lambda seed: _pipeline(TopoLB(order=EstimatorOrder.FIRST)),
    "TopoLB3": lambda seed: _pipeline(TopoLB(order=EstimatorOrder.THIRD)),
    "RefineTopoLB": lambda seed: _pipeline(
        TopoLB(order=EstimatorOrder.SECOND), refiner=RefineTopoLB(seed=seed or 0)
    ),
    "RefineTopoLB3": lambda seed: _pipeline(
        TopoLB(order=EstimatorOrder.THIRD), refiner=RefineTopoLB(seed=seed or 0)
    ),
    "AnnealLB": lambda seed: _pipeline(_anneal(seed)),
    "GeneticLB": lambda seed: _pipeline(_genetic(seed)),
    "BokhariLB": lambda seed: _pipeline(_bokhari(seed)),
    "RecursiveEmbedLB": lambda seed: _pipeline(_recursive_embed(seed)),
    "LinearOrderLB": lambda seed: _pipeline(_linear_order()),
    "HybridTopoLB": lambda seed: _pipeline(_hybrid(seed)),
}


def _anneal(seed: int | None):
    from repro.mapping.annealing import SimulatedAnnealingMapper

    return SimulatedAnnealingMapper(seed=seed or 0)


def _genetic(seed: int | None):
    from repro.mapping.evolutionary import GeneticMapper
    from repro.mapping.topolb import TopoLB

    # Seeded population (Orduña-style) so the strategy is usable at LB time.
    return GeneticMapper(seed=seed or 0, seed_mapper=TopoLB())


def _bokhari(seed: int | None):
    from repro.mapping.bokhari import BokhariMapper

    return BokhariMapper(seed=seed or 0)


def _recursive_embed(seed: int | None):
    from repro.mapping.recursive_embedding import RecursiveEmbeddingMapper

    return RecursiveEmbeddingMapper(seed=seed or 0)


def _linear_order():
    from repro.mapping.linear_order import LinearOrderingMapper

    return LinearOrderingMapper()


def _hybrid(seed: int | None):
    from repro.mapping.hybrid import HybridTopoLB

    return HybridTopoLB(seed=seed or 0)


def get_strategy(name: str, seed: int | None = None) -> Mapper:
    """Instantiate a registered strategy by name."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise MappingError(
            f"unknown strategy {name!r}; available: {sorted(STRATEGIES)}"
        ) from None
    return factory(seed)


def run_strategy(
    name: str, database: LBDatabase, topology: Topology, seed: int | None = None
) -> np.ndarray:
    """Run a named strategy on a load database; return the new placement."""
    graph = database.to_taskgraph()
    mapper = get_strategy(name, seed)
    return mapper.map(graph, topology).assignment.copy()
