"""Charm++-style load-balancing runtime substrate.

The paper's evaluation mechanism (Section 5.1) logs the load database of a
real run (``+LBDump``) and replays it offline under different strategies
(``+LBSim``), so every strategy is compared on *exactly* the same load
scenario. This package reproduces that contract:

* :class:`ChareArray` — a migratable-objects programming model stub that
  measures per-object loads and pairwise communication as the "program" runs,
* :class:`LBDatabase` — the measured load/communication database with JSON
  dump/load (the ``+LBDump`` file analog),
* :func:`get_strategy` / :data:`STRATEGIES` — the registry of load-balancing
  strategies by their Charm++ names (RandomLB, GreedyLB, TopoCentLB, TopoLB,
  RefineTopoLB, ...),
* :func:`simulate_strategy` — the ``+LBSim`` analog: replay a database under
  a named strategy on a given machine and report mapping-quality metrics.
"""

from repro.runtime.chare import ChareArray
from repro.runtime.lbdb import LBDatabase
from repro.runtime.strategies import STRATEGIES, get_strategy
from repro.runtime.simulation import simulate_strategy, compare_strategies
from repro.runtime.dynamic import DriftingWorkload, LBStepReport, run_dynamic_lb

__all__ = [
    "ChareArray",
    "LBDatabase",
    "STRATEGIES",
    "get_strategy",
    "simulate_strategy",
    "compare_strategies",
    "DriftingWorkload",
    "LBStepReport",
    "run_dynamic_lb",
]
