"""Offline strategy replay — the ``+LBSim`` analog (Section 5.1).

A load scenario captured once (an :class:`~repro.runtime.lbdb.LBDatabase`,
possibly read from a dump file) is replayed under one or many strategies on
the same machine, and mapping-quality metrics are reported. Because every
strategy sees the identical database, comparisons are free of the
"non-deterministic interleaving of events" the paper calls out as the reason
actual re-runs can't be compared directly.
"""

from __future__ import annotations

from pathlib import Path

from repro.mapping.base import Mapping
from repro.mapping.context import context_for
from repro.mapping.metrics import metrics_block
from repro.runtime.lbdb import LBDatabase
from repro.runtime.strategies import get_strategy
from repro.topology.base import Topology

__all__ = ["simulate_strategy", "replay_strategy", "compare_strategies"]


def simulate_strategy(
    database: LBDatabase | str | Path,
    topology: Topology,
    strategy: str,
    seed: int | None = None,
) -> dict[str, float]:
    """Replay ``database`` under ``strategy``; return mapping-quality metrics.

    ``database`` may be an in-memory :class:`LBDatabase` or a path to a dump
    file. The report contains hop-bytes, hops-per-byte, load imbalance and
    dilation statistics of the placement the strategy produced.
    """
    return replay_strategy(database, topology, strategy, seed)[0]


def replay_strategy(
    database: LBDatabase | str | Path,
    topology: Topology,
    strategy: str,
    seed: int | None = None,
) -> tuple[dict[str, float], Mapping]:
    """Like :func:`simulate_strategy` but also returns the produced mapping,
    so callers that need the placement (the CLI, the profiler's netsim
    replay) run the strategy exactly once."""
    if not isinstance(database, LBDatabase):
        database = LBDatabase.load(database)
    graph = database.to_taskgraph()
    mapper = get_strategy(strategy, seed)
    ctx = context_for(graph, topology)
    mapping = mapper.map(graph, topology)
    placement = mapping.assignment
    # One shared-context metrics block instead of four separate distance
    # gathers; values are bitwise identical to the individual metric calls.
    block = metrics_block(graph, topology, placement, ctx=ctx)
    report = {
        "strategy": strategy,
        "num_objects": graph.num_tasks,
        "num_processors": topology.num_nodes,
        "hop_bytes": block["hop_bytes"],
        "hops_per_byte": block["hops_per_byte"],
        "load_imbalance": block["load_imbalance"],
        "max_dilation": block["max_dilation"],
        "mean_dilation": block["mean_dilation"],
    }
    # The paper evaluates hops-per-byte on the coalesced (group-level) graph
    # — intra-group bytes never enter the network and are excluded. Report
    # it whenever the strategy went through the two-phase pipeline.
    group_mapping = getattr(mapper, "last_group_mapping", None)
    if group_mapping is not None:
        report["group_hops_per_byte"] = group_mapping.hops_per_byte
        report["group_hop_bytes"] = group_mapping.hop_bytes
    return report, mapping


def compare_strategies(
    database: LBDatabase | str | Path,
    topology: Topology,
    strategies: list[str],
    seed: int | None = None,
) -> list[dict[str, float]]:
    """Replay the same database under several strategies (one report each)."""
    if not isinstance(database, LBDatabase):
        database = LBDatabase.load(database)
    return [simulate_strategy(database, topology, s, seed) for s in strategies]
