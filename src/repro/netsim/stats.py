"""Post-simulation statistics helpers."""

from __future__ import annotations

import numpy as np

from repro.netsim.simulator import NetworkSimulator

__all__ = ["summarize_latencies", "link_utilization"]


def summarize_latencies(sim: NetworkSimulator) -> dict[str, float]:
    """Latency summary of all delivered messages (microseconds)."""
    lat = sim.stats.latencies()
    if len(lat) == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": float(len(lat)),
        "mean": float(lat.mean()),
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "max": float(lat.max()),
    }


def link_utilization(sim: NetworkSimulator) -> dict[str, float]:
    """Link occupancy summary over the simulated interval.

    Utilization is occupancy time / total simulated time; the *max* link
    utilization is the contention bottleneck (a value near 1.0 means some
    link ran saturated — the congested regime of Figure 7).
    """
    total_time = sim.now
    busy = np.asarray(list(sim.link_busy_times().values()), dtype=np.float64)
    if total_time <= 0 or len(busy) == 0:
        return {"links_used": float(len(busy)), "mean": 0.0, "max": 0.0}
    util = busy / total_time
    return {
        "links_used": float(len(busy)),
        "mean": float(util.mean()),
        "max": float(util.max()),
    }
