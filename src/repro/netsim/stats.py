"""Post-simulation statistics helpers."""

from __future__ import annotations

import numpy as np

from repro.netsim.simulator import NetworkSimulator, channel_name

__all__ = ["summarize_latencies", "link_utilization", "link_summary",
           "tail_summary"]


def summarize_latencies(sim: NetworkSimulator) -> dict[str, float]:
    """Latency summary of all delivered messages (microseconds)."""
    lat = sim.stats.latencies()
    if len(lat) == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": float(len(lat)),
        "mean": float(lat.mean()),
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "max": float(lat.max()),
    }


def link_utilization(sim: NetworkSimulator) -> dict[str, float]:
    """Link occupancy summary over the simulated interval.

    Utilization is occupancy time / total simulated time; the *max* link
    utilization is the contention bottleneck (a value near 1.0 means some
    link ran saturated — the congested regime of Figure 7).
    """
    total_time = sim.now
    busy = np.asarray(list(sim.link_busy_times().values()), dtype=np.float64)
    if total_time <= 0 or len(busy) == 0:
        return {"links_used": float(len(busy)), "mean": 0.0, "max": 0.0}
    util = busy / total_time
    return {
        "links_used": float(len(busy)),
        "mean": float(util.mean()),
        "max": float(util.max()),
    }


def tail_summary(sim: NetworkSimulator,
                 iteration_times=None) -> dict:
    """Tail-latency report of one simulation — the overload scorecard.

    Returns a JSON-able dict with overall delivery percentiles
    (p50/p99/p999), per-size-class percentile rows, drop/retransmit/ECN
    counters, and (when ``iteration_times`` from an
    :class:`~repro.netsim.appsim.AppResult` is given) the
    barrier-synchronized iteration-tail distribution. This is the payload
    embedded as the profile's ``netsim.tail`` section and rendered by
    ``--stats``.
    """
    stats = sim.stats
    pct = stats.percentiles()
    out = {
        "delivered": int(stats.count),
        "dropped": int(stats.dropped),
        "retransmits": int(stats.retransmits),
        "buffer_drops": int(stats.buffer_drops),
        "ecn_marks": int(stats.ecn_marks),
        "ecn_delivered": int(stats.ecn_delivered),
        "latency": {
            "p50": pct["p50"],
            "p99": pct["p99"],
            "p999": pct["p999"],
            "mean": stats.mean_latency,
            "max": stats.max_latency,
        },
        "classes": stats.class_summary(),
    }
    if iteration_times is not None:
        its = np.asarray(iteration_times, dtype=np.float64)
        if len(its):
            out["iterations"] = {
                "count": int(len(its)),
                "p50": float(np.percentile(its, 50)),
                "p99": float(np.percentile(its, 99)),
                "max": float(its.max()),
                "mean": float(its.mean()),
            }
    return out


def link_summary(sim: NetworkSimulator, top: int = 10) -> dict:
    """Per-link load summary in the shape of a profile's ``netsim`` section.

    Aggregates bytes carried, occupancy, utilization, and peak queue depths
    over every channel the simulation touched, plus the ``top`` hottest links
    by bytes — the JSON-able payload ``repro-profile-v1`` embeds (see
    :mod:`repro.obs.profile`).
    """
    bytes_by_link = sim.link_bytes()
    busy_by_link = sim.link_busy_times()
    peaks_by_link = sim.link_queue_peaks()
    sim_time = float(sim.now)
    if not bytes_by_link:
        return {
            "mode": "des",
            "links_used": 0,
            "total_bytes": 0.0,
            "max_link_bytes": 0.0,
            "mean_utilization": 0.0,
            "max_utilization": 0.0,
            "max_queue_depth": 0,
            "sim_time_us": sim_time,
            "top_links": [],
        }
    loads = np.asarray(list(bytes_by_link.values()), dtype=np.float64)
    busy = np.asarray(list(busy_by_link.values()), dtype=np.float64)
    util = busy / sim_time if sim_time > 0 else np.zeros_like(busy)
    hottest = sorted(bytes_by_link, key=lambda k: (-bytes_by_link[k], str(k)))[:top]
    return {
        "mode": "des",
        "links_used": len(bytes_by_link),
        "total_bytes": float(loads.sum()),
        "max_link_bytes": float(loads.max()),
        "mean_utilization": float(util.mean()),
        "max_utilization": float(util.max()),
        "max_queue_depth": int(max(peaks_by_link.values())),
        "sim_time_us": sim_time,
        "top_links": [
            {
                "link": channel_name(link),
                "bytes": float(bytes_by_link[link]),
                "busy_us": float(busy_by_link[link]),
                "max_queue_depth": int(peaks_by_link[link]),
            }
            for link in hottest
        ],
    }
