"""Flow-level contention estimator — the fast alternative to the DES.

The per-packet DES (:class:`~repro.netsim.simulator.NetworkSimulator`) is
the ground truth for contention, but it walks every message hop by hop
through an event queue: intractable at the 10^5-task scales the multilevel
mapper reaches. Deveci et al. and Glantz/Meyerhenke/Noe evaluate mappings
with cheap static per-link load models instead; this module is that model
for the reproduction.

The estimator charges every inter-processor message's bytes to the directed
links of its deterministic dimension-ordered route and derives:

* ``link_bytes`` / ``link_messages`` — offered load per directed link,
* ``max_link_bytes`` — the contention bottleneck (what RefineTopoLB's
  hop-bytes objective is a proxy for),
* ``makespan_lower_bound`` — a provable lower bound on the DES completion
  time of :class:`~repro.netsim.appsim.IterativeApplication` under the same
  parameters (see below),
* a per-link load histogram for contention-spread comparisons.

On :class:`~repro.topology.grid.GridTopology` (mesh and torus — the paper's
machines) the routes are never materialised: dimension-ordered routing
means a message crosses, along each axis, one contiguous (possibly
wrapping) run of same-direction links whose off-axis coordinates are the
destination's for already-corrected axes and the source's for the rest. The
per-axis loads are therefore accumulated with wrap-split difference arrays
and one cumulative sum per direction — O(messages · ndim + links) total,
vectorized over the task graph's edge arrays. Every other machine — the
hypercube, arbitrary graphs, and the *indirect* fat-tree/dragonfly whose
routes traverse switch-level links — takes the generic link-indexed path:
one ``route_links`` walk per unique processor pair, accumulated over the
links of ``topology.link_graph()`` (still DES-free).

Makespan bound (times in microseconds, the DES convention):

* every transmission occupies its link for ``alpha + size / bandwidth``
  and a link serializes, so DES time >= ``iterations * max over links of
  (alpha * messages + bytes / bandwidth)``;
* a sender's per-iteration computes serialize, and cut-through delivery
  takes ``hops * alpha + size / bandwidth`` after the send, so DES time
  >= ``iterations * min_compute + max over messages of the no-load
  latency`` (local messages contribute ``local_latency``).

The bound is exact only in the uncontended regime; under contention the
DES grows faster (FIFO queueing) while the bound grows linearly — the flow
estimate *ranks* mappings correctly (rank-correlation >= 0.9 against the
DES on the small-machine validation suite; see docs/ARCHITECTURE.md for
the validity envelope) but does not predict saturated latencies.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.exceptions import SimulationError
from repro.mapping.base import Mapping
from repro.topology.base import Topology
from repro.topology.grid import GridTopology

__all__ = ["FlowResult", "flow_evaluate", "flow_summary", "spearman"]


@dataclasses.dataclass
class FlowResult:
    """Static flow-level contention estimate of one mapped application.

    ``link_bytes`` / ``link_messages`` are *per-iteration* offered loads on
    the directed links the traffic touches (zero-load links are omitted,
    matching ``NetworkSimulator.link_bytes()`` which only reports links that
    carried traffic). Scalars already account for ``iterations``.
    """

    iterations: int
    bandwidth: float
    alpha: float
    link_bytes: dict[tuple[int, int], float]
    link_messages: dict[tuple[int, int], int]
    #: bytes crossing the busiest link over the whole run
    max_link_bytes: float
    #: network bytes-on-links over the whole run (== hop_bytes * iterations)
    total_bytes: float
    #: lower bound on the DES completion time, microseconds
    makespan_lower_bound: float
    #: max over links of per-iteration occupancy, microseconds
    bottleneck_time_us: float
    #: max over messages of uncontended delivery latency, microseconds
    no_load_latency_us: float
    #: mean over messages of uncontended delivery latency, microseconds
    mean_no_load_latency_us: float
    #: directed messages per iteration (local + remote)
    messages_per_iteration: int

    @property
    def links_used(self) -> int:
        return len(self.link_bytes)

    def load_histogram(self, bins: int = 10) -> dict:
        """Histogram of whole-run per-link byte loads (used links only)."""
        loads = np.fromiter(
            self.link_bytes.values(), dtype=np.float64, count=len(self.link_bytes)
        ) * self.iterations
        if len(loads) == 0:
            return {"counts": [], "edges": [], "mean": 0.0, "max": 0.0}
        counts, edges = np.histogram(loads, bins=bins)
        return {
            "counts": [int(c) for c in counts],
            "edges": [float(e) for e in edges],
            "mean": float(loads.mean()),
            "max": float(loads.max()),
        }


def _directed_messages(
    mapping: Mapping, message_bytes: float | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(src_proc, dst_proc, size) for every directed inter-task message of
    one iteration — both directions of each undirected task edge, matching
    :class:`~repro.netsim.appsim.IterativeApplication`'s traffic (each edge
    of weight ``w`` carries ``w/2`` per direction unless overridden)."""
    u, v, w = mapping.graph.edge_arrays()
    assign = np.asarray(mapping.assignment)
    if message_bytes is None:
        sizes = np.asarray(w, dtype=np.float64) / 2.0
    else:
        if message_bytes <= 0:
            raise SimulationError(
                f"message_bytes must be positive, got {message_bytes}"
            )
        sizes = np.full(len(w), float(message_bytes))
    src = np.concatenate((assign[u], assign[v]))
    dst = np.concatenate((assign[v], assign[u]))
    return src, dst, np.concatenate((sizes, sizes))


def _grid_link_loads(
    topo: GridTopology, src: np.ndarray, dst: np.ndarray, sizes: np.ndarray
) -> tuple[dict[tuple[int, int], float], dict[tuple[int, int], int]]:
    """Per-link loads under dimension-ordered routing, without routes.

    For each axis ``a`` (corrected in axis order), a message's off-axis
    position is ``dst`` coordinates for axes < a and ``src`` coordinates
    for axes > a; along the axis it covers one contiguous run of links in
    one direction (the shorter way around on a torus, ties +1 — exactly
    ``GridTopology.route``). Runs are accumulated per (line, direction)
    with difference arrays, wrap-split on the torus, then one cumsum per
    line turns run endpoints into per-position loads.
    """
    shape = topo.shape
    ndim = topo.ndim
    coords = topo.coords_array()
    csrc = coords[src].astype(np.int64)
    cdst = coords[dst].astype(np.int64)

    bytes_out: dict[tuple[int, int], float] = {}
    msgs_out: dict[tuple[int, int], int] = {}

    for axis in range(ndim):
        s = shape[axis]
        if s <= 1:
            continue
        a_src = csrc[:, axis]
        a_dst = cdst[:, axis]
        moving = a_src != a_dst
        if not moving.any():
            continue
        m_src = a_src[moving]
        m_dst = a_dst[moving]
        m_sizes = sizes[moving]

        # Off-axis coordinates of the line each message traverses: already
        # corrected axes sit at the destination, the rest at the source.
        line_coords = csrc[moving].copy()
        if axis:
            line_coords[:, :axis] = cdst[moving][:, :axis]
        line_coords[:, axis] = 0
        line = np.ravel_multi_index(
            tuple(line_coords[:, k] for k in range(ndim)), shape
        )

        if topo.wraparound:
            fwd_len = (m_dst - m_src) % s
            forward = fwd_len <= s - fwd_len  # route()'s tie goes +1
            run_len = np.where(forward, fwd_len, s - fwd_len)
        else:
            forward = m_dst > m_src
            run_len = np.abs(m_dst - m_src)

        # A forward run of length L from position c covers forward links at
        # positions c .. c+L-1 (mod s); a backward run from c covers
        # backward links at positions c-L .. c-1 (mod s) when backward link
        # i is the directed link (i+1 -> i). Either way the covered link
        # positions are the half-open range [start, start+L) mod s.
        start = np.where(forward, m_src, (m_src - run_len) % s)
        stride = int(np.ravel_multi_index(
            tuple(1 if k == axis else 0 for k in range(ndim)), shape
        ))
        for is_fwd in (True, False):
            dsel = forward == is_fwd
            if not dsel.any():
                continue
            st = start[dsel]
            base = line[dsel]
            end = st + run_len[dsel]
            sz = m_sizes[dsel]
            # Difference arrays over the flat node-id grid: ``line`` has the
            # axis coordinate zeroed, so position t along the axis is
            # ``base + t * stride``. A run ending at the line boundary
            # (end == s) needs no subtraction — the flat index would alias
            # into the next line — and a wrapping run (end > s) splits into
            # [start, s) plus [0, end - s).
            diff_b = np.zeros(topo.num_nodes, dtype=np.float64)
            diff_m = np.zeros(topo.num_nodes, dtype=np.int64)
            np.add.at(diff_b, base + st * stride, sz)
            np.add.at(diff_m, base + st * stride, 1)
            cut = end < s
            np.add.at(diff_b, (base + end * stride)[cut], -sz[cut])
            np.add.at(diff_m, (base + end * stride)[cut], -1)
            wraps = end > s
            if wraps.any():
                np.add.at(diff_b, base[wraps], sz[wraps])
                np.add.at(diff_m, base[wraps], 1)
                np.add.at(diff_b, base[wraps] + (end[wraps] - s) * stride,
                          -sz[wraps])
                np.add.at(diff_m, base[wraps] + (end[wraps] - s) * stride,
                          -1)
            # One cumsum per line: reshape and accumulate along the axis.
            loads = np.cumsum(diff_b.reshape(shape), axis=axis)
            counts = np.cumsum(diff_m.reshape(shape), axis=axis)

            nz = np.nonzero(counts)
            if not len(nz[0]):
                continue
            from_ids = np.ravel_multi_index(nz, shape)
            nbr = list(nz)
            if is_fwd:
                nbr[axis] = (nz[axis] + 1) % s
                to_ids = np.ravel_multi_index(tuple(nbr), shape)
                pairs = zip(from_ids, to_ids)
            else:
                # backward link i is (i+1 -> i): the stored position is the
                # lower endpoint.
                nbr[axis] = (nz[axis] + 1) % s
                to_ids = np.ravel_multi_index(tuple(nbr), shape)
                pairs = zip(to_ids, from_ids)
            lvals = loads[nz]
            cvals = counts[nz]
            for (fr, to), lb, cm in zip(pairs, lvals, cvals):
                key = (int(fr), int(to))
                bytes_out[key] = bytes_out.get(key, 0.0) + float(lb)
                msgs_out[key] = msgs_out.get(key, 0) + int(cm)
    return bytes_out, msgs_out


def _generic_link_loads(
    topo: Topology, src: np.ndarray, dst: np.ndarray, sizes: np.ndarray
) -> tuple[dict[tuple[int, int], float], dict[tuple[int, int], int]]:
    """Generic link-indexed accumulation for non-grid machines.

    Works over the links of ``topo.link_graph()`` — including the
    switch-level links of indirect machines (fat-tree, dragonfly), whose
    routes the grid fast path cannot express. Each unique ``(src, dst)``
    processor pair is routed once and its aggregate bytes/message count
    charged to every directed link of the route, so the cost is
    O(unique pairs * route length) rather than O(messages * route length).
    """
    bytes_out: dict[tuple[int, int], float] = {}
    msgs_out: dict[tuple[int, int], int] = {}
    if not len(src):
        return bytes_out, msgs_out
    p = topo.num_nodes
    keys = src.astype(np.int64) * p + dst.astype(np.int64)
    order = np.argsort(keys, kind="stable")
    uniq, starts = np.unique(keys[order], return_index=True)
    byte_sums = np.add.reduceat(sizes[order], starts)
    counts = np.diff(np.append(starts, len(keys)))
    for key, b, c in zip(uniq, byte_sums, counts):
        s, d = divmod(int(key), p)
        for link in topo.route_links(s, d):
            bytes_out[link] = bytes_out.get(link, 0.0) + float(b)
            msgs_out[link] = msgs_out.get(link, 0) + int(c)
    return bytes_out, msgs_out


def flow_evaluate(
    mapping: Mapping,
    iterations: int = 1,
    message_bytes: float | None = None,
    bandwidth: float = 1000.0,
    alpha: float = 0.1,
    local_latency: float = 0.05,
    compute_time: float = 1.0,
) -> FlowResult:
    """Flow-level contention estimate of ``mapping``'s iterative traffic.

    Parameter defaults match :class:`~repro.netsim.simulator.
    NetworkSimulator` and :class:`~repro.netsim.appsim.IterativeApplication`
    so the makespan lower bound is directly comparable to
    ``IterativeApplication.run().total_time`` on the same mapping.
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    if bandwidth <= 0:
        raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
    if alpha < 0 or local_latency < 0:
        raise SimulationError("latencies must be non-negative")
    if compute_time < 0:
        raise SimulationError("compute_time must be non-negative")

    topo = mapping.topology
    src, dst, sizes = _directed_messages(mapping, message_bytes)
    remote = src != dst
    r_src, r_dst, r_sizes = src[remote], dst[remote], sizes[remote]

    if isinstance(topo, GridTopology):
        link_bytes, link_msgs = _grid_link_loads(topo, r_src, r_dst, r_sizes)
    else:
        link_bytes, link_msgs = _generic_link_loads(topo, r_src, r_dst, r_sizes)

    # Per-iteration bottleneck: the busiest link's occupancy (a link
    # serializes, charging alpha + size/bandwidth per message).
    bottleneck = 0.0
    max_bytes = 0.0
    total_bytes = 0.0
    for link, b in link_bytes.items():
        occ = alpha * link_msgs[link] + b / bandwidth
        if occ > bottleneck:
            bottleneck = occ
        if b > max_bytes:
            max_bytes = b
        total_bytes += b

    # Uncontended delivery latency of the slowest message (cut-through:
    # hops * alpha + size / bandwidth; co-located: local_latency).
    no_load = local_latency if (~remote).any() else 0.0
    lat_sum = float((~remote).sum()) * local_latency
    if len(r_src):
        if isinstance(topo, GridTopology):
            coords = topo.coords_array().astype(np.int64)
            delta = np.abs(coords[r_src] - coords[r_dst])
            if topo.wraparound:
                delta = np.minimum(
                    delta, np.asarray(topo.shape, dtype=np.int64) - delta
                )
            hops = delta.sum(axis=1).astype(np.float64)
        else:
            hops = np.fromiter(
                (topo.distance(int(s), int(d))
                 for s, d in zip(r_src, r_dst)),
                dtype=np.float64, count=len(r_src),
            )
        lats = hops * alpha + r_sizes / bandwidth
        no_load = max(no_load, float(lats.max()))
        lat_sum += float(lats.sum())
    num_msgs = len(src)
    mean_no_load = lat_sum / num_msgs if num_msgs else 0.0

    makespan = max(
        iterations * bottleneck,
        iterations * compute_time + no_load,
    )
    return FlowResult(
        iterations=int(iterations),
        bandwidth=float(bandwidth),
        alpha=float(alpha),
        link_bytes=link_bytes,
        link_messages=link_msgs,
        max_link_bytes=max_bytes * iterations,
        total_bytes=total_bytes * iterations,
        makespan_lower_bound=float(makespan),
        bottleneck_time_us=float(bottleneck),
        no_load_latency_us=float(no_load),
        mean_no_load_latency_us=float(mean_no_load),
        messages_per_iteration=int(num_msgs),
    )


def flow_summary(result: FlowResult, top: int = 10) -> dict:
    """JSON-able per-link summary in the shape of ``stats.link_summary``.

    Where the DES summary reports *measured* occupancy/utilization, the
    flow summary reports offered load: ``mean/max_utilization`` here are
    per-link occupancy divided by the makespan lower bound — 1.0 means the
    bound is tight on that link, i.e. it is the predicted bottleneck.
    """
    lb = result.link_bytes
    if not lb:
        return {
            "mode": "flow",
            "links_used": 0,
            "total_bytes": 0.0,
            "max_link_bytes": 0.0,
            "mean_utilization": 0.0,
            "max_utilization": 0.0,
            "makespan_lower_bound_us": result.makespan_lower_bound,
            "top_links": [],
        }
    occ = {
        link: result.iterations
        * (result.alpha * result.link_messages[link] + b / result.bandwidth)
        for link, b in lb.items()
    }
    denom = result.makespan_lower_bound or 1.0
    util = np.fromiter(occ.values(), dtype=np.float64, count=len(occ)) / denom
    hottest = sorted(lb, key=lambda k: (-lb[k], str(k)))[:top]
    return {
        "mode": "flow",
        "links_used": len(lb),
        "total_bytes": float(result.total_bytes),
        "max_link_bytes": float(result.max_link_bytes),
        "mean_utilization": float(util.mean()),
        "max_utilization": float(util.max()),
        "makespan_lower_bound_us": float(result.makespan_lower_bound),
        "top_links": [
            {
                "link": f"{link[0]}->{link[1]}",
                "bytes": float(lb[link] * result.iterations),
                "messages": int(result.link_messages[link] * result.iterations),
            }
            for link in hottest
        ],
    }


def spearman(x, y) -> float:
    """Spearman rank correlation (average ranks on ties), NumPy-only."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("spearman expects two equal-length 1-D arrays")
    if len(x) < 2:
        return 1.0

    def _ranks(v: np.ndarray) -> np.ndarray:
        order = np.argsort(v, kind="stable")
        ranks = np.empty(len(v), dtype=np.float64)
        ranks[order] = np.arange(1, len(v) + 1)
        # average ranks across ties
        for val in np.unique(v):
            sel = v == val
            if sel.sum() > 1:
                ranks[sel] = ranks[sel].mean()
        return ranks

    rx, ry = _ranks(x), _ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0:
        return 1.0
    return float((rx * ry).sum() / denom)
