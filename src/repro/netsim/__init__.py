"""Discrete-event interconnection-network simulator (BigNetSim substitute).

Section 5.3 of the paper replays application traces through BigNetSim to
show that hop-byte reductions translate into lower message latencies and
faster completion, especially as link bandwidth shrinks and contention sets
in. This package provides the equivalent machinery:

* :class:`EventQueue` — deterministic binary-heap DES core,
* :class:`NetworkSimulator` — per-link FIFO contention with virtual
  cut-through (default) or store-and-forward forwarding over the
  deterministic routes of a direct :class:`~repro.topology.Topology`,
* :class:`IterativeApplication` — dependency-honouring replay of Jacobi-style
  compute/communicate iterations under any task mapping,
* latency / link-utilization statistics,
* :func:`flow_evaluate` — the flow-level contention estimator: static
  per-link loads from dimension-ordered routes plus a provable makespan
  lower bound, for machine scales where the DES is infeasible (see
  :mod:`repro.netsim.flow` for the validity envelope).
"""

from repro.netsim.eventqueue import EventQueue
from repro.netsim.messages import (
    Message,
    MessageStats,
    SIZE_CLASS_EDGES,
    size_class_label,
)
from repro.netsim.simulator import (
    NetworkSimulator,
    LinkModel,
    RoutingPolicy,
    OverloadPolicy,
)
from repro.netsim.appsim import IterativeApplication, AppResult
from repro.netsim.traffic import make_pattern, run_open_loop, OpenLoopResult
from repro.netsim.trace import ApplicationTrace, TracePhase, TraceReplayer, jacobi_trace
from repro.netsim.collectives import (
    bfs_tree,
    binomial_tree,
    simulate_allreduce,
    simulate_broadcast,
    simulate_reduce,
)
from repro.netsim.stats import summarize_latencies, link_utilization, tail_summary
from repro.netsim.flow import FlowResult, flow_evaluate, flow_summary, spearman

__all__ = [
    "EventQueue",
    "Message",
    "MessageStats",
    "SIZE_CLASS_EDGES",
    "size_class_label",
    "NetworkSimulator",
    "LinkModel",
    "RoutingPolicy",
    "OverloadPolicy",
    "IterativeApplication",
    "AppResult",
    "make_pattern",
    "run_open_loop",
    "OpenLoopResult",
    "ApplicationTrace",
    "TracePhase",
    "TraceReplayer",
    "jacobi_trace",
    "bfs_tree",
    "binomial_tree",
    "simulate_broadcast",
    "simulate_reduce",
    "simulate_allreduce",
    "summarize_latencies",
    "link_utilization",
    "tail_summary",
    "FlowResult",
    "flow_evaluate",
    "flow_summary",
    "spearman",
]
