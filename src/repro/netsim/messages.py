"""Message records and aggregate statistics."""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Message", "MessageStats"]


@dataclasses.dataclass
class Message:
    """One point-to-point message tracked by the simulator.

    Times are microseconds of simulation time; ``deliver_time`` is filled in
    when the tail of the message reaches the destination processor.
    """

    msg_id: int
    src: int
    dst: int
    size_bytes: float
    send_time: float
    deliver_time: float | None = None
    hops: int = 0
    #: end-to-end retransmissions so far (fault injection; see simulator)
    attempts: int = 0
    #: True once the simulator gave up on the message (faults; never set
    #: under the default unroutable_policy="raise")
    dropped: bool = False
    #: transient flag: a fault hit this message's current link; consumed by
    #: the next already-scheduled progression event
    faulted: bool = dataclasses.field(default=False, repr=False, compare=False)

    @property
    def latency(self) -> float:
        """End-to-end latency (send to full delivery), in microseconds."""
        if self.deliver_time is None:
            raise ValueError(f"message {self.msg_id} not delivered yet")
        return self.deliver_time - self.send_time


class MessageStats:
    """Streaming accumulator of delivered-message latencies and volume."""

    def __init__(self):
        self._latencies: list[float] = []
        self._hop_bytes = 0.0
        self._bytes = 0.0

    def record(self, message: Message) -> None:
        """Account one delivered message."""
        self._latencies.append(message.latency)
        self._bytes += message.size_bytes
        self._hop_bytes += message.size_bytes * message.hops

    @property
    def count(self) -> int:
        """Delivered messages so far."""
        return len(self._latencies)

    @property
    def total_bytes(self) -> float:
        """Total payload bytes delivered."""
        return self._bytes

    @property
    def hops_per_byte(self) -> float:
        """Observed average hops per byte over delivered traffic."""
        return self._hop_bytes / self._bytes if self._bytes else 0.0

    def latencies(self) -> np.ndarray:
        """Delivered latencies as an array (microseconds)."""
        return np.asarray(self._latencies, dtype=np.float64)

    @property
    def mean_latency(self) -> float:
        """Mean delivered latency in microseconds."""
        lat = self.latencies()
        return float(lat.mean()) if len(lat) else 0.0

    @property
    def max_latency(self) -> float:
        """Worst delivered latency in microseconds."""
        lat = self.latencies()
        return float(lat.max()) if len(lat) else 0.0
