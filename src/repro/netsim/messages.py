"""Message records and aggregate statistics."""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["Message", "MessageStats", "SIZE_CLASS_EDGES", "size_class_label"]

#: Upper edges (bytes, inclusive) of the message-size classes tail latencies
#: are bucketed by; traffic above the last edge lands in the open top class.
SIZE_CLASS_EDGES: tuple[float, ...] = (1024.0, 16384.0, 262144.0)


def size_class_label(index: int,
                     edges: tuple[float, ...] = SIZE_CLASS_EDGES) -> str:
    """Stable printable name of size class ``index`` (e.g. ``"<=16KiB"``)."""
    def _fmt(bytes_: float) -> str:
        if bytes_ >= 1024.0 and bytes_ % 1024.0 == 0:
            return f"{int(bytes_ // 1024)}KiB"
        return f"{int(bytes_)}B"

    if index < len(edges):
        return f"<={_fmt(edges[index])}"
    return f">{_fmt(edges[-1])}"


@dataclasses.dataclass
class Message:
    """One point-to-point message tracked by the simulator.

    Times are microseconds of simulation time; ``deliver_time`` is filled in
    when the tail of the message reaches the destination processor.
    """

    msg_id: int
    src: int
    dst: int
    size_bytes: float
    send_time: float
    deliver_time: float | None = None
    hops: int = 0
    #: end-to-end retransmissions so far (fault injection and buffer
    #: overflows; see simulator)
    attempts: int = 0
    #: True once the simulator gave up on the message (faults or exhausted
    #: overflow retries; never set under the default
    #: unroutable_policy="raise")
    dropped: bool = False
    #: ECN congestion-experienced mark: set when the message was queued past
    #: a finite link buffer's marking threshold (overload_policy="ecn")
    ecn_marked: bool = False
    #: transient flag: a fault hit this message's current link; consumed by
    #: the next already-scheduled progression event
    faulted: bool = dataclasses.field(default=False, repr=False, compare=False)

    @property
    def latency(self) -> float:
        """End-to-end latency (send to full delivery), in microseconds."""
        if self.deliver_time is None:
            raise ValueError(f"message {self.msg_id} not delivered yet")
        return self.deliver_time - self.send_time


class MessageStats:
    """Streaming accumulator of delivered-message latencies and volume.

    Besides the seed-era aggregates (count, bytes, hops-per-byte, mean/max
    latency) this tracks everything the finite-buffer tail-latency report
    needs: per-message sizes (for size-class percentiles), end-to-end
    retransmissions, buffer-overflow drop events, final drops, and ECN
    marks. All counters update in event order, so two runs with the same
    seed produce bit-identical snapshots (the determinism guard in
    ``tests/netsim/test_buffered.py``).
    """

    def __init__(self):
        self._latencies: list[float] = []
        self._sizes: list[float] = []
        self._hop_bytes = 0.0
        self._bytes = 0.0
        #: delivered messages that carried an ECN mark
        self.ecn_delivered = 0
        #: ECN marks applied at enqueue time (mark rate = marks / enqueues)
        self.ecn_marks = 0
        #: end-to-end retransmissions scheduled (buffer overflows + faults)
        self.retransmits = 0
        #: tail-drop events at a full finite buffer (each may retransmit)
        self.buffer_drops = 0
        #: messages the simulator finally gave up on
        self.dropped = 0
        self.dropped_bytes = 0.0

    def record(self, message: Message) -> None:
        """Account one delivered message."""
        self._latencies.append(message.latency)
        self._sizes.append(message.size_bytes)
        self._bytes += message.size_bytes
        self._hop_bytes += message.size_bytes * message.hops
        if message.ecn_marked:
            self.ecn_delivered += 1

    def record_drop(self, message: Message) -> None:
        """Account one finally-dropped (undeliverable) message."""
        self.dropped += 1
        self.dropped_bytes += message.size_bytes

    @property
    def count(self) -> int:
        """Delivered messages so far."""
        return len(self._latencies)

    @property
    def total_bytes(self) -> float:
        """Total payload bytes delivered."""
        return self._bytes

    @property
    def hops_per_byte(self) -> float:
        """Observed average hops per byte over delivered traffic."""
        return self._hop_bytes / self._bytes if self._bytes else 0.0

    def latencies(self) -> np.ndarray:
        """Delivered latencies as an array (microseconds)."""
        return np.asarray(self._latencies, dtype=np.float64)

    def sizes(self) -> np.ndarray:
        """Delivered message sizes as an array (bytes), latency-aligned."""
        return np.asarray(self._sizes, dtype=np.float64)

    @property
    def mean_latency(self) -> float:
        """Mean delivered latency in microseconds."""
        lat = self.latencies()
        return float(lat.mean()) if len(lat) else 0.0

    @property
    def max_latency(self) -> float:
        """Worst delivered latency in microseconds."""
        lat = self.latencies()
        return float(lat.max()) if len(lat) else 0.0

    # ------------------------------------------------------------------ tails
    def percentiles(self, qs: tuple[float, ...] = (50.0, 99.0, 99.9)) -> dict:
        """Latency percentiles over all delivered traffic (microseconds)."""
        lat = self.latencies()
        if len(lat) == 0:
            return {f"p{_q_label(q)}": 0.0 for q in qs}
        return {
            f"p{_q_label(q)}": float(np.percentile(lat, q)) for q in qs
        }

    def class_summary(
        self, edges: tuple[float, ...] = SIZE_CLASS_EDGES
    ) -> list[dict]:
        """Per-size-class tail summary: one row per *occupied* class.

        Barrier-synchronized applications feel the worst class, not the
        mean — this is the table the ``tailcheck`` experiment and the
        profile's ``netsim.tail.classes`` section report.
        """
        lat = self.latencies()
        if len(lat) == 0:
            return []
        sizes = self.sizes()
        buckets = np.digitize(sizes, np.asarray(edges, dtype=np.float64),
                              right=True)
        rows = []
        for index in range(len(edges) + 1):
            mask = buckets == index
            n = int(mask.sum())
            if n == 0:
                continue
            class_lat = lat[mask]
            rows.append({
                "class": size_class_label(index, edges),
                "count": n,
                "p50": float(np.percentile(class_lat, 50)),
                "p99": float(np.percentile(class_lat, 99)),
                "p999": float(np.percentile(class_lat, 99.9)),
                "max": float(class_lat.max()),
            })
        return rows

    def snapshot(self) -> dict:
        """All aggregates as one JSON-able dict (bit-identical per seed)."""
        return {
            "delivered": self.count,
            "total_bytes": self._bytes,
            "hop_bytes": self._hop_bytes,
            "dropped": self.dropped,
            "dropped_bytes": self.dropped_bytes,
            "retransmits": self.retransmits,
            "buffer_drops": self.buffer_drops,
            "ecn_marks": self.ecn_marks,
            "ecn_delivered": self.ecn_delivered,
            "latencies": list(self._latencies),
            "sizes": list(self._sizes),
        }


def _q_label(q: float) -> str:
    """``50.0 -> "50"``, ``99.9 -> "999"`` (percentile key spelling)."""
    if float(q).is_integer():
        return str(int(q))
    return str(q).replace(".", "")
