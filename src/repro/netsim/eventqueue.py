"""Deterministic discrete-event queue.

A thin wrapper over :mod:`heapq` holding ``(time, sequence, callback)``
entries. The monotone sequence number makes simultaneous events fire in
scheduling order, so every simulation is bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.exceptions import SimulationError

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered callback queue with deterministic tie-breaking."""

    def __init__(self):
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last fired event)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet fired."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Fire ``callback`` at simulation ``time``.

        Scheduling into the past is a causality violation and raises
        :class:`~repro.exceptions.SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"causality violation: scheduling at t={time} < now={self._now}"
            )
        heapq.heappush(self._heap, (float(time), self._seq, callback))
        self._seq += 1

    def run(self, max_events: int | None = None,
            until: float | None = None) -> float:
        """Fire events until the queue drains; return the final time.

        ``max_events`` bounds how many events fire; ``until`` is a simulation
        deadline — events scheduled strictly after it stay queued, and the
        clock advances to ``until`` so a caller can drain a runaway
        simulation in bounded slices (the watchdog discipline: run to a
        deadline, inspect progress, decide whether to continue). Both limits
        may be combined; whichever trips first stops the run.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            if until is not None and self._heap[0][0] > until:
                break
            time, _seq, callback = heapq.heappop(self._heap)
            self._now = time
            self._processed += 1
            fired += 1
            callback()
        if (
            until is not None
            and self._now < until
            and (not self._heap or self._heap[0][0] > until)
        ):
            # Nothing left at or before the deadline: the interval is quiet,
            # so the clock legitimately advances to it (not past a pending
            # event — a max_events stop with earlier work queued stays put).
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one event; False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback()
        return True
