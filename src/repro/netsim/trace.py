"""Application traces: record once, re-time under any network (Section 5.3).

BigNetSim's workflow, which this module reproduces: "These event traces
contain timestamps for message sending and entry point initiation.
Event-dependency information is also available in the traces so that these
timestamps can be corrected depending on the network being simulated while
honoring event ordering."

An :class:`ApplicationTrace` is a network-independent program description:
each task executes a sequence of *phases*; a phase computes for some time,
emits messages (to task, bytes), and cannot complete until every message
*addressed to this phase* has arrived. Phase ``k`` of a task starts when
phase ``k-1`` completed. The :class:`TraceReplayer` re-times a trace through
a :class:`~repro.netsim.simulator.NetworkSimulator` under a chosen mapping —
so one recorded trace can be swept over bandwidths, routings and mappings
(what Figures 7–9 do), and traces round-trip through JSON for archival.

:class:`~repro.netsim.appsim.IterativeApplication` is the special case of a
uniform Jacobi trace; :func:`jacobi_trace` builds exactly that trace, and
the equivalence is tested.
"""

from __future__ import annotations

import dataclasses
import json
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro.exceptions import SimulationError
from repro.mapping.base import Mapping
from repro.netsim.simulator import NetworkSimulator
from repro.taskgraph.graph import TaskGraph

__all__ = ["TracePhase", "ApplicationTrace", "TraceReplayer", "jacobi_trace"]

_FORMAT = "repro-apptrace-v1"


@dataclasses.dataclass
class TracePhase:
    """One compute/communicate step of one task.

    ``sends`` deliver into the *matching phase index* of the destination
    task; ``expected_receives`` is how many such messages this phase waits
    for before the task may advance.
    """

    compute_time: float
    sends: list[tuple[int, float]] = dataclasses.field(default_factory=list)
    expected_receives: int = 0


class ApplicationTrace:
    """A network-independent execution record of ``num_tasks`` tasks."""

    def __init__(self, phases: list[list[TracePhase]]):
        if not phases:
            raise SimulationError("trace needs at least one task")
        depth = len(phases[0])
        for task_phases in phases:
            if len(task_phases) != depth:
                raise SimulationError("all tasks must have the same phase count")
        if depth == 0:
            raise SimulationError("trace needs at least one phase")
        self._phases = phases
        self._validate_matching()

    def _validate_matching(self) -> None:
        """Every phase's expected receives must match the sends aimed at it."""
        n = self.num_tasks
        for k in range(self.num_phases):
            incoming = [0] * n
            for t in range(n):
                for dst, size in self._phases[t][k].sends:
                    if not 0 <= dst < n:
                        raise SimulationError(f"send to unknown task {dst}")
                    if size <= 0:
                        raise SimulationError(f"non-positive message size {size}")
                    incoming[dst] += 1
            for t in range(n):
                if self._phases[t][k].expected_receives != incoming[t]:
                    raise SimulationError(
                        f"task {t} phase {k} expects "
                        f"{self._phases[t][k].expected_receives} receives but "
                        f"{incoming[t]} messages are addressed to it"
                    )

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the traced program."""
        return len(self._phases)

    @property
    def num_phases(self) -> int:
        """Phases per task (all tasks advance through the same count)."""
        return len(self._phases[0])

    def phase(self, task: int, k: int) -> TracePhase:
        """The ``k``-th phase of ``task``."""
        return self._phases[task][k]

    def total_bytes(self) -> float:
        """Total traffic the trace emits across all phases."""
        return sum(
            size
            for task_phases in self._phases
            for ph in task_phases
            for _, size in ph.sends
        )

    # ------------------------------------------------------------- JSON I/O
    def to_json(self) -> str:
        payload = {
            "format": _FORMAT,
            "tasks": [
                [
                    {
                        "compute": ph.compute_time,
                        "sends": [[dst, size] for dst, size in ph.sends],
                        "recv": ph.expected_receives,
                    }
                    for ph in task_phases
                ]
                for task_phases in self._phases
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "ApplicationTrace":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SimulationError(f"invalid trace JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            raise SimulationError(f"not a {_FORMAT} document")
        try:
            phases = [
                [
                    TracePhase(
                        compute_time=float(ph["compute"]),
                        sends=[(int(d), float(s)) for d, s in ph["sends"]],
                        expected_receives=int(ph["recv"]),
                    )
                    for ph in task_phases
                ]
                for task_phases in payload["tasks"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed trace document: {exc}") from exc
        return cls(phases)

    def save(self, path: str | Path) -> None:
        """Write the trace to a file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ApplicationTrace":
        """Read a trace written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())


def jacobi_trace(graph: TaskGraph, iterations: int,
                 compute_time: float | np.ndarray = 1.0,
                 message_bytes: float | None = None) -> ApplicationTrace:
    """The uniform Jacobi trace: every phase sends to all graph neighbors.

    With ``message_bytes=None`` each undirected edge of weight ``w`` carries
    ``w/2`` per direction per phase (matching the pattern generators).
    """
    if iterations < 1:
        raise SimulationError(f"iterations must be >= 1, got {iterations}")
    n = graph.num_tasks
    compute = np.broadcast_to(np.asarray(compute_time, dtype=np.float64), (n,))
    phases: list[list[TracePhase]] = []
    for t in range(n):
        nbrs, wts = graph.neighbor_slice(t)
        sends = [
            (int(j), float(message_bytes if message_bytes is not None else w / 2.0))
            for j, w in zip(nbrs, wts)
        ]
        template = TracePhase(
            compute_time=float(compute[t]),
            sends=sends,
            expected_receives=len(sends),
        )
        phases.append([dataclasses.replace(template, sends=list(sends))
                       for _ in range(iterations)])
    return ApplicationTrace(phases)


@dataclasses.dataclass
class TraceResult:
    """Outcome of one trace replay."""

    total_time: float
    phases: int
    mean_message_latency: float
    messages_delivered: int


class TraceReplayer:
    """Re-time an :class:`ApplicationTrace` under a mapping and network."""

    def __init__(self, trace: ApplicationTrace, mapping: Mapping,
                 simulator: NetworkSimulator):
        if mapping.graph.num_tasks != trace.num_tasks:
            raise SimulationError(
                f"mapping covers {mapping.graph.num_tasks} tasks but the "
                f"trace has {trace.num_tasks}"
            )
        self._trace = trace
        self._mapping = mapping
        self._sim = simulator
        self._ran = False

    def run(self) -> TraceResult:
        """Replay to completion, honoring compute and receive dependencies."""
        if self._ran:
            raise SimulationError("TraceReplayer.run() may only be called once")
        self._ran = True
        trace, sim = self._trace, self._sim
        n, depth = trace.num_tasks, trace.num_phases
        assign = self._mapping.assignment

        cur = np.zeros(n, dtype=np.int64)
        compute_done = np.zeros(n, dtype=bool)
        arrived: list[defaultdict[int, int]] = [defaultdict(int) for _ in range(n)]
        finished = 0
        finish_time = 0.0

        def begin(task: int) -> None:
            compute_done[task] = False
            sim.queue.schedule(
                sim.now + trace.phase(task, int(cur[task])).compute_time,
                lambda: computed(task),
            )

        def computed(task: int) -> None:
            compute_done[task] = True
            k = int(cur[task])
            for dst, size in trace.phase(task, k).sends:
                sim.send(int(assign[task]), int(assign[dst]), size,
                         on_delivery=receiver(dst, k))
            advance(task)

        def receiver(dst: int, k: int):
            def _on_delivery(_msg) -> None:
                arrived[dst][k] += 1
                advance(dst)

            return _on_delivery

        def advance(task: int) -> None:
            nonlocal finished, finish_time
            k = int(cur[task])
            if not compute_done[task]:
                return
            if arrived[task][k] < trace.phase(task, k).expected_receives:
                return
            del arrived[task][k]
            if k + 1 < depth:
                cur[task] = k + 1
                begin(task)
            else:
                finished += 1
                finish_time = max(finish_time, sim.now)

        for t in range(n):
            begin(t)
        sim.run()
        if finished != n:
            raise SimulationError(
                f"deadlock: only {finished}/{n} tasks completed the trace"
            )
        return TraceResult(
            total_time=finish_time,
            phases=depth,
            mean_message_latency=sim.stats.mean_latency,
            messages_delivered=sim.stats.count,
        )
