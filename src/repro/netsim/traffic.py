"""Open-loop synthetic traffic generators and saturation sweeps.

Interconnect simulators are traditionally characterized with synthetic
traffic before any application runs: each processor injects fixed-size
messages at a given rate under a destination pattern, and mean latency is
plotted against offered load until the network saturates. The paper's whole
premise lives in these curves — a pattern whose average hop count is high
saturates at a *lower* offered load because each message consumes more
link-bandwidth-hops — so the generators double as a validation harness for
the simulator itself (see ``tests/netsim/test_traffic.py`` and
``benchmarks/test_ablation_saturation.py``).

Patterns:

* ``uniform``      — destination uniformly random per message,
* ``permutation``  — a fixed random permutation (each node talks to one peer),
* ``neighbor``     — a random machine neighbor per message (1 hop; the
  traffic an ideal stencil mapping produces),
* ``transpose``    — node with reversed grid coordinates (adversarial for
  dimension-ordered routing),
* ``hotspot``      — a fraction of traffic targets one node.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.exceptions import SimulationError
from repro.netsim.simulator import NetworkSimulator
from repro.topology.base import Topology
from repro.topology.grid import GridTopology
from repro.utils.rng import as_rng

__all__ = ["TrafficPattern", "make_pattern", "run_open_loop", "OpenLoopResult"]

#: A traffic pattern: (source, rng) -> destination processor.
TrafficPattern = Callable[[int, np.random.Generator], int]


def make_pattern(name: str, topology: Topology,
                 seed: int | np.random.Generator | None = 0,
                 hotspot_fraction: float = 0.2) -> TrafficPattern:
    """Build a named destination pattern for ``topology``."""
    p = topology.num_nodes
    rng = as_rng(seed)

    if name == "uniform":
        def uniform(src: int, r: np.random.Generator) -> int:
            dst = int(r.integers(0, p))
            return dst
        return uniform

    if name == "permutation":
        perm = rng.permutation(p)
        # Avoid fixed points so every message really enters the network.
        for i in range(p):
            if perm[i] == i:
                j = (i + 1) % p
                perm[i], perm[j] = perm[j], perm[i]
        return lambda src, r: int(perm[src])

    if name == "neighbor":
        nbrs = [topology.neighbors(v) for v in range(p)]
        def neighbor(src: int, r: np.random.Generator) -> int:
            options = nbrs[src]
            if not options:
                return src
            return int(options[int(r.integers(0, len(options)))])
        return neighbor

    if name == "transpose":
        if not isinstance(topology, GridTopology):
            raise SimulationError("transpose pattern needs a grid topology")
        mapping = np.empty(p, dtype=np.int64)
        for v in range(p):
            coords = topology.coords(v)
            flipped = tuple(
                min(c, s - 1)  # clamp for non-square extents
                for c, s in zip(reversed(coords), topology.shape)
            )
            mapping[v] = topology.index(flipped)
        return lambda src, r: int(mapping[src])

    if name == "hotspot":
        if not 0 < hotspot_fraction <= 1:
            raise SimulationError("hotspot_fraction must be in (0, 1]")
        hot = p // 2
        def hotspot(src: int, r: np.random.Generator) -> int:
            if r.random() < hotspot_fraction:
                return hot
            return int(r.integers(0, p))
        return hotspot

    raise SimulationError(
        f"unknown traffic pattern {name!r}; "
        "options: uniform, permutation, neighbor, transpose, hotspot"
    )


@dataclasses.dataclass
class OpenLoopResult:
    """Outcome of one open-loop injection run."""

    pattern: str
    offered_load: float        # fraction of link bandwidth injected per node
    mean_latency: float        # us
    p95_latency: float         # us
    throughput: float          # delivered bytes / (nodes * time * bandwidth)
    delivered: int
    duration: float            # us of simulated injection window


def run_open_loop(
    simulator: NetworkSimulator,
    pattern: str | TrafficPattern,
    offered_load: float,
    message_bytes: float = 512.0,
    duration: float = 2_000.0,
    seed: int | np.random.Generator | None = 0,
    drain: bool = True,
) -> OpenLoopResult:
    """Inject Poisson traffic at ``offered_load`` and measure latency.

    ``offered_load`` is the per-node injection rate as a fraction of one
    link's bandwidth (the standard normalization): at load ``L`` each node
    injects ``L * bandwidth / message_bytes`` messages per microsecond,
    scheduled as a Poisson process over ``duration``.
    """
    if not 0 < offered_load:
        raise SimulationError(f"offered_load must be positive, got {offered_load}")
    rng = as_rng(seed)
    topo = simulator.topology
    pattern_name = pattern if isinstance(pattern, str) else getattr(pattern, "__name__", "custom")
    dest = make_pattern(pattern, topo, rng) if isinstance(pattern, str) else pattern

    rate = offered_load * simulator.bandwidth / message_bytes  # msgs/us/node
    for src in range(topo.num_nodes):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= duration:
                break
            dst = dest(src, rng)
            if dst != src:
                simulator.send(src, dst, message_bytes, at=t)
    simulator.run()

    lat = simulator.stats.latencies()
    delivered = simulator.stats.count
    span = simulator.now if drain else duration
    throughput = (
        simulator.stats.total_bytes
        / (topo.num_nodes * max(span, 1e-9) * simulator.bandwidth)
    )
    return OpenLoopResult(
        pattern=pattern_name,
        offered_load=offered_load,
        mean_latency=float(lat.mean()) if len(lat) else 0.0,
        p95_latency=float(np.percentile(lat, 95)) if len(lat) else 0.0,
        throughput=throughput,
        delivered=delivered,
        duration=duration,
    )
