"""Collective operations over the simulated network.

Applications such as LeanMD interleave point-to-point halo traffic with
reductions and broadcasts (the per-processor manager objects exist for
exactly that). Collectives stress the network differently — one root, log-
depth trees, link reuse along the tree — and their cost depends on how well
the *spanning tree* respects the topology, which is the mapping problem in
miniature:

* :func:`bfs_tree` — topology-aware tree: children are network neighbors of
  already-reached processors, so every tree edge is one hop;
* :func:`binomial_tree` — the classic rank-order binomial tree, oblivious
  to the machine (rank distance says nothing about hop distance).

:func:`simulate_broadcast` / :func:`simulate_reduce` /
:func:`simulate_allreduce` run a collective through a
:class:`~repro.netsim.simulator.NetworkSimulator` and return completion
time; ``benchmarks/test_ablation_collectives.py`` quantifies the aware-vs-
oblivious tree gap (the same lesson as task mapping, at the runtime level).
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import SimulationError
from repro.netsim.simulator import NetworkSimulator
from repro.topology.base import Topology

__all__ = [
    "bfs_tree",
    "binomial_tree",
    "simulate_broadcast",
    "simulate_reduce",
    "simulate_allreduce",
]


def bfs_tree(topology: Topology, root: int) -> dict[int, list[int]]:
    """Topology-aware spanning tree: ``children[v]`` lists v's subtrees.

    Breadth-first over machine links, so every tree edge is a single hop;
    fan-out equals the node degree, depth ~ machine diameter.
    """
    root = int(root)
    children: dict[int, list[int]] = {v: [] for v in range(topology.num_nodes)}
    seen = {root}
    queue: deque[int] = deque([root])
    while queue:
        v = queue.popleft()
        for nbr in topology.neighbors(v):
            if nbr not in seen:
                seen.add(nbr)
                children[v].append(nbr)
                queue.append(nbr)
    if len(seen) != topology.num_nodes:
        raise SimulationError("topology must be connected for a spanning tree")
    return children


def binomial_tree(topology: Topology, root: int) -> dict[int, list[int]]:
    """Rank-order binomial tree (MPI-style), oblivious to the machine.

    Relative rank ``r`` receives from ``r - 2^k`` where ``2^k`` is the
    highest power of two in ``r``; depth is ``ceil(log2 p)`` but tree edges
    can span many hops.
    """
    p = topology.num_nodes
    root = int(root)
    children: dict[int, list[int]] = {v: [] for v in range(p)}
    for rel in range(1, p):
        high = 1 << (rel.bit_length() - 1)
        parent_rel = rel - high
        children[(parent_rel + root) % p].append((rel + root) % p)
    return children


def _tree_depths(children: dict[int, list[int]], root: int) -> dict[int, int]:
    depth = {root: 0}
    queue: deque[int] = deque([root])
    while queue:
        v = queue.popleft()
        for c in children[v]:
            depth[c] = depth[v] + 1
            queue.append(c)
    return depth


def simulate_broadcast(
    sim: NetworkSimulator,
    root: int,
    size_bytes: float,
    tree: dict[int, list[int]] | None = None,
) -> float:
    """Broadcast ``size_bytes`` from ``root`` down the tree; return finish time.

    Each node forwards to its children as soon as it holds the data (the
    root immediately). Returns the time the last processor received the
    payload, relative to the current simulator clock.
    """
    if tree is None:
        tree = bfs_tree(sim.topology, root)
    start = sim.now
    remaining = sim.topology.num_nodes - 1
    finish = [start]

    def deliver_to_children(v: int) -> None:
        nonlocal remaining
        for child in tree[v]:
            def on_delivery(_msg, child=child) -> None:
                nonlocal remaining
                remaining -= 1
                finish[0] = max(finish[0], sim.now)
                deliver_to_children(child)

            sim.send(v, child, size_bytes, on_delivery=on_delivery)

    deliver_to_children(int(root))
    sim.run()
    if remaining != 0:
        raise SimulationError("broadcast tree did not cover every processor")
    return finish[0] - start


def simulate_reduce(
    sim: NetworkSimulator,
    root: int,
    size_bytes: float,
    tree: dict[int, list[int]] | None = None,
    combine_time: float = 0.0,
) -> float:
    """Reduce leaf-to-root along the tree; return completion time.

    A node sends its partial result to its parent once contributions from
    all of its children arrived (plus ``combine_time`` per combine).
    """
    if tree is None:
        tree = bfs_tree(sim.topology, root)
    root = int(root)
    parent: dict[int, int] = {}
    for v, kids in tree.items():
        for c in kids:
            parent[c] = v
    pending = {v: len(tree[v]) for v in tree}
    start = sim.now
    finish = [start]
    done = [False]

    def maybe_send_up(v: int) -> None:
        if pending[v] > 0:
            return
        if v == root:
            finish[0] = sim.now
            done[0] = True
            return

        def on_delivery(_msg, v=v) -> None:
            up = parent[v]
            pending[up] -= 1
            if combine_time > 0:
                sim.queue.schedule(sim.now + combine_time, lambda: maybe_send_up(up))
            else:
                maybe_send_up(up)

        sim.send(v, parent[v], size_bytes, on_delivery=on_delivery)

    for v in tree:
        maybe_send_up(v)
    sim.run()
    if not done[0]:
        raise SimulationError("reduce tree never completed at the root")
    return finish[0] - start


def simulate_allreduce(
    sim: NetworkSimulator,
    root: int,
    size_bytes: float,
    tree: dict[int, list[int]] | None = None,
    combine_time: float = 0.0,
) -> float:
    """Reduce to ``root`` then broadcast the result (tree allreduce)."""
    if tree is None:
        tree = bfs_tree(sim.topology, root)
    up = simulate_reduce(sim, root, size_bytes, tree, combine_time)
    down = simulate_broadcast(sim, root, size_bytes, tree)
    return up + down
