"""Trace-driven replay of iterative Jacobi-style applications.

The paper's Sections 5.3/5.4 run a benchmark where every chare computes,
sends a message to each of its task-graph neighbors, and starts the next
iteration once its own compute is done *and* all neighbor messages of the
current iteration have arrived. This module replays exactly that dependency
structure through a :class:`~repro.netsim.simulator.NetworkSimulator` under
any task mapping, so the same program can be re-timed under different
mappings and link bandwidths — the BigNetSim workflow.

Tasks co-located on one processor exchange messages at the local latency and
compute concurrently (the experiments of interest are bijective mappings
where each processor hosts exactly one task, so compute serialization across
co-located tasks is out of scope and documented as such).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

import numpy as np

from repro.exceptions import SimulationError
from repro.mapping.base import Mapping
from repro.netsim.simulator import NetworkSimulator

__all__ = ["IterativeApplication", "AppResult"]


@dataclasses.dataclass
class AppResult:
    """Outcome of one replay."""

    total_time: float                 # time the last task finished, us
    iterations: int
    mean_message_latency: float       # us
    max_message_latency: float        # us
    messages_delivered: int
    hops_per_byte: float              # observed on delivered traffic
    iteration_finish_times: np.ndarray  # time the k-th iteration fully completed

    @property
    def time_per_iteration(self) -> float:
        """Average wall-clock (simulated) time per iteration, us."""
        return self.total_time / self.iterations if self.iterations else 0.0

    @property
    def iteration_times(self) -> np.ndarray:
        """Per-iteration durations (us): the barrier-synchronized tails.

        Each entry is the time between consecutive global iteration
        completions — the quantity a bulk-synchronous application actually
        waits on, dominated by the slowest message of the round. The tail of
        this distribution (not the mean message latency) is where contention
        hurts; :func:`repro.netsim.stats.tail_summary` reports it.
        """
        if len(self.iteration_finish_times) == 0:
            return np.zeros(0, dtype=np.float64)
        return np.diff(self.iteration_finish_times,
                       prepend=0.0).astype(np.float64)


class IterativeApplication:
    """Jacobi-style compute/communicate loop over a mapped task graph.

    Parameters
    ----------
    mapping:
        Task placement (drives which messages cross which links).
    simulator:
        The network to replay through. One application per simulator.
    iterations:
        Number of compute/communicate rounds.
    message_bytes:
        Per-neighbor per-iteration message size. ``None`` derives it from the
        task graph: each undirected edge of weight ``w`` carries ``w/2`` per
        direction per iteration (matching the pattern generators, which store
        ``2 * message_bytes`` per edge).
    compute_time:
        Per-iteration compute cost in microseconds (scalar, or per-task
        array). The paper keeps this low so communication dominates.
    """

    def __init__(
        self,
        mapping: Mapping,
        simulator: NetworkSimulator,
        iterations: int,
        message_bytes: float | None = None,
        compute_time: float | np.ndarray = 1.0,
    ):
        if iterations < 1:
            raise SimulationError(f"iterations must be >= 1, got {iterations}")
        self._mapping = mapping
        self._sim = simulator
        self._iterations = int(iterations)
        graph = mapping.graph
        n = graph.num_tasks

        self._compute = np.broadcast_to(
            np.asarray(compute_time, dtype=np.float64), (n,)
        ).copy()
        if (self._compute < 0).any():
            raise SimulationError("compute_time must be non-negative")

        # Per-task outgoing message sizes, aligned with the CSR neighbor lists.
        indptr, indices, weights = graph.csr_arrays()
        self._indptr, self._indices = indptr, indices
        if message_bytes is None:
            self._msg_sizes = weights / 2.0
        else:
            if message_bytes <= 0:
                raise SimulationError(f"message_bytes must be positive, got {message_bytes}")
            self._msg_sizes = np.full_like(weights, float(message_bytes))

        # Execution state.
        self._cur_iter = np.zeros(n, dtype=np.int64)
        self._compute_done = np.zeros(n, dtype=bool)
        self._arrived: list[defaultdict[int, int]] = [defaultdict(int) for _ in range(n)]
        self._expected = graph.degrees()
        self._finished = 0
        self._iter_remaining = np.full(self._iterations, n, dtype=np.int64)
        self._iter_finish = np.zeros(self._iterations, dtype=np.float64)
        self._ran = False

    # ------------------------------------------------------------------ run
    def start(self) -> None:
        """Seed the application's initial events without running the queue.

        For co-scheduling studies several applications may share one
        simulator: ``start()`` each of them, drive ``simulator.run()`` once,
        then collect each one's :meth:`result`.
        """
        if self._ran:
            raise SimulationError("IterativeApplication may only be started once")
        self._ran = True
        for t in range(self._mapping.graph.num_tasks):
            self._begin_compute(t)

    def result(self) -> AppResult:
        """Timing results; valid once the simulator's queue has drained."""
        n = self._mapping.graph.num_tasks
        if not self._ran:
            raise SimulationError("application was never started")
        if self._finished != n:
            raise SimulationError(
                f"deadlock: only {self._finished}/{n} tasks finished "
                "(dependency graph inconsistent, or the simulator has not run)"
            )
        stats = self._sim.stats
        return AppResult(
            total_time=float(self._iter_finish[-1]),
            iterations=self._iterations,
            mean_message_latency=stats.mean_latency,
            max_message_latency=stats.max_latency,
            messages_delivered=stats.count,
            hops_per_byte=stats.hops_per_byte,
            iteration_finish_times=self._iter_finish.copy(),
        )

    def run(self) -> AppResult:
        """Replay the application to completion and return timing results."""
        self.start()
        self._sim.run()
        return self.result()

    # ------------------------------------------------------------- mechanics
    def _begin_compute(self, task: int) -> None:
        self._compute_done[task] = False
        self._sim.queue.schedule(
            self._sim.now + float(self._compute[task]),
            lambda: self._compute_finished(task),
        )

    def _compute_finished(self, task: int) -> None:
        """Compute phase over: emit this iteration's messages, maybe advance."""
        self._compute_done[task] = True
        k = int(self._cur_iter[task])
        assign = self._mapping.assignment
        src_proc = int(assign[task])
        lo, hi = self._indptr[task], self._indptr[task + 1]
        for idx in range(lo, hi):
            nbr = int(self._indices[idx])
            size = float(self._msg_sizes[idx])
            self._sim.send(
                src_proc,
                int(assign[nbr]),
                size,
                on_delivery=self._make_receiver(nbr, k),
            )
        self._maybe_advance(task)

    def _make_receiver(self, dst_task: int, iteration: int):
        def _on_delivery(_msg) -> None:
            self._arrived[dst_task][iteration] += 1
            self._maybe_advance(dst_task)

        return _on_delivery

    def _maybe_advance(self, task: int) -> None:
        """Advance to the next iteration when compute + all receives are in."""
        k = int(self._cur_iter[task])
        if not self._compute_done[task]:
            return
        if self._arrived[task][k] < self._expected[task]:
            return
        # Iteration k complete for this task.
        del self._arrived[task][k]
        self._iter_remaining[k] -= 1
        if self._iter_remaining[k] == 0:
            self._iter_finish[k] = self._sim.now
        if k + 1 < self._iterations:
            self._cur_iter[task] = k + 1
            self._begin_compute(task)
        else:
            self._finished += 1
