"""Point-to-point network simulation with per-link FIFO contention.

Model (all times in microseconds, sizes in bytes):

* Every directed link carries one message at a time; messages queue FIFO.
* Transmitting a message of size ``S`` over one link takes
  ``alpha + S / bandwidth`` — a per-hop routing/arbitration latency plus the
  serialization time — and the link is occupied for that whole interval.
* **Virtual cut-through** (default): the head is forwarded to the next link
  after ``alpha``, so a multi-hop message pipelines — an uncontended L-hop
  delivery costs ``L * alpha + S / bandwidth`` (wormhole-style no-load
  latency, the regime the paper's introduction describes where hop count
  barely matters without contention).
* **Store-and-forward**: the next hop begins only after the full message
  arrived, costing ``L * (alpha + S / bandwidth)`` uncontended — kept as an
  ablation contrast.

Contention is what the paper is about: a random mapping makes every message
cross many links, multiplying the per-link offered load; once a link's
utilization saturates, FIFO queues grow and latencies blow up — exactly the
Figure 7 behaviour. Messages between tasks on the same processor bypass the
network for a fixed small ``local_latency``.
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Callable

from repro import obs
from repro.exceptions import SimulationError
from repro.netsim.eventqueue import EventQueue
from repro.netsim.messages import Message, MessageStats
from repro.topology.base import Topology

__all__ = ["LinkModel", "RoutingPolicy", "NetworkSimulator", "channel_name"]


def channel_name(channel: tuple) -> str:
    """Stable printable name of a channel: ``"3->7"`` or ``"nic_out:3"``."""
    if isinstance(channel[0], str):
        return f"{channel[0]}:{channel[1]}"
    return f"{channel[0]}->{channel[1]}"


class LinkModel(enum.Enum):
    """Forwarding discipline for multi-hop messages."""

    CUT_THROUGH = "cut_through"
    STORE_AND_FORWARD = "store_and_forward"


class RoutingPolicy(enum.Enum):
    """How a route is chosen for each message.

    ``DOR`` is deterministic dimension-ordered routing (the topology's
    canonical route — what BlueGene/L uses in deterministic mode and what
    the mapping metrics assume). ``ADAPTIVE`` approximates the machine's
    adaptive mode: on grid topologies each message picks, at injection time,
    the minimal route (one per axis order) whose links currently look least
    congested. Adaptivity spreads a random mapping's traffic over more
    links, narrowing the topo-aware-vs-random gap — the model deviation
    EXPERIMENTS.md discusses — and the ``test_ablation_routing`` bench
    quantifies exactly that.
    """

    DOR = "dor"
    ADAPTIVE = "adaptive"


class _Link:
    """FIFO transmission state of one directed link."""

    __slots__ = ("busy", "queue", "busy_time", "bytes_carried", "max_queue",
                 "saturated", "current")

    def __init__(self):
        self.busy = False
        self.queue: deque = deque()
        self.busy_time = 0.0      # accumulated occupancy, for utilization
        self.bytes_carried = 0.0  # payload bytes that crossed this link
        self.max_queue = 0        # deepest FIFO backlog ever seen
        self.saturated = False    # currently past the saturation threshold
        self.current = None       # in-flight (msg, route, hop, cb), for faults


class NetworkSimulator:
    """Discrete-event simulator of a direct network.

    Parameters
    ----------
    topology:
        A direct topology (mesh/torus/hypercube/arbitrary) providing
        deterministic routes.
    bandwidth:
        Link bandwidth in bytes per microsecond (1 byte/us == 1 MB/s).
    alpha:
        Per-hop routing latency in microseconds.
    local_latency:
        Delivery latency of intra-processor messages (no links used).
    model:
        :class:`LinkModel`; virtual cut-through by default.
    saturation_depth:
        FIFO backlog at which a link counts as *saturated*: when a link's
        queue first grows to this depth a ``netsim.link_saturated`` event is
        recorded (profiling only; see below), cleared once the queue drains
        empty.
    max_retries / retry_delay / retry_backoff / retry_timeout:
        Fault-recovery knobs (see :meth:`fail_link` / :meth:`fail_node`): a
        message interrupted by a fault with no surviving adaptive route is
        retransmitted end-to-end after ``retry_delay * retry_backoff**k``
        microseconds on its ``k``-th attempt, up to ``max_retries`` times
        and (when ``retry_timeout`` is set) only while the total elapsed
        time since the original send stays within the timeout.
    unroutable_policy:
        What happens when a message is truly undeliverable (dead endpoint,
        retries exhausted, retry timeout): ``"raise"`` (default) surfaces a
        :class:`~repro.exceptions.SimulationError`; ``"drop"`` marks the
        message dropped and counts ``netsim.dropped``.

    Fault injection is deterministic: :meth:`schedule_link_failure` and
    :meth:`schedule_node_failure` go through the event queue, and recovery
    involves no randomness, so identical fault schedules replay bit-identical
    outcomes. With profiling enabled the counters ``faults.injected``,
    ``netsim.reroutes``, ``netsim.retries`` and ``netsim.dropped`` account
    every fault-path decision.

    The simulator snapshots :func:`repro.obs.active` at construction time:
    enable profiling (``obs.enable()`` / ``obs.profiled()``) *before*
    building the simulator to record message counters, per-link byte
    timelines, queue depths, and saturation events. With profiling disabled
    (the default) no telemetry code runs beyond one high-water-mark compare
    per enqueue.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth: float = 1000.0,
        alpha: float = 0.1,
        local_latency: float = 0.05,
        model: LinkModel = LinkModel.CUT_THROUGH,
        nic_bandwidth: float | None = None,
        routing: RoutingPolicy = RoutingPolicy.DOR,
        link_bandwidths: dict[tuple[int, int], float] | None = None,
        saturation_depth: int = 8,
        max_retries: int = 8,
        retry_delay: float = 5.0,
        retry_backoff: float = 2.0,
        retry_timeout: float | None = None,
        unroutable_policy: str = "raise",
    ):
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if link_bandwidths:
            p = topology.num_nodes
            for link, bw in link_bandwidths.items():
                if bw <= 0:
                    raise SimulationError(
                        f"link {link} bandwidth must be positive, got {bw}"
                    )
                a, b = int(link[0]), int(link[1])
                if not (0 <= a < p and 0 <= b < p) or b not in topology.neighbors(a):
                    raise SimulationError(
                        f"link ({a}, {b}) in link_bandwidths is not a link "
                        f"of {topology.name}"
                    )
        if nic_bandwidth is not None and nic_bandwidth <= 0:
            raise SimulationError(f"nic_bandwidth must be positive, got {nic_bandwidth}")
        if alpha < 0 or local_latency < 0:
            raise SimulationError("latencies must be non-negative")
        if saturation_depth < 1:
            raise SimulationError(
                f"saturation_depth must be >= 1, got {saturation_depth}"
            )
        if max_retries < 0:
            raise SimulationError(f"max_retries must be >= 0, got {max_retries}")
        if retry_delay <= 0:
            raise SimulationError(f"retry_delay must be positive, got {retry_delay}")
        if retry_backoff < 1.0:
            raise SimulationError(
                f"retry_backoff must be >= 1.0, got {retry_backoff}"
            )
        if retry_timeout is not None and retry_timeout <= 0:
            raise SimulationError(
                f"retry_timeout must be positive, got {retry_timeout}"
            )
        if unroutable_policy not in ("raise", "drop"):
            raise SimulationError(
                f"unroutable_policy must be 'raise' or 'drop', "
                f"got {unroutable_policy!r}"
            )
        self._topology = topology
        self._bandwidth = float(bandwidth)
        # Heterogeneous machines: per-directed-link overrides of the default
        # bandwidth ((a, b) applies to both directions unless (b, a) is also
        # given explicitly).
        self._link_bandwidths: dict[tuple[int, int], float] = {}
        if link_bandwidths:
            for (a, b), bw in link_bandwidths.items():
                self._link_bandwidths[(int(a), int(b))] = float(bw)
                self._link_bandwidths.setdefault((int(b), int(a)), float(bw))
        self._nic_bandwidth = None if nic_bandwidth is None else float(nic_bandwidth)
        self._alpha = float(alpha)
        self._local = float(local_latency)
        self._model = LinkModel(model)
        self._routing = RoutingPolicy(routing)
        self.queue = EventQueue()
        self._links: dict[tuple, _Link] = {}
        self._routes: dict[tuple[int, int], list[tuple]] = {}
        self._route_choices: dict[tuple[int, int], list[list[tuple]]] = {}
        self._next_id = 0
        self.stats = MessageStats()
        self._saturation_depth = int(saturation_depth)
        self._prof = obs.active()
        # Fault-injection state (see fail_link / fail_node / _on_fault).
        self._max_retries = int(max_retries)
        self._retry_delay = float(retry_delay)
        self._retry_backoff = float(retry_backoff)
        self._retry_timeout = None if retry_timeout is None else float(retry_timeout)
        self._unroutable_policy = unroutable_policy
        self._failed_channels: set[tuple] = set()
        self._failed_nodes: set[int] = set()

    # ------------------------------------------------------------------ misc
    @property
    def topology(self) -> Topology:
        """The simulated machine."""
        return self._topology

    @property
    def bandwidth(self) -> float:
        """Link bandwidth in bytes per microsecond."""
        return self._bandwidth

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self.queue.now

    def _route(self, src: int, dst: int) -> list[tuple]:
        """Channel sequence for src -> dst: [NIC out], links..., [NIC in].

        When a finite ``nic_bandwidth`` is configured, every message also
        serializes through the source node's injection channel and the
        destination node's ejection channel — the per-node bottleneck real
        machines have (a BlueGene node cannot feed all six links at full
        rate from one core), which caps how much an optimal mapping can win
        by on bandwidth alone.
        """
        key = (src, dst)
        if self._routing is RoutingPolicy.ADAPTIVE:
            return self._pick_adaptive_route(key)
        route = self._routes.get(key)
        if route is None:
            route = self._wrap_nic(self._topology.route_links(src, dst), src, dst)
            self._routes[key] = route
        return route

    def _wrap_nic(self, links, src: int, dst: int) -> list[tuple]:
        route = list(links)
        if self._nic_bandwidth is not None:
            route = [("nic_out", src), *route, ("nic_in", dst)]
        return route

    def _route_choices_for(self, key: tuple[int, int]) -> list[list[tuple]]:
        """Cached minimal-route candidates for ``key = (src, dst)``.

        On grid topologies: one minimal route per axis order; elsewhere only
        the canonical route exists.
        """
        from itertools import permutations

        from repro.topology.grid import GridTopology

        choices = self._route_choices.get(key)
        if choices is None:
            src, dst = key
            topo = self._topology
            if isinstance(topo, GridTopology) and topo.ndim > 1:
                seen: set[tuple] = set()
                choices = []
                for order in permutations(range(topo.ndim)):
                    path = topo.route_axis_order(src, dst, order)
                    links = tuple(zip(path[:-1], path[1:]))
                    if links not in seen:
                        seen.add(links)
                        choices.append(self._wrap_nic(links, src, dst))
            else:
                choices = [self._wrap_nic(topo.route_links(src, dst), src, dst)]
            self._route_choices[key] = choices
        return choices

    def _pick_adaptive_route(self, key: tuple[int, int]) -> list[tuple]:
        """Least-congested minimal route at injection time.

        Congestion score of a route = queued messages + busy flags over its
        links right now; routes crossing failed links are avoided whenever a
        surviving candidate exists.
        """
        choices = self._route_choices_for(key)
        if self._failed_channels:
            # Adaptive reroute-around-failure: restrict to candidates whose
            # links all survive. When nothing survives, fall through with the
            # full list — the message will hit the failed hop and take the
            # retry/backoff path (it may be a transient the caller repairs).
            healthy = [
                route for route in choices
                if not any(ch in self._failed_channels for ch in route)
            ]
            if healthy:
                choices = healthy
        if len(choices) == 1:
            return choices[0]
        best, best_score = choices[0], None
        for route in choices:
            score = 0
            for channel in route:
                link = self._links.get(channel)
                if link is not None:
                    score += len(link.queue) + (1 if link.busy else 0)
            if best_score is None or score < best_score:
                best, best_score = route, score
        return best

    def _channel_bandwidth(self, channel: tuple) -> float:
        if isinstance(channel[0], str):  # NIC channel
            return self._nic_bandwidth
        return self._link_bandwidths.get(channel, self._bandwidth)

    def _link(self, link_id: tuple[int, int]) -> _Link:
        link = self._links.get(link_id)
        if link is None:
            link = _Link()
            self._links[link_id] = link
        return link

    # ------------------------------------------------------------------ send
    def send(
        self,
        src: int,
        dst: int,
        size_bytes: float,
        on_delivery: Callable[[Message], None] | None = None,
        at: float | None = None,
    ) -> Message:
        """Inject a message; returns its :class:`Message` record.

        ``on_delivery`` fires (with the record) when the tail reaches ``dst``.
        ``at`` defaults to the current simulation time.
        """
        if size_bytes <= 0:
            raise SimulationError(f"message size must be positive, got {size_bytes}")
        send_time = self.queue.now if at is None else float(at)
        msg = Message(self._next_id, int(src), int(dst), float(size_bytes), send_time)
        self._next_id += 1
        if self._prof is not None:
            self._prof.count("netsim.messages")
            if msg.src == msg.dst:
                self._prof.count("netsim.local_messages")

        if msg.src == msg.dst:  # same processor: no network involved
            self.queue.schedule(
                send_time + self._local, lambda: self._deliver(msg, on_delivery)
            )
            return msg

        # Route selection is deferred to the injection instant so the
        # adaptive policy sees the congestion state *then*, not at whatever
        # earlier time the caller scheduled the send.
        self.queue.schedule(send_time, lambda: self._inject(msg, on_delivery))
        return msg

    def _inject(self, msg: Message, on_delivery) -> None:
        route = self._route(msg.src, msg.dst)
        msg.hops = sum(1 for ch in route if not isinstance(ch[0], str))
        self._head_arrival(msg, route, 0, on_delivery)

    # ------------------------------------------------------------ link logic
    def _head_arrival(self, msg: Message, route, hop: int, on_delivery) -> None:
        """The head of ``msg`` reached the input of ``route[hop]``."""
        if msg.faulted:
            # A fault hit this message's upstream link after its progression
            # event was scheduled; the event carries the stale route.
            msg.faulted = False
            self._on_fault(msg, on_delivery)
            return
        if self._failed_channels and route[hop] in self._failed_channels:
            self._on_fault(msg, on_delivery)
            return
        link = self._link(route[hop])
        if link.busy:
            link.queue.append((msg, route, hop, on_delivery))
            depth = len(link.queue)
            if depth > link.max_queue:
                link.max_queue = depth
            if self._prof is not None:
                self._prof.count("netsim.enqueues")
                self._prof.count_max("netsim.max_queue_depth", depth)
                if depth >= self._saturation_depth and not link.saturated:
                    link.saturated = True
                    self._prof.count("netsim.saturation_events")
                    self._prof.event(
                        "netsim.link_saturated",
                        time_us=self.queue.now,
                        link=channel_name(route[hop]),
                        depth=depth,
                    )
        else:
            self._start_transmission(link, msg, route, hop, on_delivery)

    def _start_transmission(self, link: _Link, msg: Message, route, hop: int,
                            on_delivery) -> None:
        now = self.queue.now
        channel = route[hop]
        is_nic = isinstance(channel[0], str)
        serialization = msg.size_bytes / self._channel_bandwidth(channel)
        # NIC channels model pure serialization; routing latency applies to
        # network links only.
        alpha = 0.0 if is_nic else self._alpha
        occupancy = alpha + serialization
        link.busy = True
        link.current = (msg, route, hop, on_delivery)
        link.busy_time += occupancy
        link.bytes_carried += msg.size_bytes
        if self._prof is not None:
            self._prof.count("netsim.transmissions")
            self._prof.sample(
                f"link_bytes:{channel_name(channel)}", now, link.bytes_carried
            )

        # When does the head reach the next stage?
        if self._model is LinkModel.CUT_THROUGH:
            head_out = now + alpha
        else:
            head_out = now + occupancy

        last_hop = hop == len(route) - 1
        if last_hop:
            # Tail fully received at the destination once serialization ends.
            self.queue.schedule(now + occupancy, lambda: self._deliver(msg, on_delivery))
        else:
            self.queue.schedule(
                head_out, lambda: self._head_arrival(msg, route, hop + 1, on_delivery)
            )
        self.queue.schedule(now + occupancy, lambda: self._link_free(link))

    def _link_free(self, link: _Link) -> None:
        link.busy = False
        link.current = None
        if link.queue:
            msg, route, hop, on_delivery = link.queue.popleft()
            self._start_transmission(link, msg, route, hop, on_delivery)
        else:
            link.saturated = False

    def _deliver(self, msg: Message, on_delivery) -> None:
        if msg.faulted:
            msg.faulted = False
            self._on_fault(msg, on_delivery)
            return
        if self._failed_nodes and (
            msg.src in self._failed_nodes or msg.dst in self._failed_nodes
        ):
            # Covers local (same-processor) messages and a destination that
            # died while the tail was still arriving.
            self._on_fault(msg, on_delivery)
            return
        msg.deliver_time = self.queue.now
        self.stats.record(msg)
        if self._prof is not None:
            self._prof.count("netsim.delivered")
        if on_delivery is not None:
            on_delivery(msg)

    # ------------------------------------------------------------- faults
    def _check_link(self, a: int, b: int) -> tuple[int, int]:
        p = self._topology.num_nodes
        if not (0 <= a < p and 0 <= b < p) or b not in self._topology.neighbors(a):
            raise SimulationError(
                f"({a}, {b}) is not a link of {self._topology.name}"
            )
        return a, b

    def fail_link(self, a: int, b: int) -> None:
        """Fail the undirected link ``(a, b)`` immediately (both directions).

        The in-flight message (if any) and every queued message on the link
        take the fault path: adaptive reroute around the failure when a
        surviving minimal route exists, otherwise an end-to-end retransmit
        with exponential backoff; retry/timeout exhaustion follows
        ``unroutable_policy``. Counted as ``faults.injected`` (one per
        undirected link) when profiling is enabled.
        """
        a, b = self._check_link(int(a), int(b))
        if (a, b) in self._failed_channels:
            return
        if self._prof is not None:
            self._prof.count("faults.injected")
            self._prof.event(
                "netsim.link_failed", time_us=self.queue.now, link=f"{a}<->{b}"
            )
        self._fail_channel((a, b))
        self._fail_channel((b, a))

    def fail_node(self, node: int) -> None:
        """Fail processor ``node``: all its links and NIC channels go down.

        Messages already heading to (or injected from) the dead processor
        become unroutable — no reroute or retry can save them — and follow
        ``unroutable_policy`` ("raise" surfaces a
        :class:`~repro.exceptions.SimulationError`; "drop" records them and
        counts ``netsim.dropped``).
        """
        node = int(node)
        p = self._topology.num_nodes
        if not 0 <= node < p:
            raise SimulationError(f"node {node} out of range [0, {p})")
        if node in self._failed_nodes:
            return
        if self._prof is not None:
            self._prof.count("faults.injected")
            self._prof.event(
                "netsim.node_failed", time_us=self.queue.now, node=node
            )
        self._failed_nodes.add(node)
        for nbr in self._topology.neighbors(node):
            self._fail_channel((node, nbr))
            self._fail_channel((nbr, node))
        self._fail_channel(("nic_out", node))
        self._fail_channel(("nic_in", node))

    def schedule_link_failure(self, at: float, a: int, b: int) -> None:
        """Fail link ``(a, b)`` at simulation time ``at`` (validated now)."""
        a, b = self._check_link(int(a), int(b))
        self.queue.schedule(float(at), lambda: self.fail_link(a, b))

    def schedule_node_failure(self, at: float, node: int) -> None:
        """Fail processor ``node`` at simulation time ``at`` (validated now)."""
        node = int(node)
        p = self._topology.num_nodes
        if not 0 <= node < p:
            raise SimulationError(f"node {node} out of range [0, {p})")
        self.queue.schedule(float(at), lambda: self.fail_node(node))

    def _fail_channel(self, channel: tuple) -> None:
        """Mark one directed channel failed; evict its traffic."""
        if channel in self._failed_channels:
            return
        self._failed_channels.add(channel)
        link = self._links.get(channel)
        if link is None:
            return
        if link.busy and link.current is not None:
            # The in-flight message already has a progression event scheduled
            # (next head arrival or final delivery); flag it so that event
            # takes the fault path instead of advancing a dead route. The
            # link's busy interval still completes via the pending
            # _link_free event, as on a real machine where the failure is
            # detected at the next hop.
            link.current[0].faulted = True
        if link.queue:
            pending = list(link.queue)
            link.queue.clear()
            for qmsg, _route, _hop, qcb in pending:
                self._on_fault(qmsg, qcb)

    def _has_healthy_route(self, src: int, dst: int) -> bool:
        choices = self._route_choices_for((src, dst))
        return any(
            all(ch not in self._failed_channels for ch in route)
            for route in choices
        )

    def _on_fault(self, msg: Message, on_delivery) -> None:
        """A fault interrupted ``msg``; reroute, retry, or give up."""
        now = self.queue.now
        if msg.src in self._failed_nodes or msg.dst in self._failed_nodes:
            self._drop(msg, "endpoint processor failed")
            return
        if (
            self._routing is RoutingPolicy.ADAPTIVE
            and msg.src != msg.dst
            and self._has_healthy_route(msg.src, msg.dst)
        ):
            # Adaptive routing sidesteps the failure with a surviving minimal
            # route: re-inject now (injection re-picks the least-congested
            # healthy candidate).
            if self._prof is not None:
                self._prof.count("netsim.reroutes")
            self.queue.schedule(now, lambda: self._inject(msg, on_delivery))
            return
        # No route around it: end-to-end retransmit with exponential backoff.
        if msg.attempts >= self._max_retries:
            self._drop(msg, f"retries exhausted after {msg.attempts} attempts")
            return
        delay = self._retry_delay * self._retry_backoff ** msg.attempts
        if (
            self._retry_timeout is not None
            and (now + delay) - msg.send_time > self._retry_timeout
        ):
            self._drop(
                msg,
                f"retry timeout exceeded ({self._retry_timeout} us since send)",
            )
            return
        msg.attempts += 1
        if self._prof is not None:
            self._prof.count("netsim.retries")
        self.queue.schedule(now + delay, lambda: self._inject(msg, on_delivery))

    def _drop(self, msg: Message, reason: str) -> None:
        if self._unroutable_policy == "raise":
            raise SimulationError(
                f"message {msg.msg_id} ({msg.src} -> {msg.dst}) is "
                f"undeliverable: {reason}"
            )
        msg.dropped = True
        if self._prof is not None:
            self._prof.count("netsim.dropped")
            self._prof.event(
                "netsim.message_dropped",
                time_us=self.queue.now,
                msg_id=msg.msg_id,
                src=msg.src,
                dst=msg.dst,
                reason=reason,
            )

    # ------------------------------------------------------------------- run
    def run(self, max_events: int | None = None) -> float:
        """Drain the event queue; return the final simulation time."""
        end = self.queue.run(max_events)
        if self._prof is not None and self._links:
            # Per-run load summary so profiles capture link telemetry even
            # when the caller never touches the simulator again (e.g. the
            # experiment harnesses).
            loads = [v.bytes_carried for v in self._links.values()]
            self._prof.event(
                "netsim.run_complete",
                time_us=end,
                links_used=len(self._links),
                total_bytes=float(sum(loads)),
                max_link_bytes=float(max(loads)),
                max_queue_depth=int(max(v.max_queue for v in self._links.values())),
            )
        return end

    # ----------------------------------------------------------------- stats
    def link_busy_times(self) -> dict[tuple[int, int], float]:
        """Accumulated occupancy per directed link (microseconds)."""
        return {k: v.busy_time for k, v in self._links.items()}

    def link_bytes(self) -> dict[tuple[int, int], float]:
        """Payload bytes carried per directed link."""
        return {k: v.bytes_carried for k, v in self._links.items()}

    def link_queue_peaks(self) -> dict[tuple[int, int], int]:
        """Deepest FIFO backlog each directed link ever accumulated."""
        return {k: v.max_queue for k, v in self._links.items()}
