"""Point-to-point network simulation with per-link FIFO contention.

Model (all times in microseconds, sizes in bytes):

* Every directed link carries one message at a time; messages queue FIFO.
* Transmitting a message of size ``S`` over one link takes
  ``alpha + S / bandwidth`` — a per-hop routing/arbitration latency plus the
  serialization time — and the link is occupied for that whole interval.
* **Virtual cut-through** (default): the head is forwarded to the next link
  after ``alpha``, so a multi-hop message pipelines — an uncontended L-hop
  delivery costs ``L * alpha + S / bandwidth`` (wormhole-style no-load
  latency, the regime the paper's introduction describes where hop count
  barely matters without contention).
* **Store-and-forward**: the next hop begins only after the full message
  arrived, costing ``L * (alpha + S / bandwidth)`` uncontended — kept as an
  ablation contrast.

Contention is what the paper is about: a random mapping makes every message
cross many links, multiplying the per-link offered load; once a link's
utilization saturates, FIFO queues grow and latencies blow up — exactly the
Figure 7 behaviour. Messages between tasks on the same processor bypass the
network for a fixed small ``local_latency``.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from collections.abc import Callable

import numpy as np

from repro import obs
from repro.exceptions import SimulationError
from repro.netsim.eventqueue import EventQueue
from repro.netsim.messages import Message, MessageStats
from repro.topology.base import Topology

__all__ = [
    "LinkModel",
    "RoutingPolicy",
    "OverloadPolicy",
    "NetworkSimulator",
    "channel_name",
]


def channel_name(channel: tuple) -> str:
    """Stable printable name of a channel: ``"3->7"`` or ``"nic_out:3"``."""
    if isinstance(channel[0], str):
        return f"{channel[0]}:{channel[1]}"
    return f"{channel[0]}->{channel[1]}"


class LinkModel(enum.Enum):
    """Forwarding discipline for multi-hop messages."""

    CUT_THROUGH = "cut_through"
    STORE_AND_FORWARD = "store_and_forward"


class RoutingPolicy(enum.Enum):
    """How a route is chosen for each message.

    ``DOR`` is deterministic dimension-ordered routing (the topology's
    canonical route — what BlueGene/L uses in deterministic mode and what
    the mapping metrics assume). ``ADAPTIVE`` approximates the machine's
    adaptive mode: on grid topologies each message picks, at injection time,
    the minimal route (one per axis order) whose links currently look least
    congested. Adaptivity spreads a random mapping's traffic over more
    links, narrowing the topo-aware-vs-random gap — the model deviation
    EXPERIMENTS.md discusses — and the ``test_ablation_routing`` bench
    quantifies exactly that.
    """

    DOR = "dor"
    ADAPTIVE = "adaptive"


class OverloadPolicy(enum.Enum):
    """What a finite link buffer does when offered more than it can hold.

    Only consulted when ``buffer_bytes`` is set; the default infinite-buffer
    model never overloads.

    * ``DROP`` — tail-drop: a message arriving at a full buffer is discarded
      at that hop and retransmitted end-to-end after an exponential backoff
      (the fault-recovery knobs ``retry_delay`` / ``retry_backoff`` /
      ``max_retries`` / ``retry_timeout`` govern the schedule; an optional
      seeded ``retry_jitter`` desynchronizes colliding retransmits).
    * ``ECN`` — tail-drop at a *full* buffer as above, but additionally mark
      messages queued past ``ecn_threshold`` occupancy; once a sender sees a
      marked delivery for a flow it multiplicatively stretches that flow's
      inter-injection gap (minimal AIMD: multiply by ``ecn_backoff`` per
      mark, recover additively by ``ecn_recover`` per unmarked delivery).
    * ``CREDIT`` — hop-by-hop credit flow control: a hop may only start
      forwarding when the downstream buffer has reserved room for the whole
      message, so backpressure propagates upstream and nothing is ever
      dropped. Injection at a full first hop waits for credit too.
    """

    DROP = "drop"
    ECN = "ecn"
    CREDIT = "credit"


class _Link:
    """FIFO transmission state of one directed link."""

    __slots__ = ("busy", "queue", "busy_time", "bytes_carried", "max_queue",
                 "saturated", "current", "buffered_bytes", "reserved",
                 "blocked", "waiters", "entry_wait")

    def __init__(self):
        self.busy = False
        self.queue: deque = deque()
        self.busy_time = 0.0      # accumulated occupancy, for utilization
        self.bytes_carried = 0.0  # payload bytes that crossed this link
        self.max_queue = 0        # deepest FIFO backlog ever seen
        self.saturated = False    # currently past the saturation threshold
        self.current = None       # in-flight (msg, route, hop, cb), for faults
        # Finite-buffer state (untouched when buffer_bytes is None):
        self.buffered_bytes = 0.0   # bytes sitting in this link's input queue
        self.reserved = 0.0         # credit mode: bytes promised to upstream
        self.blocked = None         # credit mode: head waiting for downstream
        self.waiters: deque = deque()     # upstream channels awaiting credit
        self.entry_wait: deque = deque()  # injections awaiting first-hop room


class NetworkSimulator:
    """Discrete-event simulator of a machine's link graph.

    Parameters
    ----------
    topology:
        Any route-capable topology. Messages traverse the links of
        ``topology.link_graph()``: on a direct machine
        (mesh/torus/hypercube/arbitrary) those are processor-processor
        links, on an indirect machine (fat-tree, dragonfly) they include
        switch-level links — switches forward traffic but never inject or
        absorb it, and buffers, overload policies, and fault injection all
        apply per switch link exactly as they do per processor link.
    bandwidth:
        Link bandwidth in bytes per microsecond (1 byte/us == 1 MB/s).
    alpha:
        Per-hop routing latency in microseconds.
    local_latency:
        Delivery latency of intra-processor messages (no links used).
    model:
        :class:`LinkModel`; virtual cut-through by default.
    saturation_depth:
        FIFO backlog at which a link counts as *saturated*: when a link's
        queue first grows to this depth a ``netsim.link_saturated`` event is
        recorded (profiling only; see below), cleared once the queue drains
        empty.
    max_retries / retry_delay / retry_backoff / retry_timeout:
        Fault-recovery knobs (see :meth:`fail_link` / :meth:`fail_node`): a
        message interrupted by a fault with no surviving adaptive route is
        retransmitted end-to-end after ``retry_delay * retry_backoff**k``
        microseconds on its ``k``-th attempt, up to ``max_retries`` times
        and (when ``retry_timeout`` is set) only while the total elapsed
        time since the original send stays within the timeout.
    unroutable_policy:
        What happens when a message is truly undeliverable (dead endpoint,
        retries exhausted, retry timeout): ``"raise"`` (default) surfaces a
        :class:`~repro.exceptions.SimulationError`; ``"drop"`` marks the
        message dropped and counts ``netsim.dropped``.
    buffer_bytes / overload_policy:
        Per-link input buffer capacity in bytes. ``None`` (default) keeps
        the seed model's unbounded FIFO queues — bit-identical event
        ordering, zero behavior drift. When set, a link whose queue already
        holds ``buffer_bytes`` of payload overloads, and
        :class:`OverloadPolicy` decides what happens: ``"drop"`` (tail-drop
        + end-to-end retransmit), ``"ecn"`` (mark past ``ecn_threshold``
        occupancy, marked flows stretch their injection gap by
        ``ecn_backoff`` up to ``ecn_max_stretch`` and recover by
        ``ecn_recover``; still tail-drops at completely full), or
        ``"credit"`` (hop-by-hop credit flow control — lossless, but
        incompatible with fault injection, and wrap rings can deadlock:
        the run-end drain check reports a wedge instead of hanging).
        NIC channels are treated as infinitely buffered (the endpoint
        memory is the buffer).
    retry_jitter / seed:
        Overload retransmits wait ``retry_delay * retry_backoff**k``
        multiplied by ``1 + retry_jitter * U[0, 1)`` — the uniform draw
        comes from a generator seeded with ``seed``, and because event
        order is deterministic the whole schedule replays bit-identically
        for the same seed.
    stall_window:
        Livelock watchdog: when set, :meth:`run` arms a periodic check and
        raises :class:`~repro.exceptions.SimulationError` naming the oldest
        undelivered message if no delivery progress (deliveries + final
        drops) happened for a full window while events kept firing — so a
        drop/retry loop cannot spin forever.

    Fault injection is deterministic: :meth:`schedule_link_failure` and
    :meth:`schedule_node_failure` go through the event queue, and recovery
    involves no randomness, so identical fault schedules replay bit-identical
    outcomes. With profiling enabled the counters ``faults.injected``,
    ``netsim.reroutes``, ``netsim.retries`` and ``netsim.dropped`` account
    every fault-path decision.

    The simulator snapshots :func:`repro.obs.active` at construction time:
    enable profiling (``obs.enable()`` / ``obs.profiled()``) *before*
    building the simulator to record message counters, per-link byte
    timelines, queue depths, and saturation events. With profiling disabled
    (the default) no telemetry code runs beyond one high-water-mark compare
    per enqueue.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth: float = 1000.0,
        alpha: float = 0.1,
        local_latency: float = 0.05,
        model: LinkModel = LinkModel.CUT_THROUGH,
        nic_bandwidth: float | None = None,
        routing: RoutingPolicy = RoutingPolicy.DOR,
        link_bandwidths: dict[tuple[int, int], float] | None = None,
        saturation_depth: int = 8,
        max_retries: int = 8,
        retry_delay: float = 5.0,
        retry_backoff: float = 2.0,
        retry_timeout: float | None = None,
        unroutable_policy: str = "raise",
        buffer_bytes: float | None = None,
        overload_policy: OverloadPolicy | str = OverloadPolicy.DROP,
        ecn_threshold: float = 0.5,
        ecn_backoff: float = 2.0,
        ecn_recover: float = 0.25,
        ecn_max_stretch: float = 64.0,
        retry_jitter: float = 0.0,
        seed: int = 0,
        stall_window: float | None = None,
    ):
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if link_bandwidths:
            graph = topology.link_graph()
            for link, bw in link_bandwidths.items():
                if bw <= 0:
                    raise SimulationError(
                        f"link {link} bandwidth must be positive, got {bw}"
                    )
                a, b = int(link[0]), int(link[1])
                if not graph.has_link(a, b):
                    raise SimulationError(
                        f"link ({a}, {b}) in link_bandwidths is not a link "
                        f"of {topology.name}"
                    )
        if nic_bandwidth is not None and nic_bandwidth <= 0:
            raise SimulationError(f"nic_bandwidth must be positive, got {nic_bandwidth}")
        if alpha < 0 or local_latency < 0:
            raise SimulationError("latencies must be non-negative")
        if saturation_depth < 1:
            raise SimulationError(
                f"saturation_depth must be >= 1, got {saturation_depth}"
            )
        if max_retries < 0:
            raise SimulationError(f"max_retries must be >= 0, got {max_retries}")
        if retry_delay <= 0:
            raise SimulationError(f"retry_delay must be positive, got {retry_delay}")
        if retry_backoff < 1.0:
            raise SimulationError(
                f"retry_backoff must be >= 1.0, got {retry_backoff}"
            )
        if retry_timeout is not None and retry_timeout <= 0:
            raise SimulationError(
                f"retry_timeout must be positive, got {retry_timeout}"
            )
        if unroutable_policy not in ("raise", "drop"):
            raise SimulationError(
                f"unroutable_policy must be 'raise' or 'drop', "
                f"got {unroutable_policy!r}"
            )
        if buffer_bytes is not None and (
            not math.isfinite(float(buffer_bytes)) or buffer_bytes <= 0
        ):
            raise SimulationError(
                f"buffer_bytes must be positive and finite, got {buffer_bytes}"
            )
        try:
            overload_policy = OverloadPolicy(overload_policy)
        except ValueError:
            raise SimulationError(
                f"overload_policy must be one of "
                f"{[p.value for p in OverloadPolicy]}, got {overload_policy!r}"
            ) from None
        if not 0.0 < ecn_threshold <= 1.0:
            raise SimulationError(
                f"ecn_threshold must be in (0, 1], got {ecn_threshold}"
            )
        if ecn_backoff < 1.0:
            raise SimulationError(
                f"ecn_backoff must be >= 1.0, got {ecn_backoff}"
            )
        if ecn_recover < 0.0:
            raise SimulationError(
                f"ecn_recover must be >= 0, got {ecn_recover}"
            )
        if ecn_max_stretch < 1.0:
            raise SimulationError(
                f"ecn_max_stretch must be >= 1.0, got {ecn_max_stretch}"
            )
        if retry_jitter < 0.0:
            raise SimulationError(
                f"retry_jitter must be >= 0, got {retry_jitter}"
            )
        if stall_window is not None and stall_window <= 0:
            raise SimulationError(
                f"stall_window must be positive, got {stall_window}"
            )
        self._topology = topology
        self._bandwidth = float(bandwidth)
        # Heterogeneous machines: per-directed-link overrides of the default
        # bandwidth ((a, b) applies to both directions unless (b, a) is also
        # given explicitly).
        self._link_bandwidths: dict[tuple[int, int], float] = {}
        if link_bandwidths:
            for (a, b), bw in link_bandwidths.items():
                self._link_bandwidths[(int(a), int(b))] = float(bw)
                self._link_bandwidths.setdefault((int(b), int(a)), float(bw))
        self._nic_bandwidth = None if nic_bandwidth is None else float(nic_bandwidth)
        self._alpha = float(alpha)
        self._local = float(local_latency)
        self._model = LinkModel(model)
        self._routing = RoutingPolicy(routing)
        self.queue = EventQueue()
        self._links: dict[tuple, _Link] = {}
        self._routes: dict[tuple[int, int], list[tuple]] = {}
        self._route_choices: dict[tuple[int, int], list[list[tuple]]] = {}
        self._next_id = 0
        self.stats = MessageStats()
        self._saturation_depth = int(saturation_depth)
        self._prof = obs.active()
        # Fault-injection state (see fail_link / fail_node / _on_fault).
        self._max_retries = int(max_retries)
        self._retry_delay = float(retry_delay)
        self._retry_backoff = float(retry_backoff)
        self._retry_timeout = None if retry_timeout is None else float(retry_timeout)
        self._unroutable_policy = unroutable_policy
        self._failed_channels: set[tuple] = set()
        self._failed_nodes: set[int] = set()
        # Finite-buffer / overload state. Every code path below is gated on
        # buffer_bytes being set (or the specific policy), so the default
        # None configuration replays the seed model bit-for-bit.
        self._buffer_bytes = None if buffer_bytes is None else float(buffer_bytes)
        self._overload = overload_policy
        self._ecn = (
            self._buffer_bytes is not None
            and overload_policy is OverloadPolicy.ECN
        )
        self._credit = (
            self._buffer_bytes is not None
            and overload_policy is OverloadPolicy.CREDIT
        )
        self._ecn_threshold = float(ecn_threshold)
        self._ecn_backoff = float(ecn_backoff)
        self._ecn_recover = float(ecn_recover)
        self._ecn_max_stretch = float(ecn_max_stretch)
        self._retry_jitter = float(retry_jitter)
        self._seed = int(seed)
        self._rng = None  # lazily built np.random.Generator for retry jitter
        # Per-flow AIMD pacing state: (src, dst) -> [stretch, next_free_time].
        self._flows: dict[tuple[int, int], list[float]] = {}
        # Every message from send() until delivery or final drop; lets the
        # watchdog name the oldest stuck message and the drain check detect
        # wedges (queue empty but traffic undelivered).
        self._inflight: dict[int, Message] = {}
        self._stall_window = None if stall_window is None else float(stall_window)
        self._watch_mark = -1
        self._watchdog_armed = False

    # ------------------------------------------------------------------ misc
    @property
    def topology(self) -> Topology:
        """The simulated machine."""
        return self._topology

    @property
    def bandwidth(self) -> float:
        """Link bandwidth in bytes per microsecond."""
        return self._bandwidth

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self.queue.now

    @property
    def buffer_bytes(self) -> float | None:
        """Per-link buffer capacity; None means the unbounded seed model."""
        return self._buffer_bytes

    @property
    def overload_policy(self) -> OverloadPolicy:
        """Active :class:`OverloadPolicy` (meaningful when buffered)."""
        return self._overload

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered or finally dropped."""
        return len(self._inflight)

    def _route(self, src: int, dst: int) -> list[tuple]:
        """Channel sequence for src -> dst: [NIC out], links..., [NIC in].

        When a finite ``nic_bandwidth`` is configured, every message also
        serializes through the source node's injection channel and the
        destination node's ejection channel — the per-node bottleneck real
        machines have (a BlueGene node cannot feed all six links at full
        rate from one core), which caps how much an optimal mapping can win
        by on bandwidth alone.
        """
        key = (src, dst)
        if self._routing is RoutingPolicy.ADAPTIVE:
            return self._pick_adaptive_route(key)
        route = self._routes.get(key)
        if route is None:
            route = self._wrap_nic(self._topology.route_links(src, dst), src, dst)
            self._routes[key] = route
        return route

    def _wrap_nic(self, links, src: int, dst: int) -> list[tuple]:
        route = list(links)
        if self._nic_bandwidth is not None:
            route = [("nic_out", src), *route, ("nic_in", dst)]
        return route

    def _route_choices_for(self, key: tuple[int, int]) -> list[list[tuple]]:
        """Cached minimal-route candidates for ``key = (src, dst)``.

        On grid topologies: one minimal route per axis order; elsewhere only
        the canonical route exists.
        """
        from itertools import permutations

        from repro.topology.grid import GridTopology

        choices = self._route_choices.get(key)
        if choices is None:
            src, dst = key
            topo = self._topology
            if isinstance(topo, GridTopology) and topo.ndim > 1:
                seen: set[tuple] = set()
                choices = []
                for order in permutations(range(topo.ndim)):
                    path = topo.route_axis_order(src, dst, order)
                    links = tuple(zip(path[:-1], path[1:]))
                    if links not in seen:
                        seen.add(links)
                        choices.append(self._wrap_nic(links, src, dst))
            else:
                choices = [self._wrap_nic(topo.route_links(src, dst), src, dst)]
            self._route_choices[key] = choices
        return choices

    def _pick_adaptive_route(self, key: tuple[int, int]) -> list[tuple]:
        """Least-congested minimal route at injection time.

        Congestion score of a route = queued messages + busy flags over its
        links right now; routes crossing failed links are avoided whenever a
        surviving candidate exists.
        """
        choices = self._route_choices_for(key)
        if self._failed_channels:
            # Adaptive reroute-around-failure: restrict to candidates whose
            # links all survive. When nothing survives, fall through with the
            # full list — the message will hit the failed hop and take the
            # retry/backoff path (it may be a transient the caller repairs).
            healthy = [
                route for route in choices
                if not any(ch in self._failed_channels for ch in route)
            ]
            if healthy:
                choices = healthy
        if len(choices) == 1:
            return choices[0]
        best, best_score = choices[0], None
        for route in choices:
            score = 0
            for channel in route:
                link = self._links.get(channel)
                if link is not None:
                    score += len(link.queue) + (1 if link.busy else 0)
            if best_score is None or score < best_score:
                best, best_score = route, score
        return best

    def _channel_bandwidth(self, channel: tuple) -> float:
        if isinstance(channel[0], str):  # NIC channel
            return self._nic_bandwidth
        return self._link_bandwidths.get(channel, self._bandwidth)

    def _link(self, link_id: tuple[int, int]) -> _Link:
        link = self._links.get(link_id)
        if link is None:
            link = _Link()
            self._links[link_id] = link
        return link

    # ------------------------------------------------------------------ send
    def send(
        self,
        src: int,
        dst: int,
        size_bytes: float,
        on_delivery: Callable[[Message], None] | None = None,
        at: float | None = None,
    ) -> Message:
        """Inject a message; returns its :class:`Message` record.

        ``on_delivery`` fires (with the record) when the tail reaches ``dst``.
        ``at`` defaults to the current simulation time.
        """
        if size_bytes <= 0:
            raise SimulationError(f"message size must be positive, got {size_bytes}")
        send_time = self.queue.now if at is None else float(at)
        msg = Message(self._next_id, int(src), int(dst), float(size_bytes), send_time)
        self._next_id += 1
        self._inflight[msg.msg_id] = msg
        if self._prof is not None:
            self._prof.count("netsim.messages")
            if msg.src == msg.dst:
                self._prof.count("netsim.local_messages")

        if msg.src == msg.dst:  # same processor: no network involved
            self.queue.schedule(
                send_time + self._local, lambda: self._deliver(msg, on_delivery)
            )
            return msg

        # Route selection is deferred to the injection instant so the
        # adaptive policy sees the congestion state *then*, not at whatever
        # earlier time the caller scheduled the send.
        self.queue.schedule(send_time, lambda: self._inject(msg, on_delivery))
        return msg

    def _inject(self, msg: Message, on_delivery) -> None:
        if self._ecn:
            # AIMD pacing, decided at the injection instant (so the flow
            # state reflects deliveries seen so far): a flow that saw
            # ECN-marked deliveries spaces its injections by
            # stretch * serialization time; unmarked flows are untouched.
            state = self._flows.get((msg.src, msg.dst))
            if state is not None and state[0] > 1.0:
                now = self.queue.now
                free = max(now, state[1])
                state[1] = free + state[0] * msg.size_bytes / self._bandwidth
                if free > now:
                    if self._prof is not None:
                        self._prof.count("netsim.ecn_paced")
                    self.queue.schedule(
                        free, lambda: self._inject_route(msg, on_delivery)
                    )
                    return
        self._inject_route(msg, on_delivery)

    def _inject_route(self, msg: Message, on_delivery) -> None:
        route = self._route(msg.src, msg.dst)
        msg.hops = sum(1 for ch in route if not isinstance(ch[0], str))
        self._head_arrival(msg, route, 0, on_delivery)

    # ------------------------------------------------------------ link logic
    def _head_arrival(self, msg: Message, route, hop: int, on_delivery) -> None:
        """The head of ``msg`` reached the input of ``route[hop]``."""
        if msg.faulted:
            # A fault hit this message's upstream link after its progression
            # event was scheduled; the event carries the stale route.
            msg.faulted = False
            self._on_fault(msg, on_delivery)
            return
        if self._failed_channels and route[hop] in self._failed_channels:
            self._on_fault(msg, on_delivery)
            return
        link = self._link(route[hop])
        # NIC channels stay unbounded even under finite link buffers: the
        # endpoint's memory is the buffer.
        if self._buffer_bytes is not None and not isinstance(route[hop][0], str):
            if self._credit:
                self._credit_arrival(link, msg, route, hop, on_delivery)
            elif link.busy:
                size = msg.size_bytes
                if link.buffered_bytes + size > self._buffer_bytes:
                    self._on_overflow(msg, route, hop, on_delivery)
                    return
                if (
                    self._ecn
                    and not msg.ecn_marked
                    and link.buffered_bytes + size
                    >= self._ecn_threshold * self._buffer_bytes
                ):
                    msg.ecn_marked = True
                    self.stats.ecn_marks += 1
                    if self._prof is not None:
                        self._prof.count("netsim.ecn_marks")
                link.buffered_bytes += size
                self._enqueue(link, msg, route, hop, on_delivery)
            else:
                self._start_transmission(link, msg, route, hop, on_delivery)
            return
        if link.busy:
            self._enqueue(link, msg, route, hop, on_delivery)
        else:
            self._start_transmission(link, msg, route, hop, on_delivery)

    def _enqueue(self, link: _Link, msg: Message, route, hop: int,
                 on_delivery) -> None:
        """Append to a busy link's FIFO with depth/saturation bookkeeping."""
        link.queue.append((msg, route, hop, on_delivery))
        depth = len(link.queue)
        if depth > link.max_queue:
            link.max_queue = depth
        if self._prof is not None:
            self._prof.count("netsim.enqueues")
            self._prof.count_max("netsim.max_queue_depth", depth)
            if depth >= self._saturation_depth and not link.saturated:
                link.saturated = True
                self._prof.count("netsim.saturation_events")
                self._prof.event(
                    "netsim.link_saturated",
                    time_us=self.queue.now,
                    link=channel_name(route[hop]),
                    depth=depth,
                )

    def _start_transmission(self, link: _Link, msg: Message, route, hop: int,
                            on_delivery) -> None:
        if self._credit and not self._reserve_downstream(
            link, msg, route, hop, on_delivery
        ):
            return  # head blocked awaiting downstream credit
        now = self.queue.now
        channel = route[hop]
        is_nic = isinstance(channel[0], str)
        serialization = msg.size_bytes / self._channel_bandwidth(channel)
        # NIC channels model pure serialization; routing latency applies to
        # network links only.
        alpha = 0.0 if is_nic else self._alpha
        occupancy = alpha + serialization
        link.busy = True
        link.current = (msg, route, hop, on_delivery)
        link.busy_time += occupancy
        link.bytes_carried += msg.size_bytes
        if self._prof is not None:
            self._prof.count("netsim.transmissions")
            self._prof.sample(
                f"link_bytes:{channel_name(channel)}", now, link.bytes_carried
            )

        # When does the head reach the next stage?
        if self._model is LinkModel.CUT_THROUGH:
            head_out = now + alpha
        else:
            head_out = now + occupancy

        last_hop = hop == len(route) - 1
        if last_hop:
            # Tail fully received at the destination once serialization ends.
            self.queue.schedule(now + occupancy, lambda: self._deliver(msg, on_delivery))
        else:
            self.queue.schedule(
                head_out, lambda: self._head_arrival(msg, route, hop + 1, on_delivery)
            )
        self.queue.schedule(now + occupancy, lambda: self._link_free(link))

    def _link_free(self, link: _Link) -> None:
        link.busy = False
        link.current = None
        if link.queue:
            msg, route, hop, on_delivery = link.queue.popleft()
            if self._buffer_bytes is not None:
                link.buffered_bytes -= msg.size_bytes
            self._start_transmission(link, msg, route, hop, on_delivery)
        else:
            link.saturated = False
        if self._credit:
            # Room opened up (head left the queue, or the wire went idle):
            # admit waiting injections and grant credit to upstream heads.
            self._credit_wake(link)

    # ------------------------------------------------------ finite buffers
    def _on_overflow(self, msg: Message, route, hop: int, on_delivery) -> None:
        """Tail-drop at a full buffer; retransmit end-to-end with backoff."""
        now = self.queue.now
        self.stats.buffer_drops += 1
        if self._prof is not None:
            self._prof.count("netsim.buffer_drops")
        if msg.attempts >= self._max_retries:
            self._drop(
                msg,
                f"buffer overflow at link {channel_name(route[hop])}: "
                f"retries exhausted after {msg.attempts} attempts",
            )
            return
        delay = self._retry_delay * self._retry_backoff ** msg.attempts
        if self._retry_jitter:
            if self._rng is None:
                self._rng = np.random.default_rng(self._seed)
            delay *= 1.0 + self._retry_jitter * float(self._rng.random())
        if (
            self._retry_timeout is not None
            and (now + delay) - msg.send_time > self._retry_timeout
        ):
            self._drop(
                msg,
                f"retry timeout exceeded ({self._retry_timeout} us since send)",
            )
            return
        msg.attempts += 1
        self.stats.retransmits += 1
        if self._prof is not None:
            self._prof.count("netsim.retransmits")
        self.queue.schedule(now + delay, lambda: self._inject(msg, on_delivery))

    def _credit_arrival(self, link: _Link, msg: Message, route, hop: int,
                        on_delivery) -> None:
        """Head reached a finite-buffered link under credit flow control.

        An arrival off a *network* link was reserved by the upstream hop
        before it started transmitting, so it always fits — the reservation
        converts into queue occupancy (or frees up entirely if the wire is
        idle). Injections and arrivals off a NIC channel hold no
        reservation: they are admitted only while room remains, and
        otherwise wait in ``entry_wait`` for credit.
        """
        size = msg.size_bytes
        reserved = hop > 0 and not isinstance(route[hop - 1][0], str)
        if reserved:
            link.reserved -= size
            if link.busy:
                # Reservation becomes buffer occupancy: net room unchanged.
                link.buffered_bytes += size
                self._enqueue(link, msg, route, hop, on_delivery)
            else:
                self._start_transmission(link, msg, route, hop, on_delivery)
                # The freed reservation is room other traffic can claim.
                self._credit_wake(link)
            return
        if not link.busy:
            self._start_transmission(link, msg, route, hop, on_delivery)
        elif link.buffered_bytes + link.reserved + size <= self._buffer_bytes:
            link.buffered_bytes += size
            self._enqueue(link, msg, route, hop, on_delivery)
        else:
            link.entry_wait.append((msg, route, hop, on_delivery))
            if self._prof is not None:
                self._prof.count("netsim.injection_stalls")

    def _reserve_downstream(self, link: _Link, msg: Message, route, hop: int,
                            on_delivery) -> bool:
        """Claim room for ``msg`` at the next network hop (credit mode).

        Returns True when the transmission may start (room reserved, or the
        next stage is a NIC/destination with unbounded buffering). On False
        the link is parked busy with a blocked head and re-woken by
        :meth:`_credit_wake` when the downstream buffer drains.
        """
        channel = route[hop]
        if hop + 1 >= len(route) or isinstance(channel[0], str):
            # Last hop delivers into endpoint memory; a NIC injection stage
            # runs admission at the first network hop's arrival instead.
            return True
        nxt = route[hop + 1]
        if isinstance(nxt[0], str):
            return True  # destination NIC: unbounded
        size = msg.size_bytes
        if size > self._buffer_bytes:
            raise SimulationError(
                f"credit flow control cannot forward message {msg.msg_id}: "
                f"size {size} exceeds buffer_bytes {self._buffer_bytes}"
            )
        down = self._link(nxt)
        if down.buffered_bytes + down.reserved + size <= self._buffer_bytes:
            down.reserved += size
            return True
        # Hold the wire: the head stays at this hop until credit arrives.
        link.busy = True
        link.current = None
        link.blocked = (msg, route, hop, on_delivery)
        down.waiters.append(channel)
        if self._prof is not None:
            self._prof.count("netsim.credit_stalls")
        return False

    def _credit_wake(self, link: _Link) -> None:
        """Buffer room opened on ``link``; admit/grant in FIFO order.

        Waiting injections (``entry_wait``) are admitted first, then
        upstream links whose blocked heads wait for credit here retry their
        reservations — backpressure releases in the order it built up.
        """
        while link.entry_wait:
            msg, route, hop, cb = link.entry_wait[0]
            if not link.busy:
                link.entry_wait.popleft()
                self._start_transmission(link, msg, route, hop, cb)
            elif (
                link.buffered_bytes + link.reserved + msg.size_bytes
                <= self._buffer_bytes
            ):
                link.entry_wait.popleft()
                link.buffered_bytes += msg.size_bytes
                self._enqueue(link, msg, route, hop, cb)
            else:
                break
        while link.waiters:
            upstream = self._links.get(link.waiters[0])
            if upstream is None or upstream.blocked is None:
                link.waiters.popleft()  # stale waiter (already released)
                continue
            msg, route, hop, cb = upstream.blocked
            size = msg.size_bytes
            if link.buffered_bytes + link.reserved + size > self._buffer_bytes:
                break  # no room yet; keep FIFO order
            link.waiters.popleft()
            upstream.blocked = None
            upstream.busy = False
            # _start_transmission re-runs _reserve_downstream, which claims
            # the room we just checked for (nothing ran in between).
            self._start_transmission(upstream, msg, route, hop, cb)

    def _ecn_update(self, msg: Message) -> None:
        """AIMD step for the flow of a just-delivered message."""
        key = (msg.src, msg.dst)
        state = self._flows.get(key)
        if msg.ecn_marked:
            if state is None:
                state = [1.0, 0.0]
                self._flows[key] = state
            state[0] = min(self._ecn_max_stretch, state[0] * self._ecn_backoff)
        elif state is not None and state[0] > 1.0:
            state[0] = max(1.0, state[0] - self._ecn_recover)

    def _deliver(self, msg: Message, on_delivery) -> None:
        if msg.faulted:
            msg.faulted = False
            self._on_fault(msg, on_delivery)
            return
        if self._failed_nodes and (
            msg.src in self._failed_nodes or msg.dst in self._failed_nodes
        ):
            # Covers local (same-processor) messages and a destination that
            # died while the tail was still arriving.
            self._on_fault(msg, on_delivery)
            return
        msg.deliver_time = self.queue.now
        self._inflight.pop(msg.msg_id, None)
        self.stats.record(msg)
        if self._prof is not None:
            self._prof.count("netsim.delivered")
        if self._ecn and msg.src != msg.dst:
            # Update pacing state before the callback so reply traffic the
            # callback injects sees the new stretch.
            self._ecn_update(msg)
        if on_delivery is not None:
            on_delivery(msg)

    # ------------------------------------------------------------- faults
    def _check_credit_faults(self) -> None:
        if self._credit:
            raise SimulationError(
                "fault injection is not supported under credit flow control "
                "(reserved buffer space on a dead link cannot be reclaimed); "
                "use overload_policy='drop' or 'ecn' for fault studies"
            )

    def _check_failure_time(self, at: float) -> float:
        at = float(at)
        if not math.isfinite(at) or at < 0:
            raise SimulationError(
                f"failure time must be finite and >= 0, got {at}"
            )
        return at

    def _check_link(self, a: int, b: int) -> tuple[int, int]:
        if not self._topology.link_graph().has_link(a, b):
            raise SimulationError(
                f"({a}, {b}) is not a link of {self._topology.name}"
            )
        return a, b

    def fail_link(self, a: int, b: int) -> None:
        """Fail the undirected link ``(a, b)`` immediately (both directions).

        The in-flight message (if any) and every queued message on the link
        take the fault path: adaptive reroute around the failure when a
        surviving minimal route exists, otherwise an end-to-end retransmit
        with exponential backoff; retry/timeout exhaustion follows
        ``unroutable_policy``. Counted as ``faults.injected`` (one per
        undirected link) when profiling is enabled.
        """
        self._check_credit_faults()
        a, b = self._check_link(int(a), int(b))
        if (a, b) in self._failed_channels:
            return
        if self._prof is not None:
            self._prof.count("faults.injected")
            self._prof.event(
                "netsim.link_failed", time_us=self.queue.now, link=f"{a}<->{b}"
            )
        self._fail_channel((a, b))
        self._fail_channel((b, a))

    def fail_node(self, node: int) -> None:
        """Fail ``node`` (processor or switch): all its links go down.

        A processor's NIC channels die with it. Messages already heading to
        (or injected from) a dead processor become unroutable — no reroute
        or retry can save them — and follow ``unroutable_policy`` ("raise"
        surfaces a :class:`~repro.exceptions.SimulationError`; "drop"
        records them and counts ``netsim.dropped``). Failing a switch only
        kills its links: traffic reroutes around it when a surviving
        minimal route exists.
        """
        self._check_credit_faults()
        node = int(node)
        graph = self._topology.link_graph()
        if not 0 <= node < graph.num_nodes:
            raise SimulationError(
                f"node {node} out of range [0, {graph.num_nodes})"
            )
        if node in self._failed_nodes:
            return
        if self._prof is not None:
            self._prof.count("faults.injected")
            self._prof.event(
                "netsim.node_failed", time_us=self.queue.now, node=node
            )
        self._failed_nodes.add(node)
        for nbr in graph.neighbors(node):
            self._fail_channel((node, nbr))
            self._fail_channel((nbr, node))
        if not graph.is_switch(node):
            self._fail_channel(("nic_out", node))
            self._fail_channel(("nic_in", node))

    def schedule_link_failure(self, at: float, a: int, b: int) -> None:
        """Fail link ``(a, b)`` at simulation time ``at``.

        Both the endpoints and the failure time are validated *now*, at
        schedule time, so a typo'd link or a NaN deadline fails fast with a
        clear :class:`~repro.exceptions.SimulationError` instead of
        silently never firing (or detonating mid-run).
        """
        self._check_credit_faults()
        at = self._check_failure_time(at)
        a, b = self._check_link(int(a), int(b))
        self.queue.schedule(at, lambda: self.fail_link(a, b))

    def schedule_node_failure(self, at: float, node: int) -> None:
        """Fail node ``node`` at simulation time ``at`` (validated now)."""
        self._check_credit_faults()
        at = self._check_failure_time(at)
        node = int(node)
        limit = self._topology.link_graph().num_nodes
        if not 0 <= node < limit:
            raise SimulationError(f"node {node} out of range [0, {limit})")
        self.queue.schedule(at, lambda: self.fail_node(node))

    def _fail_channel(self, channel: tuple) -> None:
        """Mark one directed channel failed; evict its traffic."""
        if channel in self._failed_channels:
            return
        self._failed_channels.add(channel)
        link = self._links.get(channel)
        if link is None:
            return
        if link.busy and link.current is not None:
            # The in-flight message already has a progression event scheduled
            # (next head arrival or final delivery); flag it so that event
            # takes the fault path instead of advancing a dead route. The
            # link's busy interval still completes via the pending
            # _link_free event, as on a real machine where the failure is
            # detected at the next hop.
            link.current[0].faulted = True
        if link.queue:
            pending = list(link.queue)
            link.queue.clear()
            link.buffered_bytes = 0.0  # evicted with the queue (finite mode)
            for qmsg, _route, _hop, qcb in pending:
                self._on_fault(qmsg, qcb)

    def _has_healthy_route(self, src: int, dst: int) -> bool:
        choices = self._route_choices_for((src, dst))
        return any(
            all(ch not in self._failed_channels for ch in route)
            for route in choices
        )

    def _on_fault(self, msg: Message, on_delivery) -> None:
        """A fault interrupted ``msg``; reroute, retry, or give up."""
        now = self.queue.now
        if msg.src in self._failed_nodes or msg.dst in self._failed_nodes:
            self._drop(msg, "endpoint processor failed")
            return
        if (
            self._routing is RoutingPolicy.ADAPTIVE
            and msg.src != msg.dst
            and self._has_healthy_route(msg.src, msg.dst)
        ):
            # Adaptive routing sidesteps the failure with a surviving minimal
            # route: re-inject now (injection re-picks the least-congested
            # healthy candidate).
            if self._prof is not None:
                self._prof.count("netsim.reroutes")
            self.queue.schedule(now, lambda: self._inject(msg, on_delivery))
            return
        # No route around it: end-to-end retransmit with exponential backoff.
        if msg.attempts >= self._max_retries:
            self._drop(msg, f"retries exhausted after {msg.attempts} attempts")
            return
        delay = self._retry_delay * self._retry_backoff ** msg.attempts
        if (
            self._retry_timeout is not None
            and (now + delay) - msg.send_time > self._retry_timeout
        ):
            self._drop(
                msg,
                f"retry timeout exceeded ({self._retry_timeout} us since send)",
            )
            return
        msg.attempts += 1
        self.stats.retransmits += 1
        if self._prof is not None:
            self._prof.count("netsim.retries")
        self.queue.schedule(now + delay, lambda: self._inject(msg, on_delivery))

    def _drop(self, msg: Message, reason: str) -> None:
        if self._unroutable_policy == "raise":
            raise SimulationError(
                f"message {msg.msg_id} ({msg.src} -> {msg.dst}) is "
                f"undeliverable: {reason}"
            )
        msg.dropped = True
        self._inflight.pop(msg.msg_id, None)
        self.stats.record_drop(msg)
        if self._prof is not None:
            self._prof.count("netsim.dropped")
            self._prof.event(
                "netsim.message_dropped",
                time_us=self.queue.now,
                msg_id=msg.msg_id,
                src=msg.src,
                dst=msg.dst,
                reason=reason,
            )

    # ------------------------------------------------------------------- run
    def _progress(self) -> int:
        """Monotone progress metric: resolved messages so far."""
        return self.stats.count + self.stats.dropped

    def _oldest_inflight(self) -> Message:
        return min(
            self._inflight.values(), key=lambda m: (m.send_time, m.msg_id)
        )

    def _watchdog_tick(self) -> None:
        self._watchdog_armed = False
        if not self._inflight:
            return  # every message resolved; the watchdog retires
        progress = self._progress()
        if progress == self._watch_mark and self.queue.pending > 0:
            oldest = self._oldest_inflight()
            raise SimulationError(
                f"livelock: no delivery progress for {self._stall_window} us "
                f"({len(self._inflight)} message(s) in flight); oldest is "
                f"message {oldest.msg_id} ({oldest.src} -> {oldest.dst}, "
                f"sent at t={oldest.send_time}, attempts={oldest.attempts})"
            )
        if self.queue.pending == 0:
            return  # nothing scheduled; the post-run drain check reports wedges
        self._watch_mark = progress
        self._watchdog_armed = True
        self.queue.schedule(self.queue.now + self._stall_window,
                            self._watchdog_tick)

    def run(self, max_events: int | None = None,
            until: float | None = None) -> float:
        """Drain the event queue; return the final simulation time.

        ``max_events`` / ``until`` bound the run (events / a simulation-time
        deadline); with a ``stall_window`` configured the livelock watchdog
        is armed for the duration. After the queue drains, a wedge check
        (credit mode, or any run with a stall window) raises if messages
        remain undelivered with no event left to make progress — e.g. a
        credit deadlock on a torus wrap ring.
        """
        if (
            self._stall_window is not None
            and not self._watchdog_armed
            and self.queue.pending > 0
        ):
            self._watch_mark = self._progress()
            self._watchdog_armed = True
            self.queue.schedule(self.queue.now + self._stall_window,
                                self._watchdog_tick)
        end = self.queue.run(max_events, until=until)
        if (
            self._inflight
            and self.queue.pending == 0
            and (self._credit or self._stall_window is not None)
        ):
            oldest = self._oldest_inflight()
            raise SimulationError(
                f"simulation wedged: event queue drained with "
                f"{len(self._inflight)} undelivered message(s); oldest is "
                f"message {oldest.msg_id} ({oldest.src} -> {oldest.dst}, "
                f"sent at t={oldest.send_time}, attempts={oldest.attempts})"
            )
        if self._prof is not None and self._links:
            # Per-run load summary so profiles capture link telemetry even
            # when the caller never touches the simulator again (e.g. the
            # experiment harnesses).
            loads = [v.bytes_carried for v in self._links.values()]
            self._prof.event(
                "netsim.run_complete",
                time_us=end,
                links_used=len(self._links),
                total_bytes=float(sum(loads)),
                max_link_bytes=float(max(loads)),
                max_queue_depth=int(max(v.max_queue for v in self._links.values())),
            )
        return end

    # ----------------------------------------------------------------- stats
    def link_busy_times(self) -> dict[tuple[int, int], float]:
        """Accumulated occupancy per directed link (microseconds)."""
        return {k: v.busy_time for k, v in self._links.items()}

    def link_bytes(self) -> dict[tuple[int, int], float]:
        """Payload bytes carried per directed link."""
        return {k: v.bytes_carried for k, v in self._links.items()}

    def link_queue_peaks(self) -> dict[tuple[int, int], int]:
        """Deepest FIFO backlog each directed link ever accumulated."""
        return {k: v.max_queue for k, v in self._links.items()}
