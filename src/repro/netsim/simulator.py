"""Point-to-point network simulation with per-link FIFO contention.

Model (all times in microseconds, sizes in bytes):

* Every directed link carries one message at a time; messages queue FIFO.
* Transmitting a message of size ``S`` over one link takes
  ``alpha + S / bandwidth`` — a per-hop routing/arbitration latency plus the
  serialization time — and the link is occupied for that whole interval.
* **Virtual cut-through** (default): the head is forwarded to the next link
  after ``alpha``, so a multi-hop message pipelines — an uncontended L-hop
  delivery costs ``L * alpha + S / bandwidth`` (wormhole-style no-load
  latency, the regime the paper's introduction describes where hop count
  barely matters without contention).
* **Store-and-forward**: the next hop begins only after the full message
  arrived, costing ``L * (alpha + S / bandwidth)`` uncontended — kept as an
  ablation contrast.

Contention is what the paper is about: a random mapping makes every message
cross many links, multiplying the per-link offered load; once a link's
utilization saturates, FIFO queues grow and latencies blow up — exactly the
Figure 7 behaviour. Messages between tasks on the same processor bypass the
network for a fixed small ``local_latency``.
"""

from __future__ import annotations

import enum
from collections import deque
from collections.abc import Callable

from repro import obs
from repro.exceptions import SimulationError
from repro.netsim.eventqueue import EventQueue
from repro.netsim.messages import Message, MessageStats
from repro.topology.base import Topology

__all__ = ["LinkModel", "RoutingPolicy", "NetworkSimulator", "channel_name"]


def channel_name(channel: tuple) -> str:
    """Stable printable name of a channel: ``"3->7"`` or ``"nic_out:3"``."""
    if isinstance(channel[0], str):
        return f"{channel[0]}:{channel[1]}"
    return f"{channel[0]}->{channel[1]}"


class LinkModel(enum.Enum):
    """Forwarding discipline for multi-hop messages."""

    CUT_THROUGH = "cut_through"
    STORE_AND_FORWARD = "store_and_forward"


class RoutingPolicy(enum.Enum):
    """How a route is chosen for each message.

    ``DOR`` is deterministic dimension-ordered routing (the topology's
    canonical route — what BlueGene/L uses in deterministic mode and what
    the mapping metrics assume). ``ADAPTIVE`` approximates the machine's
    adaptive mode: on grid topologies each message picks, at injection time,
    the minimal route (one per axis order) whose links currently look least
    congested. Adaptivity spreads a random mapping's traffic over more
    links, narrowing the topo-aware-vs-random gap — the model deviation
    EXPERIMENTS.md discusses — and the ``test_ablation_routing`` bench
    quantifies exactly that.
    """

    DOR = "dor"
    ADAPTIVE = "adaptive"


class _Link:
    """FIFO transmission state of one directed link."""

    __slots__ = ("busy", "queue", "busy_time", "bytes_carried", "max_queue",
                 "saturated")

    def __init__(self):
        self.busy = False
        self.queue: deque = deque()
        self.busy_time = 0.0      # accumulated occupancy, for utilization
        self.bytes_carried = 0.0  # payload bytes that crossed this link
        self.max_queue = 0        # deepest FIFO backlog ever seen
        self.saturated = False    # currently past the saturation threshold


class NetworkSimulator:
    """Discrete-event simulator of a direct network.

    Parameters
    ----------
    topology:
        A direct topology (mesh/torus/hypercube/arbitrary) providing
        deterministic routes.
    bandwidth:
        Link bandwidth in bytes per microsecond (1 byte/us == 1 MB/s).
    alpha:
        Per-hop routing latency in microseconds.
    local_latency:
        Delivery latency of intra-processor messages (no links used).
    model:
        :class:`LinkModel`; virtual cut-through by default.
    saturation_depth:
        FIFO backlog at which a link counts as *saturated*: when a link's
        queue first grows to this depth a ``netsim.link_saturated`` event is
        recorded (profiling only; see below), cleared once the queue drains
        empty.

    The simulator snapshots :func:`repro.obs.active` at construction time:
    enable profiling (``obs.enable()`` / ``obs.profiled()``) *before*
    building the simulator to record message counters, per-link byte
    timelines, queue depths, and saturation events. With profiling disabled
    (the default) no telemetry code runs beyond one high-water-mark compare
    per enqueue.
    """

    def __init__(
        self,
        topology: Topology,
        bandwidth: float = 1000.0,
        alpha: float = 0.1,
        local_latency: float = 0.05,
        model: LinkModel = LinkModel.CUT_THROUGH,
        nic_bandwidth: float | None = None,
        routing: RoutingPolicy = RoutingPolicy.DOR,
        link_bandwidths: dict[tuple[int, int], float] | None = None,
        saturation_depth: int = 8,
    ):
        if bandwidth <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth}")
        if link_bandwidths:
            for link, bw in link_bandwidths.items():
                if bw <= 0:
                    raise SimulationError(
                        f"link {link} bandwidth must be positive, got {bw}"
                    )
        if nic_bandwidth is not None and nic_bandwidth <= 0:
            raise SimulationError(f"nic_bandwidth must be positive, got {nic_bandwidth}")
        if alpha < 0 or local_latency < 0:
            raise SimulationError("latencies must be non-negative")
        if saturation_depth < 1:
            raise SimulationError(
                f"saturation_depth must be >= 1, got {saturation_depth}"
            )
        self._topology = topology
        self._bandwidth = float(bandwidth)
        # Heterogeneous machines: per-directed-link overrides of the default
        # bandwidth ((a, b) applies to both directions unless (b, a) is also
        # given explicitly).
        self._link_bandwidths: dict[tuple[int, int], float] = {}
        if link_bandwidths:
            for (a, b), bw in link_bandwidths.items():
                self._link_bandwidths[(int(a), int(b))] = float(bw)
                self._link_bandwidths.setdefault((int(b), int(a)), float(bw))
        self._nic_bandwidth = None if nic_bandwidth is None else float(nic_bandwidth)
        self._alpha = float(alpha)
        self._local = float(local_latency)
        self._model = LinkModel(model)
        self._routing = RoutingPolicy(routing)
        self.queue = EventQueue()
        self._links: dict[tuple, _Link] = {}
        self._routes: dict[tuple[int, int], list[tuple]] = {}
        self._route_choices: dict[tuple[int, int], list[list[tuple]]] = {}
        self._next_id = 0
        self.stats = MessageStats()
        self._saturation_depth = int(saturation_depth)
        self._prof = obs.active()

    # ------------------------------------------------------------------ misc
    @property
    def topology(self) -> Topology:
        """The simulated machine."""
        return self._topology

    @property
    def bandwidth(self) -> float:
        """Link bandwidth in bytes per microsecond."""
        return self._bandwidth

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self.queue.now

    def _route(self, src: int, dst: int) -> list[tuple]:
        """Channel sequence for src -> dst: [NIC out], links..., [NIC in].

        When a finite ``nic_bandwidth`` is configured, every message also
        serializes through the source node's injection channel and the
        destination node's ejection channel — the per-node bottleneck real
        machines have (a BlueGene node cannot feed all six links at full
        rate from one core), which caps how much an optimal mapping can win
        by on bandwidth alone.
        """
        key = (src, dst)
        if self._routing is RoutingPolicy.ADAPTIVE:
            return self._pick_adaptive_route(key)
        route = self._routes.get(key)
        if route is None:
            route = self._wrap_nic(self._topology.route_links(src, dst), src, dst)
            self._routes[key] = route
        return route

    def _wrap_nic(self, links, src: int, dst: int) -> list[tuple]:
        route = list(links)
        if self._nic_bandwidth is not None:
            route = [("nic_out", src), *route, ("nic_in", dst)]
        return route

    def _pick_adaptive_route(self, key: tuple[int, int]) -> list[tuple]:
        """Least-congested minimal route at injection time.

        On grid topologies the candidates are one minimal route per axis
        order; elsewhere only the canonical route exists. Congestion score
        of a route = queued messages + busy flags over its links right now.
        """
        from itertools import permutations

        from repro.topology.grid import GridTopology

        choices = self._route_choices.get(key)
        if choices is None:
            src, dst = key
            topo = self._topology
            if isinstance(topo, GridTopology) and topo.ndim > 1:
                seen: set[tuple] = set()
                choices = []
                for order in permutations(range(topo.ndim)):
                    path = topo.route_axis_order(src, dst, order)
                    links = tuple(zip(path[:-1], path[1:]))
                    if links not in seen:
                        seen.add(links)
                        choices.append(self._wrap_nic(links, src, dst))
            else:
                choices = [self._wrap_nic(topo.route_links(src, dst), src, dst)]
            self._route_choices[key] = choices
        if len(choices) == 1:
            return choices[0]
        best, best_score = choices[0], None
        for route in choices:
            score = 0
            for channel in route:
                link = self._links.get(channel)
                if link is not None:
                    score += len(link.queue) + (1 if link.busy else 0)
            if best_score is None or score < best_score:
                best, best_score = route, score
        return best

    def _channel_bandwidth(self, channel: tuple) -> float:
        if isinstance(channel[0], str):  # NIC channel
            return self._nic_bandwidth
        return self._link_bandwidths.get(channel, self._bandwidth)

    def _link(self, link_id: tuple[int, int]) -> _Link:
        link = self._links.get(link_id)
        if link is None:
            link = _Link()
            self._links[link_id] = link
        return link

    # ------------------------------------------------------------------ send
    def send(
        self,
        src: int,
        dst: int,
        size_bytes: float,
        on_delivery: Callable[[Message], None] | None = None,
        at: float | None = None,
    ) -> Message:
        """Inject a message; returns its :class:`Message` record.

        ``on_delivery`` fires (with the record) when the tail reaches ``dst``.
        ``at`` defaults to the current simulation time.
        """
        if size_bytes <= 0:
            raise SimulationError(f"message size must be positive, got {size_bytes}")
        send_time = self.queue.now if at is None else float(at)
        msg = Message(self._next_id, int(src), int(dst), float(size_bytes), send_time)
        self._next_id += 1
        if self._prof is not None:
            self._prof.count("netsim.messages")
            if msg.src == msg.dst:
                self._prof.count("netsim.local_messages")

        if msg.src == msg.dst:  # same processor: no network involved
            self.queue.schedule(
                send_time + self._local, lambda: self._deliver(msg, on_delivery)
            )
            return msg

        # Route selection is deferred to the injection instant so the
        # adaptive policy sees the congestion state *then*, not at whatever
        # earlier time the caller scheduled the send.
        self.queue.schedule(send_time, lambda: self._inject(msg, on_delivery))
        return msg

    def _inject(self, msg: Message, on_delivery) -> None:
        route = self._route(msg.src, msg.dst)
        msg.hops = sum(1 for ch in route if not isinstance(ch[0], str))
        self._head_arrival(msg, route, 0, on_delivery)

    # ------------------------------------------------------------ link logic
    def _head_arrival(self, msg: Message, route, hop: int, on_delivery) -> None:
        """The head of ``msg`` reached the input of ``route[hop]``."""
        link = self._link(route[hop])
        if link.busy:
            link.queue.append((msg, route, hop, on_delivery))
            depth = len(link.queue)
            if depth > link.max_queue:
                link.max_queue = depth
            if self._prof is not None:
                self._prof.count("netsim.enqueues")
                self._prof.count_max("netsim.max_queue_depth", depth)
                if depth >= self._saturation_depth and not link.saturated:
                    link.saturated = True
                    self._prof.count("netsim.saturation_events")
                    self._prof.event(
                        "netsim.link_saturated",
                        time_us=self.queue.now,
                        link=channel_name(route[hop]),
                        depth=depth,
                    )
        else:
            self._start_transmission(link, msg, route, hop, on_delivery)

    def _start_transmission(self, link: _Link, msg: Message, route, hop: int,
                            on_delivery) -> None:
        now = self.queue.now
        channel = route[hop]
        is_nic = isinstance(channel[0], str)
        serialization = msg.size_bytes / self._channel_bandwidth(channel)
        # NIC channels model pure serialization; routing latency applies to
        # network links only.
        alpha = 0.0 if is_nic else self._alpha
        occupancy = alpha + serialization
        link.busy = True
        link.busy_time += occupancy
        link.bytes_carried += msg.size_bytes
        if self._prof is not None:
            self._prof.count("netsim.transmissions")
            self._prof.sample(
                f"link_bytes:{channel_name(channel)}", now, link.bytes_carried
            )

        # When does the head reach the next stage?
        if self._model is LinkModel.CUT_THROUGH:
            head_out = now + alpha
        else:
            head_out = now + occupancy

        last_hop = hop == len(route) - 1
        if last_hop:
            # Tail fully received at the destination once serialization ends.
            self.queue.schedule(now + occupancy, lambda: self._deliver(msg, on_delivery))
        else:
            self.queue.schedule(
                head_out, lambda: self._head_arrival(msg, route, hop + 1, on_delivery)
            )
        self.queue.schedule(now + occupancy, lambda: self._link_free(link))

    def _link_free(self, link: _Link) -> None:
        link.busy = False
        if link.queue:
            msg, route, hop, on_delivery = link.queue.popleft()
            self._start_transmission(link, msg, route, hop, on_delivery)
        else:
            link.saturated = False

    def _deliver(self, msg: Message, on_delivery) -> None:
        msg.deliver_time = self.queue.now
        self.stats.record(msg)
        if self._prof is not None:
            self._prof.count("netsim.delivered")
        if on_delivery is not None:
            on_delivery(msg)

    # ------------------------------------------------------------------- run
    def run(self, max_events: int | None = None) -> float:
        """Drain the event queue; return the final simulation time."""
        end = self.queue.run(max_events)
        if self._prof is not None and self._links:
            # Per-run load summary so profiles capture link telemetry even
            # when the caller never touches the simulator again (e.g. the
            # experiment harnesses).
            loads = [v.bytes_carried for v in self._links.values()]
            self._prof.event(
                "netsim.run_complete",
                time_us=end,
                links_used=len(self._links),
                total_bytes=float(sum(loads)),
                max_link_bytes=float(max(loads)),
                max_queue_depth=int(max(v.max_queue for v in self._links.values())),
            )
        return end

    # ----------------------------------------------------------------- stats
    def link_busy_times(self) -> dict[tuple[int, int], float]:
        """Accumulated occupancy per directed link (microseconds)."""
        return {k: v.busy_time for k, v in self._links.items()}

    def link_bytes(self) -> dict[tuple[int, int], float]:
        """Payload bytes carried per directed link."""
        return {k: v.bytes_carried for k, v in self._links.items()}

    def link_queue_peaks(self) -> dict[tuple[int, int], int]:
        """Deepest FIFO backlog each directed link ever accumulated."""
        return {k: v.max_queue for k, v in self._links.items()}
