"""Typed exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without swallowing unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "TaskGraphError",
    "PartitionError",
    "MappingError",
    "SimulationError",
    "SpecError",
    "ProfileError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid topology construction or query (bad shape, unknown node...)."""


class TaskGraphError(ReproError):
    """Invalid task graph construction or query."""


class PartitionError(ReproError):
    """Partitioning failed or was given inconsistent inputs."""


class MappingError(ReproError):
    """Mapping failed or was given inconsistent inputs."""


class SimulationError(ReproError):
    """Network/application simulation error (causality violation, bad trace)."""


class SpecError(ReproError):
    """A textual spec string (e.g. ``"torus:8x8"``) could not be parsed."""


class ProfileError(ReproError):
    """A profile artifact failed schema validation or could not be read."""
