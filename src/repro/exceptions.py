"""Typed exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without swallowing unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "TaskGraphError",
    "PartitionError",
    "MappingError",
    "SimulationError",
    "SpecError",
    "ProfileError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """Invalid topology construction or query (bad shape, unknown node...)."""


class TaskGraphError(ReproError):
    """Invalid task graph construction or query."""


class PartitionError(ReproError):
    """Partitioning failed or was given inconsistent inputs."""


class MappingError(ReproError):
    """Mapping failed or was given inconsistent inputs."""


class SimulationError(ReproError):
    """Network/application simulation error (causality violation, bad trace)."""


class SpecError(ReproError):
    """A textual spec string (e.g. ``"torus:8x8"``) could not be parsed."""


class ProfileError(ReproError):
    """A profile artifact failed schema validation or could not be read."""


class ValidationError(ReproError):
    """A mapping violated an invariant of :mod:`repro.validate`.

    Structured so tooling (and the next bugfix PR) can start from the exact
    failing oracle instead of a prose report:

    ``invariant``
        The machine-readable invariant name (e.g. ``"injectivity"``,
        ``"kernel-differential"``, ``"golden-drift"``).
    ``spec``
        The ``graph``/``topology``/``mapper``/``seed``/``kernel`` context the
        violation occurred under (whatever subset was known).
    ``replay``
        A ``repro-validate`` command line reproducing the failure, when the
        run was fully spec-described.
    ``details``
        Free-form diagnostic values (observed vs expected numbers, offending
        indices, ...).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        spec: dict | None = None,
        replay: str | None = None,
        details: dict | None = None,
    ):
        self.invariant = str(invariant)
        self.message = str(message)
        self.spec = dict(spec or {})
        self.replay = replay
        self.details = dict(details or {})
        text = f"invariant {self.invariant!r} violated: {message}"
        if self.spec:
            shown = ", ".join(
                f"{k}={v!r}" for k, v in self.spec.items() if v is not None
            )
            if shown:
                text += f" [{shown}]"
        if replay:
            text += f"\nreplay: {replay}"
        super().__init__(text)

    def __reduce__(self):
        # The default Exception reduction calls ``type(self)(*self.args)``,
        # which cannot rebuild the two-positional-argument signature — and a
        # ValidationError must survive the pickle round-trip through a
        # process pool so batch paths can fail fast on it.
        return (
            _rebuild_validation_error,
            (self.invariant, self.message, self.spec, self.replay,
             self.details),
        )


def _rebuild_validation_error(invariant, message, spec, replay, details):
    """Unpickle helper for :class:`ValidationError`."""
    return ValidationError(
        invariant, message, spec=spec, replay=replay, details=details
    )
