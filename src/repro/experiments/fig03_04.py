"""Figures 3 & 4 — 2D-mesh communication pattern mapped onto a 3D-torus.

Same protocol as Figures 1/2 but the machine is a cubic 3D-torus of the
same size; the analytic random expectation becomes ``3 * cbrt(p) / 4``. A
2D-mesh is generally *not* a subgraph of the 3D-torus, so the optimum
exceeds 1 — except in embeddable cases like (8,8) into (4,4,4), where the
paper observes TopoLB reaching exactly 1.0 at p = 64.

Shape criteria: random tracks ``3 cbrt(p)/4``; TopoLB small (1–2.5) with the
p = 64 point at 1.0; TopoCentLB ~10% (or more) above TopoLB.
"""

from __future__ import annotations

from repro.engine import mapper_from_spec
from repro.experiments.common import ExperimentResult, near_square_factors
from repro.mapping.analysis import expected_random_hops_per_byte
from repro.taskgraph.patterns import mesh2d_pattern
from repro.topology.torus import Torus

__all__ = ["run"]

QUICK_SIDES = (4, 6, 8)
FULL_SIDES = (4, 6, 8, 10, 12)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Reproduce Figures 3/4 (cubic tori of side s, p = s^3)."""
    rows = []
    for side in QUICK_SIDES if quick else FULL_SIDES:
        p = side**3
        topo = Torus((side, side, side))
        a, b = near_square_factors(p)
        graph = mesh2d_pattern(a, b, message_bytes=1024)
        rows.append(
            {
                "processors": p,
                "pattern": f"{a}x{b}",
                "random": mapper_from_spec("random", seed).map(graph, topo).hops_per_byte,
                "E_random": expected_random_hops_per_byte(topo),
                "topocentlb": mapper_from_spec("topocentlb", seed).map(graph, topo).hops_per_byte,
                "topolb": mapper_from_spec("topolb", seed).map(graph, topo).hops_per_byte,
            }
        )
    return ExperimentResult(
        "fig3_4",
        "2D-mesh pattern on 3D-torus: average hops per byte",
        rows,
        notes="paper: random ~ 3*cbrt(p)/4; TopoLB hits the optimal 1.0 at "
        "p=64 ((8,8) mesh embeds in (4,4,4) torus); TopoCentLB above TopoLB",
    )
