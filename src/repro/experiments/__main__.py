"""Allow ``python -m repro.experiments <id>``."""

import sys

from repro.experiments.runner import main

sys.exit(main())
