"""Shared experiment plumbing: result containers and table formatting."""

from __future__ import annotations

import dataclasses
import json
import os
from collections.abc import Mapping, Sequence
from typing import Any

__all__ = [
    "ExperimentResult",
    "format_table",
    "near_square_factors",
    "netsim_mode",
    "NETSIM_MODE_ENV",
]

#: Environment knob selecting how experiments evaluate network behaviour:
#: ``des`` (default) replays through the per-packet simulator, ``flow``
#: uses the static flow-level estimator (:mod:`repro.netsim.flow`). The
#: experiment runner's ``--netsim-mode`` flag sets it for a whole sweep.
NETSIM_MODE_ENV = "REPRO_NETSIM_MODE"


def netsim_mode() -> str:
    """The network-evaluation mode for this process: ``"des"`` or ``"flow"``."""
    mode = os.environ.get(NETSIM_MODE_ENV, "des")
    if mode not in ("des", "flow"):
        raise ValueError(
            f"{NETSIM_MODE_ENV} must be 'des' or 'flow', got {mode!r}"
        )
    return mode


def near_square_factors(p: int) -> tuple[int, int]:
    """Factor ``p = a * b`` with ``a <= b`` and ``a`` as large as possible.

    Used to shape 2D task patterns and 2D tori of a given processor count
    (e.g. 216 -> (12, 18)). Primes degrade to (1, p), which callers avoid by
    choosing composite sweep points.
    """
    a = int(p**0.5)
    while a > 1 and p % a:
        a -= 1
    return a, p // a


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render dict-rows as an aligned text table (numbers get 4 sig figs)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, int):
            return str(value)
        return f"{value:.4g}"

    cells = [[fmt(r.get(c, "")) for c in columns] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)]
    lines = [
        "  ".join(c.rjust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(v.rjust(w) for v, w in zip(row, widths)) for row in cells)
    return "\n".join(lines)


@dataclasses.dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]]
    notes: str = ""

    def to_text(self) -> str:
        """Human-readable report (header, table, notes)."""
        parts = [f"== {self.experiment_id}: {self.title} ==", format_table(self.rows)]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_json(self) -> str:
        """Machine-readable report."""
        return json.dumps(dataclasses.asdict(self))

    def column(self, name: str) -> list[Any]:
        """Extract one column across rows (for assertions in tests/benches)."""
        return [r[name] for r in self.rows]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()
