"""Command-line entry point: ``python -m repro.experiments <id> [--full]``.

Runs one (or all) of the paper-reproduction experiments and prints the
table/series the paper reports. ``--full`` switches from the seconds-scale
quick configurations to paper-scale sweeps; ``--json`` emits machine-
readable output; ``--profile PATH`` records per-experiment wall times plus
all mapper/netsim telemetry the run produced into a schema-validated
``repro-profile-v1`` artifact — the machine-readable baseline the
``BENCH_*.json`` trajectory consumes (see ``docs/OBSERVABILITY.md``).

``--jobs N`` fans independent experiments across a process pool. Each
worker runs with its own profiler; the parent folds the per-worker
snapshots into one artifact via :meth:`repro.obs.Profiler.merge`, so the
profile a parallel run writes has the same schema (and, up to scheduling
noise in the wall times, the same content) as a serial one. Reports are
printed in submission order regardless of completion order.

The runner is crash-resilient (see ``docs/ROBUSTNESS.md``): every
experiment runs inside a per-experiment guard that captures the failure
with its id and traceback instead of letting one crashed worker abort the
sweep. ``--keep-going`` finishes the remaining experiments after a
failure; ``--retries N`` re-runs a failed experiment with doubling delay;
``--timeout S`` bounds each experiment's wall time; ``--resume PATH``
reads a previous ``--profile`` artifact and re-executes only the
experiments that did not complete in it. Failures are recorded per
experiment (status, error, traceback, attempts) in the profile's
``context.experiment_status``, and the exit code is nonzero whenever any
experiment did not finish.

``--netsim-mode flow`` swaps the per-packet network simulator for the
static flow-level contention estimator (:mod:`repro.netsim.flow`) in every
simulator-backed experiment — orders of magnitude faster, but makespans
become lower bounds and per-message latencies lose queueing delay. The
``flowcheck`` supplementary experiment quantifies that trade on the
small-machine suite.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import os
import signal
import sys
import threading
import time
import traceback as traceback_module
from collections.abc import Callable
from pathlib import Path

from repro.exceptions import ProfileError
from repro.experiments import (
    fig01_02,
    fig03_04,
    fig05_06,
    fig07_08,
    fig09,
    fig10_11,
    supplementary,
    table1,
)
from repro.experiments.common import NETSIM_MODE_ENV, ExperimentResult

__all__ = ["main", "EXPERIMENTS", "PAPER_EXPERIMENTS", "ExperimentOutcome"]

#: the paper's artifacts: experiment id -> run(quick, seed) callable
PAPER_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1_2": fig01_02.run,
    "fig3_4": fig03_04.run,
    "fig5": lambda quick=True, seed=0: fig05_06.run(quick=quick, seed=seed, ndim=2),
    "fig6": lambda quick=True, seed=0: fig05_06.run(quick=quick, seed=seed, ndim=3),
    "fig7_8": fig07_08.run,
    "fig9": fig09.run,
    "fig10_11": fig10_11.run,
}

#: everything runnable, including supplementary studies ("all" = paper only)
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    "zoo": supplementary.run_zoo,
    "bounds": supplementary.run_bounds,
    "objectives": supplementary.run_objectives,
    "scaling": supplementary.run_scaling,
    "flowcheck": supplementary.run_flowcheck,
    "tailcheck": supplementary.run_tailcheck,
}

#: Environment hook for fault-injection testing (CI exercises it): a
#: comma-separated list of experiment ids that raise instead of running.
FAIL_ENV = "REPRO_EXPERIMENTS_FAIL"


@dataclasses.dataclass
class ExperimentOutcome:
    """What happened to one experiment of a sweep."""

    exp_id: str
    status: str  # "ok" | "failed" | "timeout" | "skipped"
    result: ExperimentResult | None = None
    snapshot: dict | None = None
    error: str | None = None
    traceback: str | None = None
    attempts: int = 0
    resumed: bool = False  # ok carried over from a --resume profile


def _run_one(exp_id: str, quick: bool, seed: int, profiled: bool):
    """Worker body: run one experiment, return ``(result, snapshot | None)``.

    Module-level (not a closure) so a process pool can ship it by name; the
    experiment is looked up from :data:`EXPERIMENTS` inside the worker
    because several registry entries are lambdas, which do not pickle.
    """
    from repro import obs

    inject = os.environ.get(FAIL_ENV, "")
    if inject and exp_id in {part.strip() for part in inject.split(",")}:
        raise RuntimeError(
            f"injected failure for experiment {exp_id!r} (${FAIL_ENV})"
        )

    prof = obs.enable() if profiled else None
    try:
        with obs.timer(f"experiment.{exp_id}"):
            result = EXPERIMENTS[exp_id](quick=quick, seed=seed)
        return result, prof.snapshot() if prof is not None else None
    finally:
        if prof is not None:
            obs.disable()


class _ExperimentTimeout(Exception):
    """Raised inside the serial path when --timeout expires."""


@contextlib.contextmanager
def _alarm(seconds: float | None):
    """SIGALRM-based wall-clock bound for the serial path.

    A no-op when no timeout is set, on platforms without ``SIGALRM``, or
    off the main thread (signal handlers are main-thread only).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _handler(signum, frame):
        raise _ExperimentTimeout()

    previous = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _execute_serial(
    exp_id: str,
    quick: bool,
    seed: int,
    profiled: bool,
    retries: int,
    retry_delay: float,
    timeout: float | None,
) -> ExperimentOutcome:
    """Run one experiment in-process with timeout + retry/backoff."""
    delay = retry_delay
    status, error, tb = "failed", None, None
    for attempt in range(1, retries + 2):
        try:
            with _alarm(timeout):
                result, snap = _run_one(exp_id, quick, seed, profiled)
            return ExperimentOutcome(
                exp_id, "ok", result=result, snapshot=snap, attempts=attempt
            )
        except _ExperimentTimeout:
            status = "timeout"
            error = f"timed out after {timeout}s"
            tb = None
        except Exception as exc:  # noqa: BLE001 - the guard is the point
            status = "failed"
            error = f"{type(exc).__name__}: {exc}"
            tb = traceback_module.format_exc()
        if attempt <= retries:
            time.sleep(delay)
            delay *= 2
    return ExperimentOutcome(
        exp_id, status, error=error, traceback=tb, attempts=retries + 1
    )


def _await_future(future, exp_id: str, timeout: float | None):
    """Resolve one pool future into (status, result, snapshot, error, tb).

    The per-future guard of the parallel path: a worker exception is
    captured with the experiment id attached instead of propagating a bare
    traceback that would abort every remaining experiment.
    """
    from concurrent.futures import TimeoutError as FuturesTimeout

    try:
        result, snap = future.result(timeout=timeout)
        return "ok", result, snap, None, None
    except FuturesTimeout:
        future.cancel()
        return "timeout", None, None, f"timed out after {timeout}s", None
    except Exception as exc:  # noqa: BLE001 - the guard is the point
        return (
            "failed",
            None,
            None,
            f"[{exp_id}] {type(exc).__name__}: {exc}",
            traceback_module.format_exc(),
        )


def _load_completed(resume_path: Path) -> set[str]:
    """Experiment ids recorded as completed in a previous profile artifact."""
    from repro import obs

    doc = obs.load_profile(resume_path)
    status_map = (doc.get("context") or {}).get("experiment_status") or {}
    return {
        exp_id
        for exp_id, record in status_map.items()
        if isinstance(record, dict) and record.get("status") == "ok"
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (0 = every experiment ok)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the TopoLB paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps instead of quick configurations",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument("--profile", type=Path,
                        help="record telemetry and write a repro-profile-v1 JSON here")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments in N worker processes (default: 1)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="wall-clock bound per experiment")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-run a failed experiment up to N times "
                             "(doubling delay between attempts)")
    parser.add_argument("--retry-delay", type=float, default=1.0,
                        metavar="SECONDS",
                        help="initial delay before the first retry (default: 1)")
    parser.add_argument("--keep-going", action="store_true",
                        help="continue the sweep past a failed experiment "
                             "(failures are still reported and reflected in "
                             "the exit code)")
    parser.add_argument("--resume", type=Path, metavar="PROFILE",
                        help="skip experiments recorded as completed in a "
                             "previous --profile artifact")
    parser.add_argument("--netsim-mode", choices=("des", "flow"), default=None,
                        help="network evaluation for simulator-backed "
                             "experiments: 'des' replays per-packet, 'flow' "
                             "uses the static flow-level estimator (fast; "
                             "makespans are lower bounds — see "
                             "docs/ARCHITECTURE.md). Default: "
                             f"${NETSIM_MODE_ENV} or 'des'.")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.retry_delay <= 0:
        parser.error("--retry-delay must be positive")
    if args.netsim_mode is not None:
        # Experiments read the mode from the environment (netsim_mode()), so
        # worker processes spawned by --jobs inherit it automatically.
        os.environ[NETSIM_MODE_ENV] = args.netsim_mode

    from repro import obs

    ids = list(PAPER_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    quick = not args.full
    prof = obs.Profiler() if args.profile is not None else None
    profiled = prof is not None

    outcomes: dict[str, ExperimentOutcome] = {}
    if args.resume is not None:
        try:
            completed = _load_completed(args.resume)
        except (ProfileError, OSError) as exc:
            parser.error(f"--resume {args.resume}: {exc}")
        for exp_id in ids:
            if exp_id in completed:
                outcomes[exp_id] = ExperimentOutcome(exp_id, "ok", resumed=True)
    to_run = [exp_id for exp_id in ids if exp_id not in outcomes]

    aborted = False
    if args.jobs > 1 and len(to_run) > 1:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=min(args.jobs, len(to_run)))
        timed_out = False
        try:
            futures = {
                exp_id: pool.submit(_run_one, exp_id, quick, args.seed, profiled)
                for exp_id in to_run
            }
            for exp_id in to_run:
                if aborted:
                    futures[exp_id].cancel()
                    outcomes[exp_id] = ExperimentOutcome(
                        exp_id, "skipped",
                        error="not run: earlier experiment failed "
                              "(use --keep-going to finish the sweep)",
                    )
                    continue
                status, result, snap, error, tb = _await_future(
                    futures[exp_id], exp_id, args.timeout
                )
                attempts, delay = 1, args.retry_delay
                while status != "ok" and attempts <= args.retries:
                    if status == "timeout":
                        timed_out = True
                    time.sleep(delay)
                    delay *= 2
                    attempts += 1
                    retry = pool.submit(_run_one, exp_id, quick, args.seed, profiled)
                    status, result, snap, error, tb = _await_future(
                        retry, exp_id, args.timeout
                    )
                if status == "timeout":
                    timed_out = True
                outcomes[exp_id] = ExperimentOutcome(
                    exp_id, status, result=result, snapshot=snap,
                    error=error, traceback=tb, attempts=attempts,
                )
                if status != "ok" and not args.keep_going:
                    aborted = True
        finally:
            # A timed-out worker may still be computing; do not block the
            # parent on it (the abandoned process exits with the worker
            # pool's queues once its experiment finishes).
            pool.shutdown(wait=not timed_out, cancel_futures=True)
    else:
        for exp_id in to_run:
            if aborted:
                outcomes[exp_id] = ExperimentOutcome(
                    exp_id, "skipped",
                    error="not run: earlier experiment failed "
                          "(use --keep-going to finish the sweep)",
                )
                continue
            outcome = _execute_serial(
                exp_id, quick, args.seed, profiled,
                args.retries, args.retry_delay, args.timeout,
            )
            outcomes[exp_id] = outcome
            if outcome.status != "ok" and not args.keep_going:
                aborted = True

    # ---- report in submission order; merge telemetry deterministically ----
    failed_ids: list[str] = []
    for exp_id in ids:
        outcome = outcomes[exp_id]
        if outcome.status == "ok" and not outcome.resumed:
            print(outcome.result.to_json() if args.json else outcome.result.to_text())
            print()
            if prof is not None and outcome.snapshot is not None:
                prof.merge(outcome.snapshot)
        elif outcome.resumed:
            print(
                f"== {exp_id}: skipped (completed in {args.resume}) ==",
                file=sys.stderr,
            )
        else:
            failed_ids.append(exp_id)
            print(
                f"== {exp_id}: {outcome.status.upper()} "
                f"after {outcome.attempts} attempt(s): {outcome.error} ==",
                file=sys.stderr,
            )
            if outcome.traceback:
                print(outcome.traceback, file=sys.stderr)
    if failed_ids:
        print(f"failed experiments: {', '.join(failed_ids)}", file=sys.stderr)

    if prof is not None:
        experiment_status: dict[str, dict] = {}
        for exp_id in ids:
            outcome = outcomes[exp_id]
            record: dict = {"status": outcome.status}
            if outcome.resumed:
                record["resumed_from"] = str(args.resume)
            else:
                record["attempts"] = outcome.attempts
            if outcome.error is not None:
                record["error"] = outcome.error
            if outcome.traceback is not None:
                record["traceback"] = outcome.traceback
            experiment_status[exp_id] = record
        doc = obs.build_profile(
            prof,
            command="repro-experiments " + " ".join(ids),
            context={
                "experiments": ids,
                "seed": args.seed,
                "quick": quick,
                "jobs": args.jobs,
                "experiment_status": experiment_status,
            },
        )
        obs.save_profile(doc, args.profile)
        print(f"profile written to {args.profile}", file=sys.stderr)
    return 1 if any(outcomes[e].status != "ok" for e in ids) else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
