"""Command-line entry point: ``python -m repro.experiments <id> [--full]``.

Runs one (or all) of the paper-reproduction experiments and prints the
table/series the paper reports. ``--full`` switches from the seconds-scale
quick configurations to paper-scale sweeps; ``--json`` emits machine-
readable output; ``--profile PATH`` records per-experiment wall times plus
all mapper/netsim telemetry the run produced into a schema-validated
``repro-profile-v1`` artifact — the machine-readable baseline the
``BENCH_*.json`` trajectory consumes (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable
from pathlib import Path

from repro.experiments import (
    fig01_02,
    fig03_04,
    fig05_06,
    fig07_08,
    fig09,
    fig10_11,
    supplementary,
    table1,
)
from repro.experiments.common import ExperimentResult

__all__ = ["main", "EXPERIMENTS", "PAPER_EXPERIMENTS"]

#: the paper's artifacts: experiment id -> run(quick, seed) callable
PAPER_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1_2": fig01_02.run,
    "fig3_4": fig03_04.run,
    "fig5": lambda quick=True, seed=0: fig05_06.run(quick=quick, seed=seed, ndim=2),
    "fig6": lambda quick=True, seed=0: fig05_06.run(quick=quick, seed=seed, ndim=3),
    "fig7_8": fig07_08.run,
    "fig9": fig09.run,
    "fig10_11": fig10_11.run,
}

#: everything runnable, including supplementary studies ("all" = paper only)
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    "zoo": supplementary.run_zoo,
    "bounds": supplementary.run_bounds,
    "objectives": supplementary.run_objectives,
    "scaling": supplementary.run_scaling,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the TopoLB paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps instead of quick configurations",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument("--profile", type=Path,
                        help="record telemetry and write a repro-profile-v1 JSON here")
    args = parser.parse_args(argv)

    from repro import obs

    ids = list(PAPER_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    prof = obs.enable() if args.profile is not None else None
    try:
        for exp_id in ids:
            with obs.timer(f"experiment.{exp_id}"):
                result = EXPERIMENTS[exp_id](quick=not args.full, seed=args.seed)
            print(result.to_json() if args.json else result.to_text())
            print()
        if prof is not None:
            doc = obs.build_profile(
                prof,
                command="repro-experiments " + " ".join(ids),
                context={
                    "experiments": ids,
                    "seed": args.seed,
                    "quick": not args.full,
                },
            )
            obs.save_profile(doc, args.profile)
            print(f"profile written to {args.profile}", file=sys.stderr)
    finally:
        if prof is not None:
            obs.disable()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
