"""Command-line entry point: ``python -m repro.experiments <id> [--full]``.

Runs one (or all) of the paper-reproduction experiments and prints the
table/series the paper reports. ``--full`` switches from the seconds-scale
quick configurations to paper-scale sweeps; ``--json`` emits machine-
readable output; ``--profile PATH`` records per-experiment wall times plus
all mapper/netsim telemetry the run produced into a schema-validated
``repro-profile-v1`` artifact — the machine-readable baseline the
``BENCH_*.json`` trajectory consumes (see ``docs/OBSERVABILITY.md``).

``--jobs N`` fans independent experiments across a process pool. Each
worker runs with its own profiler; the parent folds the per-worker
snapshots into one artifact via :meth:`repro.obs.Profiler.merge`, so the
profile a parallel run writes has the same schema (and, up to scheduling
noise in the wall times, the same content) as a serial one. Reports are
printed in submission order regardless of completion order.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable
from pathlib import Path

from repro.experiments import (
    fig01_02,
    fig03_04,
    fig05_06,
    fig07_08,
    fig09,
    fig10_11,
    supplementary,
    table1,
)
from repro.experiments.common import ExperimentResult

__all__ = ["main", "EXPERIMENTS", "PAPER_EXPERIMENTS"]

#: the paper's artifacts: experiment id -> run(quick, seed) callable
PAPER_EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig1_2": fig01_02.run,
    "fig3_4": fig03_04.run,
    "fig5": lambda quick=True, seed=0: fig05_06.run(quick=quick, seed=seed, ndim=2),
    "fig6": lambda quick=True, seed=0: fig05_06.run(quick=quick, seed=seed, ndim=3),
    "fig7_8": fig07_08.run,
    "fig9": fig09.run,
    "fig10_11": fig10_11.run,
}

#: everything runnable, including supplementary studies ("all" = paper only)
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    "zoo": supplementary.run_zoo,
    "bounds": supplementary.run_bounds,
    "objectives": supplementary.run_objectives,
    "scaling": supplementary.run_scaling,
}


def _run_one(exp_id: str, quick: bool, seed: int, profiled: bool):
    """Worker body: run one experiment, return ``(result, snapshot | None)``.

    Module-level (not a closure) so a process pool can ship it by name; the
    experiment is looked up from :data:`EXPERIMENTS` inside the worker
    because several registry entries are lambdas, which do not pickle.
    """
    from repro import obs

    prof = obs.enable() if profiled else None
    try:
        with obs.timer(f"experiment.{exp_id}"):
            result = EXPERIMENTS[exp_id](quick=quick, seed=seed)
        return result, prof.snapshot() if prof is not None else None
    finally:
        if prof is not None:
            obs.disable()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the TopoLB paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale sweeps instead of quick configurations",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument("--profile", type=Path,
                        help="record telemetry and write a repro-profile-v1 JSON here")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments in N worker processes (default: 1)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from repro import obs

    ids = list(PAPER_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    quick = not args.full
    prof = obs.Profiler() if args.profile is not None else None

    if args.jobs > 1 and len(ids) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(args.jobs, len(ids))) as pool:
            futures = {
                exp_id: pool.submit(
                    _run_one, exp_id, quick, args.seed, prof is not None
                )
                for exp_id in ids
            }
            outcomes = [futures[exp_id].result() for exp_id in ids]
        for result, snap in outcomes:
            print(result.to_json() if args.json else result.to_text())
            print()
            if prof is not None:
                # Fold worker telemetry in submission order so the merged
                # artifact is deterministic under any completion order.
                prof.merge(snap)
    else:
        if prof is not None:
            obs.enable(prof)
        try:
            for exp_id in ids:
                result, _ = _run_one(exp_id, quick, args.seed, False)
                print(result.to_json() if args.json else result.to_text())
                print()
        finally:
            if prof is not None:
                obs.disable()

    if prof is not None:
        doc = obs.build_profile(
            prof,
            command="repro-experiments " + " ".join(ids),
            context={
                "experiments": ids,
                "seed": args.seed,
                "quick": quick,
                "jobs": args.jobs,
            },
        )
        obs.save_profile(doc, args.profile)
        print(f"profile written to {args.profile}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
