"""Figures 1 & 2 — 2D-mesh communication pattern mapped onto a 2D-torus.

The paper sweeps square 2D-tori up to ~6000 processors with |tasks| = p and
plots average hops-per-byte for Random placement, TopoLB and TopoCentLB,
overlaying the analytic expectation ``sqrt(p)/2`` for random placement and
the ideal value 1.0 (a 2D-torus contains the 2D-mesh, so a neighborhood-
preserving mapping exists).

Shape criteria: random tracks ``sqrt(p)/2`` closely; TopoLB sits at (or very
near) the optimal 1.0; TopoCentLB is low but above TopoLB at every point.
"""

from __future__ import annotations

from repro.engine import mapper_from_spec
from repro.experiments.common import ExperimentResult
from repro.mapping.analysis import expected_random_hops_per_byte
from repro.taskgraph.patterns import mesh2d_pattern
from repro.topology.torus import Torus

__all__ = ["run"]

QUICK_SIDES = (8, 16, 24, 32)
FULL_SIDES = (8, 16, 24, 32, 48, 64)


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Reproduce Figures 1/2 (one row per processor count)."""
    rows = []
    for side in QUICK_SIDES if quick else FULL_SIDES:
        p = side * side
        topo = Torus((side, side))
        graph = mesh2d_pattern(side, side, message_bytes=1024)
        rows.append(
            {
                "processors": p,
                "random": mapper_from_spec("random", seed).map(graph, topo).hops_per_byte,
                "E_random": expected_random_hops_per_byte(topo),
                "topocentlb": mapper_from_spec("topocentlb", seed).map(graph, topo).hops_per_byte,
                "topolb": mapper_from_spec("topolb", seed).map(graph, topo).hops_per_byte,
                "ideal": 1.0,
            }
        )
    return ExperimentResult(
        "fig1_2",
        "2D-mesh pattern on 2D-torus: average hops per byte",
        rows,
        notes="paper: random ~ sqrt(p)/2; TopoLB optimal (1.0) in most cases; "
        "TopoCentLB small but above TopoLB everywhere",
    )
