"""Supplementary experiments beyond the paper's artifacts.

Two studies an open-source release of this system should ship:

* ``zoo``    — the full mapper family compared across machine classes on the
  same workload (hops-per-byte matrix). Extends Figures 1–4 with the
  related-work mappers (annealing, recursive embedding, linear ordering,
  hybrid) and the non-grid machines from the introduction's motivation.
* ``bounds`` — certified optimality gaps: for each instance, hop-bytes of
  each mapper divided by the degree-matching lower bound
  (:mod:`repro.mapping.bounds`); 1.0 means provably optimal.
"""

from __future__ import annotations

from repro.engine import mapper_from_spec
from repro.experiments.common import ExperimentResult
from repro.mapping.bounds import hop_bytes_lower_bound
from repro.taskgraph import leanmd_taskgraph, mesh2d_pattern, random_taskgraph
from repro.taskgraph.coalesce import coalesce
from repro.partition.multilevel import MultilevelPartitioner
from repro.topology import FatTree, Hypercube, Mesh, Torus

__all__ = [
    "run_zoo",
    "run_bounds",
    "run_objectives",
    "run_scaling",
    "run_flowcheck",
    "run_tailcheck",
]


def _mappers(seed: int, quick: bool):
    steps = 20_000 if quick else 200_000
    specs = [
        ("random", "random"),
        ("linear", "linear"),
        ("recursive", "recursive"),
        ("topocentlb", "topocentlb"),
        ("hybrid", "hybrid:blocks=4"),
        ("topolb", "topolb"),
        ("topolb+ref", "refine:base=topolb"),
        ("anneal", f"anneal:steps={steps}"),
    ]
    return [(name, mapper_from_spec(spec, seed)) for name, spec in specs]


def run_zoo(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Hops-per-byte of every mapper on every machine class (64 nodes)."""
    machines = [
        ("torus 8x8", Torus((8, 8))),
        ("mesh 8x8", Mesh((8, 8))),
        ("torus 4x4x4", Torus((4, 4, 4))),
        ("hypercube 6", Hypercube(6)),
        ("fattree 4x3", FatTree(4, 3)),
    ]
    graph = mesh2d_pattern(8, 8, message_bytes=1024)
    rows = []
    for machine_name, topo in machines:
        row: dict = {"machine": machine_name}
        for mapper_name, mapper in _mappers(seed, quick):
            row[mapper_name] = mapper.map(graph, topo).hops_per_byte
        rows.append(row)
    return ExperimentResult(
        "zoo",
        "2D Jacobi (8x8) mapped by every strategy onto every machine class",
        rows,
        notes="grids reward topology-awareness most (TopoLB 4x below random "
        "on the torus); the fat-tree's flat metric compresses every mapper's "
        "advantage to ~1.5x — the introduction's motivation, quantified",
    )


def run_objectives(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Cardinality (Bokhari 1981) vs hop-bytes as the optimization target.

    On weight-skewed instances the cardinality objective is blind to where
    the heavy bytes travel — the historical motivation for hop-bytes.
    """
    import numpy as np

    from repro.mapping import cardinality
    from repro.taskgraph import TaskGraph

    rng = np.random.default_rng(seed)
    instances = [
        ("uniform stencil 6x6", mesh2d_pattern(6, 6), Torus((6, 6))),
    ]
    base = random_taskgraph(36, edge_prob=0.15, seed=seed + 7)
    skewed = TaskGraph(
        36,
        [(a, b, w * float(rng.choice([1, 1, 1, 50]))) for a, b, w in base.edges()],
    )
    instances.append(("skewed random p=36", skewed, Torus((6, 6))))

    rows = []
    for name, graph, topo in instances:
        row: dict = {"instance": name}
        for mapper_name, mapper in (
            ("random", mapper_from_spec("random", seed)),
            ("bokhari", mapper_from_spec("bokhari", seed)),
            ("topolb", mapper_from_spec("topolb", seed)),
        ):
            mapping = mapper.map(graph, topo)
            row[f"{mapper_name}_hpb"] = mapping.hops_per_byte
            row[f"{mapper_name}_card"] = cardinality(mapping)
        row["edges"] = graph.num_edges
        rows.append(row)
    return ExperimentResult(
        "objectives",
        "optimization objective: Bokhari cardinality vs hop-bytes",
        rows,
        notes="Bokhari wins cardinality, TopoLB wins hop-bytes; the gap "
        "opens on weight-skewed instances — why hop-bytes superseded the "
        "1981 metric",
    )


def run_scaling(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Mapper wall-clock vs machine size (the Section 4.4 complexity story)."""
    import time

    sides = (8, 16, 24) if quick else (8, 16, 24, 32, 48)
    rows = []
    for side in sides:
        p = side * side
        topo = Torus((side, side))
        graph = mesh2d_pattern(side, side)
        row: dict = {"processors": p}
        for name, mapper in (
            ("topocentlb", mapper_from_spec("topocentlb", seed)),
            ("topolb_o2", mapper_from_spec("topolb", seed)),
            ("refine", mapper_from_spec("refine:base=topolb", seed)),
        ):
            t0 = time.perf_counter()
            mapping = mapper.map(graph, topo)
            row[f"{name}_s"] = time.perf_counter() - t0
            row[f"{name}_hpb"] = mapping.hops_per_byte
        rows.append(row)
    return ExperimentResult(
        "scaling",
        "mapper wall-clock vs machine size (constant-degree task graph)",
        rows,
        notes="the paper's O(p|Et|) ~ O(p^2) claim: time quadruples when p "
        "quadruples; TopoCentLB's constant is ~10x smaller than TopoLB's",
    )


def run_bounds(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Certified optimality gaps (hop-bytes / lower bound) per instance."""
    instances = [
        ("jacobi 8x8 / torus 8x8", mesh2d_pattern(8, 8), Torus((8, 8))),
        ("jacobi 8x8 / torus 4x4x4", mesh2d_pattern(8, 8), Torus((4, 4, 4))),
        ("jacobi 8x8 / mesh 8x8", mesh2d_pattern(8, 8), Mesh((8, 8))),
        ("random p=64 / torus 8x8",
         random_taskgraph(64, edge_prob=0.1, seed=seed), Torus((8, 8))),
    ]
    if not quick:
        graph = leanmd_taskgraph(64, seed=seed)
        groups = MultilevelPartitioner(seed=seed).partition(graph, 64)
        instances.append(
            ("leanmd quotient p=64 / torus 8x8",
             coalesce(graph, groups, 64), Torus((8, 8)))
        )
    rows = []
    for name, graph, topo in instances:
        bound = hop_bytes_lower_bound(graph, topo)
        row: dict = {"instance": name}
        for mapper_name, mapper in (
            ("random", mapper_from_spec("random", seed)),
            ("topocentlb", mapper_from_spec("topocentlb", seed)),
            ("topolb", mapper_from_spec("topolb", seed)),
            ("topolb+ref", mapper_from_spec("refine:base=topolb", seed)),
        ):
            hb = mapper.map(graph, topo).hop_bytes
            row[f"{mapper_name}_gap"] = hb / bound if bound else float("inf")
        rows.append(row)
    return ExperimentResult(
        "bounds",
        "certified optimality gap (hop-bytes / degree-matching lower bound)",
        rows,
        notes="gap 1.0 = provably optimal; the stencil-on-torus instances "
        "certify TopoLB exactly optimal, not merely better than baselines",
    )


def run_flowcheck(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Flow-estimator fidelity vs the DES on the small-machine suite.

    For each instance, a pool of mappings (the mapper family plus random
    permutations) is evaluated by both the per-packet DES and the flow
    estimator; the row reports the Spearman rank correlation of the two
    makespans, the worst bound/DES ratio (must stay <= 1: the flow makespan
    is a provable lower bound), and the speedup. This is the validity
    evidence behind ``--netsim-mode flow``.
    """
    import time

    import numpy as np

    from repro.mapping.base import Mapping as TaskMapping
    from repro.netsim.appsim import IterativeApplication
    from repro.netsim.flow import flow_evaluate, spearman
    from repro.netsim.simulator import NetworkSimulator
    from repro.taskgraph.patterns import mesh3d_pattern

    iterations = 4 if quick else 16
    randoms = 5 if quick else 12
    instances = [
        ("jacobi 6x6 / torus 6x6",
         mesh2d_pattern(6, 6, message_bytes=512.0), Torus((6, 6))),
        ("jacobi 8x8 / torus 4x4x4",
         mesh2d_pattern(8, 8, message_bytes=512.0), Torus((4, 4, 4))),
        ("stencil 4^3 / mesh 4x4x4",
         mesh3d_pattern(4, 4, 4, message_bytes=512.0), Mesh((4, 4, 4))),
        ("random p=64 / torus 8x8",
         random_taskgraph(64, edge_prob=0.1, seed=seed), Torus((8, 8))),
    ]
    rows = []
    for name, graph, topo in instances:
        rng = np.random.default_rng(seed + 17)
        mappings = [
            mapper_from_spec("topolb", seed).map(graph, topo),
            mapper_from_spec("refine:base=topolb,kernel=incremental",
                             seed).map(graph, topo),
            mapper_from_spec("topocentlb", seed).map(graph, topo),
        ]
        mappings += [
            TaskMapping(graph, topo,
                        rng.permutation(topo.num_nodes)[:graph.num_tasks])
            for _ in range(randoms)
        ]
        des_times, flow_times = [], []
        des_wall = flow_wall = 0.0
        for mapping in mappings:
            t0 = time.perf_counter()
            sim = NetworkSimulator(topo)
            res = IterativeApplication(
                mapping, sim, iterations=iterations
            ).run()
            des_wall += time.perf_counter() - t0
            t0 = time.perf_counter()
            flow = flow_evaluate(mapping, iterations=iterations)
            flow_wall += time.perf_counter() - t0
            des_times.append(res.total_time)
            flow_times.append(flow.makespan_lower_bound)
        ratios = np.asarray(flow_times) / np.asarray(des_times)
        rows.append({
            "instance": name,
            "mappings": len(mappings),
            "rank_corr": spearman(flow_times, des_times),
            "max_bound_ratio": float(ratios.max()),
            "speedup": des_wall / flow_wall if flow_wall else float("inf"),
        })
    return ExperimentResult(
        "flowcheck",
        "flow-level estimator vs DES (rank correlation, bound tightness)",
        rows,
        notes="rank_corr >= 0.9 and max_bound_ratio <= 1.0 are the validity "
        "envelope of --netsim-mode flow; see docs/ARCHITECTURE.md",
    )


def run_tailcheck(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Tail latencies and drops under finite buffers, mapper vs random.

    The robustness-grade version of the paper's Figure 7/8 story: at equal
    offered load (same Jacobi workload, same iteration count, same finite
    per-link buffers) a hop-byte-reducing mapping should not just lower the
    *mean* latency but compress the *tail* (p99/p999) and suffer fewer
    buffer drops — because fewer link crossings mean fewer chances to meet
    a full buffer. Each row replays one mapping through the buffered DES
    (tail-drop + persistent seeded retransmit) and reports the percentile
    latencies, drop/retransmit counts, and barrier-iteration p99.
    """
    import numpy as np

    from repro.mapping.base import Mapping as TaskMapping
    from repro.netsim.appsim import IterativeApplication
    from repro.netsim.simulator import NetworkSimulator
    from repro.netsim.stats import tail_summary

    iterations = 3 if quick else 10
    randoms = 2 if quick else 4
    instances = [
        ("jacobi 8x8 / torus 8x8",
         mesh2d_pattern(8, 8, message_bytes=4096.0), Torus((8, 8))),
        ("jacobi 6x6 / mesh 6x6",
         mesh2d_pattern(6, 6, message_bytes=4096.0), Mesh((6, 6))),
    ]
    rows = []
    for name, graph, topo in instances:
        rng = np.random.default_rng(seed + 23)
        candidates = [
            ("topolb", mapper_from_spec("topolb", seed).map(graph, topo)),
            ("topolb+ref",
             mapper_from_spec("refine:base=topolb", seed).map(graph, topo)),
        ]
        candidates += [
            (f"random{i}",
             TaskMapping(graph, topo,
                         rng.permutation(topo.num_nodes)[:graph.num_tasks]))
            for i in range(randoms)
        ]
        for mapper_name, mapping in candidates:
            # Tight buffers + slow links: the overload regime. Persistent
            # retransmission because the closed Jacobi loop waits on every
            # message (a final drop would wedge it); "drops" therefore
            # reports tail-drop events at full buffers.
            sim = NetworkSimulator(
                topo,
                bandwidth=100.0,
                buffer_bytes=8192.0,
                overload_policy="drop",
                max_retries=64,
                retry_delay=2.0,
                retry_jitter=0.25,
                seed=seed,
                unroutable_policy="drop",
                stall_window=1e6,
            )
            result = IterativeApplication(
                mapping, sim, iterations=iterations
            ).run()
            tail = tail_summary(sim,
                                iteration_times=result.iteration_times)
            rows.append({
                "instance": name,
                "mapper": mapper_name,
                "hops_per_byte": mapping.hops_per_byte,
                "p50_us": tail["latency"]["p50"],
                "p99_us": tail["latency"]["p99"],
                "p999_us": tail["latency"]["p999"],
                "drops": tail["buffer_drops"],
                "retransmits": tail["retransmits"],
                "iter_p99_us": tail["iterations"]["p99"],
                "makespan_us": result.total_time,
            })
    return ExperimentResult(
        "tailcheck",
        "tail latency (p50/p99/p999) and drops under finite buffers, "
        "topology-aware vs random at equal offered load",
        rows,
        notes="topology-aware mappings compress the latency tail and drop "
        "fewer messages than random at the same offered load — contention "
        "hurts non-gracefully once buffers are finite; see "
        "docs/ROBUSTNESS.md",
    )
