"""Figures 5 & 6 — LeanMD mapped onto 2D-tori and 3D-tori.

The paper maps LeanMD load dumps (3240 + p chares) onto tori of various
sizes: METIS first coalesces the chares into p groups, then Random /
TopoCentLB / TopoLB place the groups; RefineTopoLB post-processes TopoLB.
Hops-per-byte is measured on the coalesced graph (intra-group bytes never
enter the network).

Shape criteria (paper, p >= ~256): TopoLB lands ~34% below random and
RefineTopoLB shaves a further ~12%; TopoCentLB is close behind TopoLB
(~30% below random); at p = 18 the coalesced graph is so dense
(virtualization ratio 180, groups talking to ~70% of all groups) that no
strategy can reduce hop-bytes much. Figure 6 (3D-tori) shows the same
ordering with TopoLB+refine in the ~40% range.
"""

from __future__ import annotations

import numpy as np

from repro.engine import mapper_from_spec
from repro.experiments.common import ExperimentResult, near_square_factors
from repro.partition.multilevel import MultilevelPartitioner
from repro.taskgraph.coalesce import coalesce
from repro.taskgraph.leanmd import leanmd_taskgraph
from repro.topology.torus import Torus

__all__ = ["run"]

QUICK_P_2D = (18, 64, 256)
FULL_P_2D = (18, 64, 256, 512, 1024)
QUICK_P_3D = (27, 64, 216)
FULL_P_3D = (27, 64, 216, 512, 1000)


def _torus_shape(p: int, ndim: int) -> tuple[int, ...]:
    """Factor p into a near-regular torus shape of the requested rank."""
    if ndim == 2:
        return near_square_factors(p)
    side = round(p ** (1 / 3))
    if side**3 == p:
        return (side, side, side)
    # Fall back: peel the largest cube-ish factor then square the rest.
    for s in range(side, 1, -1):
        if p % s == 0:
            a, b = near_square_factors(p // s)
            return (s, a, b)
    return (1, *near_square_factors(p))


def run(quick: bool = True, seed: int = 0, ndim: int = 2) -> ExperimentResult:
    """Reproduce Figure 5 (``ndim=2``) or Figure 6 (``ndim=3``)."""
    if ndim == 2:
        p_values = QUICK_P_2D if quick else FULL_P_2D
    else:
        p_values = QUICK_P_3D if quick else FULL_P_3D

    rows = []
    for p in p_values:
        topo = Torus(_torus_shape(p, ndim))
        graph = leanmd_taskgraph(p, seed=seed)
        groups = MultilevelPartitioner(seed=seed).partition(graph, p)
        quotient = coalesce(graph, np.asarray(groups), p)
        degrees = quotient.degrees()

        random_hpb = mapper_from_spec("random", seed).map(quotient, topo).hops_per_byte
        cent_hpb = mapper_from_spec("topocentlb", seed).map(quotient, topo).hops_per_byte
        topolb_mapping = mapper_from_spec("topolb", seed).map(quotient, topo)
        refined_hpb = mapper_from_spec("refine", seed).refine(topolb_mapping).hops_per_byte

        rows.append(
            {
                "processors": p,
                "torus": topo.name,
                "virt_ratio": graph.num_tasks / p,
                "avg_degree": float(degrees.mean()),
                "random": random_hpb,
                "topocentlb": cent_hpb,
                "topolb": topolb_mapping.hops_per_byte,
                "refine_topolb": refined_hpb,
                "topolb_vs_random_pct": 100.0 * (1 - topolb_mapping.hops_per_byte / random_hpb),
                "refine_gain_pct": 100.0 * (1 - refined_hpb / topolb_mapping.hops_per_byte),
            }
        )
    return ExperimentResult(
        f"fig{5 if ndim == 2 else 6}",
        f"LeanMD on {ndim}D-tori: average hops per byte (coalesced graph)",
        rows,
        notes="paper: TopoLB ~34% below random at large p, refine adds ~12%; "
        "at p=18 the dense coalesced graph defeats every strategy",
    )
