"""Figure 9 — completion time of 2000 Jacobi iterations vs link bandwidth.

Same trace and machine as Figures 7/8 ((4,4,4) torus, 64 chares), but the
reported quantity is the total time to finish 2000 iterations. In the
congested (low-bandwidth) region the paper sees random placement taking more
than double TopoLB's time, with TopoCentLB also far better than random but
10–25% behind TopoLB.

Shape criteria: total time ordering TopoLB < TopoCentLB < random everywhere;
random/TopoLB > 2 at the lowest bandwidths; TopoCentLB/TopoLB in the
~1.05–1.4 band in the congested region.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig07_08 import MESSAGE_BYTES, STRATEGIES, simulate_latency
from repro.engine import mapper_from_spec
from repro.taskgraph.patterns import mesh2d_pattern
from repro.topology.torus import Torus

__all__ = ["run"]

QUICK_BANDWIDTHS = (50.0, 100.0, 200.0, 350.0, 500.0)
FULL_BANDWIDTHS = tuple(float(b) for b in range(50, 501, 50))

PAPER_ITERATIONS = 2000


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 9.

    Totals are always extrapolated to the paper's 2000 iterations from the
    steady-state per-iteration time; the DES runs 40 (quick) or 300 (full)
    real iterations — after warm-up the per-iteration time is constant, so
    simulating all 2000 would only burn wall-clock.
    """
    iterations = 40 if quick else 300
    topo = Torus((4, 4, 4))
    graph = mesh2d_pattern(8, 8, message_bytes=MESSAGE_BYTES)
    mappings = {
        name: mapper_from_spec(name, seed).map(graph, topo) for name in STRATEGIES
    }
    rows = []
    for bw in QUICK_BANDWIDTHS if quick else FULL_BANDWIDTHS:
        row: dict = {"bandwidth_MBps": bw}
        totals = {}
        for name, mapping in mappings.items():
            result = simulate_latency(mapping, bw, iterations)
            finish = result.iteration_finish_times
            steady = (finish[-1] - finish[0]) / max(len(finish) - 1, 1)
            # Extrapolate steady-state iteration time to the paper's 2000.
            total_us = finish[0] + steady * (PAPER_ITERATIONS - 1)
            totals[name] = total_us / 1000.0  # -> ms
            row[f"{name}_total_ms"] = totals[name]
        row["random_over_topolb"] = totals["GreedyLB"] / totals["TopoLB"]
        row["cent_over_topolb"] = totals["TopoCentLB"] / totals["TopoLB"]
        rows.append(row)
    return ExperimentResult(
        "fig9",
        "2D-mesh on 64-node 3D-torus: completion time of 2000 iterations",
        rows,
        notes="paper: random > 2x TopoLB when congested; TopoLB beats "
        "TopoCentLB by ~10-25%",
    )
