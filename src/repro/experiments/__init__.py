"""Per-table / per-figure reproduction harnesses.

Each module exposes ``run(quick=True, seed=0) -> ExperimentResult`` printing
the same rows/series the paper reports:

========  ===========================================================
id        paper artifact
========  ===========================================================
table1    Table 1 — Jacobi 200 iterations, optimal vs random mapping
fig1_2    Figures 1/2 — 2D-mesh pattern on 2D-torus, hops-per-byte
fig3_4    Figures 3/4 — 2D-mesh pattern on 3D-torus, hops-per-byte
fig5      Figure 5 — LeanMD on 2D-tori
fig6      Figure 6 — LeanMD on 3D-tori
fig7_8    Figures 7/8 — message latency vs link bandwidth (64-node torus)
fig9      Figure 9 — completion time vs link bandwidth
fig10_11  Figures 10/11 — iteration time on BlueGene 3D-torus/3D-mesh
========  ===========================================================

``quick=True`` shrinks sweeps/iterations to seconds-scale runs (used by the
benchmark suite); ``quick=False`` runs paper-scale configurations. Run from
the command line via ``python -m repro.experiments <id> [--full]``.
"""

from repro.experiments.common import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
