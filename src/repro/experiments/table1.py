"""Table 1 — Jacobi-like program: optimal vs random mapping.

The paper runs a 3D Jacobi-like program (512 elements in an (8,8,8) logical
mesh, one message per neighbor per iteration) on 512 BlueGene processors in
an (8,8,8) 3D-mesh, for 200 iterations, and compares total completion time
under the optimal (isomorphism) mapping against a random mapping for message
sizes 1KB..1MB:

=========  ========  ========  =====
msg size   random    optimal   ratio
=========  ========  ========  =====
1KB        56.93ms   46.91ms   1.21
10KB       243.64ms  124.56ms  1.96
100KB      2247.75ms 914.72ms  2.46
500KB      11.62s    4.44s     2.62
1MB        23.50s    8.80s     2.67
=========  ========  ========  =====

Shape criterion: the random/optimal ratio grows with message size (alpha
costs wash out, contention compounds) and exceeds ~2x from 100KB up.
Hardware is replaced by the network simulator (see DESIGN.md substitutions).
"""

from __future__ import annotations

from repro.engine import mapper_from_spec
from repro.experiments.common import ExperimentResult
from repro.netsim.appsim import IterativeApplication
from repro.netsim.simulator import NetworkSimulator
from repro.taskgraph.patterns import mesh3d_pattern
from repro.topology.mesh import Mesh

__all__ = ["run"]

#: Message sizes of the paper's Table 1, in bytes.
MESSAGE_SIZES = (1_024, 10_240, 102_400, 512_000, 1_048_576)

#: Simulator constants (microseconds / bytes-per-microsecond). Link bandwidth
#: is BlueGene/L-like (175MB/s per link); the node injection/ejection channel
#: (NIC) is the per-node bottleneck that caps the optimal mapping's advantage
#: — without it the random/optimal ratio overshoots the paper's ~2.7x
#: plateau because our single-path deterministic routing overstates random-
#: mapping congestion relative to the real machine.
BANDWIDTH = 175.0
NIC_BANDWIDTH = 350.0
ALPHA = 0.5
COMPUTE_US = 50.0


def run(quick: bool = True, seed: int = 0, side: int | None = None,
        iterations: int | None = None) -> ExperimentResult:
    """Reproduce Table 1. ``quick`` shrinks the machine and iteration count.

    Simulated times are scaled to the paper's 200 iterations from the
    steady-state per-iteration time, so quick runs report comparable totals.
    """
    if side is None:
        side = 4 if quick else 8
    if iterations is None:
        iterations = 20 if quick else 60
    paper_iters = 200

    topo = Mesh((side, side, side))
    rows = []
    for size in MESSAGE_SIZES:
        graph = mesh3d_pattern(side, side, side, message_bytes=size)
        times = {}
        for label, mapper in (
            ("random", mapper_from_spec("random", seed)),
            ("optimal", mapper_from_spec("identity", seed)),
        ):
            mapping = mapper.map(graph, topo)
            sim = NetworkSimulator(
                topo, bandwidth=BANDWIDTH, alpha=ALPHA, nic_bandwidth=NIC_BANDWIDTH
            )
            app = IterativeApplication(
                mapping, sim, iterations=iterations,
                message_bytes=size, compute_time=COMPUTE_US,
            )
            result = app.run()
            # Steady-state per-iteration time (skip the warm-up iteration),
            # extrapolated to the paper's 200 iterations, reported in ms.
            finish = result.iteration_finish_times
            steady = (finish[-1] - finish[0]) / max(len(finish) - 1, 1)
            times[label] = (finish[0] + steady * (paper_iters - 1)) / 1000.0
        rows.append(
            {
                "message_size": _size_label(size),
                "random_ms": times["random"],
                "optimal_ms": times["optimal"],
                "ratio": times["random"] / times["optimal"],
            }
        )
    return ExperimentResult(
        "table1",
        f"Jacobi {side}^3 on {topo.name}, {paper_iters} iterations "
        f"(simulated, extrapolated from {iterations})",
        rows,
        notes="paper ratios: 1.21 / 1.96 / 2.46 / 2.62 / 2.67 — "
        "ratio must grow with message size and exceed ~2x from 100KB up",
    )


def _size_label(size: int) -> str:
    if size >= 1_048_576:
        return f"{size // 1_048_576}MB"
    return f"{size // 1024}KB"
