"""Figures 10 & 11 — BlueGene runs: 4000 iterations, 100KB messages.

The paper runs the 2D Jacobi benchmark on the BlueGene emulator with the
physical network configured as a 3D-torus (Figure 10) and as a 3D-mesh
(Figure 11), |tasks| = p, message size 100KB, and reports the time for 4000
iterations under TopoLB / TopoCentLB / random for increasing p. Hardware is
replaced by the network simulator (see DESIGN.md substitutions).

Shape criteria: time ordering TopoLB <= TopoCentLB < random at every p; the
mesh times sit above the same-p torus times, with the *largest* torus-vs-
mesh gap for random placement (long-range messages lose the most when the
wrap-around links disappear); TopoLB/TopoCentLB barely notice the change.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, near_square_factors
from repro.netsim.appsim import IterativeApplication
from repro.netsim.simulator import NetworkSimulator
from repro.engine import mapper_from_spec
from repro.taskgraph.patterns import mesh2d_pattern
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus

__all__ = ["run"]

QUICK_SHAPES = ((4, 4, 4), (6, 6, 6), (8, 8, 8))
FULL_SHAPES = ((4, 4, 4), (5, 5, 5), (6, 6, 6), (8, 8, 8), (9, 9, 9))

STRATEGIES = ("GreedyLB", "TopoCentLB", "TopoLB")

MESSAGE_BYTES = 102_400.0  # the paper's 100KB
BANDWIDTH = 350.0
NIC_BANDWIDTH = 700.0
ALPHA = 0.5
COMPUTE_US = 100.0
PAPER_ITERATIONS = 4000


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Reproduce Figures 10/11 (totals extrapolated to 4000 iterations)."""
    iterations = 8 if quick else 30
    rows = []
    for shape in QUICK_SHAPES if quick else FULL_SHAPES:
        p = shape[0] * shape[1] * shape[2]
        a, b = near_square_factors(p)
        graph = mesh2d_pattern(a, b, message_bytes=MESSAGE_BYTES)
        row: dict = {"processors": p}
        for net_name, topo in (("torus", Torus(shape)), ("mesh", Mesh(shape))):
            for strat in STRATEGIES:
                mapping = mapper_from_spec(strat, seed).map(graph, topo)
                sim = NetworkSimulator(
                    topo, bandwidth=BANDWIDTH, alpha=ALPHA,
                    nic_bandwidth=NIC_BANDWIDTH,
                )
                app = IterativeApplication(
                    mapping, sim, iterations=iterations,
                    message_bytes=MESSAGE_BYTES, compute_time=COMPUTE_US,
                )
                result = app.run()
                finish = result.iteration_finish_times
                steady = (finish[-1] - finish[0]) / max(len(finish) - 1, 1)
                total_s = (finish[0] + steady * (PAPER_ITERATIONS - 1)) / 1e6
                row[f"{net_name}_{strat}_s"] = total_s
        rows.append(row)
    return ExperimentResult(
        "fig10_11",
        "2D-mesh pattern, 100KB messages, 4000 iterations on BlueGene-like "
        "3D-torus (fig 10) and 3D-mesh (fig 11), simulated",
        rows,
        notes="paper: TopoLB/TopoCentLB well below random on both networks; "
        "mesh slower than torus, with random hurt the most by the missing "
        "wrap-around links",
    )
