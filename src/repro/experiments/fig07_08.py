"""Figures 7 & 8 — average message latency vs link bandwidth.

The paper replays a 2D-Jacobi trace (64 chares) on a (4,4,4) 3D-torus in
BigNetSim, sweeping channel bandwidth 100–1000 MB/s, under GreedyLB
(essentially random placement), TopoCentLB and TopoLB. Figure 7 shows the
congested region: random latency explodes as bandwidth shrinks; Figure 8
zooms into the uncongested region where TopoLB still has the lowest latency.

Shape criteria: latency ordering TopoLB < TopoCentLB < random at every
bandwidth; the random curve blows up fastest as bandwidth decreases.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, netsim_mode
from repro.mapping.base import Mapping
from repro.netsim.appsim import AppResult, IterativeApplication
from repro.netsim.simulator import NetworkSimulator
from repro.engine import mapper_from_spec
from repro.taskgraph.patterns import mesh2d_pattern
from repro.topology.torus import Torus

__all__ = ["run", "simulate_latency"]

#: Channel bandwidths in bytes/us (== MB/s), the paper's 100..1000 sweep.
QUICK_BANDWIDTHS = (100.0, 200.0, 400.0, 700.0, 1000.0)
FULL_BANDWIDTHS = tuple(float(b) for b in range(100, 1001, 100))

STRATEGIES = ("GreedyLB", "TopoCentLB", "TopoLB")

MESSAGE_BYTES = 2048.0
COMPUTE_US = 2.0


def simulate_latency(
    mapping: Mapping,
    bandwidth: float,
    iterations: int,
    message_bytes: float = MESSAGE_BYTES,
    compute_time: float = COMPUTE_US,
    alpha: float = 0.1,
):
    """Replay the Jacobi trace at one bandwidth; returns the AppResult.

    Under ``REPRO_NETSIM_MODE=flow`` (the runner's ``--netsim-mode flow``)
    the per-packet replay is replaced by the flow-level estimator: the
    returned AppResult then carries the makespan *lower bound* as
    ``total_time`` and *uncontended* message latencies — the no-queueing
    limit of the DES numbers, useful for fast sweeps but blind to the
    congestion blow-up the figures' low-bandwidth region shows (see
    docs/ARCHITECTURE.md for the validity envelope).
    """
    if netsim_mode() == "flow":
        import numpy as np

        from repro.netsim.flow import flow_evaluate

        flow = flow_evaluate(
            mapping, iterations=iterations, message_bytes=message_bytes,
            bandwidth=bandwidth, alpha=alpha, compute_time=compute_time,
        )
        per_iter = flow.makespan_lower_bound / iterations
        return AppResult(
            total_time=flow.makespan_lower_bound,
            iterations=iterations,
            mean_message_latency=flow.mean_no_load_latency_us,
            max_message_latency=flow.no_load_latency_us,
            messages_delivered=flow.messages_per_iteration * iterations,
            hops_per_byte=mapping.hops_per_byte,
            iteration_finish_times=per_iter * np.arange(1, iterations + 1),
        )
    sim = NetworkSimulator(mapping.topology, bandwidth=bandwidth, alpha=alpha)
    app = IterativeApplication(
        mapping, sim, iterations=iterations,
        message_bytes=message_bytes, compute_time=compute_time,
    )
    return app.run()


def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    """Reproduce Figures 7/8 (one row per bandwidth, one column per strategy)."""
    iterations = 30 if quick else 200
    topo = Torus((4, 4, 4))
    graph = mesh2d_pattern(8, 8, message_bytes=MESSAGE_BYTES)
    mappings = {
        name: mapper_from_spec(name, seed).map(graph, topo) for name in STRATEGIES
    }
    rows = []
    for bw in QUICK_BANDWIDTHS if quick else FULL_BANDWIDTHS:
        row: dict = {"bandwidth_MBps": bw}
        for name, mapping in mappings.items():
            result = simulate_latency(mapping, bw, iterations)
            row[f"{name}_latency_us"] = result.mean_message_latency
        rows.append(row)
    return ExperimentResult(
        "fig7_8",
        "2D-mesh on 64-node 3D-torus: average message latency vs bandwidth",
        rows,
        notes="paper: random(GreedyLB) latency explodes first as bandwidth "
        "shrinks; TopoLB lowest everywhere, TopoCentLB in between",
    )
