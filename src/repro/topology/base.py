"""Abstract base class for processor topologies."""

from __future__ import annotations

import abc
from collections.abc import Iterator, Sequence

import numpy as np

from repro.exceptions import TopologyError

__all__ = ["Topology"]


class Topology(abc.ABC):
    """A machine interconnect: processors (nodes ``0..p-1``) plus links.

    Subclasses must implement :meth:`distance_row`, :meth:`neighbors` and
    :meth:`route`. Everything else (distance matrix, diameter, average
    distance, link enumeration) derives from those primitives, with grid
    subclasses overriding the derived methods with closed forms where that
    is cheaper.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise TopologyError(f"topology needs at least one node, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        # Derived tables, one per requested dtype; populated lazily by
        # distance_matrix() (possibly from the process-level shared cache).
        self._distance_matrices: dict[np.dtype, np.ndarray] = {}
        self._avg_distance_vector: np.ndarray | None = None
        self._centered_distance: dict[np.dtype, np.ndarray] = {}
        self._link_graph = None  # lazily built by link_graph()

    # ------------------------------------------------------------------ size
    @property
    def num_nodes(self) -> int:
        """Number of processors ``p``."""
        return self._num_nodes

    def __len__(self) -> int:
        return self._num_nodes

    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self._num_nodes:
            raise TopologyError(f"node {node} out of range [0, {self._num_nodes})")
        return node

    # ------------------------------------------------------------- distances
    @abc.abstractmethod
    def distance_row(self, node: int) -> np.ndarray:
        """Shortest-path hop distances from ``node`` to every node.

        Returns an int array of shape ``(num_nodes,)``.
        """

    def cache_key(self) -> tuple | None:
        """Key identifying this topology's *shape* for the shared table cache.

        Two instances with equal keys must be fully interchangeable — same
        distances, same node numbering. Shape-defined subclasses (grid,
        hypercube, fat-tree) override this; the default ``None`` means "not
        shareable", which is the only sound answer for content-defined
        topologies (an explicit matrix or edge list carries information the
        constructor arguments' repr cannot prove equal).
        """
        return None

    def distance(self, a: int, b: int) -> int:
        """Shortest-path hop distance between processors ``a`` and ``b``."""
        a = self._check_node(a)
        b = self._check_node(b)
        for mat in self._distance_matrices.values():
            return int(mat[a, b])
        return int(self.distance_row(a)[b])

    def distance_matrix(self, dtype: np.dtype | type = np.int32) -> np.ndarray:
        """All-pairs distance matrix in ``dtype``, cached per dtype.

        The matrix is ``p x p``, symmetric and **read-only** (it is shared
        between callers — and, for shape-defined topologies, between
        topology instances via :mod:`repro.topology.cache`). Additional
        dtypes are derived by casting an exact cached matrix instead of
        re-running the ``O(p^2)`` distance computation.
        """
        from repro.topology import cache

        dt = np.dtype(dtype)
        mat = self._distance_matrices.get(dt)
        if mat is not None:
            return mat

        key = self.cache_key()
        skey = (key, "distance_matrix", dt.str) if key is not None else None
        if skey is not None:
            mat = cache.shared_get(skey)
        if mat is None:
            # Derive by casting when an exact (integer or float64) matrix is
            # already cached; lossy dtypes (float32) are never used as the
            # source, so a float32-then-float64 call sequence stays exact.
            source = next(
                (
                    m for m in self._distance_matrices.values()
                    if m.dtype.kind in "iu" or m.dtype == np.float64
                ),
                None,
            )
            if source is not None:
                mat = source.astype(dt)
            else:
                mat = self._build_distance_matrix(dt)
            mat.flags.writeable = False
            if skey is not None:
                cache.shared_put(skey, mat)
        self._distance_matrices[dt] = mat
        return mat

    def _build_distance_matrix(self, dtype: np.dtype) -> np.ndarray:
        """Compute the full matrix (no caching). The generic path stacks
        :meth:`distance_row`; grid subclasses override with a closed form."""
        mat = np.empty((self._num_nodes, self._num_nodes), dtype=dtype)
        for node in range(self._num_nodes):
            mat[node] = self.distance_row(node)
        return mat

    def diameter(self) -> int:
        """Maximum shortest-path distance over all processor pairs."""
        return int(max(int(self.distance_row(v).max()) for v in range(self._num_nodes)))

    def average_distance(self) -> float:
        """Mean shortest-path distance over all ordered pairs (including self)."""
        total = sum(float(self.distance_row(v).sum()) for v in range(self._num_nodes))
        return total / (self._num_nodes**2)

    # ----------------------------------------------------------- connectivity
    @abc.abstractmethod
    def neighbors(self, node: int) -> list[int]:
        """Processors sharing a direct link with ``node``."""

    def degree(self, node: int) -> int:
        """Number of direct links at ``node``."""
        return len(self.neighbors(node))

    def links(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected links as ``(a, b)`` with ``a < b``."""
        for a in range(self._num_nodes):
            for b in self.neighbors(a):
                if a < b:
                    yield (a, b)

    def num_links(self) -> int:
        """Number of undirected links."""
        return sum(1 for _ in self.links())

    def link_graph(self):
        """The machine's routing substrate (see :mod:`repro.topology.links`).

        Nodes are processors plus switches; links carry capacity. The
        default — correct for every *direct* network — is a lazy
        :class:`~repro.topology.links.DirectLinkGraph` whose nodes are
        exactly the processors and whose links delegate to
        :meth:`neighbors`, so direct machines keep their pre-link-graph
        semantics bit-identically. Indirect machines (fat-tree, dragonfly)
        override with explicit switch-level wiring.
        """
        graph = self._link_graph
        if graph is None:
            from repro.topology.links import DirectLinkGraph

            graph = self._link_graph = DirectLinkGraph(self)
        return graph

    # ---------------------------------------------------------------- routing
    @abc.abstractmethod
    def route(self, src: int, dst: int) -> list[int]:
        """Deterministic minimal route from ``src`` to ``dst``.

        Returns the node sequence ``[src, ..., dst]`` over :meth:`link_graph`
        nodes; consecutive entries are linked. Intermediate entries may be
        switch ids (``>= num_nodes``) on indirect machines. Grid topologies
        use dimension-ordered routing (as BlueGene/L does); the network
        simulator charges contention on each hop of this route.
        """

    def route_links(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The directed links (over :meth:`link_graph`) traversed by :meth:`route`."""
        path = self.route(src, dst)
        return list(zip(path[:-1], path[1:]))

    # ------------------------------------------------------------------ misc
    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable identifier, e.g. ``"torus(8x8)"``."""

    def coords(self, node: int) -> tuple[int, ...]:
        """Coordinates of ``node`` for grid topologies; default is ``(node,)``."""
        return (self._check_node(node),)

    def index(self, coords: Sequence[int]) -> int:
        """Inverse of :meth:`coords`."""
        if len(coords) != 1:
            raise TopologyError(f"{self.name} has 1-D node ids, got coords {coords!r}")
        return self._check_node(coords[0])

    def validate_distance_axioms(self, sample: int = 64, seed: int = 0) -> None:
        """Spot-check metric axioms on random triples (used by tests).

        Raises :class:`TopologyError` on the first violation of symmetry,
        identity or the triangle inequality.
        """
        rng = np.random.default_rng(seed)
        p = self._num_nodes
        for _ in range(sample):
            a, b, c = (int(x) for x in rng.integers(0, p, size=3))
            dab, dba = self.distance(a, b), self.distance(b, a)
            if dab != dba:
                raise TopologyError(f"asymmetric distance d({a},{b})={dab} != {dba}")
            if self.distance(a, a) != 0:
                raise TopologyError(f"d({a},{a}) != 0")
            if dab > self.distance(a, c) + self.distance(c, b):
                raise TopologyError(f"triangle inequality violated at ({a},{b},{c})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} p={self._num_nodes}>"
