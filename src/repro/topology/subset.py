"""Metric view of a subset of a machine (an allocation / block).

Real schedulers rarely hand an application the whole machine; a job gets an
allocation — some subset of processors — and mapping happens *within* it,
with distances still measured through the full network. ``SubTopology``
presents exactly that: nodes ``0..k-1`` aliasing a chosen subset of a parent
topology, with the parent's distances. It also powers the hierarchical
mapper (:class:`~repro.mapping.hybrid.HybridTopoLB`), which maps groups onto
machine blocks and then tasks within each block.

Like :class:`~repro.topology.FatTree`, this is a *metric-only* topology:
routes may leave the subset, so :meth:`route` raises and the network
simulator must be run on the parent machine.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["SubTopology"]


class SubTopology(Topology):
    """A subset of a parent topology's processors, under the parent metric."""

    def __init__(self, parent: Topology, nodes: Sequence[int]):
        ids = [int(v) for v in nodes]
        if len(ids) == 0:
            raise TopologyError("subset must contain at least one processor")
        if len(set(ids)) != len(ids):
            raise TopologyError("subset contains duplicate processors")
        for v in ids:
            if not 0 <= v < parent.num_nodes:
                raise TopologyError(f"processor {v} not in parent {parent.name}")
        super().__init__(len(ids))
        self._parent = parent
        self._nodes = np.asarray(ids, dtype=np.int64)
        self._local = {v: i for i, v in enumerate(ids)}

    @property
    def parent(self) -> Topology:
        """The full machine this allocation belongs to."""
        return self._parent

    @property
    def parent_nodes(self) -> np.ndarray:
        """Parent ids of the subset, indexed by local node id (copied)."""
        return self._nodes.copy()

    def to_parent(self, node: int) -> int:
        """Local node id -> parent processor id."""
        return int(self._nodes[self._check_node(node)])

    def from_parent(self, parent_node: int) -> int:
        """Parent processor id -> local node id (TopologyError if outside).

        Raises :class:`~repro.exceptions.TopologyError` like every other
        accessor here (``to_parent``/``distance_row``/``neighbors`` go
        through ``_check_node``) — callers catch one exception type, not a
        bare ``KeyError`` from the internal lookup table.
        """
        parent_node = int(parent_node)
        local = self._local.get(parent_node)
        if local is None:
            if not 0 <= parent_node < self._parent.num_nodes:
                raise TopologyError(
                    f"node {parent_node} out of range "
                    f"[0, {self._parent.num_nodes}) of parent {self._parent.name}"
                )
            raise TopologyError(
                f"parent processor {parent_node} is not part of {self.name}"
            )
        return local

    @property
    def name(self) -> str:
        return f"subset({self._num_nodes} of {self._parent.name})"

    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        parent_row = self._parent.distance_row(int(self._nodes[node]))
        return parent_row[self._nodes]

    def neighbors(self, node: int) -> list[int]:
        """Subset members at parent-distance 1 (may be empty for sparse subsets)."""
        node = self._check_node(node)
        out = []
        for nbr in self._parent.neighbors(int(self._nodes[node])):
            local = self._local.get(nbr)
            if local is not None:
                out.append(local)
        return out

    def route(self, src: int, dst: int) -> list[int]:
        raise TopologyError(
            "SubTopology is metric-only: routes run through the parent "
            "machine and may leave the subset; simulate on the parent"
        )
