"""k-ary n-dimensional mesh topology (no wrap-around links)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.topology.grid import GridTopology

__all__ = ["Mesh"]


class Mesh(GridTopology):
    """An n-dimensional mesh, e.g. ``Mesh((8, 8, 8))`` for BlueGene 3D-mesh mode.

    Hop distance is the Manhattan (L1) distance between node coordinates.
    The paper's Table 1 and Figure 11 run on 3D meshes; every other grid
    experiment uses the :class:`~repro.topology.Torus` sibling.
    """

    wraparound = False

    def __init__(self, shape: Sequence[int]):
        super().__init__(shape)

    @property
    def name(self) -> str:
        return "mesh(" + "x".join(str(s) for s in self.shape) + ")"

    def expected_random_distance(self) -> float:
        """Closed-form E[d(a, b)] for uniformly random nodes a, b.

        On one axis of extent s the mean |a-b| over all ordered pairs is
        ``(s^2 - 1) / (3 s)``; axes are independent so expectations add.
        Used to validate the random-mapping baselines in Figures 1 and 3.
        """
        return float(sum((s * s - 1.0) / (3.0 * s) for s in self.shape))
