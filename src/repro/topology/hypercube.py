"""Hypercube topology.

Included because the paper's introduction contrasts torus/mesh machines with
hypercubes (and fat-trees), whose ``P log P`` wiring makes contention a much
smaller factor; having the topology available lets the benchmarks demonstrate
that contrast (ablation benches) and exercises the mapping code on a
non-grid metric.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["Hypercube"]


class Hypercube(Topology):
    """A ``d``-dimensional binary hypercube on ``2**d`` processors.

    Hop distance is the Hamming distance between node ids; routing is e-cube
    (correct the lowest differing bit first), the standard deterministic
    deadlock-free scheme.
    """

    def __init__(self, dim: int):
        if dim < 0 or dim > 24:
            raise TopologyError(f"hypercube dimension must be in [0, 24], got {dim}")
        self._dim = int(dim)
        super().__init__(1 << self._dim)

    @property
    def dim(self) -> int:
        """Number of hypercube dimensions d (p = 2**d)."""
        return self._dim

    @property
    def name(self) -> str:
        return f"hypercube({self._dim})"

    def cache_key(self) -> tuple:
        return ("Hypercube", self._dim)

    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        xor = np.arange(self._num_nodes, dtype=np.uint32) ^ np.uint32(node)
        return np.bitwise_count(xor).astype(np.int32)

    def neighbors(self, node: int) -> list[int]:
        node = self._check_node(node)
        return [node ^ (1 << bit) for bit in range(self._dim)]

    def route(self, src: int, dst: int) -> list[int]:
        src = self._check_node(src)
        dst = self._check_node(dst)
        path = [src]
        cur = src
        for bit in range(self._dim):
            mask = 1 << bit
            if (cur ^ dst) & mask:
                cur ^= mask
                path.append(cur)
        return path

    def diameter(self) -> int:
        return self._dim

    def expected_random_distance(self) -> float:
        """E[Hamming(a,b)] for uniform a, b — each bit differs w.p. 1/2."""
        return self._dim / 2.0
