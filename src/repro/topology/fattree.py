"""Fat-tree topology (indirect network with real switch-level routing).

The paper's introduction argues contention is a minor factor on fat-trees —
their ``P log P`` wiring keeps processor-to-processor distances nearly
uniform — and a major factor on tori/meshes. This class exists to let the
benchmarks demonstrate that contrast: on a fat-tree the gap between a random
mapping and TopoLB nearly vanishes (see ``benchmarks/test_ablation_topologies``).

A fat-tree is an *indirect* network: processors hang off leaf switches, and
messages climb to a nearest common ancestor switch and descend. With switch
arity ``a`` and ``L`` levels the processors are ``0..a**L - 1`` and

    d(x, y) = 2 * (smallest l such that x // a**l == y // a**l)

i.e. two switch hops per level climbed. The machine is modeled as a k-ary
n-tree: each of the ``L`` switch levels holds ``a**(L-1)`` switches, switch
``<l, w>`` is identified by its level ``l`` and an ``(L-1)``-digit ``a``-ary
word ``w``, and it links upward to every ``<l+1, w'>`` whose word matches
``w`` in all digit positions except ``l``. Processor ``x`` attaches to leaf
switch ``<0, x // a>``. That wiring yields ``L * a**L`` switch-level links —
the ``P log P`` redundancy the paper cites.

:meth:`route` returns real node paths over :meth:`link_graph` (switch ids
are ``>= num_nodes``): ascend choosing the freed digit from the destination
word (deterministic d-mod-k-style up-link selection), turn around at the
nearest common ancestor, descend. Route length always equals the distance
metric above, so the network simulator, the flow estimator, and the
link-load conservation oracle all work on fat-trees exactly as they do on
direct machines.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["FatTree"]


class FatTree(Topology):
    """An ``arity``-ary fat-tree with ``levels`` switch levels (k-ary n-tree)."""

    def __init__(self, arity: int, levels: int):
        if arity < 2:
            raise TopologyError(f"fat-tree arity must be >= 2, got {arity}")
        if levels < 1:
            raise TopologyError(f"fat-tree needs >= 1 level, got {levels}")
        self._arity = int(arity)
        self._levels = int(levels)
        num = self._arity**self._levels
        if num > 1 << 20:
            raise TopologyError(f"fat-tree of {num} processors is too large")
        super().__init__(num)
        # a**(L-1) switches per level, L levels, ids packed after processors.
        self._switches_per_level = self._arity ** (self._levels - 1)

    @property
    def arity(self) -> int:
        """Ports per switch going down one level."""
        return self._arity

    @property
    def levels(self) -> int:
        """Number of switch levels between a processor and the root."""
        return self._levels

    @property
    def num_switches(self) -> int:
        """Total switches: ``levels * arity**(levels-1)``."""
        return self._levels * self._switches_per_level

    @property
    def name(self) -> str:
        return f"fattree(arity={self._arity},levels={self._levels})"

    def cache_key(self) -> tuple:
        return ("FatTree", self._arity, self._levels)

    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        ids = np.arange(self._num_nodes, dtype=np.int64)
        dist = np.zeros(self._num_nodes, dtype=np.int32)
        # Level of the lowest common ancestor: first l where the a**l-blocks match.
        unresolved = ids != node
        for level in range(1, self._levels + 1):
            block = self._arity**level
            same_block = (ids // block) == (node // block)
            newly = unresolved & same_block
            dist[newly] = 2 * level
            unresolved &= ~same_block
        return dist

    def neighbors(self, node: int) -> list[int]:
        """Processors under the same leaf switch (minimum positive distance, 2 hops).

        This is the *metric-level* neighborhood used by BFS-style mappers;
        physical switch adjacency lives in :meth:`link_graph`.
        """
        node = self._check_node(node)
        base = (node // self._arity) * self._arity
        return [base + i for i in range(self._arity) if base + i != node]

    # ---------------------------------------------------------------- routing
    def _switch_id(self, level: int, word: int) -> int:
        """Link-graph id of switch ``<level, word>`` (packed after processors)."""
        return self._num_nodes + level * self._switches_per_level + word

    def route(self, src: int, dst: int) -> list[int]:
        """Up/down nearest-common-ancestor route over the switch fabric.

        Ascending from level ``l`` frees word digit ``l``; it is set to the
        destination leaf word's digit ``l`` (deterministic up-link choice),
        so the turnaround switch at the NCA level already carries the
        destination word and the descent is forced. Route length is exactly
        ``distance(src, dst)``.
        """
        src, dst = self._check_node(src), self._check_node(dst)
        if src == dst:
            return [src]
        a = self._arity
        u, v = src // a, dst // a  # source / destination leaf-switch words
        nca = 1  # smallest level whose a**l-block holds both endpoints
        while src // a**nca != dst // a**nca:
            nca += 1
        path = [src]
        word = u
        for level in range(nca - 1):  # ascend, re-pointing digit `level` at dst
            path.append(self._switch_id(level, word))
            digit = (word // a**level) % a
            word += (((v // a**level) % a) - digit) * a**level
        for level in range(nca - 1, -1, -1):  # turn around and descend
            path.append(self._switch_id(level, word))
        path.append(dst)
        return path

    def link_graph(self):
        """Switch-level wiring as a :class:`~repro.topology.links.StaticLinkGraph`.

        The link list participates in the shared topology cache under this
        machine's :meth:`cache_key`, so equal-shape fat-trees across the
        process share one enumeration.
        """
        graph = self._link_graph
        if graph is None:
            from repro.topology import cache
            from repro.topology.links import StaticLinkGraph

            skey = (self.cache_key(), "link_graph_links")
            links = cache.shared_get(skey)
            if links is None:
                links = np.array(list(self._build_links()), dtype=np.int64)
                cache.shared_put(skey, links)
            graph = StaticLinkGraph(
                self._num_nodes, self._num_nodes + self.num_switches, links
            )
            self._link_graph = graph
        return graph

    def _build_links(self):
        a, spl = self._arity, self._switches_per_level
        for x in range(self._num_nodes):  # processor -> leaf switch
            yield (x, self._switch_id(0, x // a))
        for level in range(self._levels - 1):  # level l -> level l+1 fabric
            for word in range(spl):
                digit = (word // a**level) % a
                for new_digit in range(a):
                    upper = word + (new_digit - digit) * a**level
                    yield (
                        self._switch_id(level, word),
                        self._switch_id(level + 1, upper),
                    )

    def links(self):
        """Undirected switch-level links (``levels * arity**levels`` of them)."""
        return self.link_graph().links()

    def diameter(self) -> int:
        return 2 * self._levels if self._num_nodes > 1 else 0

    def expected_random_distance(self) -> float:
        """E[d] for uniform random processor pairs (including x == y pairs)."""
        # P(LCA at level l) for l>=1: blocks of size a**l match but a**(l-1) don't.
        a, total = self._arity, 0.0
        p = float(self._num_nodes)
        for level in range(1, self._levels + 1):
            same_l = (a**level) / p if a**level <= p else 1.0
            same_lm1 = (a ** (level - 1)) / p
            total += 2 * level * max(same_l - same_lm1, 0.0)
        return total
