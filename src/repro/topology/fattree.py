"""Fat-tree topology (metric-only, indirect network).

The paper's introduction argues contention is a minor factor on fat-trees —
their ``P log P`` wiring keeps processor-to-processor distances nearly
uniform — and a major factor on tori/meshes. This class exists to let the
benchmarks demonstrate that contrast: on a fat-tree the gap between a random
mapping and TopoLB nearly vanishes (see ``benchmarks/test_ablation_topologies``).

A fat-tree is an *indirect* network: processors hang off leaf switches, and
messages climb to the lowest common ancestor switch and descend. We model the
processor-level metric directly: with switch arity ``a`` and ``L`` levels the
processors are ``0..a**L - 1`` and

    d(x, y) = 2 * (smallest l such that x // a**l == y // a**l)

i.e. two switch hops per level climbed. Because links are switch-to-switch,
:meth:`route` (processor-level hops) is undefined and raises — the network
simulator only supports direct networks (mesh/torus/hypercube/arbitrary).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["FatTree"]


class FatTree(Topology):
    """An ``arity``-ary fat-tree with ``levels`` switch levels (metric only)."""

    def __init__(self, arity: int, levels: int):
        if arity < 2:
            raise TopologyError(f"fat-tree arity must be >= 2, got {arity}")
        if levels < 1:
            raise TopologyError(f"fat-tree needs >= 1 level, got {levels}")
        self._arity = int(arity)
        self._levels = int(levels)
        num = self._arity**self._levels
        if num > 1 << 20:
            raise TopologyError(f"fat-tree of {num} processors is too large")
        super().__init__(num)

    @property
    def arity(self) -> int:
        """Ports per switch going down one level."""
        return self._arity

    @property
    def levels(self) -> int:
        """Number of switch levels between a processor and the root."""
        return self._levels

    @property
    def name(self) -> str:
        return f"fattree(arity={self._arity},levels={self._levels})"

    def cache_key(self) -> tuple:
        return ("FatTree", self._arity, self._levels)

    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        ids = np.arange(self._num_nodes, dtype=np.int64)
        dist = np.zeros(self._num_nodes, dtype=np.int32)
        # Level of the lowest common ancestor: first l where the a**l-blocks match.
        unresolved = ids != node
        for level in range(1, self._levels + 1):
            block = self._arity**level
            same_block = (ids // block) == (node // block)
            newly = unresolved & same_block
            dist[newly] = 2 * level
            unresolved &= ~same_block
        return dist

    def neighbors(self, node: int) -> list[int]:
        """Processors under the same leaf switch (minimum positive distance, 2 hops)."""
        node = self._check_node(node)
        base = (node // self._arity) * self._arity
        return [base + i for i in range(self._arity) if base + i != node]

    def route(self, src: int, dst: int) -> list[int]:
        raise TopologyError(
            "fat-tree is an indirect network: processor-level routes are undefined; "
            "use a direct topology (Mesh/Torus/Hypercube/ArbitraryTopology) with the "
            "network simulator"
        )

    def links(self):
        raise TopologyError("fat-tree links are switch-level; not exposed")

    def diameter(self) -> int:
        return 2 * self._levels if self._num_nodes > 1 else 0

    def expected_random_distance(self) -> float:
        """E[d] for uniform random processor pairs (including x == y pairs)."""
        # P(LCA at level l) for l>=1: blocks of size a**l match but a**(l-1) don't.
        a, total = self._arity, 0.0
        p = float(self._num_nodes)
        for level in range(1, self._levels + 1):
            same_l = (a**level) / p if a**level <= p else 1.0
            same_lm1 = (a ** (level - 1)) / p
            total += 2 * level * max(same_l - same_lm1, 0.0)
        return total
