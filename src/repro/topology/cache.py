"""Process-level shared cache for derived topology tables.

Every experiment config builds a *fresh* topology object for the same
machine shape, and every mapper call needs the same ``O(p^2)`` derived
tables — the all-pairs distance matrix (per float dtype) and the per-node
average-distance vector. This module shares those tables across topology
instances: a topology that can prove two instances are interchangeable
advertises a :meth:`~repro.topology.base.Topology.cache_key` (e.g.
``("Torus", (8, 8, 8))``), and derived tables are stored once per
``(cache_key, table, dtype)`` triple.

Shape-defined topologies (mesh, torus, hypercube, fat-tree) have keys;
content-defined ones (matrix, arbitrary graph, sub-topology) return ``None``
and simply keep their per-instance caches — a name like ``matrix(p=64)``
says nothing about the distances inside, so sharing would be unsound.

Cached arrays are **read-only** (``writeable=False``): they are handed to
many independent callers, and a mutation through one would silently corrupt
every other. Hit/miss traffic lands on the ``topology.cache.hits`` /
``topology.cache.misses`` counters when profiling is enabled
(``docs/OBSERVABILITY.md``); ``docs/PERFORMANCE.md`` covers the key design.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

import numpy as np

from repro import obs

__all__ = [
    "shared_get",
    "shared_put",
    "clear_topology_cache",
    "topology_cache_info",
    "MAX_ENTRIES",
]

#: Entry cap; at the paper's scales one distance matrix is the dominant cost
#: (a 4096-node float64 matrix is 128 MiB), so the cap bounds worst-case
#: memory at "a few dozen machines' worth", evicting least-recently-used.
MAX_ENTRIES = 32

_cache: OrderedDict[Hashable, np.ndarray] = OrderedDict()


def shared_get(key: Hashable) -> np.ndarray | None:
    """Look up a shared table; refreshes LRU order on hit."""
    value = _cache.get(key)
    if value is None:
        obs.count("topology.cache.misses")
        return None
    _cache.move_to_end(key)
    obs.count("topology.cache.hits")
    return value


def shared_put(key: Hashable, value: np.ndarray) -> np.ndarray:
    """Store a table under ``key`` (made read-only); returns the stored array."""
    value.flags.writeable = False
    _cache[key] = value
    _cache.move_to_end(key)
    while len(_cache) > MAX_ENTRIES:
        _cache.popitem(last=False)
    return value


def clear_topology_cache() -> int:
    """Drop every shared entry (tests, or to release memory); returns the count."""
    dropped = len(_cache)
    _cache.clear()
    return dropped


def topology_cache_info() -> dict:
    """Snapshot for diagnostics: entry count, total bytes, and the keys."""
    return {
        "entries": len(_cache),
        "bytes": int(sum(v.nbytes for v in _cache.values())),
        "keys": list(_cache.keys()),
    }
