"""Topology defined by an explicit distance matrix (metric-only).

Some machines are easiest to describe by their distances alone: quotient
machines (one node per block of processors, as the hierarchical mapper
builds), measured latency matrices of real clusters, or synthetic metrics
for testing. ``MatrixTopology`` wraps any symmetric, zero-diagonal,
non-negative matrix; like :class:`~repro.topology.FatTree` it is metric-only
(:meth:`route` raises — there are no links to route over).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["MatrixTopology"]


class MatrixTopology(Topology):
    """A processor metric given directly as a matrix."""

    def __init__(self, distances: np.ndarray):
        mat = np.asarray(distances, dtype=np.float64).copy()
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise TopologyError(f"distance matrix must be square, got {mat.shape}")
        if not np.allclose(mat, mat.T):
            raise TopologyError("distance matrix must be symmetric")
        if not np.allclose(np.diag(mat), 0.0):
            raise TopologyError("distance matrix diagonal must be zero")
        if (mat < 0).any():
            raise TopologyError("distances must be non-negative")
        off_diag = mat[~np.eye(len(mat), dtype=bool)]
        if len(off_diag) and (off_diag <= 0).any():
            raise TopologyError("distinct processors must have positive distance")
        super().__init__(mat.shape[0])
        mat.flags.writeable = False
        self._mat = mat

    @property
    def name(self) -> str:
        return f"matrix(p={self._num_nodes})"

    def distance_row(self, node: int) -> np.ndarray:
        return self._mat[self._check_node(node)]

    def distance_matrix(self, dtype=np.float64) -> np.ndarray:
        # Distances may be fractional (e.g. block-mean distances); serving
        # the stored float matrix avoids silent truncation to the default
        # integer dtype of the base implementation. Other dtypes are cast
        # once and kept in the per-instance cache (never the shared cache:
        # cache_key() is None — the name does not identify the contents).
        dt = np.dtype(dtype)
        if dt == np.float64:
            return self._mat
        mat = self._distance_matrices.get(dt)
        if mat is None:
            mat = self._mat.astype(dt)
            mat.flags.writeable = False
            self._distance_matrices[dt] = mat
        return mat

    def distance(self, a: int, b: int) -> float:
        return float(self._mat[self._check_node(a), self._check_node(b)])

    def neighbors(self, node: int) -> list[int]:
        """Processors at the minimum positive distance from ``node``."""
        node = self._check_node(node)
        row = self._mat[node]
        positive = row[row > 0]
        if len(positive) == 0:
            return []
        return [int(v) for v in np.flatnonzero(np.isclose(row, positive.min()))]

    def route(self, src: int, dst: int) -> list[int]:
        raise TopologyError(
            "MatrixTopology is metric-only: no links exist to route over"
        )
