"""Processor-group aggregation — coarse machines for the multilevel mapper.

A :class:`GroupedTopology` collapses disjoint processor groups of a parent
machine into single coarse nodes, giving the multilevel mapper a machine
whose size matches its coarsened task graph. Like
:class:`~repro.topology.subset.SubTopology` it is *metric-only*: mappers see
honest inter-group distances, but there are no physical links to route
over, so :meth:`route` raises.

Two distance aggregations are supported:

* ``representative`` (default) — ``d(A, B) = d_parent(rep_A, rep_B)`` for
  one designated member per group. Exact machine distances, never needs a
  parent-sized dense table when the ancestry bottoms out in a grid (the
  closed form runs on representative coordinates directly) — this is what
  keeps 10^5+-processor tori coarsenable.
* ``mean`` — ``d(A, B)`` is the mean parent distance over all member pairs
  (diagonal forced to 0). Smoother, but requires the parent's dense matrix
  and is therefore refused above the dense-table limit.

:func:`coarsen_machine` builds the standard halving step: grid machines
halve their largest extent (subtorus pairing, so groups stay geometric
blocks), everything else pairs consecutive node ids (a dimension collapse
on hypercubes).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.topology.grid import GridTopology

__all__ = ["GroupedTopology", "coarsen_machine"]

#: Mirrors repro.mapping.metrics._MATRIX_LIMIT: above this parent size we
#: refuse to materialize a parent-sized dense table for aggregation.
_PARENT_MATRIX_LIMIT = 8192


class GroupedTopology(Topology):
    """A machine whose nodes are disjoint processor groups of ``parent``.

    Parameters
    ----------
    parent:
        The finer machine (may itself be a :class:`GroupedTopology`; the
        representative chain composes down to the non-grouped root).
    groups:
        ``(parent.num_nodes,)`` int array, ``groups[i]`` = coarse node of
        parent node ``i``. Every id in ``0..k-1`` must occur.
    aggregate:
        ``"representative"`` or ``"mean"`` (see module docstring).
    reps:
        Optional explicit representative per group (must be a member).
        Defaults to each group's smallest member id. :func:`coarsen_machine`
        passes the smallest *allowed* member on degraded machines so
        representative distances never read a dead processor's sentinel row.
    """

    def __init__(
        self,
        parent: Topology,
        groups: np.ndarray,
        aggregate: str = "representative",
        reps: np.ndarray | None = None,
    ):
        groups = np.asarray(groups, dtype=np.int64)
        if groups.shape != (parent.num_nodes,):
            raise TopologyError(
                f"groups must have shape ({parent.num_nodes},), got {groups.shape}"
            )
        if groups.min() < 0:
            raise TopologyError("group ids must be non-negative")
        k = int(groups.max()) + 1
        counts = np.bincount(groups, minlength=k)
        if (counts == 0).any():
            missing = int(np.flatnonzero(counts == 0)[0])
            raise TopologyError(f"coarse node {missing} has no members")
        if aggregate not in ("representative", "mean"):
            raise TopologyError(
                f"aggregate must be 'representative' or 'mean', got {aggregate!r}"
            )
        super().__init__(k)
        self._parent = parent
        self._groups = groups.copy()
        self._groups.flags.writeable = False
        self._aggregate = aggregate

        p = parent.num_nodes
        if reps is None:
            reps_arr = np.full(k, p, dtype=np.int64)
            np.minimum.at(reps_arr, self._groups, np.arange(p, dtype=np.int64))
        else:
            reps_arr = np.asarray(reps, dtype=np.int64).copy()
            if reps_arr.shape != (k,):
                raise TopologyError(f"reps must have shape ({k},), got {reps_arr.shape}")
            if not np.array_equal(self._groups[reps_arr], np.arange(k)):
                raise TopologyError("each representative must belong to its group")
        reps_arr.flags.writeable = False
        self._reps = reps_arr

        # Compose representative chains down to the non-grouped root so grid
        # closed forms (and degraded BFS rows) always run on real machine ids.
        if isinstance(parent, GroupedTopology):
            self._root: Topology = parent._root
            self._root_reps = parent._root_reps[self._reps]
        else:
            self._root = parent
            self._root_reps = self._reps
        self._mean_matrix: np.ndarray | None = None
        self._neighbor_lists: list[list[int]] | None = None

    # ------------------------------------------------------------- structure
    @property
    def parent(self) -> Topology:
        """The finer machine this one aggregates."""
        return self._parent

    @property
    def groups(self) -> np.ndarray:
        """Read-only parent-node → coarse-node map."""
        return self._groups

    @property
    def representatives(self) -> np.ndarray:
        """Read-only representative parent node per coarse node."""
        return self._reps

    @property
    def aggregate(self) -> str:
        """The distance aggregation mode."""
        return self._aggregate

    def member_lists(self) -> list[np.ndarray]:
        """Member parent-node ids per coarse node, each ascending."""
        order = np.argsort(self._groups, kind="stable")
        counts = np.bincount(self._groups, minlength=self._num_nodes)
        return np.split(order, np.cumsum(counts)[:-1])

    def cache_key(self) -> tuple | None:
        parent_key = self._parent.cache_key()
        if parent_key is None:
            return None
        return (
            "GroupedTopology",
            parent_key,
            self._aggregate,
            self._groups.tobytes(),
            self._reps.tobytes(),
        )

    # -------------------------------------------------------------- distances
    def distance_matrix(self, dtype: np.dtype | type = np.int32) -> np.ndarray:
        if self._aggregate != "mean":
            return super().distance_matrix(dtype)
        # Mean distances are fractional: every dtype must be cast from the
        # exact float64 mean matrix, never derived from a truncated integer
        # cache entry (which the base class would happily use as a source).
        dt = np.dtype(dtype)
        mat = self._distance_matrices.get(dt)
        if mat is None:
            mat = self._mean_distance_matrix().astype(dt)
            mat.flags.writeable = False
            self._distance_matrices[dt] = mat
        return mat

    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        if self._aggregate == "mean":
            return self._mean_distance_matrix()[node]
        root, rr = self._root, self._root_reps
        if isinstance(root, GridTopology):
            coords = root.coords_array()[rr]
            delta = np.abs(coords - coords[node])
            if root.wraparound:
                shape = np.asarray(root.shape, dtype=np.int32)
                delta = np.minimum(delta, shape - delta)
            return delta.sum(axis=1, dtype=np.int32)
        return np.asarray(root.distance_row(int(rr[node])))[rr]

    def _build_distance_matrix(self, dtype: np.dtype) -> np.ndarray:
        if self._aggregate == "mean":
            return self._mean_distance_matrix().astype(dtype)
        root, rr = self._root, self._root_reps
        if not isinstance(root, GridTopology) and root.num_nodes <= _PARENT_MATRIX_LIMIT:
            # One gather from the root's (cached) matrix beats k BFS rows.
            return root.distance_matrix()[np.ix_(rr, rr)].astype(dtype)
        return super()._build_distance_matrix(dtype)

    def _mean_distance_matrix(self) -> np.ndarray:
        if self._mean_matrix is None:
            p = self._parent.num_nodes
            if p > _PARENT_MATRIX_LIMIT:
                raise TopologyError(
                    f"mean aggregation needs the parent's dense distance "
                    f"matrix, refused at p={p} > {_PARENT_MATRIX_LIMIT}; "
                    "use aggregate='representative' on large machines"
                )
            mat = self._parent.distance_matrix(np.float64)
            k = self._num_nodes
            counts = np.bincount(self._groups, minlength=k).astype(np.float64)
            ind = np.zeros((p, k), dtype=np.float64)
            ind[np.arange(p), self._groups] = 1.0
            mean = (ind.T @ mat @ ind) / np.outer(counts, counts)
            # Intra-group traffic is free on the coarse machine (identity
            # axiom); zeroing the diagonal keeps the triangle inequality.
            np.fill_diagonal(mean, 0.0)
            mean.flags.writeable = False
            self._mean_matrix = mean
        return self._mean_matrix

    # ------------------------------------------------------------ connectivity
    def neighbors(self, node: int) -> list[int]:
        node = self._check_node(node)
        if self._neighbor_lists is None:
            sets: list[set[int]] = [set() for _ in range(self._num_nodes)]
            g = self._groups
            p = len(g)
            for a, b in self._parent.links():
                if a >= p or b >= p:
                    # Switch-level links of an indirect parent (fat-tree,
                    # dragonfly) say nothing about group-group adjacency.
                    continue
                ga, gb = int(g[a]), int(g[b])
                if ga != gb:
                    sets[ga].add(gb)
                    sets[gb].add(ga)
            self._neighbor_lists = [sorted(s) for s in sets]
        return list(self._neighbor_lists[node])

    # ---------------------------------------------------------------- routing
    def route(self, src: int, dst: int) -> list[int]:
        raise TopologyError(
            "grouped (coarse) machines are metric-only — they have no "
            "link_graph() to route over; route on the parent machine "
            "(its link_graph() carries the physical links) instead"
        )

    @property
    def name(self) -> str:
        return f"grouped({self._parent.name}/{self._num_nodes})"


def _grid_shape_of(topology: Topology) -> tuple[int, ...] | None:
    """The coordinate shape to halve, when the machine is grid-structured."""
    if isinstance(topology, GridTopology):
        return topology.shape
    from repro.faults import DegradedTopology

    if isinstance(topology, DegradedTopology) and isinstance(
        topology.base, GridTopology
    ):
        return topology.base.shape
    return None


def coarsen_machine(
    topology: Topology,
    allowed: np.ndarray | None = None,
    shape: tuple[int, ...] | None = None,
    aggregate: str = "representative",
) -> tuple[GroupedTopology, np.ndarray, np.ndarray | None, tuple[int, ...] | None]:
    """One machine-coarsening step: pair processors into coarse groups.

    Grid machines (and coarse machines derived from one — pass the virtual
    ``shape`` returned by the previous step) halve their largest extent, so
    groups are geometric neighbor pairs and subtori coarsen to subtori.
    Anything else pairs consecutive node ids. Returns ``(coarse topology,
    fine→coarse groups, coarse allowed mask or None, coarse virtual shape or
    None)``; a coarse node is allowed when any member is.
    """
    p = topology.num_nodes
    if p < 2:
        raise TopologyError("cannot coarsen a single-node machine")
    if shape is None:
        shape = _grid_shape_of(topology)
    new_shape: tuple[int, ...] | None = None
    if shape is not None:
        shape = tuple(int(s) for s in shape)
        volume = 1
        for s in shape:
            volume *= s
        if volume != p:
            raise TopologyError(
                f"virtual shape {shape} does not cover {p} processors"
            )
        axis = int(np.argmax(shape))
        coords = np.stack(np.unravel_index(np.arange(p), shape), axis=1)
        coords[:, axis] //= 2
        halved = list(shape)
        halved[axis] = (shape[axis] + 1) // 2
        groups = np.ravel_multi_index(
            tuple(coords.T), tuple(halved)
        ).astype(np.int64)
        new_shape = tuple(halved)
    else:
        groups = np.arange(p, dtype=np.int64) // 2

    coarse_allowed = None
    reps = None
    if allowed is not None:
        k = int(groups.max()) + 1
        coarse_allowed = np.zeros(k, dtype=bool)
        coarse_allowed[groups[allowed]] = True
        # Representative = smallest allowed member where one exists, so
        # representative distances never come from a dead processor's row.
        ids = np.arange(p, dtype=np.int64)
        healthy_min = np.full(k, p, dtype=np.int64)
        np.minimum.at(healthy_min, groups[allowed], ids[allowed])
        all_min = np.full(k, p, dtype=np.int64)
        np.minimum.at(all_min, groups, ids)
        reps = np.where(healthy_min < p, healthy_min, all_min)

    coarse = GroupedTopology(topology, groups, aggregate=aggregate, reps=reps)
    return coarse, groups, coarse_allowed, new_shape
