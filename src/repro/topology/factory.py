"""Spec-string topology construction, e.g. ``topology_from_spec("torus:8x8x8")``.

Experiment configuration files and the CLI describe machines as short
strings; this module is the single parsing point.
"""

from __future__ import annotations

from repro.exceptions import SpecError
from repro.topology.base import Topology
from repro.topology.fattree import FatTree
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus

__all__ = ["topology_from_spec"]


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(part) for part in text.split("x"))
    except ValueError as exc:
        raise SpecError(f"bad shape {text!r}: {exc}") from exc
    if not shape:
        raise SpecError(f"bad shape {text!r}")
    return shape


def topology_from_spec(spec: str) -> Topology:
    """Build a topology from a ``kind:params`` spec string.

    Supported kinds::

        mesh:<e1>x<e2>[x...]       e.g. mesh:16x16, mesh:8x8x8
        torus:<e1>x<e2>[x...]      e.g. torus:4x4x4
        hypercube:<dim>            e.g. hypercube:10  (1024 processors)
        fattree:<arity>x<levels>   e.g. fattree:4x3   (64 processors)

    Raises :class:`~repro.exceptions.SpecError` on anything else.
    """
    if ":" not in spec:
        raise SpecError(f"topology spec {spec!r} must look like 'kind:params'")
    kind, _, params = spec.partition(":")
    kind = kind.strip().lower()
    params = params.strip()
    if kind == "mesh":
        return Mesh(_parse_shape(params))
    if kind == "torus":
        return Torus(_parse_shape(params))
    if kind == "hypercube":
        try:
            return Hypercube(int(params))
        except ValueError as exc:
            raise SpecError(f"bad hypercube dim {params!r}") from exc
    if kind == "fattree":
        shape = _parse_shape(params)
        if len(shape) != 2:
            raise SpecError(f"fattree spec needs arity x levels, got {params!r}")
        return FatTree(shape[0], shape[1])
    raise SpecError(f"unknown topology kind {kind!r}")
