"""Spec-string topology construction, e.g. ``topology_from_spec("torus:8x8x8")``.

Experiment configuration files and the CLI describe machines as short
strings; this module is the single parsing point.
"""

from __future__ import annotations

from repro.exceptions import SpecError, TopologyError
from repro.topology.base import Topology
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.hypercube import Hypercube
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus

__all__ = ["topology_from_spec"]


def _parse_keyvals(params: str, keys: tuple[str, ...], kind: str) -> dict[str, int]:
    """Parse ``key=value;key=value`` with integer values, all keys required."""
    options: dict[str, int] = {}
    for item in params.split(";"):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in keys:
            raise SpecError(
                f"bad {kind} option {item!r}; expected key=value with key "
                f"in {keys}"
            )
        try:
            options[key] = int(value)
        except ValueError as exc:
            raise SpecError(f"bad {kind} option value {item!r}") from exc
    missing = [key for key in keys if key not in options]
    if missing:
        raise SpecError(f"{kind} spec {params!r} is missing {missing}")
    return options


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(part) for part in text.split("x"))
    except ValueError as exc:
        raise SpecError(f"bad shape {text!r}: {exc}") from exc
    if not shape:
        raise SpecError(f"bad shape {text!r}")
    return shape


_DEGRADED_KEYS = ("seed", "nodes", "links", "slow", "slow_factor")


def _parse_degraded(params: str) -> Topology:
    """``degraded:<base spec>;key=value;...`` → a faulted wrapper topology."""
    from repro.faults import FaultSet, DegradedTopology

    parts = [part.strip() for part in params.split(";")]
    if not parts or not parts[0]:
        raise SpecError(
            f"degraded spec needs a base topology, got {params!r} "
            "(e.g. degraded:torus:8x8;seed=3;nodes=0.05)"
        )
    base = topology_from_spec(parts[0])
    options: dict[str, float] = {}
    for item in parts[1:]:
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or key not in _DEGRADED_KEYS:
            raise SpecError(
                f"bad degraded option {item!r}; expected key=value with key "
                f"in {_DEGRADED_KEYS}"
            )
        try:
            options[key] = float(value)
        except ValueError as exc:
            raise SpecError(f"bad degraded option value {item!r}") from exc
    try:
        faults = FaultSet.generate(
            base,
            seed=int(options.get("seed", 0)),
            node_rate=options.get("nodes", 0.0),
            link_rate=options.get("links", 0.0),
            slow_rate=options.get("slow", 0.0),
            slow_factor=options.get("slow_factor", 0.25),
        )
        return DegradedTopology(base, faults)
    except TopologyError as exc:
        raise SpecError(f"bad degraded spec {params!r}: {exc}") from exc


def topology_from_spec(spec: str) -> Topology:
    """Build a topology from a ``kind:params`` spec string.

    Supported kinds::

        mesh:<e1>x<e2>[x...]       e.g. mesh:16x16, mesh:8x8x8
        torus:<e1>x<e2>[x...]      e.g. torus:4x4x4
        hypercube:<dim>            e.g. hypercube:10  (1024 processors)
        fattree:<arity>x<levels>   e.g. fattree:4x3   (64 processors)
        fattree:arity=..;levels=.. e.g. fattree:arity=2;levels=3
        dragonfly:groups=..;routers=..;hosts=..
                                   e.g. dragonfly:groups=4;routers=4;hosts=2
        degraded:<base>[;opt=val]  e.g. degraded:torus:8x8;seed=3;nodes=0.05
                                   opts: seed, nodes, links, slow, slow_factor
                                   (rates are fractions; seeded, deterministic)

    Raises :class:`~repro.exceptions.SpecError` on anything else.
    """
    if ":" not in spec:
        raise SpecError(f"topology spec {spec!r} must look like 'kind:params'")
    kind, _, params = spec.partition(":")
    kind = kind.strip().lower()
    params = params.strip()
    if kind == "degraded":
        return _parse_degraded(params)
    if kind == "mesh":
        return Mesh(_parse_shape(params))
    if kind == "torus":
        return Torus(_parse_shape(params))
    if kind == "hypercube":
        try:
            return Hypercube(int(params))
        except ValueError as exc:
            raise SpecError(f"bad hypercube dim {params!r}") from exc
    if kind == "fattree":
        if "=" in params:
            opts = _parse_keyvals(params, ("arity", "levels"), "fattree")
            try:
                return FatTree(opts["arity"], opts["levels"])
            except TopologyError as exc:
                raise SpecError(f"bad fattree spec {params!r}: {exc}") from exc
        shape = _parse_shape(params)
        if len(shape) != 2:
            raise SpecError(f"fattree spec needs arity x levels, got {params!r}")
        return FatTree(shape[0], shape[1])
    if kind == "dragonfly":
        opts = _parse_keyvals(params, ("groups", "routers", "hosts"), "dragonfly")
        try:
            return Dragonfly(opts["groups"], opts["routers"], opts["hosts"])
        except TopologyError as exc:
            raise SpecError(f"bad dragonfly spec {params!r}: {exc}") from exc
    raise SpecError(f"unknown topology kind {kind!r}")
