"""Dragonfly topology: groups of all-to-all routers with global links.

A dragonfly (Kim et al., ISCA 2008) is a two-level hierarchical indirect
network: ``groups`` groups, each holding ``routers`` routers wired
all-to-all, with ``hosts`` processors hanging off every router and exactly
one global link per unordered group pair. Minimal routing is
group-local/global/group-local:

    host -> router [-> group-exit router] -> global link
         [-> group-entry router] -> host

so the hierarchical distance between processors is

    d = 0 (same host), 2 (same router), 3 (same group),
        3 + [exit hop needed] + [entry hop needed]  in [3, 5]  (inter-group)

The global link between groups ``G != H`` attaches to router
``(H - G - 1) % groups`` in ``G`` (and symmetrically in ``H``) — the offsets
``H - G - 1`` are distinct and never ``groups - 1`` modulo ``groups``, so a
group's ``groups - 1`` global links land on ``groups - 1`` *distinct*
routers ``0..groups-2``. With three or more groups the
constructor requires ``routers >= groups - 1`` (each router hosts at most
one global port): that is what makes deterministic minimal routing also
*shortest* over the link graph — a router with two global ports could relay
a two-global-hop shortcut that beats the 5-hop minimal path, and then the
distance metric, the routes, and the link-load conservation oracle would
disagree. Tests property-check ``distance == link-graph shortest path``.

Like :class:`~repro.topology.FatTree`, switch (router) ids are packed after
the processor ids, so the network simulator, flow estimator, and validation
oracles consume dragonfly routes unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["Dragonfly"]


class Dragonfly(Topology):
    """``groups`` x ``routers`` x ``hosts`` dragonfly with minimal routing."""

    def __init__(self, groups: int, routers: int, hosts: int):
        if groups < 1 or routers < 1 or hosts < 1:
            raise TopologyError(
                f"dragonfly needs positive groups/routers/hosts, got "
                f"({groups}, {routers}, {hosts})"
            )
        if groups >= 3 and routers < groups - 1:
            raise TopologyError(
                f"dragonfly with {groups} groups needs >= {groups - 1} routers "
                f"per group (one global port per router keeps minimal routes "
                f"shortest over the link graph), got {routers}"
            )
        self._groups = int(groups)
        self._routers = int(routers)
        self._hosts = int(hosts)
        num = self._groups * self._routers * self._hosts
        if num > 1 << 20:
            raise TopologyError(f"dragonfly of {num} processors is too large")
        super().__init__(num)

    # ------------------------------------------------------------- structure
    @property
    def groups(self) -> int:
        """Number of groups."""
        return self._groups

    @property
    def routers(self) -> int:
        """Routers per group (all-to-all within the group)."""
        return self._routers

    @property
    def hosts(self) -> int:
        """Processors per router."""
        return self._hosts

    @property
    def num_switches(self) -> int:
        """Total routers: ``groups * routers``."""
        return self._groups * self._routers

    @property
    def name(self) -> str:
        return (
            f"dragonfly(groups={self._groups},routers={self._routers},"
            f"hosts={self._hosts})"
        )

    def cache_key(self) -> tuple:
        return ("Dragonfly", self._groups, self._routers, self._hosts)

    def _group_router(self, node: int) -> tuple[int, int]:
        """(group, router-within-group) of processor ``node``."""
        return node // (self._routers * self._hosts), (node // self._hosts) % self._routers

    def _router_id(self, group: int, router: int) -> int:
        """Link-graph id of a router (packed after processors)."""
        return self._num_nodes + group * self._routers + router

    def _global_attach(self, group: int, other: int) -> int:
        """Router in ``group`` holding the global link toward ``other``.

        Distinct per ``other`` (mod-``groups`` offsets skip ``groups - 1``),
        so each router holds at most one global port — the property that
        keeps minimal routes shortest over the link graph.
        """
        return (other - group - 1) % self._groups

    # ------------------------------------------------------------- distances
    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        r, h = self._routers, self._hosts
        ids = np.arange(self._num_nodes, dtype=np.int64)
        gy = ids // (r * h)
        ry = (ids // h) % r
        gx, rx = self._group_router(node)
        dist = np.full(self._num_nodes, 3, dtype=np.int32)  # same group default
        same_group = gy == gx
        dist[same_group & (ry == rx)] = 2  # same router, host-router-host
        dist[node] = 0
        inter = ~same_group
        if inter.any():
            ax = (gy[inter] - gx - 1) % self._groups  # exit router in gx
            ay = (gx - gy[inter] - 1) % self._groups  # entry router in gy
            dist[inter] = 3 + (rx != ax) + (ry[inter] != ay)
        return dist

    def diameter(self) -> int:
        if self._num_nodes == 1:
            return 0
        if self._groups == 1:
            return 3 if self._routers > 1 else 2
        return 3 + (2 if self._routers > 1 else 0)

    def expected_random_distance(self) -> float:
        """E[d] for uniform random processor pairs (including x == y pairs)."""
        mat = self.distance_matrix(np.int32)
        return float(mat.mean())

    def neighbors(self, node: int) -> list[int]:
        """Processors on the same router (minimum positive distance, 2 hops).

        Metric-level neighborhood, as for :class:`~repro.topology.FatTree`;
        physical router adjacency lives in :meth:`link_graph`.
        """
        node = self._check_node(node)
        base = (node // self._hosts) * self._hosts
        return [base + i for i in range(self._hosts) if base + i != node]

    # ---------------------------------------------------------------- routing
    def route(self, src: int, dst: int) -> list[int]:
        """Minimal group-local/global/group-local route over the routers."""
        src, dst = self._check_node(src), self._check_node(dst)
        if src == dst:
            return [src]
        gx, rx = self._group_router(src)
        gy, ry = self._group_router(dst)
        path = [src, self._router_id(gx, rx)]
        if gx != gy:
            exit_router = self._global_attach(gx, gy)
            entry_router = self._global_attach(gy, gx)
            if rx != exit_router:
                path.append(self._router_id(gx, exit_router))
            path.append(self._router_id(gy, entry_router))
            if entry_router != ry:
                path.append(self._router_id(gy, ry))
        elif rx != ry:
            path.append(self._router_id(gy, ry))
        path.append(dst)
        return path

    def link_graph(self):
        """Router-level wiring as a :class:`~repro.topology.links.StaticLinkGraph`.

        Cached in the shared topology cache under :meth:`cache_key` so
        equal-shape dragonflies share one link enumeration.
        """
        graph = self._link_graph
        if graph is None:
            from repro.topology import cache
            from repro.topology.links import StaticLinkGraph

            skey = (self.cache_key(), "link_graph_links")
            links = cache.shared_get(skey)
            if links is None:
                links = np.array(list(self._build_links()), dtype=np.int64)
                cache.shared_put(skey, links)
            graph = StaticLinkGraph(
                self._num_nodes, self._num_nodes + self.num_switches, links
            )
            self._link_graph = graph
        return graph

    def _build_links(self):
        g, r = self._groups, self._routers
        for x in range(self._num_nodes):  # host -> its router
            yield (x, self._router_id(*self._group_router(x)))
        for group in range(g):  # intra-group all-to-all
            for a in range(r):
                for b in range(a + 1, r):
                    yield (self._router_id(group, a), self._router_id(group, b))
        for ga in range(g):  # one global link per unordered group pair
            for gb in range(ga + 1, g):
                yield (
                    self._router_id(ga, self._global_attach(ga, gb)),
                    self._router_id(gb, self._global_attach(gb, ga)),
                )

    def links(self):
        """Undirected router-level links (host, intra-group, global)."""
        return self.link_graph().links()
