"""Shared machinery for k-ary n-dimensional grid topologies (mesh & torus).

Node ids are the C-order raveling of n-dimensional coordinates, matching
``numpy.ravel_multi_index``. Distances are computed in closed form from the
coordinate arrays — vectorized per the hop-distance formulas:

* mesh:  ``d = sum_k |a_k - b_k|``
* torus: ``d = sum_k min(|a_k - b_k|, s_k - |a_k - b_k|)``
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology
from repro.utils.validation import check_shape_volume

__all__ = ["GridTopology"]


class GridTopology(Topology):
    """Base class for :class:`~repro.topology.Mesh` and :class:`~repro.topology.Torus`."""

    #: Whether each dimension has a wrap-around link (overridden by Torus).
    wraparound: bool = False

    def __init__(self, shape: Sequence[int]):
        volume = check_shape_volume(shape, TopologyError)
        super().__init__(volume)
        self._shape = tuple(int(s) for s in shape)
        # coordinate table: _coords[node] = n-dim coordinates (C order)
        self._coords = np.stack(
            np.unravel_index(np.arange(volume), self._shape), axis=1
        ).astype(np.int32)

    # ------------------------------------------------------------------ shape
    @property
    def shape(self) -> tuple[int, ...]:
        """Grid extents, e.g. ``(8, 8, 8)``."""
        return self._shape

    @property
    def ndim(self) -> int:
        """Number of grid dimensions."""
        return len(self._shape)

    def coords(self, node: int) -> tuple[int, ...]:
        node = self._check_node(node)
        return tuple(int(c) for c in self._coords[node])

    def index(self, coords: Sequence[int]) -> int:
        if len(coords) != self.ndim:
            raise TopologyError(
                f"{self.name} expects {self.ndim}-D coordinates, got {coords!r}"
            )
        for c, s in zip(coords, self._shape):
            if not 0 <= c < s:
                raise TopologyError(f"coordinate {coords!r} outside shape {self._shape}")
        return int(np.ravel_multi_index(tuple(int(c) for c in coords), self._shape))

    def cache_key(self) -> tuple:
        # Mesh/Torus of a given shape are fully determined by it; the class
        # name separates the two metrics.
        return (type(self).__name__, self._shape)

    def coords_array(self) -> np.ndarray:
        """Read-only ``(p, ndim)`` coordinate table for vectorized callers."""
        view = self._coords.view()
        view.flags.writeable = False
        return view

    # -------------------------------------------------------------- distances
    def _axis_deltas(self, node: int) -> np.ndarray:
        """|a_k - b_k| per axis from ``node`` to every node, shape (p, ndim)."""
        return np.abs(self._coords - self._coords[self._check_node(node)])

    def distance_row(self, node: int) -> np.ndarray:
        delta = self._axis_deltas(node)
        if self.wraparound:
            shape = np.asarray(self._shape, dtype=np.int32)
            delta = np.minimum(delta, shape - delta)
        return delta.sum(axis=1, dtype=np.int32)

    def _build_distance_matrix(self, dtype: np.dtype) -> np.ndarray:
        # One broadcasted shot per row chunk instead of p distance_row calls;
        # chunking keeps the (chunk, p, ndim) delta tensor small on big tori.
        p = self._num_nodes
        mat = np.empty((p, p), dtype=dtype)
        shape = np.asarray(self._shape, dtype=np.int32)
        chunk = max(1, (1 << 22) // max(p * self.ndim, 1))
        for lo in range(0, p, chunk):
            hi = min(lo + chunk, p)
            delta = np.abs(self._coords[lo:hi, None, :] - self._coords[None, :, :])
            if self.wraparound:
                delta = np.minimum(delta, shape - delta)
            mat[lo:hi] = delta.sum(axis=2, dtype=np.int32)
        return mat

    def diameter(self) -> int:
        # Closed form: sum over axes of the per-axis maximum displacement.
        if self.wraparound:
            return int(sum(s // 2 for s in self._shape))
        return int(sum(s - 1 for s in self._shape))

    # ------------------------------------------------------------ connectivity
    def _axis_neighbor(self, node: int, axis: int, step: int) -> int | None:
        """Neighbor of ``node`` one hop along ``axis`` (None if off the edge)."""
        coords = list(self._coords[node])
        extent = self._shape[axis]
        nxt = coords[axis] + step
        if self.wraparound:
            # A 1- or 2-extent axis has no distinct wrap neighbor.
            if extent <= 1:
                return None
            nxt %= extent
            if nxt == coords[axis]:
                return None
        elif not 0 <= nxt < extent:
            return None
        coords[axis] = nxt
        return int(np.ravel_multi_index(tuple(coords), self._shape))

    def neighbors(self, node: int) -> list[int]:
        node = self._check_node(node)
        out: list[int] = []
        for axis in range(self.ndim):
            for step in (-1, +1):
                nbr = self._axis_neighbor(node, axis, step)
                if nbr is not None and nbr != node and nbr not in out:
                    out.append(nbr)
        return out

    # ---------------------------------------------------------------- routing
    def route(self, src: int, dst: int) -> list[int]:
        """Dimension-ordered (e-cube) minimal routing.

        Corrects one axis at a time, in axis order — the deterministic
        routing used by BlueGene/L-style tori. On a torus each axis moves in
        the direction of the shorter way around (ties go in the +1
        direction), on a mesh simply toward the destination.
        """
        return self.route_axis_order(src, dst, range(self.ndim))

    def route_axis_order(self, src: int, dst: int, axis_order) -> list[int]:
        """Minimal route correcting axes in the given order.

        Every permutation of axes yields a (different) minimal path; the
        adaptive-routing mode of the network simulator picks among them at
        injection time.
        """
        src = self._check_node(src)
        dst = self._check_node(dst)
        path = [src]
        coords = list(self._coords[src])
        target = self._coords[dst]
        for axis in axis_order:
            extent = self._shape[axis]
            while coords[axis] != target[axis]:
                forward = (target[axis] - coords[axis]) % extent
                if self.wraparound:
                    step = 1 if forward <= extent - forward else -1
                else:
                    step = 1 if target[axis] > coords[axis] else -1
                coords[axis] = (coords[axis] + step) % extent if self.wraparound else coords[axis] + step
                path.append(int(np.ravel_multi_index(tuple(coords), self._shape)))
        return path
