"""Arbitrary topology defined by an explicit link list.

The paper notes the algorithms "work for arbitrary network topologies"; this
class is the escape hatch for irregular machines. Links may carry *transit
costs* (default 1 per hop), covering the heterogeneous machines of Taura &
Chien's related work — a slow WAN-ish link simply costs more, and every
mapper minimizes the weighted distances transparently. Distances come from
BFS (uniform costs) or Dijkstra (weighted) via ``scipy.sparse.csgraph``;
routes are shortest paths with deterministic tie-breaking so the network
simulator sees a stable single path per (src, dst) pair.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.exceptions import TopologyError
from repro.topology.base import Topology

__all__ = ["ArbitraryTopology"]


class ArbitraryTopology(Topology):
    """Topology built from an undirected edge list over nodes ``0..p-1``.

    Edges are ``(a, b)`` pairs or ``(a, b, cost)`` triples; mixing is
    allowed and duplicate pairs keep their *cheapest* cost.
    """

    def __init__(self, num_nodes: int, edges: Iterable[tuple]):
        super().__init__(num_nodes)
        costs: dict[tuple[int, int], float] = {}
        for edge in edges:
            if len(edge) == 2:
                a, b = edge
                cost = 1.0
            else:
                a, b, cost = edge
            a, b = int(a), int(b)
            cost = float(cost)
            if not (0 <= a < num_nodes and 0 <= b < num_nodes):
                raise TopologyError(f"edge ({a},{b}) references unknown node")
            if a == b:
                raise TopologyError(f"self-link at node {a} is not allowed")
            if cost <= 0:
                raise TopologyError(f"link ({a},{b}) must have positive cost, got {cost}")
            key = (min(a, b), max(a, b))
            costs[key] = min(costs.get(key, np.inf), cost)
        self._edges = sorted(costs)
        self._weighted = any(c != 1.0 for c in costs.values())
        rows = np.array([a for a, _ in self._edges] + [b for _, b in self._edges], dtype=np.int64)
        cols = np.array([b for _, b in self._edges] + [a for a, _ in self._edges], dtype=np.int64)
        data = np.array([costs[e] for e in self._edges] * 2, dtype=np.float64)
        self._adj = sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
        self._check_connected()
        # Predecessor/distance tables are built lazily per source and cached.
        self._pred_cache: dict[int, np.ndarray] = {}
        self._dist_cache: dict[int, np.ndarray] = {}

    @property
    def is_weighted(self) -> bool:
        """True when any link has a non-unit transit cost."""
        return self._weighted

    def link_cost(self, a: int, b: int) -> float:
        """Transit cost of the direct link ``(a, b)`` (TopologyError if absent)."""
        a, b = self._check_node(a), self._check_node(b)
        cost = self._adj[a, b]
        if cost == 0:
            raise TopologyError(f"no direct link between {a} and {b}")
        return float(cost)

    def _check_connected(self) -> None:
        n_comp, _ = csgraph.connected_components(self._adj, directed=False)
        if n_comp != 1 and self._num_nodes > 1:
            raise TopologyError(f"topology is disconnected ({n_comp} components)")

    @classmethod
    def from_networkx(cls, graph) -> "ArbitraryTopology":
        """Build from a networkx graph whose nodes are ``0..p-1``."""
        nodes = sorted(graph.nodes())
        if nodes != list(range(len(nodes))):
            raise TopologyError("networkx graph nodes must be exactly 0..p-1")
        return cls(len(nodes), graph.edges())

    @property
    def name(self) -> str:
        return f"graph(p={self._num_nodes},links={len(self._edges)})"

    def _bfs(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Distances and shortest-path predecessors from ``node`` (cached)."""
        if node not in self._dist_cache:
            dist, pred = csgraph.shortest_path(
                self._adj,
                method="D" if self._weighted else "BF",
                unweighted=not self._weighted,
                directed=False,
                indices=node,
                return_predecessors=True,
            )
            self._dist_cache[node] = (
                dist.astype(np.float64) if self._weighted else dist.astype(np.int32)
            )
            self._pred_cache[node] = pred.astype(np.int64)
        return self._dist_cache[node], self._pred_cache[node]

    def distance_row(self, node: int) -> np.ndarray:
        node = self._check_node(node)
        return self._bfs(node)[0]

    def distance(self, a: int, b: int) -> float:
        """Shortest-path cost (may be fractional on weighted machines)."""
        a, b = self._check_node(a), self._check_node(b)
        value = self.distance_row(a)[b]
        return float(value) if self._weighted else int(value)

    def distance_matrix(self, dtype=None) -> np.ndarray:
        if dtype is None:
            dtype = np.float64 if self._weighted else np.int32
        return super().distance_matrix(dtype)

    def neighbors(self, node: int) -> list[int]:
        node = self._check_node(node)
        return [int(x) for x in self._adj.indices[self._adj.indptr[node]:self._adj.indptr[node + 1]]]

    def route(self, src: int, dst: int) -> list[int]:
        src = self._check_node(src)
        dst = self._check_node(dst)
        if src == dst:
            return [src]
        _, pred = self._bfs(src)
        path = [dst]
        cur = dst
        while cur != src:
            cur = int(pred[cur])
            if cur < 0:  # pragma: no cover - unreachable on connected graphs
                raise TopologyError(f"no route from {src} to {dst}")
            path.append(cur)
        path.reverse()
        return path

    def diameter(self) -> float:
        """Longest shortest-path cost (fractional on weighted machines)."""
        worst = max(float(self.distance_row(v).max()) for v in range(self._num_nodes))
        return worst if self._weighted else int(worst)

    def links(self):
        yield from self._edges

    def num_links(self) -> int:
        return len(self._edges)
