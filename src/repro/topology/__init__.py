"""Machine topology models (processor graphs).

The paper represents the machine as an undirected *topology graph*
``Gp = (Vp, Ep)`` whose vertices are processors and whose edges are direct
network links. The mapping algorithms only require shortest-path distances
``d_p(p1, p2)``; the network simulator additionally requires explicit links
and deterministic routes. Grid topologies (mesh/torus) provide closed-form
vectorized distances so no all-pairs-shortest-path computation is needed.
"""

from repro.topology.base import Topology
from repro.topology.links import LinkGraph, DirectLinkGraph, StaticLinkGraph
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus
from repro.topology.hypercube import Hypercube
from repro.topology.fattree import FatTree
from repro.topology.dragonfly import Dragonfly
from repro.topology.graph import ArbitraryTopology
from repro.topology.subset import SubTopology
from repro.topology.aggregate import GroupedTopology, coarsen_machine
from repro.topology.matrix import MatrixTopology
from repro.topology.factory import topology_from_spec

__all__ = [
    "Topology",
    "LinkGraph",
    "DirectLinkGraph",
    "StaticLinkGraph",
    "Mesh",
    "Torus",
    "Hypercube",
    "FatTree",
    "Dragonfly",
    "ArbitraryTopology",
    "SubTopology",
    "GroupedTopology",
    "coarsen_machine",
    "MatrixTopology",
    "topology_from_spec",
]
