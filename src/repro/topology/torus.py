"""k-ary n-dimensional torus topology (wrap-around links on every axis)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.topology.grid import GridTopology

__all__ = ["Torus"]


class Torus(GridTopology):
    """An n-dimensional torus, e.g. ``Torus((16, 16, 16))`` (BlueGene/L primary network).

    Hop distance per axis is the ring distance ``min(|a-b|, s-|a-b|)``;
    axis distances add. A torus dominates the same-shape mesh: the extra
    wrap-around links halve the per-axis worst case, which is why the paper's
    Figure 10 (torus) beats Figure 11 (mesh), most dramatically for random
    mappings whose messages are long-range.
    """

    wraparound = True

    def __init__(self, shape: Sequence[int]):
        super().__init__(shape)

    @property
    def name(self) -> str:
        return "torus(" + "x".join(str(s) for s in self.shape) + ")"

    def expected_random_distance(self) -> float:
        """Closed-form E[d(a, b)] for uniformly random nodes a, b.

        On a ring of even extent s the mean ring distance over ordered pairs
        is ``s/4``; for odd s it is ``(s^2 - 1) / (4 s)``. The paper quotes
        the even-extent form: ``sqrt(p)/2`` total on a square 2D torus and
        ``3 * cbrt(p) / 4`` on a cubic 3D torus (Figures 1 and 3).
        """
        total = 0.0
        for s in self.shape:
            if s % 2 == 0:
                total += s / 4.0
            else:
                total += (s * s - 1.0) / (4.0 * s)
        return total
