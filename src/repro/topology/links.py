"""Link graphs: the routing substrate of a machine.

A :class:`LinkGraph` describes the graph that messages physically traverse —
its nodes are the processors (``0..num_processors-1``) **plus** any switches
(``num_processors..num_nodes-1``), and its links carry capacity. Processors
inject and absorb traffic; switches only forward. On a *direct* network
(mesh/torus/hypercube/arbitrary) the link graph is exactly the processor
graph, so :class:`DirectLinkGraph` lazily delegates to
:meth:`~repro.topology.base.Topology.neighbors` and the pre-refactor
behaviour is preserved bit-identically. Indirect machines (fat-tree,
dragonfly) build a :class:`StaticLinkGraph` with explicit switch-level
wiring.

Every ``Topology.route(src, dst)`` returns a node path over this graph, and
``route_links`` the corresponding directed link sequence — the network
simulator, the flow estimator, and the link-load conservation oracle all
consume those links without caring whether an endpoint is a processor or a
switch (switch ids are plain ints ``>= num_processors``, so channel keys,
stats, and profiles keep their ``(int, int)`` shape).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.exceptions import TopologyError

__all__ = ["LinkGraph", "DirectLinkGraph", "StaticLinkGraph"]


class LinkGraph:
    """Base class: nodes = processors ∪ switches, undirected links.

    Each undirected link is used by the simulator as two independent
    directed capacity-carrying channels ``(a, b)`` and ``(b, a)``.
    """

    def __init__(self, num_processors: int, num_switches: int = 0):
        if num_processors < 1:
            raise TopologyError(
                f"link graph needs at least one processor, got {num_processors}"
            )
        if num_switches < 0:
            raise TopologyError(f"negative switch count {num_switches}")
        self._num_processors = int(num_processors)
        self._num_switches = int(num_switches)

    # ------------------------------------------------------------------ size
    @property
    def num_processors(self) -> int:
        """Nodes that inject/absorb traffic (ids ``0..num_processors-1``)."""
        return self._num_processors

    @property
    def num_switches(self) -> int:
        """Forward-only nodes (ids ``num_processors..num_nodes-1``)."""
        return self._num_switches

    @property
    def num_nodes(self) -> int:
        """Total routable nodes: processors plus switches."""
        return self._num_processors + self._num_switches

    def is_switch(self, node: int) -> bool:
        """True when ``node`` forwards but never injects or absorbs."""
        return self._num_processors <= int(node) < self.num_nodes

    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"node {node} out of link-graph range [0, {self.num_nodes})"
            )
        return node

    # ----------------------------------------------------------- connectivity
    def neighbors(self, node: int) -> list[int]:
        """Nodes (processors or switches) sharing a link with ``node``."""
        raise NotImplementedError

    def has_link(self, a: int, b: int) -> bool:
        """True when the undirected link ``(a, b)`` exists."""
        if not (0 <= int(a) < self.num_nodes and 0 <= int(b) < self.num_nodes):
            return False
        return int(b) in self.neighbors(int(a))

    def degree(self, node: int) -> int:
        """Number of links at ``node``."""
        return len(self.neighbors(node))

    def links(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected links as ``(a, b)`` with ``a < b``."""
        for a in range(self.num_nodes):
            for b in self.neighbors(a):
                if a < b:
                    yield (a, b)

    def num_links(self) -> int:
        """Number of undirected links."""
        return sum(1 for _ in self.links())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} p={self._num_processors} "
            f"switches={self._num_switches}>"
        )


class DirectLinkGraph(LinkGraph):
    """Link graph of a direct network: the processor graph itself.

    Pure lazy delegation to the owning topology — no adjacency is ever
    materialized, so direct machines pay nothing for the link-graph
    generalization and keep their exact pre-refactor link semantics.
    """

    def __init__(self, topology):
        super().__init__(topology.num_nodes, 0)
        self._topology = topology

    def neighbors(self, node: int) -> list[int]:
        return self._topology.neighbors(self._check_node(node))

    def links(self) -> Iterator[tuple[int, int]]:
        return self._topology.links()


class StaticLinkGraph(LinkGraph):
    """Explicit link graph for indirect machines (switch-level wiring).

    Built once from an iterable of undirected ``(a, b)`` links; adjacency
    lists are sorted so iteration order is deterministic.
    """

    def __init__(self, num_processors: int, num_nodes: int,
                 links: Iterable[tuple[int, int]]):
        if num_nodes < num_processors:
            raise TopologyError(
                f"num_nodes {num_nodes} < num_processors {num_processors}"
            )
        super().__init__(num_processors, num_nodes - num_processors)
        adjacency: list[set[int]] = [set() for _ in range(self.num_nodes)]
        link_set: set[tuple[int, int]] = set()
        for a, b in links:
            a, b = self._check_node(a), self._check_node(b)
            if a == b:
                raise TopologyError(f"self-link at node {a}")
            adjacency[a].add(b)
            adjacency[b].add(a)
            link_set.add((a, b) if a < b else (b, a))
        self._adjacency = [sorted(nbrs) for nbrs in adjacency]
        self._link_set = link_set

    def neighbors(self, node: int) -> list[int]:
        return list(self._adjacency[self._check_node(node)])

    def has_link(self, a: int, b: int) -> bool:
        a, b = int(a), int(b)
        return ((a, b) if a < b else (b, a)) in self._link_set

    def links(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._link_set))

    def num_links(self) -> int:
        return len(self._link_set)

    def shortest_hops(self, src: int, dst: int) -> int:
        """BFS shortest-path hop count between any two link-graph nodes.

        Exists for the validation suite: topology ``distance`` metrics and
        deterministic routes must agree with the true shortest path over the
        switch wiring (tests property-check this). Not a hot path.
        """
        src, dst = self._check_node(src), self._check_node(dst)
        if src == dst:
            return 0
        from collections import deque

        seen = {src: 0}
        frontier = deque([src])
        while frontier:
            v = frontier.popleft()
            d = seen[v] + 1
            for nbr in self._adjacency[v]:
                if nbr not in seen:
                    if nbr == dst:
                        return d
                    seen[nbr] = d
                    frontier.append(nbr)
        raise TopologyError(f"no path from {src} to {dst} in link graph")
