"""Random task-graph generators for tests, property checks and ablations."""

from __future__ import annotations

import numpy as np

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = ["random_taskgraph", "geometric_taskgraph", "scale_free_taskgraph"]


def _ensure_connected_edges(n: int, edges: list[tuple[int, int, float]],
                            rng: np.random.Generator, weight: float) -> None:
    """Append a random spanning chain so the graph is connected.

    Partitioners and some refiners assume a connected task graph; a random
    permutation chain adds at most n-1 edges without biasing structure much.
    """
    order = rng.permutation(n)
    existing = {(min(a, b), max(a, b)) for a, b, _ in edges}
    for a, b in zip(order[:-1], order[1:]):
        key = (min(int(a), int(b)), max(int(a), int(b)))
        if key not in existing:
            edges.append((key[0], key[1], weight))
            existing.add(key)


def random_taskgraph(
    n: int,
    edge_prob: float = 0.05,
    mean_bytes: float = 1024.0,
    seed: int | np.random.Generator | None = None,
    connected: bool = True,
) -> TaskGraph:
    """Erdős–Rényi communication graph with log-normal byte weights.

    Byte volumes in real traces are heavy-tailed; log-normal weights give the
    mappers a non-uniform signal to exploit.
    """
    if n < 2:
        raise TaskGraphError(f"need >= 2 tasks, got {n}")
    if not 0.0 <= edge_prob <= 1.0:
        raise TaskGraphError(f"edge_prob must be in [0,1], got {edge_prob}")
    rng = as_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(len(iu)) < edge_prob
    ii, jj = iu[mask], ju[mask]
    weights = rng.lognormal(mean=np.log(max(mean_bytes, 1e-9)), sigma=1.0, size=len(ii))
    edges = [(int(a), int(b), float(w)) for a, b, w in zip(ii, jj, weights)]
    if connected:
        _ensure_connected_edges(n, edges, rng, float(mean_bytes))
    loads = rng.uniform(0.5, 1.5, size=n)
    return TaskGraph(n, edges, loads)


def geometric_taskgraph(
    n: int,
    radius: float = 0.15,
    mean_bytes: float = 1024.0,
    seed: int | np.random.Generator | None = None,
) -> TaskGraph:
    """Random geometric communication graph (unit square, distance-decaying bytes).

    Models physically local interactions (particles, grid fragments): tasks
    within ``radius`` communicate, with volume shrinking linearly to zero at
    the cutoff — structure a topology-aware mapper can exploit strongly.
    """
    if n < 2:
        raise TaskGraphError(f"need >= 2 tasks, got {n}")
    if radius <= 0:
        raise TaskGraphError(f"radius must be positive, got {radius}")
    rng = as_rng(seed)
    pos = rng.random((n, 2))
    iu, ju = np.triu_indices(n, k=1)
    d = np.hypot(pos[iu, 0] - pos[ju, 0], pos[iu, 1] - pos[ju, 1])
    mask = d < radius
    vols = mean_bytes * (1.0 - d[mask] / radius) + 1.0
    edges = [(int(a), int(b), float(w)) for a, b, w in zip(iu[mask], ju[mask], vols)]
    _ensure_connected_edges(n, edges, rng, 1.0)
    return TaskGraph(n, edges)


def scale_free_taskgraph(
    n: int,
    attach: int = 2,
    mean_bytes: float = 1024.0,
    seed: int | np.random.Generator | None = None,
) -> TaskGraph:
    """Barabási–Albert preferential-attachment communication graph.

    Hub-and-spoke communication (e.g. master/worker with shared reductions);
    stresses the mappers' handling of very high-degree tasks.
    """
    import networkx as nx

    if n < 3:
        raise TaskGraphError(f"need >= 3 tasks, got {n}")
    rng = as_rng(seed)
    g = nx.barabasi_albert_graph(n, max(1, min(attach, n - 1)),
                                 seed=int(rng.integers(0, 2**31)))
    weights = rng.lognormal(mean=np.log(max(mean_bytes, 1e-9)), sigma=0.8,
                            size=g.number_of_edges())
    edges = [(int(a), int(b), float(w)) for (a, b), w in zip(g.edges(), weights)]
    return TaskGraph(n, edges)
