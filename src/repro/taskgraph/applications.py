"""Communication patterns of real HPC application classes.

The paper's motivation names molecular dynamics, materials and cosmology
codes; this module provides generators for the communication *shapes* those
and other classic workloads induce, for mapping studies beyond the Jacobi
benchmark:

* :func:`fft_pencil_pattern` — 2D-decomposed 3D FFT: all-to-all exchanges
  within rows and within columns of the process grid (two transposes per
  step). Dense but structured — row/column locality is exploitable.
* :func:`wavefront_pattern` — Sn transport / LU-style sweeps: data flows
  from one grid corner to the opposite one; edges are directional in
  dependency terms but the byte volume is what mapping cares about.
* :func:`amr_pattern` — adaptive mesh refinement: a base grid with a
  refined hot region; refined cells talk to ~4 finer neighbors plus their
  coarse parents, giving strong non-uniformity in both degree and volume.
* :func:`unstructured_halo_pattern` — finite-element/volume halo exchange on
  a Delaunay triangulation of random points: irregular degrees, volume
  proportional to shared-face count (approximated by inverse distance).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.rng import as_rng

__all__ = [
    "fft_pencil_pattern",
    "wavefront_pattern",
    "amr_pattern",
    "unstructured_halo_pattern",
]


def fft_pencil_pattern(rows: int, cols: int, bytes_per_peer: float = 1024.0) -> TaskGraph:
    """Pencil-decomposed 3D FFT on a ``rows x cols`` process grid.

    Each transpose is an all-to-all within one grid dimension: task ``(r, c)``
    exchanges with every ``(r, c')`` (row transpose) and every ``(r', c)``
    (column transpose). Per-peer volume is uniform (equal sub-pencil sizes).
    """
    if rows < 2 or cols < 2:
        raise TaskGraphError("fft pencil grid needs rows, cols >= 2")
    if bytes_per_peer <= 0:
        raise TaskGraphError(f"bytes_per_peer must be positive, got {bytes_per_peer}")
    n = rows * cols
    w = 2.0 * float(bytes_per_peer)  # both directions of each exchange
    edges = []
    for r in range(rows):
        for c in range(cols):
            t = r * cols + c
            for c2 in range(c + 1, cols):       # row all-to-all
                edges.append((t, r * cols + c2, w))
            for r2 in range(r + 1, rows):       # column all-to-all
                edges.append((t, r2 * cols + c, w))
    return TaskGraph(n, edges)


def wavefront_pattern(rows: int, cols: int, message_bytes: float = 1024.0) -> TaskGraph:
    """Diagonal sweep (Sn transport): each cell feeds its east and south
    neighbors. Volumes are uniform; the undirected task graph is the grid
    with only "forward" edges, i.e. exactly the 2D mesh pattern but with a
    single direction of traffic per edge (half a Jacobi edge's volume).
    """
    if rows < 2 or cols < 2:
        raise TaskGraphError("wavefront grid needs rows, cols >= 2")
    if message_bytes <= 0:
        raise TaskGraphError(f"message_bytes must be positive, got {message_bytes}")
    n = rows * cols
    edges = []
    for r in range(rows):
        for c in range(cols):
            t = r * cols + c
            if c + 1 < cols:
                edges.append((t, t + 1, float(message_bytes)))
            if r + 1 < rows:
                edges.append((t, t + cols, float(message_bytes)))
    return TaskGraph(n, edges)


def amr_pattern(base_side: int, refine_frac: float = 0.25,
                message_bytes: float = 1024.0,
                seed: int | np.random.Generator | None = 0) -> TaskGraph:
    """Adaptive-mesh-refinement pattern: a coarse grid plus one refined patch.

    A ``base_side x base_side`` coarse grid communicates like a Jacobi
    stencil; a square patch covering ``refine_frac`` of each dimension is
    refined 2x, adding four fine cells per refined coarse cell. Fine cells
    talk to their fine neighbors (full volume) and to their coarse parent
    (half volume, the restriction/prolongation traffic). Loads: fine cells
    do 4x the work per unit area, coarse cells 1x.
    """
    if base_side < 4:
        raise TaskGraphError("amr base grid needs side >= 4")
    if not 0 < refine_frac <= 1:
        raise TaskGraphError(f"refine_frac must be in (0, 1], got {refine_frac}")
    rng = as_rng(seed)
    n_coarse = base_side * base_side
    w = 2.0 * float(message_bytes)

    edges = []
    # Coarse stencil.
    for r in range(base_side):
        for c in range(base_side):
            t = r * base_side + c
            if c + 1 < base_side:
                edges.append((t, t + 1, w))
            if r + 1 < base_side:
                edges.append((t, t + base_side, w))

    # Refined patch: contiguous square in a random corner region.
    patch = max(2, int(round(base_side * refine_frac)))
    r0 = int(rng.integers(0, base_side - patch + 1))
    c0 = int(rng.integers(0, base_side - patch + 1))
    fine_side = 2 * patch
    fine_base = n_coarse

    def fine_id(fr: int, fc: int) -> int:
        return fine_base + fr * fine_side + fc

    for fr in range(fine_side):
        for fc in range(fine_side):
            t = fine_id(fr, fc)
            if fc + 1 < fine_side:
                edges.append((t, fine_id(fr, fc + 1), w))
            if fr + 1 < fine_side:
                edges.append((t, fine_id(fr + 1, fc), w))
            # Parent link (restriction/prolongation).
            parent = (r0 + fr // 2) * base_side + (c0 + fc // 2)
            edges.append((t, parent, w / 2.0))

    n = n_coarse + fine_side * fine_side
    loads = np.ones(n)
    loads[fine_base:] = 1.0  # per-cell work equal; refinement = more cells
    return TaskGraph(n, edges, loads)


def unstructured_halo_pattern(n: int, mean_bytes: float = 1024.0,
                              seed: int | np.random.Generator | None = 0) -> TaskGraph:
    """Halo exchange on a Delaunay triangulation of random 2D points.

    Mesh-partitioned solvers exchange boundary data with face neighbors;
    Delaunay neighbors of random points are the standard synthetic stand-in.
    Volume scales inversely with distance (closer subdomains share longer
    boundaries); loads are the Voronoi-cell-ish area proxy (uniform here).
    """
    from scipy.spatial import Delaunay

    if n < 5:
        raise TaskGraphError("unstructured mesh needs >= 5 tasks")
    rng = as_rng(seed)
    points = rng.random((n, 2))
    tri = Delaunay(points)
    pairs = set()
    for simplex in tri.simplices:
        for i in range(3):
            a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
            pairs.add((min(a, b), max(a, b)))
    edges = []
    for a, b in sorted(pairs):
        d = float(np.hypot(*(points[a] - points[b])))
        edges.append((a, b, mean_bytes / (d + 0.05)))
    return TaskGraph(n, edges)
