"""Structured communication-pattern generators.

These are the benchmark programs of the paper:

* :func:`mesh2d_pattern` — the 2D Jacobi-like chare pattern (each task talks
  to its 4 mesh neighbors) used throughout Section 5,
* :func:`mesh3d_pattern` — the 3D Jacobi-like pattern of Table 1 (6 neighbors),
* :func:`ring_pattern` and :func:`all_to_all_pattern` — auxiliary patterns
  for tests and ablations.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph
from repro.utils.validation import check_shape_volume

__all__ = [
    "mesh_pattern",
    "mesh2d_pattern",
    "mesh3d_pattern",
    "ring_pattern",
    "all_to_all_pattern",
]


def mesh_pattern(
    shape: Sequence[int],
    message_bytes: float = 1.0,
    periodic: bool = False,
    compute_load: float = 1.0,
) -> TaskGraph:
    """Tasks on an n-D grid, each communicating with its axis neighbors.

    ``message_bytes`` is the per-iteration traffic in each direction of a
    neighbor pair; since the task graph records *total* pairwise volume and
    Jacobi exchanges are symmetric, each undirected edge carries
    ``2 * message_bytes``. Boundary tasks simply have fewer edges (the
    paper: "three or two for boundary and corner chares") unless
    ``periodic`` adds wrap-around partners.

    Each task's grid position is attached as :attr:`TaskGraph.coords`, so
    geometric mappers (``sfc:curve=hilbert``) can order the tasks spatially.
    """
    n = check_shape_volume(shape, TaskGraphError)
    shape = tuple(int(s) for s in shape)
    if message_bytes <= 0:
        raise TaskGraphError(f"message_bytes must be positive, got {message_bytes}")
    ids = np.arange(n).reshape(shape)
    edges: list[tuple[int, int, float]] = []
    w = 2.0 * float(message_bytes)
    for axis in range(len(shape)):
        a = ids.take(range(shape[axis] - 1), axis=axis).ravel()
        b = ids.take(range(1, shape[axis]), axis=axis).ravel()
        edges.extend((int(x), int(y), w) for x, y in zip(a, b))
        if periodic and shape[axis] > 2:
            first = ids.take([0], axis=axis).ravel()
            last = ids.take([shape[axis] - 1], axis=axis).ravel()
            edges.extend((int(x), int(y), w) for x, y in zip(last, first))
    loads = np.full(n, float(compute_load))
    coords = np.stack(np.unravel_index(np.arange(n), shape), axis=1)
    return TaskGraph(n, edges, loads).attach_coords(coords)


def mesh2d_pattern(rows: int, cols: int, message_bytes: float = 1.0, **kw) -> TaskGraph:
    """2D Jacobi-like pattern: the paper's main benchmark task graph."""
    return mesh_pattern((rows, cols), message_bytes, **kw)


def mesh3d_pattern(nx: int, ny: int, nz: int, message_bytes: float = 1.0, **kw) -> TaskGraph:
    """3D Jacobi-like pattern (Table 1: 8x8x8 elements, 6 neighbors each)."""
    return mesh_pattern((nx, ny, nz), message_bytes, **kw)


def ring_pattern(n: int, message_bytes: float = 1.0) -> TaskGraph:
    """n tasks in a cycle; the smallest nontrivial structured pattern."""
    if n < 3:
        raise TaskGraphError(f"ring needs >= 3 tasks, got {n}")
    w = 2.0 * float(message_bytes)
    edges = [(i, (i + 1) % n, w) for i in range(n)]
    return TaskGraph(n, edges)


def all_to_all_pattern(n: int, message_bytes: float = 1.0) -> TaskGraph:
    """Complete communication graph — the worst case for any mapper.

    With every pair communicating equally, *all* mappings have identical
    hop-bytes on a vertex-transitive topology; useful as a control case
    (mirrors the paper's dense LeanMD regime at virtualization ratio 180
    where "it is difficult for any strategy to reduce hop-bytes").
    """
    if n < 2:
        raise TaskGraphError(f"all-to-all needs >= 2 tasks, got {n}")
    w = 2.0 * float(message_bytes)
    edges = [(i, j, w) for i in range(n) for j in range(i + 1, n)]
    return TaskGraph(n, edges)
