"""Quotient (coalesced) task graphs.

Phase 1 of the paper's two-phase approach partitions the ``n`` compute
objects into ``p`` groups; the mapper then works on the *coalesced* graph:
one vertex per group (weight = summed load), one edge per communicating group
pair (weight = summed inter-group bytes). Intra-group bytes vanish — they
become free on-processor communication.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import TaskGraphError
from repro.taskgraph.graph import TaskGraph

__all__ = ["coalesce"]


def coalesce(graph: TaskGraph, groups: Sequence[int], num_groups: int | None = None) -> TaskGraph:
    """Contract ``graph`` along the group assignment ``groups``.

    Parameters
    ----------
    graph:
        The original task graph on ``n`` tasks.
    groups:
        Length-``n`` array; ``groups[t]`` is the group id of task ``t``.
        Group ids must cover ``0..num_groups-1`` (every group non-empty).
    num_groups:
        Number of groups ``p``; inferred as ``max(groups)+1`` when omitted.

    Returns the quotient :class:`TaskGraph` on ``num_groups`` vertices.
    """
    g = np.asarray(groups, dtype=np.int64)
    if g.shape != (graph.num_tasks,):
        raise TaskGraphError(
            f"groups must have shape ({graph.num_tasks},), got {g.shape}"
        )
    if num_groups is None:
        num_groups = int(g.max()) + 1 if len(g) else 0
    if g.min(initial=0) < 0 or g.max(initial=-1) >= num_groups:
        raise TaskGraphError("group ids out of range")
    counts = np.bincount(g, minlength=num_groups)
    if (counts == 0).any():
        empty = int(np.flatnonzero(counts == 0)[0])
        raise TaskGraphError(f"group {empty} is empty; mapper needs one group per processor")

    # Group loads: scatter-add of task loads.
    loads = np.bincount(g, weights=graph.vertex_weights, minlength=num_groups)

    # Inter-group edge volumes: relabel endpoints, drop intra-group, merge.
    u, v, w = graph.edge_arrays()
    gu, gv = g[u], g[v]
    cross = gu != gv
    edges = zip(gu[cross].tolist(), gv[cross].tolist(), w[cross].tolist())
    return TaskGraph(num_groups, edges, loads)
