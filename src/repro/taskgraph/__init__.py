"""Application models: weighted task graphs and generators.

The paper represents a parallel program as a weighted undirected *task graph*
``Gt = (Vt, Et)``: vertices are compute objects (or coalesced groups of
objects) carrying a computation weight, and edges carry the total bytes
communicated between their endpoints (the process-based model — no DAG
precedence).
"""

from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.patterns import (
    mesh2d_pattern,
    mesh3d_pattern,
    ring_pattern,
    all_to_all_pattern,
)
from repro.taskgraph.random_graphs import (
    random_taskgraph,
    geometric_taskgraph,
    scale_free_taskgraph,
)
from repro.taskgraph.leanmd import leanmd_taskgraph
from repro.taskgraph.applications import (
    fft_pencil_pattern,
    wavefront_pattern,
    amr_pattern,
    unstructured_halo_pattern,
)
from repro.taskgraph.coalesce import coalesce
from repro.taskgraph.io import taskgraph_to_json, taskgraph_from_json, save_taskgraph, load_taskgraph

__all__ = [
    "TaskGraph",
    "mesh2d_pattern",
    "mesh3d_pattern",
    "ring_pattern",
    "all_to_all_pattern",
    "random_taskgraph",
    "geometric_taskgraph",
    "scale_free_taskgraph",
    "leanmd_taskgraph",
    "fft_pencil_pattern",
    "wavefront_pattern",
    "amr_pattern",
    "unstructured_halo_pattern",
    "coalesce",
    "taskgraph_to_json",
    "taskgraph_from_json",
    "save_taskgraph",
    "load_taskgraph",
]
